// Solver status-path coverage: iteration limits, unbounded integer
// problems, and option plumbing that the happy-path suites never hit.
#include <gtest/gtest.h>

#include "lp/milp.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "support/rng.hpp"

namespace {

using mcs::lp::kInfinity;
using mcs::lp::LinExpr;
using mcs::lp::MilpOptions;
using mcs::lp::Model;
using mcs::lp::Relation;
using mcs::lp::Sense;
using mcs::lp::SimplexOptions;
using mcs::lp::solve_lp;
using mcs::lp::solve_milp;
using mcs::lp::SolveStatus;
using mcs::lp::VarId;

TEST(SolverStatus, SimplexIterationLimitReported) {
  // A non-trivial LP with a 1-iteration budget cannot finish.
  mcs::support::Rng rng(3);
  Model m;
  std::vector<VarId> xs;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(m.add_continuous(0, kInfinity));
  }
  for (int r = 0; r < 10; ++r) {
    LinExpr lhs;
    for (const VarId v : xs) {
      lhs += rng.uniform(0.5, 2.0) * LinExpr(v);
    }
    m.add_constraint(lhs, Relation::kLe, rng.uniform(5.0, 20.0));
  }
  LinExpr obj;
  for (const VarId v : xs) {
    obj += rng.uniform(0.5, 2.0) * LinExpr(v);
  }
  m.set_objective(Sense::kMaximize, obj);

  SimplexOptions tiny;
  tiny.max_iterations = 1;
  const auto sol = solve_lp(m, tiny);
  EXPECT_EQ(sol.status, SolveStatus::kIterationLimit);
  // And with a sane budget the same model solves.
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kOptimal);
}

TEST(SolverStatus, UnboundedMilpReported) {
  Model m;
  const VarId x = m.add_integer(0, kInfinity, "x");
  m.set_objective(Sense::kMaximize, LinExpr(x));
  const auto result = solve_milp(m);
  EXPECT_EQ(result.status, SolveStatus::kUnbounded);
}

TEST(SolverStatus, StatusNamesAreStable) {
  EXPECT_STREQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(SolveStatus::kIterationLimit), "iteration-limit");
  EXPECT_STREQ(to_string(SolveStatus::kNodeLimit), "node-limit");
}

TEST(SolverStatus, HeuristicsCanBeDisabled) {
  mcs::support::Rng rng(5);
  Model m;
  LinExpr weight, value;
  for (int i = 0; i < 10; ++i) {
    const VarId v = m.add_binary();
    weight += rng.uniform(1.0, 4.0) * LinExpr(v);
    value += rng.uniform(1.0, 7.0) * LinExpr(v);
  }
  m.add_constraint(weight, Relation::kLe, 12.0);
  m.set_objective(Sense::kMaximize, value);

  MilpOptions no_heuristics;
  no_heuristics.enable_rounding_heuristic = false;
  const auto without = solve_milp(m, no_heuristics);
  const auto with = solve_milp(m);
  ASSERT_EQ(without.status, SolveStatus::kOptimal);
  ASSERT_EQ(with.status, SolveStatus::kOptimal);
  EXPECT_NEAR(without.objective, with.objective, 1e-6);
}

TEST(SolverStatus, InfeasibleContinuousInsideMilp) {
  Model m;
  const VarId b = m.add_binary("b");
  const VarId y = m.add_continuous(0, 1, "y");
  m.add_constraint(LinExpr(y), Relation::kGe, 2.0);  // impossible
  m.set_objective(Sense::kMaximize, LinExpr(b) + LinExpr(y));
  EXPECT_EQ(solve_milp(m).status, SolveStatus::kInfeasible);
}

}  // namespace
