// Tests of the bounded exhaustive model checker (verify/verify.hpp).
//
// Covers the headline guarantees: the seeded corpus verifies clean and
// *complete* (a proof over the bounded model), verdicts / statistics /
// counterexamples are byte-identical for every thread count, the exhaustive
// WCRT dominates any randomized simulation drawn from the same release
// model, analysis soundness holds (and its negative: deliberately
// tightened bounds must trip MCS-V008), and the documented rule catalogue
// stays in sync with the checker.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "check/diagnostics.hpp"
#include "rt/io.hpp"
#include "rt/task.hpp"
#include "sim/engine.hpp"
#include "sim/job_source.hpp"
#include "support/rng.hpp"
#include "verify/explorer.hpp"
#include "verify/verify.hpp"

namespace {

using mcs::rt::Task;
using mcs::rt::TaskSet;
using mcs::rt::Time;
using mcs::sim::Protocol;
using mcs::verify::VerifyOptions;
using mcs::verify::VerifyResult;

Task make_task(std::string name, Time exec, Time copy_in, Time copy_out,
               Time period, Time deadline, mcs::rt::Priority priority,
               bool ls = false) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = copy_in;
  t.copy_out = copy_out;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  t.latency_sensitive = ls;
  return t;
}

TaskSet small_set() {
  return TaskSet({make_task("fast", 2, 1, 1, 8, 8, 0, true),
                  make_task("slow", 3, 1, 1, 12, 12, 1)});
}

std::string render_all(const mcs::check::CheckReport& report) {
  std::string out;
  for (const auto& d : report.diagnostics) {
    out += mcs::check::render(d) + "\n";
  }
  return out;
}

std::vector<std::filesystem::path> corpus_files() {
  const std::filesystem::path dir =
      std::filesystem::path(MCS_SOURCE_DIR) / "workloads" / "verify";
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".wl") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Verify, CorpusProvesCleanWithAnalysisSoundness) {
  const std::vector<std::filesystem::path> files = corpus_files();
  ASSERT_GE(files.size(), 5u) << "verify corpus shrank";
  for (const auto& path : files) {
    const mcs::rt::Workload workload =
        mcs::rt::load_workload_file(path.string());
    const VerifyResult result =
        mcs::verify::verify(workload.tasks, Protocol::kProposed, {});
    EXPECT_TRUE(result.report.clean())
        << path << "\n" << render_all(result.report);
    EXPECT_TRUE(result.complete) << path << ": exploration truncated";
    EXPECT_FALSE(result.counterexample.has_value()) << path;
    for (std::size_t i = 0; i < workload.tasks.size(); ++i) {
      // Every corpus task completes somewhere in the exploration, and the
      // exact WCRT respects the MILP bound (analysis soundness).
      EXPECT_GT(result.exact_wcrt[i], 0) << path;
      if (result.analysis_wcrt[i] != mcs::rt::kTimeMax) {
        EXPECT_LE(result.exact_wcrt[i], result.analysis_wcrt[i]) << path;
      }
    }
  }
}

TEST(Verify, WpProtocolCorpusEntryProvesClean) {
  const mcs::rt::Workload workload = mcs::rt::load_workload_file(
      (std::filesystem::path(MCS_SOURCE_DIR) / "workloads" / "verify" /
       "pair_ls.wl")
          .string());
  const VerifyResult result =
      mcs::verify::verify(workload.tasks, Protocol::kWasilyPellizzoni, {});
  EXPECT_TRUE(result.report.clean()) << render_all(result.report);
  EXPECT_TRUE(result.complete);
}

void expect_identical(const VerifyResult& a, const VerifyResult& b) {
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.dedup_hits, b.dedup_hits);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.release_branches, b.release_branches);
  EXPECT_EQ(a.depth, b.depth);
  EXPECT_EQ(a.exact_wcrt, b.exact_wcrt);
  EXPECT_EQ(render_all(a.report), render_all(b.report));
  ASSERT_EQ(a.counterexample.has_value(), b.counterexample.has_value());
  if (a.counterexample) {
    ASSERT_EQ(a.counterexample->releases.size(),
              b.counterexample->releases.size());
    for (std::size_t i = 0; i < a.counterexample->releases.size(); ++i) {
      EXPECT_EQ(a.counterexample->releases[i].job,
                b.counterexample->releases[i].job);
      EXPECT_EQ(a.counterexample->releases[i].time,
                b.counterexample->releases[i].time);
    }
    EXPECT_EQ(a.counterexample->trace.intervals.size(),
              b.counterexample->trace.intervals.size());
    EXPECT_EQ(render_all(a.counterexample->trace_audit),
              render_all(b.counterexample->trace_audit));
  }
}

TEST(Verify, VerdictIsIdenticalForEveryThreadCount) {
  const TaskSet tasks = small_set();
  VerifyOptions options;
  options.check_analysis_soundness = false;

  options.threads = 1;
  const VerifyResult serial =
      mcs::verify::verify(tasks, Protocol::kProposed, options);
  ASSERT_TRUE(serial.report.clean()) << render_all(serial.report);
  ASSERT_TRUE(serial.complete);
  for (const unsigned threads : {2u, 5u, 8u}) {
    options.threads = threads;
    expect_identical(serial,
                     mcs::verify::verify(tasks, Protocol::kProposed, options));
  }

  // Same determinism requirement on the violating path: counterexamples
  // must not depend on the thread count either.
  options.mutation = mcs::sim::ProtocolMutation::kSpuriousCancellation;
  options.threads = 1;
  const VerifyResult violating =
      mcs::verify::verify(tasks, Protocol::kProposed, options);
  ASSERT_FALSE(violating.report.clean());
  ASSERT_TRUE(violating.counterexample.has_value());
  for (const unsigned threads : {2u, 5u, 8u}) {
    options.threads = threads;
    expect_identical(violating,
                     mcs::verify::verify(tasks, Protocol::kProposed, options));
  }
}

TEST(Verify, ExhaustiveWcrtDominatesRandomizedSimulation) {
  const TaskSet tasks = small_set();
  VerifyOptions options;
  options.check_analysis_soundness = false;
  const VerifyResult result =
      mcs::verify::verify(tasks, Protocol::kProposed, options);
  ASSERT_TRUE(result.complete);
  ASSERT_TRUE(result.report.clean()) << render_all(result.report);

  // Sample random release sequences from the verifier's own choice model
  // (first release o*L, gaps T + j*L, all strictly before the horizon):
  // each is one path of the exploration, so no simulated response may
  // exceed the exhaustive WCRT.
  mcs::support::Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<mcs::sim::Release> releases;
    for (mcs::rt::TaskIndex t = 0; t < tasks.size(); ++t) {
      Time when = result.lattice * static_cast<Time>(rng.uniform_int(
                                       0, static_cast<std::int64_t>(
                                              options.offset_steps)));
      std::uint64_t seq = 0;
      while (when < result.horizon) {
        releases.push_back(mcs::sim::Release{mcs::sim::JobId{t, seq++}, when});
        when += tasks[t].period +
                result.lattice * static_cast<Time>(rng.uniform_int(
                                     0, static_cast<std::int64_t>(
                                            options.jitter_steps)));
      }
    }
    const mcs::sim::Trace trace =
        mcs::sim::simulate(tasks, Protocol::kProposed, std::move(releases));
    ASSERT_FALSE(trace.aborted);
    for (const mcs::sim::JobRecord& job : trace.jobs) {
      ASSERT_TRUE(job.completed());
      EXPECT_LE(job.response_time(), result.exact_wcrt[job.id.task])
          << "trial " << trial;
    }
  }
}

TEST(Verify, TightenedBoundsTripAnalysisSoundness) {
  const TaskSet tasks = small_set();
  VerifyOptions options;
  options.check_analysis_soundness = false;
  const VerifyResult exact =
      mcs::verify::verify(tasks, Protocol::kProposed, options);
  ASSERT_TRUE(exact.complete);
  ASSERT_GT(exact.exact_wcrt[1], 0);

  // A bound one tick under the exact WCRT is unsound by construction; the
  // checker must find the witnessing completion and flag MCS-V008.
  options.analysis_bounds = exact.exact_wcrt;
  options.analysis_bounds[1] = exact.exact_wcrt[1] - 1;
  const VerifyResult result =
      mcs::verify::verify(tasks, Protocol::kProposed, options);
  ASSERT_FALSE(result.report.clean());
  EXPECT_TRUE(result.report.has_rule("MCS-V008"))
      << render_all(result.report);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_FALSE(result.counterexample->releases.empty());
  // The replayed counterexample is a genuine protocol execution: the
  // independent trace audit finds nothing wrong with it (the violation is
  // the injected bound, not the schedule).
  EXPECT_TRUE(result.counterexample->trace_audit.clean())
      << render_all(result.counterexample->trace_audit);

  // Bounds at exactly the exhaustive WCRT are tight but sound.
  options.analysis_bounds = exact.exact_wcrt;
  const VerifyResult tight =
      mcs::verify::verify(tasks, Protocol::kProposed, options);
  EXPECT_TRUE(tight.report.clean()) << render_all(tight.report);
}

TEST(Verify, StateBudgetTruncationIsReportedNotProved) {
  const TaskSet tasks = small_set();
  VerifyOptions options;
  options.check_analysis_soundness = false;
  options.max_states = 64;  // far below the ~800 reachable states
  const VerifyResult result =
      mcs::verify::verify(tasks, Protocol::kProposed, options);
  EXPECT_TRUE(result.truncated);
  EXPECT_FALSE(result.complete);
}

TEST(Verify, HyperperiodClampsAndComposes) {
  const TaskSet tasks = small_set();  // periods 8, 12 -> lcm 24
  EXPECT_EQ(mcs::verify::hyperperiod(tasks, 4096), 24);
  EXPECT_EQ(mcs::verify::hyperperiod(tasks, 10), 10);
}

TEST(Verify, CatalogueCoversEveryVerifierRule) {
  for (const char* rule :
       {"MCS-V001", "MCS-V002", "MCS-V003", "MCS-V004", "MCS-V005",
        "MCS-V006", "MCS-V007", "MCS-V008", "MCS-V009", "MCS-V010"}) {
    EXPECT_NE(mcs::check::find_rule(rule), nullptr) << rule;
  }
}

}  // namespace
