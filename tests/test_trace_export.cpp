#include "sim/trace_export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/engine.hpp"

namespace {

using mcs::rt::Task;
using mcs::rt::TaskSet;
using mcs::sim::export_intervals_csv;
using mcs::sim::export_jobs_csv;
using mcs::sim::JobId;
using mcs::sim::Protocol;

TaskSet tasks_for_export() {
  Task a;
  a.name = "A";
  a.exec = 5;
  a.copy_in = 2;
  a.copy_out = 1;
  a.period = 100;
  a.deadline = 100;
  a.priority = 0;
  Task b = a;
  b.name = "B";
  b.priority = 1;
  return TaskSet({a, b});
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

TEST(TraceExport, IntervalsTableShape) {
  const TaskSet tasks = tasks_for_export();
  const auto trace = mcs::sim::simulate(
      tasks, Protocol::kProposed, {{JobId{0, 0}, 0}, {JobId{1, 0}, 0}});
  std::ostringstream out;
  export_intervals_csv(tasks, trace, out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), trace.intervals.size() + 1);
  EXPECT_EQ(lines[0],
            "index,start,end,cpu_action,cpu_task,cpu_busy,copy_out_task,"
            "copy_out,copy_in_task,copy_in_outcome,copy_in,dma_busy");
  // First interval: copy-in of A, idle CPU.
  EXPECT_NE(lines[1].find("idle"), std::string::npos);
  EXPECT_NE(lines[1].find("A#0"), std::string::npos);
  EXPECT_NE(lines[1].find("completed"), std::string::npos);
}

TEST(TraceExport, JobsTableShape) {
  const TaskSet tasks = tasks_for_export();
  const auto trace = mcs::sim::simulate(
      tasks, Protocol::kProposed, {{JobId{0, 0}, 0}, {JobId{1, 0}, 0}});
  std::ostringstream out;
  export_jobs_csv(tasks, trace, out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);  // header + 2 jobs
  // A#0: release 0, copy-in at 0, exec at 2, completion 8, response 8.
  EXPECT_EQ(lines[1], "A,0,0,0,0,2,8,8,0,0,0");
}

TEST(TraceExport, IncompleteJobsHaveEmptyCells) {
  const TaskSet tasks = tasks_for_export();
  // Overloaded single release with an aborting interval budget.
  mcs::sim::SimOptions options;
  options.max_intervals = 1;
  const auto trace = mcs::sim::simulate(
      tasks, Protocol::kProposed,
      {{JobId{0, 0}, 0}, {JobId{1, 0}, 0}}, options);
  std::ostringstream out;
  export_jobs_csv(tasks, trace, out);
  const auto lines = lines_of(out.str());
  ASSERT_GE(lines.size(), 2u);
  // The aborted trace leaves at least one job without completion: its row
  // has consecutive commas where the timestamps would be.
  bool found_incomplete = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].find(",,") != std::string::npos) {
      found_incomplete = true;
    }
  }
  EXPECT_TRUE(found_incomplete);
}

}  // namespace
