// Tests of the protocol-invariant trace auditor (check/trace_audit.hpp)
// and the CSV trace import (sim/trace_import.hpp).
//
// The auditor is an independent re-implementation of the R1-R6 /
// Properties 1-4 checks: simulator output must audit clean under every
// protocol (directly and after a CSV export/import round trip), and
// targeted in-memory corruptions of a real trace must each trip their
// MCS-P rule.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/diagnostics.hpp"
#include "check/trace_audit.hpp"
#include "gen/generator.hpp"
#include "rt/task.hpp"
#include "sim/engine.hpp"
#include "sim/job_source.hpp"
#include "sim/trace.hpp"
#include "sim/trace_export.hpp"
#include "sim/trace_import.hpp"
#include "support/rng.hpp"

namespace {

using mcs::check::audit_trace;
using mcs::check::CheckReport;
using mcs::rt::Task;
using mcs::rt::TaskSet;
using mcs::rt::Time;
using mcs::sim::CopyInOutcome;
using mcs::sim::CpuAction;
using mcs::sim::Protocol;
using mcs::sim::Trace;

Task make_task(std::string name, Time exec, Time mem, Time period,
               Time deadline, mcs::rt::Priority priority, bool ls = false) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = mem;
  t.copy_out = mem;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  t.latency_sensitive = ls;
  return t;
}

TaskSet mixed_set() {
  return TaskSet({make_task("s", 2, 1, 30, 10, 0, true),
                  make_task("a", 4, 2, 40, 30, 1),
                  make_task("b", 3, 1, 50, 45, 2),
                  make_task("c", 5, 2, 80, 70, 3)});
}

std::string render_all(const CheckReport& report) {
  std::string out;
  for (const auto& d : report.diagnostics) {
    out += mcs::check::render(d) + "\n";
  }
  return out;
}

Trace run(const TaskSet& tasks, Protocol protocol, Time horizon = 4000) {
  auto releases = mcs::sim::synchronous_periodic_releases(tasks, horizon);
  return mcs::sim::simulate(tasks, protocol, std::move(releases));
}

TEST(TraceAudit, SimulatorOutputAuditsCleanUnderEveryProtocol) {
  const TaskSet tasks = mixed_set();
  for (const Protocol protocol :
       {Protocol::kProposed, Protocol::kWasilyPellizzoni,
        Protocol::kNonPreemptive}) {
    const Trace trace = run(tasks, protocol);
    ASSERT_FALSE(trace.jobs.empty());
    const CheckReport report = audit_trace(tasks, protocol, trace);
    EXPECT_TRUE(report.clean())
        << mcs::sim::to_string(protocol) << "\n" << render_all(report);
  }
}

TEST(TraceAudit, RandomizedSporadicTracesAuditClean) {
  mcs::support::Rng rng(0xBEEF);
  mcs::gen::GeneratorConfig config;
  config.num_tasks = 5;
  config.utilization = 0.4;
  for (int trial = 0; trial < 10; ++trial) {
    TaskSet tasks = mcs::gen::generate_task_set(config, rng);
    for (mcs::rt::TaskIndex j = 0; j < tasks.size(); ++j) {
      if (tasks[j].priority <= 1) {
        tasks[j].latency_sensitive = true;  // provoke cancellations
      }
    }
    auto releases = mcs::sim::random_sporadic_releases(tasks, 3000, 0.5, rng);
    for (const Protocol protocol :
         {Protocol::kProposed, Protocol::kWasilyPellizzoni,
          Protocol::kNonPreemptive}) {
      auto rel = releases;
      const Trace trace = mcs::sim::simulate(tasks, protocol, std::move(rel));
      const CheckReport report = audit_trace(tasks, protocol, trace);
      EXPECT_TRUE(report.clean())
          << "trial " << trial << " " << mcs::sim::to_string(protocol) << "\n"
          << render_all(report);
    }
  }
}

TEST(TraceAudit, CsvRoundTripPreservesAuditVerdict) {
  const TaskSet tasks = mixed_set();
  const Trace trace = run(tasks, Protocol::kProposed);

  std::ostringstream intervals;
  std::ostringstream jobs;
  mcs::sim::export_intervals_csv(tasks, trace, intervals);
  mcs::sim::export_jobs_csv(tasks, trace, jobs);
  std::istringstream intervals_in(intervals.str());
  std::istringstream jobs_in(jobs.str());
  const Trace imported =
      mcs::sim::import_trace_csv(tasks, intervals_in, jobs_in);

  ASSERT_EQ(imported.intervals.size(), trace.intervals.size());
  ASSERT_EQ(imported.jobs.size(), trace.jobs.size());
  for (std::size_t k = 0; k < trace.intervals.size(); ++k) {
    EXPECT_EQ(imported.intervals[k].start, trace.intervals[k].start);
    EXPECT_EQ(imported.intervals[k].end, trace.intervals[k].end);
    EXPECT_EQ(imported.intervals[k].cpu_busy, trace.intervals[k].cpu_busy);
    EXPECT_EQ(imported.intervals[k].dma_busy, trace.intervals[k].dma_busy);
  }
  for (std::size_t j = 0; j < trace.jobs.size(); ++j) {
    EXPECT_EQ(imported.jobs[j].release, trace.jobs[j].release);
    EXPECT_EQ(imported.jobs[j].completion, trace.jobs[j].completion);
    EXPECT_EQ(imported.jobs[j].became_urgent, trace.jobs[j].became_urgent);
  }

  const CheckReport report = audit_trace(tasks, Protocol::kProposed, imported);
  EXPECT_TRUE(report.clean()) << render_all(report);
}

TEST(TraceAudit, MalformedCsvThrows) {
  const TaskSet tasks = mixed_set();
  {
    std::istringstream intervals("header\n1,2,3\n");
    std::istringstream jobs("header\n");
    EXPECT_THROW(mcs::sim::import_trace_csv(tasks, intervals, jobs),
                 mcs::sim::TraceParseError);
  }
  {
    std::istringstream intervals("header\n");
    std::istringstream jobs("header\nghost,0,0,0,0,0,0,0,0,0,0\n");
    EXPECT_THROW(mcs::sim::import_trace_csv(tasks, intervals, jobs),
                 mcs::sim::TraceParseError);
  }
}

// ---------------------------------------------------------------------------
// Negative direction: corrupt a genuine trace and expect the matching rule.

struct Corrupted {
  TaskSet tasks = mixed_set();
  Trace trace = run(tasks, Protocol::kProposed);

  CheckReport audit() const {
    return audit_trace(tasks, Protocol::kProposed, trace);
  }
};

TEST(TraceAuditNegative, BaselineIsClean) {
  Corrupted c;
  const CheckReport report = c.audit();
  ASSERT_TRUE(report.clean()) << render_all(report);
}

TEST(TraceAuditNegative, OverlappingIntervalsFire001) {
  // Gaps between busy windows are legal (the machine may idle); overlap
  // with the predecessor is not.
  Corrupted c;
  ASSERT_GE(c.trace.intervals.size(), 2u);
  c.trace.intervals[1].start -= 1;
  const CheckReport report = c.audit();
  EXPECT_TRUE(report.has_rule("MCS-P001")) << render_all(report);
}

TEST(TraceAuditNegative, WrongIntervalLengthFires002) {
  Corrupted c;
  ASSERT_FALSE(c.trace.intervals.empty());
  for (auto& rec : c.trace.intervals) {
    if (rec.cpu_action == CpuAction::kExecute) {
      rec.cpu_busy += 37;  // length no longer max(cpu, dma)
      break;
    }
  }
  const CheckReport report = c.audit();
  EXPECT_TRUE(report.has_rule("MCS-P002")) << render_all(report);
}

TEST(TraceAuditNegative, WrongDmaAccountingFires003) {
  Corrupted c;
  for (auto& rec : c.trace.intervals) {
    if (rec.copy_in_outcome == CopyInOutcome::kCompleted) {
      rec.copy_in_duration += 1;  // no longer the task's l_i
      break;
    }
  }
  const CheckReport report = c.audit();
  EXPECT_TRUE(report.has_rule("MCS-P003")) << render_all(report);
}

TEST(TraceAuditNegative, UnjustifiedCancellationFires004) {
  Corrupted c;
  // Forge a cancellation in an interval that completed its copy-in: no LS
  // release justifies it.
  for (auto& rec : c.trace.intervals) {
    if (rec.copy_in_outcome == CopyInOutcome::kCompleted &&
        rec.copy_in_job.has_value()) {
      rec.copy_in_outcome = CopyInOutcome::kDiscarded;
      break;
    }
  }
  const CheckReport report = c.audit();
  EXPECT_TRUE(report.has_rule("MCS-P004")) << render_all(report);
}

TEST(TraceAuditNegative, UrgentNonLsTaskFires005) {
  Corrupted c;
  // Claim a non-LS job went urgent (jobs of task "c", index 3, are NLS).
  for (auto& job : c.trace.jobs) {
    if (!c.tasks[job.id.task].latency_sensitive) {
      job.became_urgent = true;
      const CheckReport report = c.audit();
      EXPECT_TRUE(report.has_rule("MCS-P005")) << render_all(report);
      return;
    }
  }
  FAIL() << "no non-LS job in trace";
}

TEST(TraceAuditNegative, DuplicateExecutionFires011) {
  Corrupted c;
  // Duplicate a completed job's execution interval at the trace tail: the
  // per-job accounting sees two executions.
  for (const auto& rec : c.trace.intervals) {
    if (rec.cpu_action != CpuAction::kIdle && rec.cpu_job.has_value()) {
      auto dup = rec;
      const auto& last = c.trace.intervals.back();
      dup.index = last.index + 1;
      dup.start = last.end;
      dup.end = dup.start + (rec.end - rec.start);
      dup.copy_out_job.reset();
      dup.copy_in_job.reset();
      dup.copy_in_outcome = CopyInOutcome::kNone;
      dup.dma_busy = 0;
      c.trace.intervals.push_back(dup);
      break;
    }
  }
  const CheckReport report = c.audit();
  EXPECT_TRUE(report.has_rule("MCS-P011")) << render_all(report);
}

TEST(TraceAuditNegative, InconsistentJobTimelineFires012) {
  Corrupted c;
  for (auto& job : c.trace.jobs) {
    if (job.completion != mcs::rt::kTimeMax) {
      job.exec_start = job.completion + 5;  // executes after completing
      break;
    }
  }
  const CheckReport report = c.audit();
  EXPECT_TRUE(report.has_rule("MCS-P012")) << render_all(report);
}

TEST(TraceAuditNegative, ExcessiveBlockingFires010) {
  Corrupted c;
  // Push a job's exec_start far past its ready time so that more than two
  // lower-priority intervals fit in between -> Property 3/4 violation.
  // Synthesize: take the highest-priority NLS task's first job and move
  // its recorded execution interval to the end of the trace while leaving
  // release/ready early.
  // Simpler deterministic corruption: claim the job was ready at time 0
  // but executed only at the very end of the trace.
  for (auto& job : c.trace.jobs) {
    if (job.completion == mcs::rt::kTimeMax || job.id.task != 3) {
      continue;
    }
    const Time tail = c.trace.intervals.back().end;
    // Move the matching execution interval to a fresh interval at the end.
    for (auto& rec : c.trace.intervals) {
      if (rec.cpu_action == CpuAction::kExecute && rec.cpu_job == job.id) {
        auto moved = rec;
        rec.cpu_action = CpuAction::kIdle;
        rec.cpu_job.reset();
        rec.cpu_busy = 0;
        moved.index = c.trace.intervals.back().index + 1;
        moved.start = tail;
        moved.end = tail + moved.cpu_busy;
        moved.copy_out_job.reset();
        moved.copy_in_job.reset();
        moved.copy_in_outcome = CopyInOutcome::kNone;
        moved.dma_busy = 0;
        const Time exec_offset = job.exec_start - rec.start;
        c.trace.intervals.push_back(moved);
        job.exec_start = moved.start + exec_offset;
        job.completion = moved.end;
        break;
      }
    }
    break;
  }
  const CheckReport report = c.audit();
  // The surgery above violates several invariants at once (that is fine —
  // it only needs to include the blocking rule).
  EXPECT_FALSE(report.clean());
}

}  // namespace
