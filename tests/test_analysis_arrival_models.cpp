// The analysis is arrival-curve generic (paper §II uses eta everywhere).
// These tests plug non-sporadic curves into tasks and check the expected
// effects on the bounds: release jitter only adds interference, burstier
// curves only hurt, and measured (staircase) curves interoperate.
#include <gtest/gtest.h>

#include "analysis/response_time.hpp"
#include "rt/arrival.hpp"
#include "rt/arrival_estimation.hpp"
#include "rt/task.hpp"

namespace {

using mcs::analysis::bound_response_time;
using mcs::rt::PeriodicJitterArrival;
using mcs::rt::Task;
using mcs::rt::TaskSet;
using mcs::rt::Time;

Task make_task(std::string name, Time exec, Time mem, Time period,
               Time deadline, mcs::rt::Priority priority) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = mem;
  t.copy_out = mem;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  return t;
}

TaskSet hp_lp_pair() {
  return TaskSet({make_task("hp", 3, 1, 20, 20, 0),
                  make_task("lo", 6, 2, 90, 90, 1)});
}

TEST(ArrivalModels, JitterMonotonicallyInflatesTheBound) {
  Time prev = 0;
  for (const Time jitter : {Time{0}, Time{5}, Time{10}, Time{19}}) {
    TaskSet tasks = hp_lp_pair();
    tasks[0].arrival = std::make_shared<PeriodicJitterArrival>(20, jitter);
    const auto r = bound_response_time(tasks, 1);
    ASSERT_TRUE(r.schedulable) << "jitter " << jitter;
    EXPECT_GE(r.wcrt, prev) << "jitter " << jitter;
    prev = r.wcrt;
  }
}

TEST(ArrivalModels, ZeroJitterMatchesSporadic) {
  TaskSet sporadic = hp_lp_pair();
  TaskSet jittered = hp_lp_pair();
  jittered[0].arrival = std::make_shared<PeriodicJitterArrival>(20, 0);
  const auto a = bound_response_time(sporadic, 1);
  const auto b = bound_response_time(jittered, 1);
  EXPECT_EQ(a.wcrt, b.wcrt);
}

TEST(ArrivalModels, MeasuredCurveNeverExceedsSporadicBound) {
  // A curve estimated from a strictly periodic trace is at most as
  // pessimistic as the sporadic model, so the bound cannot grow.
  TaskSet sporadic = hp_lp_pair();
  TaskSet measured = hp_lp_pair();
  std::vector<Time> releases;
  for (Time t = 0; t <= 400; t += 20) {
    releases.push_back(t);
  }
  measured[0].arrival = mcs::rt::estimate_arrival_curve(releases);
  const auto a = bound_response_time(sporadic, 1);
  const auto b = bound_response_time(measured, 1);
  ASSERT_TRUE(a.schedulable);
  ASSERT_TRUE(b.schedulable);
  EXPECT_LE(b.wcrt, a.wcrt);
}

TEST(ArrivalModels, BurstyCurveInflatesTheBound) {
  // A measured trace with release pairs back-to-back doubles the
  // short-window interference.
  TaskSet bursty = hp_lp_pair();
  std::vector<Time> releases;
  for (Time t = 0; t <= 400; t += 40) {
    releases.push_back(t);
    releases.push_back(t + 2);  // burst of two
  }
  bursty[0].arrival = mcs::rt::estimate_arrival_curve(releases);
  const auto plain = bound_response_time(hp_lp_pair(), 1);
  const auto burst = bound_response_time(bursty, 1);
  ASSERT_TRUE(plain.schedulable);
  if (burst.schedulable) {
    EXPECT_GE(burst.wcrt, plain.wcrt);
  }
}

}  // namespace
