// Unit tests of the MILP-based response-time analysis on hand-analyzable
// task sets (paper §V / §VI).
#include <gtest/gtest.h>

#include <limits>

#include "analysis/greedy.hpp"
#include "analysis/nps.hpp"
#include "analysis/response_time.hpp"
#include "analysis/schedulability.hpp"
#include "rt/task.hpp"
#include "support/contracts.hpp"

namespace {

using mcs::analysis::AnalysisOptions;
using mcs::analysis::analyze;
using mcs::analysis::analyze_proposed;
using mcs::analysis::analyze_wp;
using mcs::analysis::Approach;
using mcs::analysis::bound_response_time;
using mcs::analysis::nps_bound;
using mcs::rt::Task;
using mcs::rt::TaskSet;
using mcs::rt::Time;

Task make_task(std::string name, Time exec, Time copy_in, Time copy_out,
               Time period, Time deadline, mcs::rt::Priority priority,
               bool ls = false) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = copy_in;
  t.copy_out = copy_out;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  t.latency_sensitive = ls;
  return t;
}

// ---------------------------------------------------------------------------
// Single-task bounds are exactly computable by hand.
// ---------------------------------------------------------------------------

TEST(RtaSingleTask, NlsBoundMatchesHandDerivation) {
  // C=10, l=2, u=3.  Window: Delta_0 <= copyout0 (<=3), Delta_1 = l = 2,
  // Delta_2 <= max(C, copyin_last <= 2) = 10; R = 15 + u = 18.
  const TaskSet tasks({make_task("solo", 10, 2, 3, 100, 100, 0)});
  const auto r = bound_response_time(tasks, 0);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.wcrt, 18);
  EXPECT_FALSE(r.used_relaxation_bound);
}

TEST(RtaSingleTask, LsBoundMatchesHandDerivation) {
  // LS case (a): Delta_0 <= copyout0 + l = 5, Delta_1 <= max(C, l) = 10;
  // case (b): Delta_0 <= copyout0 = 3, Delta_1 = l + C = 12.
  // Both give delay 15 -> R = 18.
  const TaskSet tasks({make_task("solo", 10, 2, 3, 100, 100, 0, true)});
  const auto r = bound_response_time(tasks, 0);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.wcrt, 18);
}

TEST(RtaSingleTask, NoMemoryPhasesGivesPureWcet) {
  const TaskSet tasks({make_task("solo", 10, 0, 0, 100, 100, 0)});
  const auto r = bound_response_time(tasks, 0);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.wcrt, 10);
}

TEST(RtaSingleTask, ImmediateDeadlineFailure) {
  const TaskSet tasks({make_task("solo", 10, 2, 3, 100, 12, 0)});
  const auto r = bound_response_time(tasks, 0);
  EXPECT_FALSE(r.schedulable);
  EXPECT_TRUE(r.exceeded_deadline);
  EXPECT_EQ(r.wcrt, 15);  // l + C + u already misses
}

// ---------------------------------------------------------------------------
// Blocking structure: NLS tasks can be blocked by two lp tasks, LS by one.
// ---------------------------------------------------------------------------

class BlockingStructure : public ::testing::Test {
 protected:
  // One high-priority task under analysis plus two heavy lp tasks with
  // long periods (no interference, pure blocking).
  TaskSet make(bool hi_ls) {
    return TaskSet({make_task("hi", 2, 1, 1, 1000, 1000, 0, hi_ls),
                    make_task("lo1", 20, 2, 2, 1000, 1000, 1),
                    make_task("lo2", 30, 3, 3, 1000, 1000, 2)});
  }
};

TEST_F(BlockingStructure, NlsSeesTwoBlockingExecutions) {
  const TaskSet tasks = make(false);
  const auto r = bound_response_time(tasks, 0);
  ASSERT_TRUE(r.schedulable);
  // Two lp executions (30 and 20) must both fit in the bound: the delay
  // clearly exceeds their sum.
  EXPECT_GE(r.wcrt, 30 + 20 + 2);
  // And it cannot exceed the coarse everything-everywhere bound.
  EXPECT_LE(r.wcrt, 30 + 20 + 3 + 3 + 2 + 1 + 1 + 3 + 2 + 1);
}

TEST_F(BlockingStructure, LsSeesOnlyOneBlockingExecution) {
  const TaskSet tasks = make(true);
  const auto r = bound_response_time(tasks, 0);
  ASSERT_TRUE(r.schedulable);
  const auto nls = bound_response_time(make(false), 0);
  // The LS bound must beat the NLS bound by at least the smaller lp WCET
  // (one whole blocking execution disappears).
  EXPECT_LE(r.wcrt + 20, nls.wcrt + 3);
  // The single blocking execution (up to 30) still shows.
  EXPECT_GE(r.wcrt, 30);
}

TEST_F(BlockingStructure, WpAnalysisEqualsAllNlsProposedAnalysis) {
  // With no LS task the two analyses are the same MILP (DESIGN.md §5.3).
  const TaskSet tasks = make(false);
  const auto direct = bound_response_time(tasks, 0);
  AnalysisOptions wp;
  wp.ignore_ls = true;
  const auto as_wp = bound_response_time(tasks, 0, wp);
  EXPECT_EQ(direct.wcrt, as_wp.wcrt);
}

// ---------------------------------------------------------------------------
// The Figure 1 task set, through the analysis (not just the simulator).
// ---------------------------------------------------------------------------

class Fig1Analysis : public ::testing::Test {
 protected:
  TaskSet tasks_{std::vector<Task>{
      make_task("hi", 3, 1, 1, 100, 10, 0),
      make_task("lp1", 4, 1, 1, 100, 100, 1),
      make_task("lp2", 4, 1, 1, 100, 100, 2)}};
};

TEST_F(Fig1Analysis, WpDeemsUnschedulable) {
  const auto wp = analyze_wp(tasks_);
  EXPECT_FALSE(wp.schedulable);
  // hi misses: two blocking intervals (4 + 4) + own exec interval (3) +
  // copy-out (1) give a bound of 12 > D = 10.
  EXPECT_FALSE(wp.per_task[0].schedulable);
  EXPECT_EQ(wp.per_task[0].wcrt, 12);
}

TEST_F(Fig1Analysis, NpsBeatsWpButStillMisses) {
  // NPS worst case: one blocking job (6) + own demand (5) = 11 > 10 —
  // tighter than WP's 12 (the Figure 1 phenomenon: [3] can be *worse*
  // than plain non-preemptive scheduling) yet still over the deadline.
  const auto hi = nps_bound(tasks_, 0);
  EXPECT_EQ(hi.wcrt, 11);
  EXPECT_FALSE(hi.schedulable);
  const auto wp = analyze_wp(tasks_);
  EXPECT_GT(wp.per_task[0].wcrt, hi.wcrt);
}

TEST_F(Fig1Analysis, ProposedRescuesViaGreedyLsMarking) {
  const auto prop = analyze_proposed(tasks_);
  EXPECT_TRUE(prop.schedulable);
  // The greedy algorithm must have marked hi as LS; with one blocking
  // interval its bound drops to 9 <= 10.
  EXPECT_TRUE(prop.ls_flags[0]);
  EXPECT_GE(prop.rounds, 2u);
  EXPECT_LE(prop.per_task[0].wcrt, 10);
}

// ---------------------------------------------------------------------------
// Greedy containment: whenever WP succeeds, the proposed analysis succeeds
// (round zero of the greedy algorithm *is* the WP analysis).
// ---------------------------------------------------------------------------

TEST(Greedy, WpScheduleImpliesProposedSchedule) {
  const TaskSet tasks({make_task("a", 2, 1, 1, 40, 40, 0),
                       make_task("b", 3, 1, 1, 60, 60, 1),
                       make_task("c", 4, 1, 1, 90, 90, 2)});
  const auto wp = analyze_wp(tasks);
  ASSERT_TRUE(wp.schedulable);
  const auto prop = analyze_proposed(tasks);
  EXPECT_TRUE(prop.schedulable);
  EXPECT_EQ(prop.rounds, 1u);
  for (const bool flag : prop.ls_flags) {
    EXPECT_FALSE(flag);  // no promotion needed
  }
}

TEST(Greedy, UnschedulableEvenWithLs) {
  // Deadline below l + C + u: hopeless under any protocol.
  const TaskSet tasks({make_task("a", 10, 2, 2, 20, 5, 0)});
  const auto prop = analyze_proposed(tasks);
  EXPECT_FALSE(prop.schedulable);
}

// ---------------------------------------------------------------------------
// NPS analysis against hand-computed numbers.
// ---------------------------------------------------------------------------

TEST(Nps, TwoTaskExample) {
  // hp: e = 4 (2+1+1), T = 10; lp: e = 12 (10+1+1), T = 100, D = 50.
  const TaskSet tasks({make_task("hp", 2, 1, 1, 10, 10, 0),
                       make_task("lp", 10, 1, 1, 100, 50, 1)});
  // hp: blocking 12, start: w = 12 + (jobs of hp before start... none
  // higher) -> w = 12, R = 12 + 4 = 16 > D = 10: unschedulable!
  const auto hp = nps_bound(tasks, 0);
  EXPECT_EQ(hp.wcrt, 16);
  EXPECT_FALSE(hp.schedulable);
  // lp: no blocking; start: s = 0 + hp interference; s = 4 -> releases in
  // [0,4] = 1 -> s = 4; R = 4 + 12 = 16 <= 50.
  const auto lo = nps_bound(tasks, 1);
  EXPECT_EQ(lo.wcrt, 16);
  EXPECT_TRUE(lo.schedulable);
}

TEST(Nps, MultipleJobsInBusyPeriod) {
  // Task i: e = 5, T = 6, D = 6; hp: e = 2, T = 7.
  // Busy period spans several jobs of i; the later jobs matter.
  const TaskSet tasks({make_task("hp", 1, 1, 0, 7, 7, 0),
                       make_task("i", 3, 1, 1, 6, 6, 1)});
  const auto r = nps_bound(tasks, 1);
  EXPECT_TRUE(r.wcrt > 0);
  // The single-job bound would be 2 + 5 = 7 > D... check analysis flags.
  EXPECT_EQ(r.schedulable, r.wcrt <= 6);
}

TEST(Nps, IsolatedTask) {
  const TaskSet tasks({make_task("solo", 10, 2, 3, 100, 100, 0)});
  const auto r = nps_bound(tasks, 0);
  EXPECT_EQ(r.wcrt, 15);
  EXPECT_TRUE(r.schedulable);
}

TEST(Nps, OverloadDiverges) {
  const TaskSet tasks({make_task("a", 9, 1, 1, 10, 10, 0),
                       make_task("b", 9, 1, 1, 10, 10, 1)});
  const auto r = nps_bound(tasks, 1);
  EXPECT_FALSE(r.schedulable);
}

// ---------------------------------------------------------------------------
// LP relaxation mode: faster, never less pessimistic than the exact MILP.
// ---------------------------------------------------------------------------

TEST(Relaxation, LpBoundDominatesExactBound) {
  const TaskSet tasks({make_task("hi", 3, 1, 1, 50, 30, 0),
                       make_task("mid", 5, 2, 2, 80, 80, 1),
                       make_task("lo", 8, 2, 2, 120, 120, 2)});
  AnalysisOptions relaxed;
  relaxed.lp_relaxation_only = true;
  for (mcs::rt::TaskIndex i = 0; i < tasks.size(); ++i) {
    const auto exact = bound_response_time(tasks, i);
    const auto lp = bound_response_time(tasks, i, relaxed);
    if (exact.schedulable && lp.schedulable) {
      EXPECT_GE(lp.wcrt, exact.wcrt) << "task " << i;
    }
    // Relaxation can only lose schedulability, never gain it.
    if (lp.schedulable) {
      EXPECT_TRUE(exact.schedulable);
    }
  }
}

// ---------------------------------------------------------------------------
// fast_accept mode: verdicts must match the iterative scheme (the bound may
// be coarser — evaluated at the deadline-sized window — but never unsafe).
// ---------------------------------------------------------------------------

TEST(FastAccept, VerdictsMatchIterativeScheme) {
  const TaskSet tasks({make_task("hi", 3, 1, 1, 50, 30, 0),
                       make_task("mid", 5, 2, 2, 80, 60, 1),
                       make_task("lo", 8, 2, 2, 120, 120, 2)});
  AnalysisOptions fast;
  fast.fast_accept = true;
  for (mcs::rt::TaskIndex i = 0; i < tasks.size(); ++i) {
    const auto iterative = bound_response_time(tasks, i);
    const auto accepted = bound_response_time(tasks, i, fast);
    EXPECT_EQ(iterative.schedulable, accepted.schedulable) << "task " << i;
    if (iterative.schedulable && accepted.schedulable) {
      // fast_accept evaluates at the larger deadline window: its bound
      // dominates the converged one but must still fit the deadline.
      EXPECT_GE(accepted.wcrt, iterative.wcrt);
      EXPECT_LE(accepted.wcrt, tasks[i].deadline);
    }
  }
}

// ---------------------------------------------------------------------------
// Regression: delay_to_ticks must round *up* (DESIGN.md §5.1).  The old
// implementation computed ceil(delay - 1e-6), which mapped a genuine bound
// like 5.0000005 to 5 ticks — below the bound, i.e. unsafe.

TEST(DelayToTicks, NeverRoundsBelowTheDoubleBound) {
  using mcs::analysis::delay_to_ticks;
  // Bounds straddling integer boundaries from both sides, including the
  // exact epsilon range the old code shaved off.
  const double bounds[] = {0.0,       1e-9,      1e-7,      0.3,
                           0.9999999, 1.0,       1.0000001, 4.9999999,
                           5.0,       5.0000005, 5.0000001, 5.9,
                           1e6,       1e6 + 1e-7};
  for (const double delay : bounds) {
    const Time ticks = delay_to_ticks(delay);
    EXPECT_GE(static_cast<double>(ticks), delay) << "delay=" << delay;
    // ...while staying within one tick of the bound (no gratuitous
    // pessimism beyond the ceil).
    EXPECT_LT(static_cast<double>(ticks), delay + 1.0) << "delay=" << delay;
  }
}

TEST(DelayToTicks, ExactIntegersPassThroughUnchanged) {
  using mcs::analysis::delay_to_ticks;
  for (const Time v : {Time{0}, Time{1}, Time{5}, Time{123456789}}) {
    EXPECT_EQ(delay_to_ticks(static_cast<double>(v)), v);
  }
}

TEST(DelayToTicks, EpsilonAboveIntegerRoundsUpNotDown) {
  using mcs::analysis::delay_to_ticks;
  // The headline case from the bug report: 5.0000005 is a genuine bound
  // above 5, so 5 ticks would under-approximate it.
  EXPECT_EQ(delay_to_ticks(5.0000005), 6);
  EXPECT_EQ(delay_to_ticks(5.000001), 6);
  // Strictly below the integer still rounds to it.
  EXPECT_EQ(delay_to_ticks(4.9999999), 5);
}

TEST(DelayToTicks, RejectsNonFiniteAndNegativeBounds) {
  using mcs::analysis::delay_to_ticks;
  EXPECT_THROW(delay_to_ticks(-1.0), mcs::support::ContractViolation);
  EXPECT_THROW(delay_to_ticks(std::numeric_limits<double>::infinity()),
               mcs::support::ContractViolation);
  EXPECT_THROW(delay_to_ticks(std::numeric_limits<double>::quiet_NaN()),
               mcs::support::ContractViolation);
}

}  // namespace
