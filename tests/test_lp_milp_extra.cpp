// Additional MILP solver coverage: mixed integer/continuous brute-force
// cross-checks, relative-gap termination, branch priorities, and diving
// heuristic behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/milp.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "support/rng.hpp"

namespace {

using mcs::lp::kInfinity;
using mcs::lp::LinExpr;
using mcs::lp::MilpOptions;
using mcs::lp::MilpResult;
using mcs::lp::Model;
using mcs::lp::Relation;
using mcs::lp::Sense;
using mcs::lp::solve_lp;
using mcs::lp::solve_milp;
using mcs::lp::SolveStatus;
using mcs::lp::VarId;

constexpr double kTol = 1e-5;

/// Enumerates all integer assignments of the integral variables, solving
/// the continuous completion LP for each; returns the best objective.
double brute_force_mixed(const Model& model, bool& feasible) {
  std::vector<std::size_t> int_vars;
  for (std::size_t i = 0; i < model.num_variables(); ++i) {
    if (model.variables()[i].type != mcs::lp::VarType::kContinuous) {
      int_vars.push_back(i);
    }
  }
  const bool maximize = model.objective_sense() == Sense::kMaximize;
  double best = maximize ? -kInfinity : kInfinity;
  feasible = false;

  std::vector<long> current;
  std::vector<std::pair<long, long>> domains;
  for (const std::size_t v : int_vars) {
    domains.emplace_back(
        static_cast<long>(std::ceil(model.variables()[v].lower)),
        static_cast<long>(std::floor(model.variables()[v].upper)));
    current.push_back(domains.back().first);
    if (domains.back().first > domains.back().second) return best;
  }
  for (;;) {
    Model fixed = model;
    for (std::size_t k = 0; k < int_vars.size(); ++k) {
      fixed.set_bounds(VarId{int_vars[k]},
                       static_cast<double>(current[k]),
                       static_cast<double>(current[k]));
    }
    const auto sol = solve_lp(fixed);
    if (sol.status == SolveStatus::kOptimal) {
      feasible = true;
      best = maximize ? std::max(best, sol.objective)
                      : std::min(best, sol.objective);
    }
    std::size_t pos = 0;
    while (pos < int_vars.size() && ++current[pos] > domains[pos].second) {
      current[pos] = domains[pos].first;
      ++pos;
    }
    if (pos == int_vars.size()) break;
    if (int_vars.empty()) break;
  }
  return best;
}

class MixedMilpVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MixedMilpVsBruteForce, MatchesEnumeration) {
  mcs::support::Rng rng(GetParam() * 3571 + 19);
  Model m;
  std::vector<VarId> ints, conts;
  const std::size_t ni = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  const std::size_t nc = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  for (std::size_t i = 0; i < ni; ++i) {
    ints.push_back(m.add_integer(0, static_cast<double>(rng.uniform_int(1, 3))));
  }
  for (std::size_t i = 0; i < nc; ++i) {
    conts.push_back(m.add_continuous(0, rng.uniform(1.0, 5.0)));
  }
  const std::size_t rows = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  for (std::size_t r = 0; r < rows; ++r) {
    LinExpr lhs;
    for (const VarId v : ints) lhs += rng.uniform(-2.0, 3.0) * LinExpr(v);
    for (const VarId v : conts) lhs += rng.uniform(-2.0, 3.0) * LinExpr(v);
    m.add_constraint(lhs, Relation::kLe, rng.uniform(0.0, 8.0));
  }
  LinExpr obj;
  for (const VarId v : ints) obj += rng.uniform(-3.0, 4.0) * LinExpr(v);
  for (const VarId v : conts) obj += rng.uniform(-3.0, 4.0) * LinExpr(v);
  m.set_objective(Sense::kMaximize, obj);

  bool feasible = false;
  const double expected = brute_force_mixed(m, feasible);
  const MilpResult r = solve_milp(m);
  if (!feasible) {
    EXPECT_EQ(r.status, SolveStatus::kInfeasible);
  } else {
    ASSERT_EQ(r.status, SolveStatus::kOptimal);
    EXPECT_NEAR(r.objective, expected, 1e-4);
    EXPECT_TRUE(m.is_feasible(r.values, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedMilpVsBruteForce,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST(MilpGap, RelativeGapTerminationIsSafe) {
  // Build a knapsack where gap termination will trigger, and verify the
  // dual bound dominates the true optimum.
  mcs::support::Rng rng(4);
  Model m;
  LinExpr weight, value;
  for (int i = 0; i < 16; ++i) {
    const VarId v = m.add_binary();
    weight += rng.uniform(1.0, 4.0) * LinExpr(v);
    value += rng.uniform(1.0, 7.0) * LinExpr(v);
  }
  m.add_constraint(weight, Relation::kLe, 18.0);
  m.set_objective(Sense::kMaximize, value);

  const MilpResult exact = solve_milp(m);
  ASSERT_EQ(exact.status, SolveStatus::kOptimal);
  ASSERT_FALSE(exact.gap_terminated);

  MilpOptions relaxed;
  relaxed.relative_gap = 0.10;
  const MilpResult approx = solve_milp(m, relaxed);
  ASSERT_EQ(approx.status, SolveStatus::kOptimal);
  // Dual bound must cover the true optimum; incumbent must be feasible and
  // within the gap of the bound.
  EXPECT_GE(approx.best_bound, exact.objective - kTol);
  EXPECT_LE(approx.objective, exact.objective + kTol);
  if (approx.gap_terminated) {
    EXPECT_LE(approx.best_bound - approx.objective,
              0.10 * std::max(1.0, std::abs(approx.objective)) + kTol);
  }
  EXPECT_TRUE(m.is_feasible(approx.values, 1e-5));
}

TEST(MilpBranchPriority, DoesNotChangeTheOptimum) {
  mcs::support::Rng rng(11);
  Model m;
  LinExpr weight, value;
  std::vector<VarId> vars;
  for (int i = 0; i < 12; ++i) {
    const VarId v = m.add_binary();
    vars.push_back(v);
    weight += rng.uniform(1.0, 4.0) * LinExpr(v);
    value += rng.uniform(1.0, 7.0) * LinExpr(v);
  }
  m.add_constraint(weight, Relation::kLe, 14.0);
  m.set_objective(Sense::kMaximize, value);

  const MilpResult plain = solve_milp(m);
  MilpOptions prio;
  prio.branch_priority.assign(m.num_variables(), 0);
  for (std::size_t i = 0; i < 6; ++i) {
    prio.branch_priority[vars[i].index] = 1;
  }
  const MilpResult prioritized = solve_milp(m, prio);
  ASSERT_EQ(plain.status, SolveStatus::kOptimal);
  ASSERT_EQ(prioritized.status, SolveStatus::kOptimal);
  EXPECT_NEAR(plain.objective, prioritized.objective, kTol);
}

TEST(MilpHeuristics, DivingFindsIncumbentOnFirstNode) {
  // A problem whose LP relaxation is fractional; with a single node the
  // dive must still deliver a feasible incumbent.
  mcs::support::Rng rng(21);
  Model m;
  LinExpr weight, value;
  for (int i = 0; i < 10; ++i) {
    const VarId v = m.add_binary();
    weight += rng.uniform(1.0, 4.0) * LinExpr(v);
    value += rng.uniform(1.0, 7.0) * LinExpr(v);
  }
  m.add_constraint(weight, Relation::kLe, 11.0);
  m.set_objective(Sense::kMaximize, value);

  MilpOptions one_node;
  one_node.max_nodes = 1;
  const MilpResult r = solve_milp(m, one_node);
  EXPECT_EQ(r.status, SolveStatus::kNodeLimit);
  EXPECT_TRUE(r.has_incumbent);
  EXPECT_TRUE(m.is_feasible(r.values, 1e-5));
  EXPECT_GE(r.best_bound, r.objective - kTol);
}

TEST(MilpEdge, AllVariablesFixed) {
  Model m;
  const VarId x = m.add_integer(3, 3, "x");
  m.set_objective(Sense::kMinimize, 2.0 * LinExpr(x));
  const MilpResult r = solve_milp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 6.0, kTol);
}

TEST(MilpEdge, EqualityConstrainedIntegers) {
  // x + y = 3 with 0 <= x,y <= 2 integer: optimum of max 2x + y is x=2,y=1.
  Model m;
  const VarId x = m.add_integer(0, 2, "x");
  const VarId y = m.add_integer(0, 2, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kEq, 3.0);
  m.set_objective(Sense::kMaximize, 2.0 * LinExpr(x) + LinExpr(y));
  const MilpResult r = solve_milp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, kTol);
  EXPECT_NEAR(r.values[x.index], 2.0, kTol);
}

}  // namespace
