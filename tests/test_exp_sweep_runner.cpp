// Determinism corpus for the sweep work-queue engine (DESIGN.md §5.13).
//
// The contract under test: the CSV emitted by a sweep is byte-identical
// across thread counts, shard layouts, kill/--resume boundaries, and the
// barrier-vs-queue execution modes.  Plus the crash-safety properties of
// the JSONL log: partial trailing lines are dropped, error units are
// isolated, retries are bounded, and merge refuses foreign logs.
#include "exp/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/sweep_log.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace {

namespace fs = std::filesystem;
using mcs::exp::aggregate_outcomes;
using mcs::exp::make_log_header;
using mcs::exp::merge_sweep_logs;
using mcs::exp::MetricSpec;
using mcs::exp::read_sweep_log;
using mcs::exp::run_sweep;
using mcs::exp::RunnerOptions;
using mcs::exp::SweepLogAppender;
using mcs::exp::SweepLogHeader;
using mcs::exp::SweepRunResult;
using mcs::exp::SweepSpec;
using mcs::exp::SweepUnit;
using mcs::exp::sweep_values_hash;
using mcs::exp::UnitOutcome;
using mcs::exp::write_sweep_csv;
using mcs::support::Rng;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A cheap deterministic sweep: metrics depend only on the unit RNG, so any
/// execution-order leak shows up as a byte diff in the CSV.
SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.name = "tiny_sweep";
  spec.title = "determinism corpus";
  spec.axis = "U";
  spec.values = {0.1, 0.4, 0.7};
  spec.slots_per_point = 8;
  spec.seed = 42;
  spec.metrics = {{"hits", MetricSpec::kRatio}, {"draws", MetricSpec::kCount}};
  spec.evaluate = [](const SweepUnit& unit, Rng& rng) {
    std::uint64_t draws = 0;
    // Consume a slot-dependent amount of the stream: a runner that shares
    // RNG state across units would desynchronize here.
    for (std::size_t i = 0; i <= unit.slot % 3; ++i) draws += rng() % 7;
    const std::uint64_t hit = (rng() % 100) < 50 ? 1u : 0u;
    return std::vector<std::uint64_t>{hit, draws};
  };
  return spec;
}

class SweepRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mcs_sweep_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string csv_of(const SweepSpec& spec, const SweepRunResult& run) {
    const fs::path path = dir_ / (spec.name + ".csv");
    write_sweep_csv(spec, aggregate_outcomes(spec, run.outcomes), path);
    return slurp(path);
  }

  fs::path dir_;
};

TEST_F(SweepRunnerTest, ByteIdenticalAcrossThreadCounts) {
  const SweepSpec spec = tiny_spec();
  RunnerOptions one;
  one.threads = 1;
  const std::string csv1 = csv_of(spec, run_sweep(spec, one));
  ASSERT_FALSE(csv1.empty());
  for (const std::size_t threads : {2u, 5u}) {
    RunnerOptions many;
    many.threads = threads;
    EXPECT_EQ(csv_of(spec, run_sweep(spec, many)), csv1)
        << "threads=" << threads;
  }
}

TEST_F(SweepRunnerTest, ByteIdenticalBarrierVsQueue) {
  const SweepSpec spec = tiny_spec();
  RunnerOptions queue;
  queue.threads = 3;
  RunnerOptions barrier = queue;
  barrier.barrier_per_point = true;
  EXPECT_EQ(csv_of(spec, run_sweep(spec, barrier)),
            csv_of(spec, run_sweep(spec, queue)));
}

TEST_F(SweepRunnerTest, ShardedRunsMergeToIdenticalBytes) {
  const SweepSpec spec = tiny_spec();
  RunnerOptions whole;
  whole.threads = 2;
  const std::string reference = csv_of(spec, run_sweep(spec, whole));

  constexpr std::size_t kShards = 4;
  std::vector<fs::path> logs;
  for (std::size_t k = 0; k < kShards; ++k) {
    RunnerOptions opt;
    opt.threads = 2;
    opt.shard_index = k;
    opt.shard_count = kShards;
    opt.log_path = dir_ / ("shard" + std::to_string(k) + ".jsonl");
    logs.push_back(opt.log_path);
    const SweepRunResult run = run_sweep(spec, opt);
    // Each shard only sees its own units.
    for (const UnitOutcome& u : run.outcomes) {
      EXPECT_EQ((u.point * spec.slots_per_point + u.slot) % kShards, k);
    }
  }

  const auto merged = merge_sweep_logs(spec, logs);
  EXPECT_EQ(merged.size(), spec.values.size() * spec.slots_per_point);
  const fs::path path = dir_ / "merged.csv";
  write_sweep_csv(spec, aggregate_outcomes(spec, merged), path);
  EXPECT_EQ(slurp(path), reference);
}

TEST_F(SweepRunnerTest, KillMidwayThenResumeMatchesUninterrupted) {
  const SweepSpec spec = tiny_spec();
  RunnerOptions uninterrupted;
  uninterrupted.threads = 2;
  uninterrupted.log_path = dir_ / "full.jsonl";
  const std::string reference = csv_of(spec, run_sweep(spec, uninterrupted));

  // "Crash" after 7 of 24 units, then resume with a different thread count.
  RunnerOptions crashed;
  crashed.threads = 1;
  crashed.log_path = dir_ / "resumed.jsonl";
  crashed.unit_limit = 7;
  const SweepRunResult partial = run_sweep(spec, crashed);
  EXPECT_EQ(partial.outcomes.size(), 7u);

  RunnerOptions resumed;
  resumed.threads = 3;
  resumed.log_path = crashed.log_path;
  resumed.resume = true;
  const SweepRunResult rest = run_sweep(spec, resumed);
  EXPECT_EQ(rest.resume_skips, 7u);
  EXPECT_EQ(rest.outcomes.size(),
            spec.values.size() * spec.slots_per_point);
  EXPECT_EQ(csv_of(spec, rest), reference);
}

TEST_F(SweepRunnerTest, ResumeWithPartialTrailingLineRecovers) {
  const SweepSpec spec = tiny_spec();
  RunnerOptions opt;
  opt.threads = 1;
  opt.log_path = dir_ / "torn.jsonl";
  opt.unit_limit = 5;
  run_sweep(spec, opt);

  // Emulate a write torn mid-line by SIGKILL: append half a record with no
  // trailing newline.
  {
    std::ofstream out(opt.log_path, std::ios::app | std::ios::binary);
    out << R"({"point":1,"slot":2,"status":"ok","atte)";
  }
  const auto contents = read_sweep_log(opt.log_path);
  EXPECT_TRUE(contents.truncated_tail);
  EXPECT_EQ(contents.units.size(), 5u);

  RunnerOptions resumed;
  resumed.threads = 2;
  resumed.log_path = opt.log_path;
  resumed.resume = true;
  const SweepRunResult run = run_sweep(spec, resumed);
  EXPECT_EQ(run.resume_skips, 5u);

  RunnerOptions uninterrupted;
  uninterrupted.threads = 1;
  EXPECT_EQ(csv_of(spec, run),
            csv_of(spec, run_sweep(spec, uninterrupted)));
}

TEST_F(SweepRunnerTest, ResumeRefusesLogFromDifferentSweep) {
  SweepSpec spec = tiny_spec();
  RunnerOptions opt;
  opt.threads = 1;
  opt.log_path = dir_ / "log.jsonl";
  run_sweep(spec, opt);

  SweepSpec other = tiny_spec();
  other.seed = 43;  // different fingerprint
  RunnerOptions resumed = opt;
  resumed.resume = true;
  EXPECT_THROW(run_sweep(other, resumed), std::runtime_error);
}

TEST_F(SweepRunnerTest, ErrorUnitIsIsolatedAndRecorded) {
  SweepSpec spec = tiny_spec();
  const auto inner = spec.evaluate;
  spec.evaluate = [inner](const SweepUnit& unit, Rng& rng) {
    if (unit.point == 1 && unit.slot == 3) {
      throw std::runtime_error("injected unit failure");
    }
    return inner(unit, rng);
  };
  RunnerOptions opt;
  opt.threads = 2;
  opt.log_path = dir_ / "err.jsonl";
  opt.max_attempts = 2;
  const SweepRunResult run = run_sweep(spec, opt);
  EXPECT_EQ(run.errors, 1u);
  EXPECT_EQ(run.retries, 1u);  // one failed attempt before the second
  EXPECT_EQ(run.outcomes.size(), spec.values.size() * spec.slots_per_point);

  const UnitOutcome* failed = nullptr;
  for (const UnitOutcome& u : run.outcomes) {
    if (!u.ok) {
      ASSERT_EQ(failed, nullptr);
      failed = &u;
    }
  }
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->point, 1u);
  EXPECT_EQ(failed->slot, 3u);
  EXPECT_EQ(failed->attempts, 2u);
  EXPECT_NE(failed->error.find("injected"), std::string::npos);

  // The error shows up in the CSV's errors column, and every other row is
  // untouched relative to a clean run.
  const auto rows = aggregate_outcomes(spec, run.outcomes);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1].errors, 1u);
  EXPECT_EQ(rows[1].ok_units, spec.slots_per_point - 1);
  EXPECT_EQ(rows[0].errors, 0u);
  EXPECT_EQ(rows[2].errors, 0u);
}

TEST_F(SweepRunnerTest, FlakyUnitSucceedsOnRetryWithIdenticalBytes) {
  SweepSpec spec = tiny_spec();
  const auto inner = spec.evaluate;
  auto first_attempt = std::make_shared<std::atomic<bool>>(true);
  spec.evaluate = [inner, first_attempt](const SweepUnit& unit, Rng& rng) {
    if (unit.point == 0 && unit.slot == 0 &&
        first_attempt->exchange(false)) {
      throw std::runtime_error("transient");
    }
    return inner(unit, rng);
  };
  RunnerOptions opt;
  opt.threads = 1;
  opt.max_attempts = 3;
  const SweepRunResult run = run_sweep(spec, opt);
  EXPECT_EQ(run.errors, 0u);
  EXPECT_EQ(run.retries, 1u);
  // The retry reseeds the unit RNG from scratch, so the output is exactly
  // the clean run's bytes.
  RunnerOptions clean;
  clean.threads = 1;
  EXPECT_EQ(csv_of(tiny_spec(), run),
            csv_of(tiny_spec(), run_sweep(tiny_spec(), clean)));
}

TEST_F(SweepRunnerTest, MergeRejectsForeignAndIncompleteLogs) {
  const SweepSpec spec = tiny_spec();

  // Incomplete: a single shard's log does not cover the sweep.
  RunnerOptions opt;
  opt.threads = 1;
  opt.shard_index = 0;
  opt.shard_count = 2;
  opt.log_path = dir_ / "half.jsonl";
  run_sweep(spec, opt);
  EXPECT_THROW(merge_sweep_logs(spec, {opt.log_path}), std::runtime_error);

  // Foreign: a log from a different sweep is refused outright.
  SweepSpec other = tiny_spec();
  other.values = {0.2, 0.5, 0.8};
  RunnerOptions full;
  full.threads = 1;
  full.log_path = dir_ / "foreign.jsonl";
  run_sweep(other, full);
  EXPECT_THROW(merge_sweep_logs(spec, {full.log_path}), std::runtime_error);

  // Headerless: an empty file has no fingerprint to verify.
  const fs::path empty = dir_ / "empty.jsonl";
  std::ofstream(empty).close();
  EXPECT_THROW(merge_sweep_logs(spec, {empty}), std::runtime_error);
}

TEST_F(SweepRunnerTest, LogRoundTripPreservesOutcomes) {
  SweepLogHeader header = make_log_header(tiny_spec(), 1, 4);
  const fs::path path = dir_ / "roundtrip.jsonl";
  UnitOutcome ok;
  ok.point = 2;
  ok.slot = 5;
  ok.ok = true;
  ok.attempts = 1;
  ok.seconds = 0.125;
  ok.metrics = {1, 13};
  UnitOutcome err;
  err.point = 0;
  err.slot = 1;
  err.ok = false;
  err.attempts = 2;
  err.seconds = 0.5;
  err.error = "quote \" comma , newline \n done";
  {
    SweepLogAppender appender(path, /*truncate=*/true);
    appender.append_header(header);
    appender.append(ok);
    appender.append(err);
  }
  const auto contents = read_sweep_log(path);
  ASSERT_TRUE(contents.header.has_value());
  EXPECT_TRUE(contents.header->same_sweep(header));
  EXPECT_EQ(contents.header->shard_index, 1u);
  EXPECT_EQ(contents.header->shard_count, 4u);
  EXPECT_FALSE(contents.truncated_tail);
  ASSERT_EQ(contents.units.size(), 2u);
  EXPECT_TRUE(contents.units[0].ok);
  EXPECT_EQ(contents.units[0].metrics, ok.metrics);
  EXPECT_DOUBLE_EQ(contents.units[0].seconds, 0.125);
  EXPECT_FALSE(contents.units[1].ok);
  EXPECT_EQ(contents.units[1].error, err.error);
  EXPECT_EQ(contents.units[1].attempts, 2u);
}

TEST_F(SweepRunnerTest, ValuesHashDiscriminates) {
  const SweepSpec a = tiny_spec();
  SweepSpec b = tiny_spec();
  b.values[1] += 1e-9;
  SweepSpec c = tiny_spec();
  c.slots_per_point += 1;
  EXPECT_NE(sweep_values_hash(a), sweep_values_hash(b));
  EXPECT_NE(sweep_values_hash(a), sweep_values_hash(c));
  EXPECT_EQ(sweep_values_hash(a), sweep_values_hash(tiny_spec()));
}

TEST_F(SweepRunnerTest, RejectsInvalidConfigurations) {
  const SweepSpec good = tiny_spec();
  RunnerOptions opt;
  opt.threads = 1;

  SweepSpec no_values = good;
  no_values.values.clear();
  EXPECT_THROW(run_sweep(no_values, opt), mcs::support::ContractViolation);

  SweepSpec no_eval = good;
  no_eval.evaluate = nullptr;
  EXPECT_THROW(run_sweep(no_eval, opt), mcs::support::ContractViolation);

  RunnerOptions bad_shard = opt;
  bad_shard.shard_index = 3;
  bad_shard.shard_count = 3;
  EXPECT_THROW(run_sweep(good, bad_shard), mcs::support::ContractViolation);

  RunnerOptions resume_without_log = opt;
  resume_without_log.resume = true;
  EXPECT_THROW(run_sweep(good, resume_without_log),
               mcs::support::ContractViolation);

  RunnerOptions zero_attempts = opt;
  zero_attempts.max_attempts = 0;
  EXPECT_THROW(run_sweep(good, zero_attempts),
               mcs::support::ContractViolation);
}

TEST_F(SweepRunnerTest, EvaluateMetricCountMismatchIsAnError) {
  SweepSpec spec = tiny_spec();
  spec.evaluate = [](const SweepUnit&, Rng&) {
    return std::vector<std::uint64_t>{1};  // two metrics declared
  };
  RunnerOptions opt;
  opt.threads = 1;
  opt.max_attempts = 1;
  const SweepRunResult run = run_sweep(spec, opt);
  EXPECT_EQ(run.errors, spec.values.size() * spec.slots_per_point);
}

}  // namespace
