// Malformed-input tests for the admission protocol (docs/SERVICE.md):
// every hostile or broken request line must produce a structured
// `{"ok":false,"error":{code,message}}` response — never a crash, never an
// exception out of handle_line, never silent acceptance.  The full suite
// runs under ASan/UBSan in CI (sanitize job), so "no crash" here also
// means "no finding".
#include <gtest/gtest.h>

#include <string>

#include "svc/json.hpp"
#include "svc/service.hpp"

using namespace mcs;
using svc::Json;

namespace {

/// Runs one line and requires a structured error with `code`.
void expect_error(svc::AdmissionService& service, const std::string& line,
                  const std::string& code) {
  const std::string response_line = service.handle_line(line);
  const Json response = svc::parse_json(response_line);  // always valid JSON
  const Json* ok = response.find("ok");
  ASSERT_NE(ok, nullptr) << response_line;
  ASSERT_FALSE(ok->as_bool()) << "accepted: " << line;
  const Json* error = response.find("error");
  ASSERT_NE(error, nullptr) << response_line;
  EXPECT_EQ(error->find("code")->as_string(), code)
      << "request: " << line << "\nresponse: " << response_line;
  EXPECT_FALSE(error->find("message")->as_string().empty()) << response_line;
}

std::string admit_with(const std::string& task_fields) {
  return "{\"op\":\"admit\",\"core\":\"c\",\"task\":{" + task_fields + "}}";
}

const char* kValidTask =
    "\"name\":\"a\",\"exec\":100,\"copy_in\":10,\"copy_out\":10,"
    "\"period\":1000,\"deadline\":1000,\"prio\":0";

}  // namespace

TEST(SvcProtocol, TruncatedFramesAreParseErrors) {
  svc::AdmissionService service;
  expect_error(service, "{\"op\":\"anal", "parse_error");
  expect_error(service, "{\"op\":\"analyze\",", "parse_error");
  expect_error(service, "{\"op\":\"analyze\"}trailing", "parse_error");
  expect_error(service, "", "parse_error");
  expect_error(service, "\x01\x02\x03", "parse_error");
  // The service stays usable after garbage.
  const Json response =
      svc::parse_json(service.handle_line("{\"op\":\"status\"}"));
  EXPECT_TRUE(response.find("ok")->as_bool());
}

TEST(SvcProtocol, NumericEdgeCasesInTicks) {
  svc::AdmissionService service;
  // NaN / Infinity are not JSON at all.
  expect_error(service, admit_with("\"name\":\"a\",\"exec\":NaN"),
               "parse_error");
  expect_error(service, admit_with("\"name\":\"a\",\"exec\":Infinity"),
               "parse_error");
  // Overflow past int64 (and past double precision) is rejected, not
  // silently truncated.
  expect_error(service,
               admit_with("\"name\":\"a\",\"exec\":9223372036854775808,"
                          "\"copy_in\":1,\"copy_out\":1,\"period\":10,"
                          "\"deadline\":10,\"prio\":0"),
               "parse_error");
  expect_error(service,
               admit_with("\"name\":\"a\",\"exec\":1e999,\"copy_in\":1,"
                          "\"copy_out\":1,\"period\":10,\"deadline\":10,"
                          "\"prio\":0"),
               "parse_error");
  // Fractional and string-typed ticks are structured bad_request errors.
  expect_error(service,
               admit_with("\"name\":\"a\",\"exec\":1.5,\"copy_in\":1,"
                          "\"copy_out\":1,\"period\":10,\"deadline\":10,"
                          "\"prio\":0"),
               "bad_request");
  expect_error(service,
               admit_with("\"name\":\"a\",\"exec\":\"100\",\"copy_in\":1,"
                          "\"copy_out\":1,\"period\":10,\"deadline\":10,"
                          "\"prio\":0"),
               "bad_request");
  // Values that parse but violate task invariants (C <= 0) are rejected
  // by TaskSet validation as invalid_task.
  expect_error(service,
               admit_with("\"name\":\"a\",\"exec\":-5,\"copy_in\":1,"
                          "\"copy_out\":1,\"period\":10,\"deadline\":10,"
                          "\"prio\":0"),
               "invalid_task");
  expect_error(service,
               admit_with("\"name\":\"a\",\"exec\":0,\"copy_in\":1,"
                          "\"copy_out\":1,\"period\":10,\"deadline\":10,"
                          "\"prio\":0"),
               "invalid_task");
  // Priority outside the 32-bit Priority range.
  expect_error(service,
               admit_with("\"name\":\"a\",\"exec\":5,\"copy_in\":1,"
                          "\"copy_out\":1,\"period\":10,\"deadline\":10,"
                          "\"prio\":4294967296"),
               "bad_request");
}

TEST(SvcProtocol, DuplicateTasksAndPriorities) {
  svc::AdmissionService service;
  const Json first =
      svc::parse_json(service.handle_line(admit_with(kValidTask)));
  ASSERT_TRUE(first.find("ok")->as_bool());
  ASSERT_TRUE(first.find("committed")->as_bool());
  // Same name again.
  expect_error(service, admit_with(kValidTask), "duplicate_task");
  // New name, same priority.
  expect_error(service,
               admit_with("\"name\":\"b\",\"exec\":100,\"copy_in\":10,"
                          "\"copy_out\":10,\"period\":1000,"
                          "\"deadline\":1000,\"prio\":0"),
               "duplicate_priority");
  // Duplicate *JSON keys* inside one object are a parse error.
  expect_error(service,
               admit_with("\"name\":\"c\",\"name\":\"d\",\"exec\":100,"
                          "\"copy_in\":10,\"copy_out\":10,\"period\":1000,"
                          "\"deadline\":1000,\"prio\":1"),
               "parse_error");
}

TEST(SvcProtocol, StructuralViolations) {
  svc::AdmissionService service;
  expect_error(service, "[1,2,3]", "bad_request");       // not an object
  expect_error(service, "\"analyze\"", "bad_request");   // not an object
  expect_error(service, "{}", "bad_request");            // missing op
  expect_error(service, "{\"op\":42}", "bad_request");   // op not a string
  expect_error(service, "{\"op\":\"frobnicate\"}", "unknown_op");
  expect_error(service, "{\"op\":\"analyze\",\"core\":\"\"}", "bad_request");
  expect_error(service, "{\"op\":\"analyze\",\"core\":7}", "bad_request");
  expect_error(service, "{\"op\":\"analyze\",\"mode\":\"fastest\"}",
               "bad_request");
  expect_error(service, "{\"op\":\"admit\",\"core\":\"c\"}", "bad_request");
  expect_error(service, "{\"op\":\"admit\",\"core\":\"c\",\"task\":[]}",
               "bad_request");
  expect_error(service,
               "{\"op\":\"admit\",\"core\":\"c\",\"task\":{\"exec\":1}}",
               "bad_request");  // missing name
  expect_error(service, admit_with("\"name\":\"\",\"exec\":1"),
               "bad_request");  // empty name
}

TEST(SvcProtocol, UnknownTaskOperations) {
  svc::AdmissionService service;
  expect_error(service, "{\"op\":\"remove\",\"core\":\"c\",\"name\":\"x\"}",
               "unknown_task");
  expect_error(service,
               "{\"op\":\"mark_ls\",\"core\":\"c\",\"name\":\"x\","
               "\"ls\":true}",
               "unknown_task");
  expect_error(service, "{\"op\":\"remove\",\"core\":\"c\"}", "bad_request");
  expect_error(service,
               "{\"op\":\"mark_ls\",\"core\":\"c\",\"name\":\"x\"}",
               "bad_request");  // missing ls
  // mark_ls with a non-boolean ls.
  svc::parse_json(service.handle_line(admit_with(kValidTask)));
  expect_error(service,
               "{\"op\":\"mark_ls\",\"core\":\"c\",\"name\":\"a\","
               "\"ls\":\"yes\"}",
               "bad_request");
}

TEST(SvcProtocol, DepthBombIsAParseError) {
  svc::AdmissionService service;
  std::string bomb = "{\"op\":";
  for (int i = 0; i < 100; ++i) bomb += "[";
  for (int i = 0; i < 100; ++i) bomb += "]";
  bomb += "}";
  expect_error(service, bomb, "parse_error");
}

TEST(SvcProtocol, OversizeRequestsAreRejectedBeforeParsing) {
  svc::ServiceConfig config;
  config.max_request_bytes = 128;
  svc::AdmissionService service(std::move(config));
  std::string big = "{\"op\":\"analyze\",\"core\":\"";
  big.append(200, 'x');
  big += "\"}";
  expect_error(service, big, "request_too_large");
  // A small request still works afterwards.
  EXPECT_TRUE(svc::parse_json(service.handle_line("{\"op\":\"status\"}"))
                  .find("ok")->as_bool());
}

TEST(SvcProtocol, IdIsEchoedOnSuccessAndError) {
  svc::AdmissionService service;
  const Json success = svc::parse_json(
      service.handle_line("{\"id\":7,\"op\":\"status\"}"));
  ASSERT_NE(success.find("id"), nullptr);
  EXPECT_EQ(success.find("id")->as_int64(), 7);

  const Json error = svc::parse_json(
      service.handle_line("{\"id\":\"req-9\",\"op\":\"frobnicate\"}"));
  ASSERT_NE(error.find("id"), nullptr);
  EXPECT_EQ(error.find("id")->as_string(), "req-9");

  // No id in the request -> no id key in the response.
  const Json anonymous =
      svc::parse_json(service.handle_line("{\"op\":\"status\"}"));
  EXPECT_EQ(anonymous.find("id"), nullptr);
}

TEST(SvcProtocol, BadBudgetTypes) {
  svc::AdmissionService service;
  expect_error(service,
               "{\"op\":\"analyze\",\"core\":\"c\",\"budget_ms\":\"fast\"}",
               "bad_request");
  expect_error(service,
               "{\"op\":\"analyze\",\"core\":\"c\",\"budget_ms\":true}",
               "bad_request");
}

TEST(SvcProtocol, ErrorsNeverMutateState) {
  svc::AdmissionService service;
  ASSERT_TRUE(svc::parse_json(service.handle_line(admit_with(kValidTask)))
                  .find("ok")->as_bool());
  // A burst of malformed requests...
  expect_error(service, admit_with(kValidTask), "duplicate_task");
  expect_error(service, "{\"op\":\"remove\",\"core\":\"c\",\"name\":\"z\"}",
               "unknown_task");
  expect_error(service, "{\"op\":\"anal", "parse_error");
  // ...leaves the admitted membership untouched.
  const Json verdict = svc::parse_json(
      service.handle_line("{\"op\":\"analyze\",\"core\":\"c\"}"));
  ASSERT_TRUE(verdict.find("ok")->as_bool());
  EXPECT_EQ(verdict.find("verdict")->find("tasks")->as_array().size(), 1u);
  EXPECT_EQ(service.stats().failed, 3u);
}
