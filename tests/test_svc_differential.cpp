// Differential fuzz for the admission-control service (docs/SERVICE.md).
//
// Drives an AdmissionService through long randomized admit / remove /
// mark_ls / analyze sequences and, for every verdict it answers — fresh,
// served from the LRU cache, or served right after a cache eviction —
// recomputes the same membership on a fresh single-shot AnalysisEngine and
// requires the two to match exactly: schedulability, greedy rounds, the LS
// marking, and every per-task WCRT bound.  The cache capacity is kept tiny
// (4 entries) so eviction boundaries are crossed constantly, and requests
// alternate between two cores so per-core engine sessions interleave.
//
// Op count scales with MCS_FUZZ_OPS (default 300 per seed; the admitted
// sets grow with the op count, so cost is super-linear) for soak runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/budget.hpp"
#include "analysis/engine.hpp"
#include "rt/task.hpp"
#include "rt/types.hpp"
#include "support/rng.hpp"
#include "svc/fingerprint.hpp"
#include "svc/json.hpp"
#include "svc/service.hpp"

using namespace mcs;
using svc::Json;

namespace {

struct RefVerdict {
  bool schedulable = false;
  int rounds = 0;
  std::vector<std::string> names;
  std::vector<rt::Time> wcrt;  // rt::kTimeMax = diverged (JSON null)
  std::vector<bool> ls;
};

/// Reference semantics: one full analysis on a *fresh* engine with an
/// unlimited budget, shaped in canonical order — exactly what the service
/// promises every non-degraded response is equivalent to.
RefVerdict reference_verdict(const rt::TaskSet& tasks, svc::AnalysisMode mode) {
  analysis::AnalysisEngine engine;
  analysis::AnalysisOptions options;
  const analysis::SolveBudget unlimited;
  options.budget = &unlimited;
  RefVerdict ref;
  const std::vector<rt::TaskIndex> order = svc::canonical_order(tasks);
  switch (mode) {
    case svc::AnalysisMode::kGreedy: {
      const analysis::ProposedResult r = engine.analyze_proposed(tasks, options);
      ref.schedulable = r.schedulable;
      ref.rounds = static_cast<int>(r.rounds);
      for (const rt::TaskIndex i : order) {
        ref.names.push_back(tasks[i].name);
        ref.wcrt.push_back(r.per_task[i].wcrt);
        ref.ls.push_back(r.ls_flags[i]);
      }
      break;
    }
    case svc::AnalysisMode::kMarked: {
      const analysis::WpResult r = engine.analyze_marked(tasks, options);
      ref.schedulable = r.schedulable;
      for (const rt::TaskIndex i : order) {
        ref.names.push_back(tasks[i].name);
        ref.wcrt.push_back(r.per_task[i].wcrt);
        ref.ls.push_back(tasks[i].latency_sensitive);
      }
      break;
    }
    case svc::AnalysisMode::kWp: {
      const analysis::WpResult r = engine.analyze_wp(tasks, options);
      ref.schedulable = r.schedulable;
      for (const rt::TaskIndex i : order) {
        ref.names.push_back(tasks[i].name);
        ref.wcrt.push_back(r.per_task[i].wcrt);
        ref.ls.push_back(false);
      }
      break;
    }
  }
  return ref;
}

/// Asserts that a service response's verdict matches the reference bit for
/// bit (and was not degraded — these requests carry no budget).
void expect_verdict_matches(const Json& response, const RefVerdict& ref,
                            const rt::TaskSet& tasks, svc::AnalysisMode mode,
                            const std::string& context) {
  const Json* verdict = response.find("verdict");
  ASSERT_NE(verdict, nullptr) << context;
  EXPECT_FALSE(verdict->find("degraded")->as_bool()) << context;
  EXPECT_EQ(verdict->find("schedulable")->as_bool(), ref.schedulable)
      << context;
  if (mode == svc::AnalysisMode::kGreedy) {
    EXPECT_EQ(verdict->find("rounds")->as_int64(), ref.rounds) << context;
  }
  // The fingerprint in the response must be the canonical one for the
  // analyzed membership.
  std::ostringstream fp_hex;
  fp_hex << std::hex;
  fp_hex.width(16);
  fp_hex.fill('0');
  fp_hex << svc::fingerprint(tasks, mode);
  EXPECT_EQ(verdict->find("fingerprint")->as_string(), fp_hex.str()) << context;

  const Json::Array& per_task = verdict->find("tasks")->as_array();
  ASSERT_EQ(per_task.size(), ref.names.size()) << context;
  for (std::size_t i = 0; i < per_task.size(); ++i) {
    const std::string task_ctx =
        context + " task#" + std::to_string(i) + " (" + ref.names[i] + ")";
    EXPECT_EQ(per_task[i].find("name")->as_string(), ref.names[i]) << task_ctx;
    EXPECT_EQ(per_task[i].find("ls")->as_bool(), ref.ls[i]) << task_ctx;
    const Json* wcrt = per_task[i].find("wcrt");
    ASSERT_NE(wcrt, nullptr) << task_ctx;
    if (ref.wcrt[i] == rt::kTimeMax) {
      EXPECT_TRUE(wcrt->is_null()) << task_ctx;
    } else {
      ASSERT_FALSE(wcrt->is_null()) << task_ctx;
      EXPECT_EQ(wcrt->as_int64(), ref.wcrt[i]) << task_ctx;
    }
  }
}

std::string task_json(const rt::Task& t) {
  std::ostringstream out;
  out << "{\"name\":\"" << t.name << "\",\"exec\":" << t.exec
      << ",\"copy_in\":" << t.copy_in << ",\"copy_out\":" << t.copy_out
      << ",\"period\":" << t.period << ",\"deadline\":" << t.deadline
      << ",\"prio\":" << t.priority
      << (t.latency_sensitive ? ",\"ls\":true}" : "}");
  return out.str();
}

const char* mode_name(svc::AnalysisMode mode) { return svc::to_string(mode); }

/// One fuzz run: `ops` random operations on `service`, differential-checked
/// against fresh engines throughout.  Shadow state mirrors the service's
/// per-core memberships; any divergence between shadow and service verdicts
/// is a bug in the cache, the engine-session reuse, or the commit logic.
void fuzz_run(svc::AdmissionService& service, std::uint64_t seed, int ops) {
  support::Rng rng(seed);
  const std::vector<std::string> cores = {"c0", "c1"};
  std::map<std::string, std::vector<rt::Task>> shadow;
  int next_task_id = 0;

  for (int op_index = 0; op_index < ops; ++op_index) {
    const std::string& core = cores[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cores.size()) - 1))];
    std::vector<rt::Task>& tasks = shadow[core];
    const std::string context = "seed=" + std::to_string(seed) +
                                " op#" + std::to_string(op_index) +
                                " core=" + core;

    // Pick an operation: grow small sets, shrink/query larger ones.
    enum { kAdmit, kRemove, kMarkLs, kAnalyze } kind;
    const double grow = tasks.size() >= 4 ? 0.05 : 0.45;
    const double r = rng.uniform01();
    if (r < grow) {
      kind = kAdmit;
    } else if (tasks.empty()) {
      kind = kAnalyze;
    } else if (r < grow + 0.20) {
      kind = kRemove;
    } else if (r < grow + 0.45) {
      kind = kMarkLs;
    } else {
      kind = kAnalyze;
    }

    if (kind == kAdmit) {
      rt::Task t;
      t.name = "t" + std::to_string(next_task_id++);
      t.exec = rng.uniform_int(50, 400);
      t.copy_in = rng.uniform_int(10, 120);
      t.copy_out = rng.uniform_int(10, 120);
      t.period = rng.uniform_int(900, 6000);
      t.deadline = t.period - rng.uniform_int(0, t.period / 4);
      std::set<rt::Priority> taken;
      for (const rt::Task& existing : tasks) taken.insert(existing.priority);
      do {
        t.priority = static_cast<rt::Priority>(rng.uniform_int(0, 31));
      } while (taken.count(t.priority) != 0);

      std::vector<rt::Task> candidate = tasks;
      candidate.push_back(t);
      const rt::TaskSet candidate_set(candidate);
      const RefVerdict ref =
          reference_verdict(candidate_set, svc::AnalysisMode::kGreedy);

      const std::string response_line = service.handle_line(
          "{\"op\":\"admit\",\"core\":\"" + core +
          "\",\"task\":" + task_json(t) + "}");
      const Json response = svc::parse_json(response_line);
      ASSERT_TRUE(response.find("ok")->as_bool()) << context << "\n"
                                                  << response_line;
      expect_verdict_matches(response, ref, candidate_set,
                             svc::AnalysisMode::kGreedy, context + " admit");
      const bool committed = response.find("committed")->as_bool();
      EXPECT_EQ(committed, ref.schedulable) << context;
      if (committed) tasks = std::move(candidate);
    } else if (kind == kRemove) {
      const std::size_t victim = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(tasks.size()) - 1));
      const std::string name = tasks[victim].name;
      const std::string response_line = service.handle_line(
          "{\"op\":\"remove\",\"core\":\"" + core + "\",\"name\":\"" + name +
          "\"}");
      const Json response = svc::parse_json(response_line);
      ASSERT_TRUE(response.find("ok")->as_bool()) << context << "\n"
                                                  << response_line;
      tasks.erase(tasks.begin() + static_cast<std::ptrdiff_t>(victim));
      EXPECT_EQ(response.find("tasks")->as_int64(),
                static_cast<std::int64_t>(tasks.size()))
          << context;
    } else if (kind == kMarkLs) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(tasks.size()) - 1));
      const bool want_ls = !tasks[pick].latency_sensitive;
      std::vector<rt::Task> candidate = tasks;
      candidate[pick].latency_sensitive = want_ls;
      const rt::TaskSet candidate_set(candidate);
      const RefVerdict ref =
          reference_verdict(candidate_set, svc::AnalysisMode::kMarked);

      const std::string response_line = service.handle_line(
          "{\"op\":\"mark_ls\",\"core\":\"" + core + "\",\"name\":\"" +
          tasks[pick].name + "\",\"ls\":" + (want_ls ? "true" : "false") +
          "}");
      const Json response = svc::parse_json(response_line);
      ASSERT_TRUE(response.find("ok")->as_bool()) << context << "\n"
                                                  << response_line;
      expect_verdict_matches(response, ref, candidate_set,
                             svc::AnalysisMode::kMarked, context + " mark_ls");
      const bool committed = response.find("committed")->as_bool();
      EXPECT_EQ(committed, ref.schedulable) << context;
      if (committed) tasks = std::move(candidate);
    } else {  // kAnalyze
      static const svc::AnalysisMode kModes[] = {svc::AnalysisMode::kGreedy,
                                                 svc::AnalysisMode::kMarked,
                                                 svc::AnalysisMode::kWp};
      const svc::AnalysisMode mode =
          kModes[static_cast<std::size_t>(rng.uniform_int(0, 2))];
      const rt::TaskSet set(tasks);
      const RefVerdict ref = reference_verdict(set, mode);
      const std::string response_line = service.handle_line(
          "{\"op\":\"analyze\",\"core\":\"" + core + "\",\"mode\":\"" +
          mode_name(mode) + "\"}");
      const Json response = svc::parse_json(response_line);
      ASSERT_TRUE(response.find("ok")->as_bool()) << context << "\n"
                                                  << response_line;
      expect_verdict_matches(response, ref, set, mode,
                             context + " analyze/" + mode_name(mode));
    }
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      return;  // first divergence carries all the signal; stop the run
    }
  }
}

int ops_per_seed() {
  if (const char* env = std::getenv("MCS_FUZZ_OPS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 300;
}

}  // namespace

TEST(SvcDifferential, RandomizedSequencesMatchFreshEngine) {
  // Tiny cache so eviction boundaries are crossed constantly: two cores
  // times three modes times churning memberships >> 4 entries.
  svc::ServiceConfig config;
  config.cache_capacity = 4;
  svc::AdmissionService service(std::move(config));
  fuzz_run(service, /*seed=*/1u, ops_per_seed());

  // The run must actually have exercised the cache paths it claims to
  // differential-test.
  const svc::ServiceStats stats = service.stats();
  EXPECT_GT(stats.cache_hits + stats.cache_misses, 0u);
  EXPECT_GT(stats.cache_evictions, 0u)
      << "fuzz never crossed an eviction boundary; shrink the cache";
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.degraded_verdicts, 0u);
}

TEST(SvcDifferential, SecondSeedWithCachingDisabled) {
  // capacity 0: every verdict is a fresh engine-session analysis, so this
  // seed differential-tests the per-core session reuse in isolation.
  svc::ServiceConfig config;
  config.cache_capacity = 0;
  svc::AdmissionService service(std::move(config));
  fuzz_run(service, /*seed=*/2u, ops_per_seed());
  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_entries, 0u);
}

TEST(SvcDifferential, ReanalysisAfterRemoveMatchesFreshEngine) {
  // Deterministic regression shape for the cache-invalidation hazard:
  // analyze a membership, remove a task, re-analyze, re-admit the same
  // task, re-analyze.  The final verdict must come from (or equal) the
  // original analysis even though the engine session was re-pointed at a
  // different membership in between.
  svc::ServiceConfig config;
  config.cache_capacity = 8;
  svc::AdmissionService service(std::move(config));

  const char* admit_a =
      "{\"op\":\"admit\",\"core\":\"c\",\"task\":{\"name\":\"a\",\"exec\":300,"
      "\"copy_in\":60,\"copy_out\":60,\"period\":2000,\"deadline\":1700,"
      "\"prio\":0}}";
  const char* admit_b =
      "{\"op\":\"admit\",\"core\":\"c\",\"task\":{\"name\":\"b\",\"exec\":900,"
      "\"copy_in\":350,\"copy_out\":350,\"period\":5000,\"deadline\":5000,"
      "\"prio\":1}}";
  ASSERT_TRUE(svc::parse_json(service.handle_line(admit_a))
                  .find("ok")->as_bool());
  ASSERT_TRUE(svc::parse_json(service.handle_line(admit_b))
                  .find("ok")->as_bool());

  const std::string first =
      service.handle_line("{\"op\":\"analyze\",\"core\":\"c\"}");
  ASSERT_TRUE(svc::parse_json(first).find("ok")->as_bool());

  ASSERT_TRUE(svc::parse_json(service.handle_line(
                  "{\"op\":\"remove\",\"core\":\"c\",\"name\":\"b\"}"))
                  .find("ok")->as_bool());
  ASSERT_TRUE(svc::parse_json(
                  service.handle_line("{\"op\":\"analyze\",\"core\":\"c\"}"))
                  .find("ok")->as_bool());
  ASSERT_TRUE(svc::parse_json(service.handle_line(admit_b))
                  .find("ok")->as_bool());

  const std::string again =
      service.handle_line("{\"op\":\"analyze\",\"core\":\"c\"}");
  const Json first_json = svc::parse_json(first);
  const Json again_json = svc::parse_json(again);
  ASSERT_TRUE(again_json.find("ok")->as_bool());
  // Same membership -> same fingerprint and identical verdict content; only
  // the `cached` flag may differ.
  EXPECT_EQ(first_json.find("verdict")->find("fingerprint")->as_string(),
            again_json.find("verdict")->find("fingerprint")->as_string());
  EXPECT_EQ(first_json.find("verdict")->find("tasks")->dump(),
            again_json.find("verdict")->find("tasks")->dump());
  EXPECT_EQ(first_json.find("verdict")->find("schedulable")->as_bool(),
            again_json.find("verdict")->find("schedulable")->as_bool());
}
