#include "support/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace {

using mcs::support::CsvWriter;

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("mcs_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(CsvTest, WritesPlainRows) {
  {
    CsvWriter csv(path_);
    csv.write_row({"a", "b", "c"});
    csv.cell("x").cell(std::int64_t{42}).cell(0.5);
    csv.end_row();
  }
  EXPECT_EQ(slurp(path_), "a,b,c\nx,42,0.5\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_);
    csv.write_row({"has,comma", "has\"quote", "has\nnewline", "plain"});
  }
  EXPECT_EQ(slurp(path_),
            "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n");
}

TEST_F(CsvTest, DoubleRoundTripPrecision) {
  {
    CsvWriter csv(path_);
    csv.cell(0.1 + 0.2);
    csv.end_row();
  }
  const std::string content = slurp(path_);
  const double parsed = std::stod(content);
  EXPECT_EQ(parsed, 0.1 + 0.2);
}

TEST(CsvEscape, Idempotent) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape(""), "");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvWriterErrors, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"),
               std::runtime_error);
}

}  // namespace
