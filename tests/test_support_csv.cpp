#include "support/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace {

using mcs::support::CsvWriter;

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("mcs_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(CsvTest, WritesPlainRows) {
  {
    CsvWriter csv(path_);
    csv.write_row({"a", "b", "c"});
    csv.cell("x").cell(std::int64_t{42}).cell(0.5);
    csv.end_row();
  }
  EXPECT_EQ(slurp(path_), "a,b,c\nx,42,0.5\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_);
    csv.write_row({"has,comma", "has\"quote", "has\nnewline", "plain"});
  }
  EXPECT_EQ(slurp(path_),
            "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n");
}

TEST_F(CsvTest, DoubleRoundTripPrecision) {
  {
    CsvWriter csv(path_);
    csv.cell(0.1 + 0.2);
    csv.end_row();
  }
  const std::string content = slurp(path_);
  const double parsed = std::stod(content);
  EXPECT_EQ(parsed, 0.1 + 0.2);
}

TEST(CsvEscape, Idempotent) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape(""), "");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvWriterErrors, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"),
               std::runtime_error);
}

TEST_F(CsvTest, WriterReaderRoundTripsAwkwardFields) {
  // Every escaping edge case the writer can produce must come back
  // verbatim through parse_csv — the shard-merge path depends on it.
  const std::vector<std::vector<std::string>> rows = {
      {"plain", "has,comma", "has\"quote"},
      {"has\nnewline", "\"fully quoted\"", ""},
      {",", "\"\"", "a,b\"c\nd"},
  };
  {
    CsvWriter csv(path_);
    for (const auto& row : rows) csv.write_row(row);
  }
  EXPECT_EQ(mcs::support::read_csv_file(path_), rows);
}

TEST(CsvParse, HandlesCrlfAndTrailingNewline) {
  const auto rows = mcs::support::parse_csv("a,b\r\nc,d\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
  EXPECT_TRUE(mcs::support::parse_csv("").empty());
}

TEST(CsvParse, RejectsMalformedQuoting) {
  EXPECT_THROW(mcs::support::parse_csv("a,\"unterminated\n"),
               std::runtime_error);
  EXPECT_THROW(mcs::support::parse_csv("a,str\"ay,b\n"), std::runtime_error);
}

TEST_F(CsvTest, CloseIsAtomicTempThenRename) {
  // While the writer is open only the .tmp sidecar exists; after close()
  // the final path exists and the sidecar is gone.
  const auto tmp = path_.string() + ".tmp";
  {
    CsvWriter csv(path_);
    csv.write_row({"x"});
    EXPECT_FALSE(std::filesystem::exists(path_));
    EXPECT_TRUE(std::filesystem::exists(tmp));
    csv.close();
    EXPECT_TRUE(std::filesystem::exists(path_));
    EXPECT_FALSE(std::filesystem::exists(tmp));
  }
  EXPECT_EQ(slurp(path_), "x\n");
}

TEST_F(CsvTest, AbandonedWriterPreservesPreviousFile) {
  // An exception mid-write must leave the previous complete file intact.
  {
    CsvWriter csv(path_);
    csv.write_row({"old"});
  }
  try {
    CsvWriter csv(path_);
    csv.write_row({"new"});
    throw std::runtime_error("simulated failure");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(slurp(path_), "old\n");
  EXPECT_FALSE(std::filesystem::exists(path_.string() + ".tmp"));
}

}  // namespace
