#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "sim/engine.hpp"
#include "sim/job_source.hpp"
#include "support/rng.hpp"

namespace {

using mcs::rt::Task;
using mcs::rt::TaskSet;
using mcs::rt::Time;
using mcs::sim::compute_metrics;
using mcs::sim::JobId;
using mcs::sim::Protocol;
using mcs::sim::simulate;
using mcs::sim::TraceMetrics;

Task make_task(std::string name, Time exec, Time mem, Time period,
               Time deadline, mcs::rt::Priority priority, bool ls = false) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = mem;
  t.copy_out = mem;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  t.latency_sensitive = ls;
  return t;
}

TEST(Metrics, SingleJobAccounting) {
  const TaskSet tasks({make_task("a", 5, 2, 100, 100, 0)});
  const auto trace =
      simulate(tasks, Protocol::kProposed, {{JobId{0, 0}, 0}});
  const TraceMetrics m = compute_metrics(tasks, trace);
  // I_0 copy-in [0,2), I_1 exec [2,7), I_2 copy-out [7,9): span 9.
  EXPECT_EQ(m.span, 9);
  EXPECT_EQ(m.cpu_busy, 5);
  EXPECT_EQ(m.dma_busy, 4);
  // Nothing overlapped: copy-in ran alone, copy-out ran alone.
  EXPECT_EQ(m.dma_hidden, 0);
  EXPECT_EQ(m.dma_exposed, 4);
  EXPECT_EQ(m.jobs_completed, 1u);
  EXPECT_EQ(m.deadline_misses, 0u);
  EXPECT_DOUBLE_EQ(m.hiding_ratio(), 0.0);
}

TEST(Metrics, PipelinedJobsHideTransfers) {
  const TaskSet tasks({make_task("a", 5, 2, 100, 100, 0),
                       make_task("b", 5, 2, 100, 100, 1)});
  const auto trace = simulate(tasks, Protocol::kProposed,
                              {{JobId{0, 0}, 0}, {JobId{1, 0}, 0}});
  const TraceMetrics m = compute_metrics(tasks, trace);
  // b's copy-in overlaps a's execution, a's copy-out overlaps b's.
  EXPECT_GT(m.dma_hidden, 0);
  EXPECT_GT(m.hiding_ratio(), 0.0);
  EXPECT_EQ(m.jobs_completed, 2u);
}

TEST(Metrics, UrgentExecutionCounted) {
  const TaskSet tasks({make_task("ls", 3, 2, 100, 50, 0, true),
                       make_task("lo", 5, 6, 100, 100, 1)});
  const auto trace = simulate(tasks, Protocol::kProposed,
                              {{JobId{1, 0}, 0}, {JobId{0, 0}, 3}});
  const TraceMetrics m = compute_metrics(tasks, trace);
  EXPECT_EQ(m.urgent_promotions, 1u);
  EXPECT_GE(m.cancellations, 1u);
  EXPECT_EQ(m.cpu_copy_in, 2);
}

TEST(Metrics, UtilizationRatiosBounded) {
  mcs::support::Rng rng(5);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 4;
  cfg.utilization = 0.4;
  cfg.gamma = 0.3;
  const TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
  const auto releases = mcs::sim::synchronous_periodic_releases(
      tasks, 300 * mcs::rt::kTicksPerUnit);
  for (const auto protocol :
       {Protocol::kProposed, Protocol::kWasilyPellizzoni,
        Protocol::kNonPreemptive}) {
    const auto trace = simulate(tasks, protocol, releases);
    const TraceMetrics m = compute_metrics(tasks, trace);
    EXPECT_GE(m.cpu_utilization(), 0.0);
    EXPECT_LE(m.cpu_utilization(), 1.0 + 1e-9);
    EXPECT_GE(m.hiding_ratio(), 0.0);
    EXPECT_LE(m.hiding_ratio(), 1.0 + 1e-9);
    EXPECT_EQ(m.dma_hidden + m.dma_exposed, m.dma_busy);
  }
}

TEST(Metrics, EmptyTraceIsZero) {
  const TaskSet tasks({make_task("a", 5, 2, 100, 100, 0)});
  const auto trace = simulate(tasks, Protocol::kProposed, {});
  const TraceMetrics m = compute_metrics(tasks, trace);
  EXPECT_EQ(m.span, 0);
  EXPECT_EQ(m.jobs_completed, 0u);
  EXPECT_DOUBLE_EQ(m.cpu_utilization(), 0.0);
}

TEST(Metrics, NpsHidesNothing) {
  // Under NPS the CPU performs the transfers itself: they show up as CPU
  // work, and the DMA columns stay zero.
  const TaskSet tasks({make_task("a", 5, 2, 100, 100, 0),
                       make_task("b", 5, 2, 100, 100, 1)});
  const auto trace = simulate(tasks, Protocol::kNonPreemptive,
                              {{JobId{0, 0}, 0}, {JobId{1, 0}, 0}});
  const TraceMetrics m = compute_metrics(tasks, trace);
  EXPECT_EQ(m.dma_busy, 0);
  EXPECT_EQ(m.cpu_busy, 9 + 9);  // l + C + u per job
}

}  // namespace
