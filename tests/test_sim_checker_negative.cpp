// Negative tests for the trace checker: hand-corrupted traces must be
// flagged.  (The positive direction — real traces pass — is covered by the
// property suites; a checker that accepts everything would pass those.)
#include <gtest/gtest.h>

#include "sim/checker.hpp"
#include "sim/engine.hpp"

namespace {

using mcs::rt::Task;
using mcs::rt::TaskSet;
using mcs::sim::check_trace;
using mcs::sim::CopyInOutcome;
using mcs::sim::CpuAction;
using mcs::sim::JobId;
using mcs::sim::Protocol;
using mcs::sim::simulate;
using mcs::sim::Trace;

TaskSet two_tasks() {
  Task a;
  a.name = "A";
  a.exec = 5;
  a.copy_in = 2;
  a.copy_out = 1;
  a.period = 100;
  a.deadline = 100;
  a.priority = 0;
  Task b = a;
  b.name = "B";
  b.priority = 1;
  return TaskSet({a, b});
}

Trace clean_trace(const TaskSet& tasks) {
  return simulate(tasks, Protocol::kProposed,
                  {{JobId{0, 0}, 0}, {JobId{1, 0}, 0}});
}

TEST(CheckerNegative, CleanTracePasses) {
  const TaskSet tasks = two_tasks();
  const Trace trace = clean_trace(tasks);
  EXPECT_TRUE(check_trace(tasks, Protocol::kProposed, trace).ok());
}

TEST(CheckerNegative, OverlappingIntervalsFlagged) {
  const TaskSet tasks = two_tasks();
  Trace trace = clean_trace(tasks);
  trace.intervals[1].start -= 1;  // now overlaps interval 0
  const auto result = check_trace(tasks, Protocol::kProposed, trace);
  EXPECT_FALSE(result.ok());
}

TEST(CheckerNegative, IntervalLengthMismatchFlagged) {
  const TaskSet tasks = two_tasks();
  Trace trace = clean_trace(tasks);
  trace.intervals[0].dma_busy -= 1;  // breaks R6 + DMA accounting
  const auto result = check_trace(tasks, Protocol::kProposed, trace);
  EXPECT_FALSE(result.ok());
}

TEST(CheckerNegative, MissingCopyInBeforeExecutionFlagged) {
  const TaskSet tasks = two_tasks();
  Trace trace = clean_trace(tasks);
  // Erase the copy-in record that precedes the first execution.
  for (auto& rec : trace.intervals) {
    if (rec.copy_in_outcome == CopyInOutcome::kCompleted) {
      rec.copy_in_job.reset();
      rec.copy_in_outcome = CopyInOutcome::kNone;
      rec.copy_in_duration = 0;
      rec.dma_busy = rec.copy_out_duration;
      break;
    }
  }
  const auto result = check_trace(tasks, Protocol::kProposed, trace);
  EXPECT_FALSE(result.ok());  // Property 1 violation (plus accounting)
}

TEST(CheckerNegative, CopyOutInWrongIntervalFlagged) {
  const TaskSet tasks = two_tasks();
  Trace trace = clean_trace(tasks);
  // Find a copy-out record and steal it from its interval.
  for (auto& rec : trace.intervals) {
    if (rec.copy_out_job) {
      rec.copy_out_job.reset();
      break;
    }
  }
  const auto result = check_trace(tasks, Protocol::kProposed, trace);
  EXPECT_FALSE(result.ok());  // Property 1/2 violation
}

TEST(CheckerNegative, UrgentUnderWpFlagged) {
  const TaskSet tasks = two_tasks();
  Trace trace = clean_trace(tasks);
  for (auto& rec : trace.intervals) {
    if (rec.cpu_action == CpuAction::kExecute) {
      rec.cpu_action = CpuAction::kUrgentExecute;
      break;
    }
  }
  const auto result =
      check_trace(tasks, Protocol::kWasilyPellizzoni, trace);
  EXPECT_FALSE(result.ok());
}

TEST(CheckerNegative, CancellationUnderWpFlagged) {
  const TaskSet tasks = two_tasks();
  Trace trace = clean_trace(tasks);
  for (auto& rec : trace.intervals) {
    if (rec.copy_in_outcome == CopyInOutcome::kCompleted) {
      rec.copy_in_outcome = CopyInOutcome::kDiscarded;
      break;
    }
  }
  const auto result =
      check_trace(tasks, Protocol::kWasilyPellizzoni, trace);
  EXPECT_FALSE(result.ok());
}

TEST(CheckerNegative, CompletionInconsistencyFlagged) {
  const TaskSet tasks = two_tasks();
  Trace trace = clean_trace(tasks);
  trace.jobs[0].completion += 3;  // no longer matches its copy-out record
  const auto result = check_trace(tasks, Protocol::kProposed, trace);
  EXPECT_FALSE(result.ok());
}

TEST(CheckerNegative, ExecutionBeforeReadyFlagged) {
  const TaskSet tasks = two_tasks();
  Trace trace = clean_trace(tasks);
  trace.jobs[1].ready_time = trace.jobs[1].exec_start + 1;
  const auto result = check_trace(tasks, Protocol::kProposed, trace);
  EXPECT_FALSE(result.ok());
}

}  // namespace
