#include "rt/contention.hpp"

#include <gtest/gtest.h>

#include "analysis/schedulability.hpp"
#include "gen/generator.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace {

using mcs::rt::apply_memory_contention;
using mcs::rt::contention_factor;
using mcs::rt::ContentionPolicy;
using mcs::rt::dma_utilization;
using mcs::rt::Task;
using mcs::rt::TaskSet;
using mcs::rt::Time;

Task make_task(std::string name, Time exec, Time copy_in, Time copy_out,
               Time period, mcs::rt::Priority priority) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = copy_in;
  t.copy_out = copy_out;
  t.period = period;
  t.deadline = period;
  t.priority = priority;
  return t;
}

TEST(Contention, DmaUtilizationSums) {
  const TaskSet set({make_task("a", 10, 5, 5, 100, 0),
                     make_task("b", 10, 10, 10, 200, 1)});
  EXPECT_DOUBLE_EQ(dma_utilization(set), 10.0 / 100 + 20.0 / 200);
}

TEST(Contention, FullyBackloggedScalesByCoreCount) {
  const std::vector<TaskSet> cores{
      TaskSet({make_task("a", 10, 4, 4, 100, 0)}),
      TaskSet({make_task("b", 10, 4, 4, 100, 0)}),
      TaskSet({make_task("c", 10, 4, 4, 100, 0)}),
  };
  EXPECT_DOUBLE_EQ(
      contention_factor(cores, 0, ContentionPolicy::kFullyBacklogged), 3.0);
  const auto inflated =
      apply_memory_contention(cores, ContentionPolicy::kFullyBacklogged);
  EXPECT_EQ(inflated[0][0].copy_in, 12);
  EXPECT_EQ(inflated[0][0].copy_out, 12);
  EXPECT_EQ(inflated[0][0].exec, 10);  // execution untouched
}

TEST(Contention, DemandAwareUsesCompetitorUtilization) {
  const std::vector<TaskSet> cores{
      TaskSet({make_task("a", 10, 4, 4, 100, 0)}),   // analyzed core
      TaskSet({make_task("b", 10, 10, 10, 100, 0)}),  // U_dma = 0.2
      TaskSet({make_task("c", 10, 30, 30, 100, 0)}),  // U_dma = 0.6
  };
  EXPECT_DOUBLE_EQ(
      contention_factor(cores, 0, ContentionPolicy::kDemandAware),
      1.0 + 0.2 + 0.6);
}

TEST(Contention, DemandAwareClampsSaturatedCompetitors) {
  const std::vector<TaskSet> cores{
      TaskSet({make_task("a", 10, 4, 4, 100, 0)}),
      TaskSet({make_task("hog", 1, 80, 80, 100, 0)}),  // U_dma = 1.6 -> 1
  };
  EXPECT_DOUBLE_EQ(
      contention_factor(cores, 0, ContentionPolicy::kDemandAware), 2.0);
}

TEST(Contention, DemandAwareNeverExceedsFullyBacklogged) {
  mcs::support::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<TaskSet> cores;
    const auto core_count = 2 + rng.uniform_int(0, 2);
    for (std::int64_t c = 0; c < core_count; ++c) {
      mcs::gen::GeneratorConfig cfg;
      cfg.num_tasks = 3;
      cfg.utilization = rng.uniform(0.1, 0.5);
      cfg.gamma = rng.uniform(0.1, 0.5);
      cores.push_back(mcs::gen::generate_task_set(cfg, rng));
    }
    for (std::size_t m = 0; m < cores.size(); ++m) {
      const double demand =
          contention_factor(cores, m, ContentionPolicy::kDemandAware);
      const double full =
          contention_factor(cores, m, ContentionPolicy::kFullyBacklogged);
      EXPECT_GE(demand, 1.0);
      EXPECT_LE(demand, full + 1e-12);
    }
  }
}

TEST(Contention, SingleCoreIsNeutral) {
  const std::vector<TaskSet> cores{
      TaskSet({make_task("a", 10, 4, 4, 100, 0)})};
  for (const auto policy : {ContentionPolicy::kFullyBacklogged,
                            ContentionPolicy::kDemandAware}) {
    const auto inflated = apply_memory_contention(cores, policy);
    EXPECT_EQ(inflated[0][0].copy_in, 4);
    EXPECT_EQ(inflated[0][0].copy_out, 4);
  }
}

TEST(Contention, InflationMakesSchedulabilityHarder) {
  // Sanity: analyzing with inflated memory phases can only lose task sets.
  mcs::support::Rng rng(9);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 3;
  cfg.utilization = 0.3;
  cfg.gamma = 0.3;
  const TaskSet core0 = mcs::gen::generate_task_set(cfg, rng);
  const TaskSet core1 = mcs::gen::generate_task_set(cfg, rng);
  const auto inflated = apply_memory_contention(
      {core0, core1}, ContentionPolicy::kFullyBacklogged);
  const auto before =
      mcs::analysis::analyze(core0, mcs::analysis::Approach::kNonPreemptive);
  const auto after = mcs::analysis::analyze(
      inflated[0], mcs::analysis::Approach::kNonPreemptive);
  for (std::size_t i = 0; i < core0.size(); ++i) {
    if (before.wcrt[i] != mcs::rt::kTimeMax &&
        after.wcrt[i] != mcs::rt::kTimeMax) {
      EXPECT_GE(after.wcrt[i], before.wcrt[i]);
    }
  }
}

TEST(Contention, RejectsBadCoreIndex) {
  const std::vector<TaskSet> cores{
      TaskSet({make_task("a", 10, 4, 4, 100, 0)})};
  EXPECT_THROW(
      contention_factor(cores, 5, ContentionPolicy::kFullyBacklogged),
      mcs::support::ContractViolation);
}

}  // namespace
