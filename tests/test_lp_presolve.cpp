// Tests for the MILP presolve/postsolve layer (lp/presolve.hpp).
//
// The load-bearing property is exactness: for any model, solving the
// presolve-reduced problem and postsolving the incumbent must be
// certificate-identical (status, objective, best bound, feasibility in
// the pristine model) to solving the original directly — at gap 0, under
// warm starts, and across a session's greedy-round patch chain.  The unit
// tests pin each reduction's mechanics; the differential tests sweep
// randomized delay MILPs and the committed workload corpus.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/milp_formulation.hpp"
#include "check/presolve_audit.hpp"
#include "gen/generator.hpp"
#include "lp/milp.hpp"
#include "lp/model.hpp"
#include "lp/presolve.hpp"
#include "rt/io.hpp"
#include "rt/task.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"

namespace {

using mcs::analysis::build_delay_milp;
using mcs::analysis::DelayMilp;
using mcs::analysis::FormulationCase;
using mcs::analysis::update_delay_milp;
using mcs::lp::kInfinity;
using mcs::lp::LinExpr;
using mcs::lp::MilpOptions;
using mcs::lp::MilpResult;
using mcs::lp::MilpSolver;
using mcs::lp::Model;
using mcs::lp::Relation;
using mcs::lp::Sense;
using mcs::lp::solve_milp;
using mcs::lp::SolveStatus;
using mcs::lp::term;
using mcs::lp::VarId;
using mcs::lp::presolve::kRemoved;
using mcs::lp::presolve::presolve;
using mcs::lp::presolve::Presolved;
using mcs::lp::presolve::PresolveOptions;
using mcs::rt::Task;
using mcs::rt::TaskIndex;
using mcs::rt::TaskSet;
using mcs::rt::Time;
using mcs::support::Rng;

constexpr double kTol = 1e-6;

/// Presolve plus the full exactness audit (MCS-F301/F302) in one step —
/// every reduction in every test is also bookkeeping-checked.
Presolved presolve_audited(const Model& model) {
  Presolved pre = presolve(model);
  const mcs::check::CheckReport report =
      mcs::check::audit_presolve(model, pre);
  EXPECT_TRUE(report.clean()) << [&] {
    std::string all;
    for (const auto& d : report.diagnostics) {
      all += mcs::check::render(d) + "\n";
    }
    return all;
  }();
  return pre;
}

// --- Reduction mechanics ----------------------------------------------------

TEST(Presolve, FixedColumnIsSubstitutedIntoRowsAndObjective) {
  Model m;
  const VarId x = m.add_continuous(0.0, 10.0, "x");
  const VarId f = m.add_continuous(3.0, 3.0, "f");  // pinned
  m.add_constraint(LinExpr(x) + 2.0 * LinExpr(f), Relation::kLe, 10.0, "cap");
  m.set_objective(Sense::kMaximize, LinExpr(x) + 5.0 * LinExpr(f));

  const Presolved pre = presolve_audited(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.map.col_map[f.index], kRemoved);
  EXPECT_DOUBLE_EQ(pre.map.fixed_value[f.index], 3.0);
  // 2*3 moved into the rhs, 5*3 into the objective constant.
  EXPECT_DOUBLE_EQ(pre.reduced.objective().constant(), 15.0);
  EXPECT_GE(pre.stats.cols_removed, 1u);

  // Postsolve re-inserts the fixed coordinate exactly.
  const std::vector<double> back =
      pre.map.postsolve_primal(std::vector<double>(pre.reduced.num_variables(), 4.0));
  ASSERT_EQ(back.size(), m.num_variables());
  EXPECT_DOUBLE_EQ(back[f.index], 3.0);
  EXPECT_DOUBLE_EQ(back[x.index], 4.0);
}

TEST(Presolve, SingletonRowFoldsIntoABound) {
  Model m;
  const VarId x = m.add_continuous(0.0, 100.0, "x");
  const VarId y = m.add_continuous(0.0, 100.0, "y");
  m.add_constraint(term(x, 2.0), Relation::kLe, 10.0, "single");
  m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kLe, 50.0, "joint");
  m.set_objective(Sense::kMaximize, LinExpr(x) + LinExpr(y));

  const Presolved pre = presolve_audited(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.map.row_map[0], kRemoved);
  const std::size_t rx = pre.map.col_map[x.index];
  ASSERT_NE(rx, kRemoved);
  EXPECT_DOUBLE_EQ(pre.reduced.variables()[rx].upper, 5.0);
}

TEST(Presolve, SingletonRowBoundsAnUnboundedColumn) {
  // Regression: tol(±inf) is inf, so the bound-improvement gate used to
  // see "no improvement" on an infinite incumbent bound and fold_singleton
  // then dropped the row without applying it — silently deleting `2x <= 10`
  // on a column unbounded above and leaving the model unbounded.
  Model m;
  const VarId x = m.add_continuous(0.0, kInfinity, "x");
  const VarId y = m.add_continuous(-kInfinity, 0.0, "y");
  m.add_constraint(term(x, 2.0), Relation::kLe, 10.0, "cap_x");
  m.add_constraint(LinExpr(y), Relation::kGe, -3.0, "floor_y");
  m.set_objective(Sense::kMaximize, LinExpr(x) - LinExpr(y));

  const Presolved pre = presolve_audited(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.map.row_map[0], kRemoved);
  EXPECT_EQ(pre.map.row_map[1], kRemoved);
  const std::size_t rx = pre.map.col_map[x.index];
  const std::size_t ry = pre.map.col_map[y.index];
  ASSERT_NE(rx, kRemoved);
  ASSERT_NE(ry, kRemoved);
  EXPECT_DOUBLE_EQ(pre.reduced.variables()[rx].upper, 5.0);
  EXPECT_DOUBLE_EQ(pre.reduced.variables()[ry].lower, -3.0);

  MilpOptions opt;
  opt.use_presolve = true;
  const MilpResult r = solve_milp(m, opt);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 8.0, kTol);
}

TEST(Presolve, RoundCapEmptyRowInfeasibilityIsDetected) {
  // x + y <= 1 with both binaries pinned to 1 by later equality rows.  At
  // max_rounds = 1 the cardinality row survives the reduction loop and
  // only collapses to an empty row during emit-time substitution; its
  // violated residual rhs must still be flagged here, not emitted as a
  // degenerate empty-LHS constraint for the solver to trip over.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kLe, 1.0, "card");
  m.add_constraint(LinExpr(x), Relation::kEq, 1.0, "pin_x");
  m.add_constraint(LinExpr(y), Relation::kEq, 1.0, "pin_y");
  m.set_objective(Sense::kMaximize, LinExpr(x));

  PresolveOptions opt;
  opt.max_rounds = 1;
  const Presolved pre = presolve(m, opt);
  EXPECT_TRUE(pre.infeasible);
}

TEST(Presolve, RoundCapEmptySatisfiedRowIsDropped) {
  // Same shape, but the pins (x = 1, y = 0) satisfy the cardinality row:
  // the emit-time disposal must drop it instead of emitting an empty row.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kLe, 1.0, "card");
  m.add_constraint(LinExpr(x), Relation::kEq, 1.0, "pin_x");
  m.add_constraint(LinExpr(y), Relation::kEq, 0.0, "pin_y");
  m.set_objective(Sense::kMaximize, LinExpr(x));

  PresolveOptions opt;
  opt.max_rounds = 1;
  const Presolved pre = presolve(m, opt);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.map.row_map[0], kRemoved);
  for (const auto& c : pre.reduced.constraints()) {
    EXPECT_FALSE(c.lhs.terms().empty());
  }
}

TEST(Presolve, RedundantAndDuplicateRowsAreDropped) {
  Model m;
  const VarId x = m.add_continuous(0.0, 2.0, "x");
  const VarId y = m.add_continuous(0.0, 2.0, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kLe, 100.0,
                   "slack");  // max activity 4 << 100
  m.add_constraint(LinExpr(x) - LinExpr(y), Relation::kLe, 1.0, "tight");
  m.add_constraint(LinExpr(x) - LinExpr(y), Relation::kLe, 3.0,
                   "dominated");  // duplicate terms, looser rhs
  m.set_objective(Sense::kMaximize, LinExpr(x));

  const Presolved pre = presolve_audited(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.map.row_map[0], kRemoved);
  EXPECT_EQ(pre.map.row_map[2], kRemoved);
  EXPECT_NE(pre.map.row_map[1], kRemoved);
}

TEST(Presolve, ForcingRowFixesItsColumns) {
  // x + y >= 4 with x,y in [0,2]: only x = y = 2 satisfies it.
  Model m;
  const VarId x = m.add_continuous(0.0, 2.0, "x");
  const VarId y = m.add_continuous(0.0, 2.0, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kGe, 4.0, "force");
  m.set_objective(Sense::kMinimize, LinExpr(x) + LinExpr(y));

  const Presolved pre = presolve_audited(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.map.col_map[x.index], kRemoved);
  EXPECT_EQ(pre.map.col_map[y.index], kRemoved);
  EXPECT_DOUBLE_EQ(pre.map.fixed_value[x.index], 2.0);
  EXPECT_DOUBLE_EQ(pre.map.fixed_value[y.index], 2.0);
  // Fully solved at the root: objective is a constant.
  EXPECT_EQ(pre.reduced.num_variables(), 0u);
  EXPECT_DOUBLE_EQ(pre.reduced.objective().constant(), 4.0);
}

TEST(Presolve, BigMCoefficientIsStrengthened) {
  // b in {0,1}, x in [0, 4]: `x - 100 b <= 0` activates x only when b = 1,
  // but 100 is far above what x can use — the exact form is `x - 4 b <= 0`.
  Model m;
  const VarId x = m.add_continuous(0.0, 4.0, "x");
  const VarId b = m.add_binary("b");
  m.add_constraint(LinExpr(x) - term(b, 100.0), Relation::kLe, 0.0, "bigM");
  m.set_objective(Sense::kMaximize, LinExpr(x) - term(b, 0.5));

  const Presolved pre = presolve_audited(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_GE(pre.stats.coefficients_tightened, 1u);
  const std::size_t row = pre.map.row_map[0];
  ASSERT_NE(row, kRemoved);
  // Equilibration rescales the emitted row; descale through the map to
  // recover the strengthened original-space coefficient.
  const double rs =
      pre.map.row_scale.empty() ? 1.0 : pre.map.row_scale[row];
  for (const auto& [var, coef] : pre.reduced.constraints()[row].lhs.terms()) {
    if (var == pre.map.col_map[b.index]) {
      const double cs = pre.map.col_scale.empty()
                            ? 1.0
                            : pre.map.col_scale[pre.map.col_map[b.index]];
      EXPECT_DOUBLE_EQ(coef / (rs * cs), -4.0);
    }
  }
  // Strengthening must not change the optimum (b=1, x=4, objective 3.5).
  const MilpResult res = solve_milp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 3.5, kTol);
}

TEST(Presolve, EquilibrationIsAnExactReparametrization) {
  // Mixed-magnitude rows (unit placement coefficients next to big-M delay
  // terms) are the shape equilibration exists for.  The audit inside
  // presolve_audited already pins the invariants (powers of two, integral
  // columns unscaled, scaled bounds still inside the originals); this test
  // adds the exactness round trip.
  Model m;
  const VarId x = m.add_continuous(0.0, 4096.0, "x");
  const VarId y = m.add_continuous(0.0, 2.0, "y");
  const VarId b = m.add_binary("b");
  m.add_constraint(term(x, 1.0) + term(y, 1024.0), Relation::kLe, 4096.0,
                   "wide");
  m.add_constraint(term(x, 1.0) - term(b, 4096.0), Relation::kLe, 0.0,
                   "gate");
  m.set_objective(Sense::kMaximize,
                  term(x, 1.0) + term(y, 3.0) + term(b, 0.25));

  const Presolved pre = presolve_audited(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_GE(pre.stats.rows_scaled + pre.stats.cols_scaled, 1u);
  ASSERT_FALSE(pre.map.row_scale.empty());
  ASSERT_FALSE(pre.map.col_scale.empty());
  const std::size_t rb = pre.map.col_map[b.index];
  ASSERT_NE(rb, kRemoved);
  EXPECT_DOUBLE_EQ(pre.map.col_scale[rb], 1.0);

  // restrict -> postsolve is the identity on surviving columns: dividing
  // and re-multiplying by a power of two loses nothing.
  const std::vector<double> point{1234.0, 1.5, 1.0};
  std::vector<double> reduced;
  ASSERT_TRUE(pre.map.restrict_primal(point, 1e-9, &reduced));
  const std::vector<double> back = pre.map.postsolve_primal(reduced);
  ASSERT_EQ(back.size(), point.size());
  for (std::size_t c = 0; c < point.size(); ++c) {
    if (pre.map.col_map[c] != kRemoved) {
      EXPECT_DOUBLE_EQ(back[c], point[c]);
    }
  }

  // Objective values transfer between spaces unchanged.
  EXPECT_DOUBLE_EQ(pre.reduced.evaluate(pre.reduced.objective(), reduced),
                   m.evaluate(m.objective(), point));

  // The pass is a pure option: off means no scale vectors and the exact
  // original coefficients.
  PresolveOptions off;
  off.equilibrate = false;
  const Presolved raw = presolve(m, off);
  EXPECT_TRUE(raw.map.row_scale.empty());
  EXPECT_TRUE(raw.map.col_scale.empty());
}

TEST(Presolve, DetectsInfeasibilityFromBoundsAndRows) {
  {
    Model m;
    const VarId x = m.add_continuous(0.0, 1.0, "x");
    m.add_constraint(LinExpr(x), Relation::kGe, 5.0, "impossible");
    m.set_objective(Sense::kMaximize, LinExpr(x));
    EXPECT_TRUE(presolve_audited(m).infeasible);
    EXPECT_EQ(solve_milp(m).status, SolveStatus::kInfeasible);
  }
  {
    Model m;
    const VarId x = m.add_continuous(0.0, 10.0, "x");
    const VarId y = m.add_continuous(0.0, 10.0, "y");
    m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kEq, 3.0, "eq_a");
    m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kEq, 4.0, "eq_b");
    m.set_objective(Sense::kMaximize, LinExpr(x));
    EXPECT_TRUE(presolve_audited(m).infeasible);
    EXPECT_EQ(solve_milp(m).status, SolveStatus::kInfeasible);
  }
}

TEST(Presolve, IntegralBoundsAreRounded) {
  Model m;
  const VarId n = m.add_integer(0.0, 10.0, "n");
  m.add_constraint(term(n, 2.0), Relation::kLe, 7.0, "half");  // n <= 3.5
  m.set_objective(Sense::kMaximize, LinExpr(n));

  const Presolved pre = presolve_audited(m);
  ASSERT_FALSE(pre.infeasible);
  // The singleton folds to n <= 3.5, integrality rounds to n <= 3, and the
  // model solves at the root or trivially.
  const MilpResult res = solve_milp(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 3.0, kTol);
}

TEST(PostsolveMap, RestrictPrimalRejectsDisagreeingPoints) {
  Model m;
  const VarId x = m.add_continuous(0.0, 10.0, "x");
  const VarId f = m.add_continuous(2.0, 2.0, "f");
  m.add_constraint(LinExpr(x) + LinExpr(f), Relation::kLe, 10.0, "cap");
  m.set_objective(Sense::kMaximize, LinExpr(x));

  const Presolved pre = presolve_audited(m);
  ASSERT_EQ(pre.map.col_map[f.index], kRemoved);

  std::vector<double> agreeing(m.num_variables(), 0.0);
  agreeing[f.index] = 2.0;
  agreeing[x.index] = 1.0;
  std::vector<double> out;
  ASSERT_TRUE(pre.map.restrict_primal(agreeing, 1e-6, &out));
  ASSERT_EQ(out.size(), pre.map.reduced_cols());
  EXPECT_DOUBLE_EQ(out[pre.map.col_map[x.index]], 1.0);

  std::vector<double> disagreeing = agreeing;
  disagreeing[f.index] = 0.0;  // contradicts the fixing
  EXPECT_FALSE(pre.map.restrict_primal(disagreeing, 1e-6, &out));
}

// --- Differential corpus: presolve on == presolve off -----------------------

/// Solves with and without presolve at gap 0 and requires certificate
/// identity; also audits the postsolved incumbent against the pristine
/// model (MCS-F303/F304).
void expect_presolve_exact(const Model& model, MilpOptions opt,
                           const char* label) {
  opt.relative_gap = 0.0;
  opt.use_presolve = true;
  const MilpResult on = solve_milp(model, opt);
  opt.use_presolve = false;
  const MilpResult off = solve_milp(model, opt);

  ASSERT_EQ(on.status, off.status) << label;
  ASSERT_EQ(on.has_incumbent, off.has_incumbent) << label;
  if (!off.has_incumbent) return;
  const double scale = std::max(1.0, std::abs(off.objective));
  EXPECT_NEAR(on.objective, off.objective, kTol * scale) << label;
  EXPECT_NEAR(on.best_bound, off.best_bound, kTol * scale) << label;
  EXPECT_TRUE(model.is_feasible(on.values, 1e-6)) << label;

  const mcs::check::CheckReport report =
      mcs::check::audit_postsolve(model, on.values, on.objective);
  EXPECT_TRUE(report.clean()) << label;
}

class PresolveDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PresolveDifferential, RandomDelayMilpsMatchWithAndWithoutPresolve) {
  Rng rng(GetParam() * 613 + 29);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 4;
  cfg.utilization = rng.uniform(0.3, 0.5);
  cfg.gamma = rng.uniform(0.1, 0.4);
  TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    tasks[j].latency_sensitive = rng.uniform01() < 0.4;
  }
  const auto i = static_cast<TaskIndex>(
      rng.uniform_int(0, static_cast<std::int64_t>(tasks.size()) - 1));
  // Half-period window as in test_lp_warm_start.cpp: tree size, not
  // coverage, is what the full window would add.
  const DelayMilp milp =
      build_delay_milp(tasks, i, tasks[i].period / 2, FormulationCase::kNls,
                       /*ignore_ls=*/false);

  MilpOptions opt;
  opt.max_nodes = 50000;
  opt.branch_priority.assign(milp.model.num_variables(), 0);
  for (const VarId alpha : milp.alpha_vars) {
    opt.branch_priority[alpha.index] = 1;
  }
  presolve_audited(milp.model);
  expect_presolve_exact(milp.model, opt, "random delay MILP");
}

TEST_P(PresolveDifferential, WarmStartedSolvesMatch) {
  Rng rng(GetParam() * 271 + 5);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 4;
  cfg.utilization = rng.uniform(0.3, 0.45);
  TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
  tasks[0].latency_sensitive = true;
  const auto i = static_cast<TaskIndex>(
      rng.uniform_int(0, static_cast<std::int64_t>(tasks.size()) - 1));
  const DelayMilp milp =
      build_delay_milp(tasks, i, tasks[i].period / 2, FormulationCase::kNls,
                       /*ignore_ls=*/false);

  MilpOptions opt;
  opt.max_nodes = 50000;
  opt.branch_priority.assign(milp.model.num_variables(), 0);
  for (const VarId alpha : milp.alpha_vars) {
    opt.branch_priority[alpha.index] = 1;
  }
  // First solve produces the incumbent the engine would carry; the seeded
  // re-solve must stay exact with presolve restricting the start vector.
  const MilpResult first = solve_milp(milp.model, opt);
  if (!first.has_incumbent) return;
  opt.start_values = first.values;
  expect_presolve_exact(milp.model, opt, "warm-started delay MILP");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveDifferential,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(PresolveSession, GreedyRoundPatchChainStaysExact) {
  // Mimic the engine's cache hit path: one patchable formulation, a
  // MilpSolver session, and LS-marking flips applied through
  // update_delay_milp between solves.  Every session solve must match a
  // fresh presolve-off solve of the current model state.
  Rng rng(0xC0FFEE);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 4;
  cfg.utilization = 0.4;
  TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
  const TaskIndex i = static_cast<TaskIndex>(tasks.size() - 1);
  const Time t = tasks[i].period / 2;
  DelayMilp milp = build_delay_milp(tasks, i, t, FormulationCase::kNls,
                                    /*ignore_ls=*/false, /*patchable=*/true);

  MilpSolver session(milp.model);
  MilpOptions opt;
  opt.max_nodes = 50000;
  opt.branch_priority.assign(milp.model.num_variables(), 0);
  for (const VarId alpha : milp.alpha_vars) {
    opt.branch_priority[alpha.index] = 1;
  }

  for (int round = 0; round < 4; ++round) {
    // Flip one task's LS flag and re-target the cached formulation.
    const std::size_t flip =
        static_cast<std::size_t>(rng.uniform_int(0,
            static_cast<std::int64_t>(tasks.size()) - 1));
    tasks[flip].latency_sensitive = !tasks[flip].latency_sensitive;
    update_delay_milp(milp, tasks, i, t, /*ignore_ls=*/false);

    opt.use_presolve = true;
    const MilpResult patched = session.solve(opt);

    MilpOptions fresh = opt;
    fresh.use_presolve = false;
    const MilpResult direct = solve_milp(milp.model, fresh);

    const std::string label = "round " + std::to_string(round);
    ASSERT_EQ(patched.status, direct.status) << label;
    ASSERT_EQ(patched.has_incumbent, direct.has_incumbent) << label;
    if (!direct.has_incumbent) continue;
    const double scale = std::max(1.0, std::abs(direct.objective));
    EXPECT_NEAR(patched.objective, direct.objective, kTol * scale) << label;
    EXPECT_TRUE(milp.model.is_feasible(patched.values, 1e-6)) << label;
    opt.start_values = patched.values;  // carry like the engine does
  }
}

TEST(PresolveSession, RebuildKeepsTelemetryDeltasMonotone) {
  // Regression: a structural rebuild (session.reset()) zeroes the inner
  // BranchAndBound counters, but the per-solve snapshots used to keep the
  // pre-reset totals, so the next solve's deltas wrapped around
  // std::size_t and telemetry reported ~2^64 warm-start hits and node
  // fixings.  Drive a patch chain whose LS flips force rebuilds and check
  // every per-solve counter stays sane.
  namespace telemetry = mcs::support::telemetry;
  telemetry::set_enabled(true);
  telemetry::reset();

  Rng rng(0xC0FFEE);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 4;
  cfg.utilization = 0.4;
  TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
  const TaskIndex i = static_cast<TaskIndex>(tasks.size() - 1);
  const Time t = tasks[i].period / 2;
  DelayMilp milp = build_delay_milp(tasks, i, t, FormulationCase::kNls,
                                    /*ignore_ls=*/false, /*patchable=*/true);

  MilpSolver session(milp.model);
  MilpOptions opt;
  opt.max_nodes = 50000;
  opt.use_presolve = true;
  for (int round = 0; round < 4; ++round) {
    const std::size_t flip =
        static_cast<std::size_t>(rng.uniform_int(0,
            static_cast<std::int64_t>(tasks.size()) - 1));
    tasks[flip].latency_sensitive = !tasks[flip].latency_sensitive;
    update_delay_milp(milp, tasks, i, t, /*ignore_ls=*/false);
    (void)session.solve(opt);
  }

  const auto snap = telemetry::snapshot();
  ASSERT_NE(snap.counters.count("lp.presolve.session_rebuilds"), 0u);
  // An underflowed delta lands near 2^64; every real per-solve count in a
  // four-round chain over a 4-task model is tiny by comparison.
  constexpr std::uint64_t kSane = std::uint64_t{1} << 40;
  for (const char* key :
       {"milp.warm_start_hits", "milp.warm_start_fallbacks",
        "milp.bound_deltas_applied", "lp.presolve.node_fixings",
        "lp.presolve.node_prunes"}) {
    const auto it = snap.counters.find(key);
    if (it != snap.counters.end()) {
      EXPECT_LT(it->second, kSane) << key;
    }
  }
  telemetry::reset();
}

TEST(PresolveCorpus, CommittedWorkloadFormulationsReduceAndStayExact) {
  // The committed LP corpus: every formulation the lint sweep builds from
  // workloads/*.wl must (a) presolve cleanly under the MCS-F3xx audits,
  // (b) show a nonzero reduction (the delay MILPs always carry removable
  // structure), and (c) solve certificate-identically with presolve on.
  const char* files[] = {"/workloads/quickstart.wl",
                         "/workloads/sensor_chain.wl"};
  for (const char* file : files) {
    const mcs::rt::Workload workload =
        mcs::rt::load_workload_file(std::string(MCS_SOURCE_DIR) + file);
    const TaskSet& tasks = workload.tasks;
    std::size_t total_removed = 0;
    for (TaskIndex i = 0; i < tasks.size(); ++i) {
      // Half-deadline window: proving gap-0 optimality on the full window
      // is tree size, not presolve coverage (same trade as the warm-start
      // differential tests).
      const Time t = tasks[i].deadline / 2;
      const DelayMilp milp = build_delay_milp(tasks, i, t,
                                              FormulationCase::kNls,
                                              /*ignore_ls=*/false);
      const Presolved pre = presolve_audited(milp.model);
      ASSERT_FALSE(pre.infeasible) << file << " task " << i;
      total_removed += pre.stats.rows_removed + pre.stats.cols_removed;

      MilpOptions opt;
      opt.max_nodes = 50000;
      opt.branch_priority.assign(milp.model.num_variables(), 0);
      for (const VarId alpha : milp.alpha_vars) {
        opt.branch_priority[alpha.index] = 1;
      }
      expect_presolve_exact(milp.model, opt, file);
    }
    EXPECT_GT(total_removed, 0u) << file;
  }
}

}  // namespace
