// Round-trip tests of the CPLEX-LP writer/reader pair (lp/lp_writer.hpp,
// lp/lp_reader.hpp): read_lp_format(write_lp_format(M)) must be
// structurally identical to M — positionally, via check::diff_models with
// name comparison off (the writer may sanitize/uniquify names).  Also
// covers the writer fixes that the linter forced: name-collision
// uniquification and the objective constant surviving the trip.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "analysis/milp_formulation.hpp"
#include "check/diagnostics.hpp"
#include "check/model_lint.hpp"
#include "gen/generator.hpp"
#include "lp/lp_reader.hpp"
#include "lp/lp_writer.hpp"
#include "lp/model.hpp"
#include "lp/presolve.hpp"
#include "rt/task.hpp"
#include "support/rng.hpp"

namespace {

using mcs::check::CheckReport;
using mcs::check::DiffOptions;
using mcs::check::diff_models;
using mcs::lp::kInfinity;
using mcs::lp::LinExpr;
using mcs::lp::LpParseError;
using mcs::lp::Model;
using mcs::lp::read_lp_format;
using mcs::lp::Relation;
using mcs::lp::Sense;
using mcs::lp::to_lp_format;
using mcs::lp::VarId;
using mcs::rt::Task;
using mcs::rt::TaskSet;
using mcs::rt::Time;

std::string render_all(const CheckReport& report) {
  std::string out;
  for (const auto& d : report.diagnostics) {
    out += mcs::check::render(d) + "\n";
  }
  return out;
}

void expect_roundtrip(const Model& model) {
  const std::string text = to_lp_format(model);
  Model reparsed;
  ASSERT_NO_THROW(reparsed = read_lp_format(text)) << text;
  DiffOptions options;
  options.compare_names = false;
  const CheckReport report = diff_models(model, reparsed, options);
  EXPECT_TRUE(report.clean()) << render_all(report) << "\n" << text;
}

TEST(LpRoundTrip, SmallMixedModel) {
  Model model;
  const VarId x = model.add_continuous(0.0, 10.0, "x");
  const VarId y = model.add_binary("y");
  const VarId z = model.add_integer(-3.0, 8.0, "z");
  model.add_constraint(LinExpr(x) + 2.0 * LinExpr(y), Relation::kLe,
                       LinExpr(7.5), "cap");
  model.add_constraint(LinExpr(z) - LinExpr(x), Relation::kGe, LinExpr(-2.0),
                       "link");
  model.add_constraint(LinExpr(y) + LinExpr(z), Relation::kEq, LinExpr(3.0),
                       "fix");
  model.set_objective(Sense::kMaximize,
                      LinExpr(x) + 0.5 * LinExpr(y) - LinExpr(z));
  expect_roundtrip(model);
}

TEST(LpRoundTrip, FreeAndUnboundedVariables) {
  Model model;
  const VarId free_var = model.add_continuous(-kInfinity, kInfinity, "f");
  const VarId lower_only = model.add_continuous(2.0, kInfinity, "lo");
  const VarId upper_only = model.add_continuous(-kInfinity, 5.0, "hi");
  model.add_constraint(LinExpr(free_var) + LinExpr(lower_only) +
                           LinExpr(upper_only),
                       Relation::kLe, LinExpr(100.0), "sum");
  model.set_objective(Sense::kMinimize, LinExpr(free_var));
  expect_roundtrip(model);
}

TEST(LpRoundTrip, ObjectiveConstantSurvives) {
  // Regression: the writer used to drop the objective's constant term into
  // a comment, so read(write(M)) lost it.
  Model model;
  const VarId x = model.add_continuous(0.0, 4.0, "x");
  model.add_constraint(LinExpr(x), Relation::kLe, LinExpr(4.0), "cap");
  model.set_objective(Sense::kMaximize, LinExpr(x) + LinExpr(12.5));
  expect_roundtrip(model);

  const Model reparsed = read_lp_format(to_lp_format(model));
  EXPECT_DOUBLE_EQ(reparsed.objective().constant(), 12.5);
}

TEST(LpRoundTrip, SanitizedNameCollisionsAreUniquified) {
  // Regression: "a b" and "a_b" both sanitize to "a_b"; the writer must
  // uniquify or the reader would merge two columns into one.
  Model model;
  const VarId v1 = model.add_continuous(0.0, 1.0, "a b");
  const VarId v2 = model.add_continuous(0.0, 2.0, "a_b");
  const VarId v3 = model.add_continuous(0.0, 3.0, "a-b");
  model.add_constraint(LinExpr(v1) + LinExpr(v2) + LinExpr(v3), Relation::kLe,
                       LinExpr(4.0), "weird name!");
  model.add_constraint(LinExpr(v1), Relation::kGe, LinExpr(0.5),
                       "weird name?");
  model.set_objective(Sense::kMaximize, LinExpr(v1) + LinExpr(v2));
  expect_roundtrip(model);

  const Model reparsed = read_lp_format(to_lp_format(model));
  ASSERT_EQ(reparsed.num_variables(), 3u);
  EXPECT_EQ(reparsed.variables()[0].upper, 1.0);
  EXPECT_EQ(reparsed.variables()[1].upper, 2.0);
  EXPECT_EQ(reparsed.variables()[2].upper, 3.0);
}

TEST(LpRoundTrip, FixedAndNegativeBounds) {
  Model model;
  const VarId fixed = model.add_continuous(3.0, 3.0, "pinned");
  const VarId negative = model.add_continuous(-10.0, -1.0, "neg");
  const VarId wide = model.add_integer(-100.0, 100.0, "wide");
  model.add_constraint(LinExpr(fixed) + LinExpr(negative) + LinExpr(wide),
                       Relation::kEq, LinExpr(0.0), "balance");
  model.set_objective(Sense::kMinimize, LinExpr(wide));
  expect_roundtrip(model);
}

TEST(LpRoundTrip, ZeroConstraintModel) {
  // Presolve can eliminate every row of a trivial model; the written file
  // then has an empty Subject To section and carries all structure in
  // Bounds.
  Model model;
  const VarId x = model.add_continuous(1.0, 6.0, "x");
  const VarId b = model.add_binary("b");
  const VarId n = model.add_integer(-4.0, 4.0, "n");
  model.set_objective(Sense::kMaximize,
                      LinExpr(x) + 3.0 * LinExpr(b) - LinExpr(n));
  expect_roundtrip(model);
}

TEST(LpRoundTrip, AllVariablesFixed) {
  // Every column pinned (lower == upper), including at zero and at a
  // negative value — the form presolve leaves behind when a patch fixes a
  // whole column family.
  Model model;
  const VarId a = model.add_continuous(0.0, 0.0, "a");
  const VarId b = model.add_continuous(-2.5, -2.5, "b");
  const VarId c = model.add_integer(7.0, 7.0, "c");
  model.add_constraint(LinExpr(a) + LinExpr(b) + LinExpr(c), Relation::kLe,
                       LinExpr(10.0), "cap");
  model.set_objective(Sense::kMinimize, LinExpr(a) + LinExpr(c));
  expect_roundtrip(model);
}

TEST(LpRoundTrip, ZeroVariableModel) {
  // The fully-reduced endpoint: presolve fixed everything and removed all
  // rows; only the objective constant is left.  The writer must emit a
  // parseable file and the constant must survive.
  Model model;
  model.set_objective(Sense::kMaximize, LinExpr(12.5));
  expect_roundtrip(model);
  const Model reparsed = read_lp_format(to_lp_format(model));
  EXPECT_EQ(reparsed.num_variables(), 0u);
  EXPECT_EQ(reparsed.num_constraints(), 0u);
  EXPECT_DOUBLE_EQ(reparsed.objective().constant(), 12.5);

  // Same with an empty (zero) objective.
  Model empty;
  expect_roundtrip(empty);
}

TEST(LpRoundTrip, PresolveReducedFormulationsRoundTrip) {
  // Whatever shape presolve leaves a delay MILP in — fewer rows, tightened
  // bounds, strengthened coefficients, possibly no rows at all — must
  // still survive the write -> reparse -> diff trip (MCS-F201..F205
  // clean).
  const TaskSet tasks({
      [] {
        Task t;
        t.name = "ls";
        t.exec = 2;
        t.copy_in = t.copy_out = 1;
        t.period = 25;
        t.deadline = 12;
        t.priority = 0;
        t.latency_sensitive = true;
        return t;
      }(),
      [] {
        Task t;
        t.name = "mid";
        t.exec = 3;
        t.copy_in = t.copy_out = 2;
        t.period = 50;
        t.deadline = 40;
        t.priority = 1;
        return t;
      }(),
      [] {
        Task t;
        t.name = "bulk";
        t.exec = 6;
        t.copy_in = t.copy_out = 2;
        t.period = 100;
        t.deadline = 90;
        t.priority = 2;
        return t;
      }(),
  });
  using mcs::analysis::build_delay_milp;
  using mcs::analysis::FormulationCase;
  for (mcs::rt::TaskIndex i = 0; i < tasks.size(); ++i) {
    const Time t = tasks[i].deadline;
    const Model& model =
        build_delay_milp(tasks, i, t, FormulationCase::kNls, false, true)
            .model;
    const mcs::lp::presolve::Presolved pre = mcs::lp::presolve::presolve(model);
    ASSERT_FALSE(pre.infeasible);
    expect_roundtrip(pre.reduced);
  }
}

TEST(LpRoundTrip, EveryDelayMilpRoundTrips) {
  const TaskSet tasks({
      [] {
        Task t;
        t.name = "s";
        t.exec = 2;
        t.copy_in = t.copy_out = 1;
        t.period = 30;
        t.deadline = 10;
        t.priority = 0;
        t.latency_sensitive = true;
        return t;
      }(),
      [] {
        Task t;
        t.name = "a";
        t.exec = 4;
        t.copy_in = t.copy_out = 2;
        t.period = 40;
        t.deadline = 30;
        t.priority = 1;
        return t;
      }(),
      [] {
        Task t;
        t.name = "b";
        t.exec = 5;
        t.copy_in = t.copy_out = 2;
        t.period = 80;
        t.deadline = 70;
        t.priority = 2;
        return t;
      }(),
  });
  using mcs::analysis::build_delay_milp;
  using mcs::analysis::FormulationCase;
  for (mcs::rt::TaskIndex i = 0; i < tasks.size(); ++i) {
    const Time t = tasks[i].deadline;
    expect_roundtrip(
        build_delay_milp(tasks, i, t, FormulationCase::kNls, true, false)
            .model);
    expect_roundtrip(
        build_delay_milp(tasks, i, t, FormulationCase::kNls, false, true)
            .model);
    if (tasks[i].latency_sensitive) {
      expect_roundtrip(
          build_delay_milp(tasks, i, t, FormulationCase::kLsCaseA, false, true)
              .model);
      expect_roundtrip(
          build_delay_milp(tasks, i, 0, FormulationCase::kLsCaseB, false, true)
              .model);
    }
  }
}

TEST(LpRoundTrip, RandomizedFormulationCorpus) {
  mcs::support::Rng rng(0xDEAD5EED);
  mcs::gen::GeneratorConfig config;
  config.num_tasks = 4;
  for (int trial = 0; trial < 10; ++trial) {
    config.utilization = 0.3 + 0.05 * trial;
    TaskSet tasks = mcs::gen::generate_task_set(config, rng);
    tasks[0].latency_sensitive = true;
    for (mcs::rt::TaskIndex i = 0; i < tasks.size(); ++i) {
      expect_roundtrip(
          build_delay_milp(tasks, i, tasks[i].deadline,
                           mcs::analysis::FormulationCase::kNls, false, true)
              .model);
    }
  }
}

TEST(LpReader, RejectsMalformedInput) {
  EXPECT_THROW(read_lp_format("not an lp file at all"), LpParseError);
  EXPECT_THROW(read_lp_format("Maximize\n obj: x +\nSubject To\nEnd\n"),
               LpParseError);
  EXPECT_THROW(read_lp_format("Maximize\n obj: x\nSubject To\n"
                              " c1: x <=\nEnd\n"),
               LpParseError);
}

TEST(LpReader, ParsesHandWrittenFile) {
  const std::string text =
      "\\ comment line\n"
      "Maximize\n"
      " obj: + 2 x + y\n"
      "Subject To\n"
      " c1: + x + y <= 10\n"
      " c2: + x - y >= -5\n"
      "Bounds\n"
      " 0 <= x <= 6\n"
      " y free\n"
      "End\n";
  const Model model = read_lp_format(text);
  ASSERT_EQ(model.num_variables(), 2u);
  ASSERT_EQ(model.num_constraints(), 2u);
  EXPECT_EQ(model.objective_sense(), Sense::kMaximize);
  EXPECT_EQ(model.variables()[0].upper, 6.0);
  EXPECT_EQ(model.variables()[1].lower, -kInfinity);
  EXPECT_EQ(model.constraints()[0].relation, Relation::kLe);
  EXPECT_EQ(model.constraints()[0].rhs, 10.0);
  EXPECT_EQ(model.constraints()[1].rhs, -5.0);
}

}  // namespace
