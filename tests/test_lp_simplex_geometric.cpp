// Exact geometric cross-check of the simplex on random 2-variable LPs:
// the optimum of a bounded feasible 2D LP lies on a vertex of the feasible
// polygon, i.e. the intersection of two tight constraints (rows or box
// bounds).  Enumerating all pairs gives an independent exact optimum.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "support/rng.hpp"

namespace {

using mcs::lp::LinExpr;
using mcs::lp::Model;
using mcs::lp::Relation;
using mcs::lp::Sense;
using mcs::lp::solve_lp;
using mcs::lp::SolveStatus;
using mcs::lp::VarId;

struct Line {
  // a*x + b*y = c
  double a, b, c;
};

/// Intersection of two lines; false when (near-)parallel.
bool intersect(const Line& p, const Line& q, double& x, double& y) {
  const double det = p.a * q.b - p.b * q.a;
  if (std::abs(det) < 1e-9) return false;
  x = (p.c * q.b - p.b * q.c) / det;
  y = (p.a * q.c - p.c * q.a) / det;
  return true;
}

class Simplex2DGeometric : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Simplex2DGeometric, OptimumMatchesVertexEnumeration) {
  mcs::support::Rng rng(GetParam() * 37 + 5);

  const double x_lo = 0.0, y_lo = 0.0;
  const double x_hi = rng.uniform(1.0, 8.0);
  const double y_hi = rng.uniform(1.0, 8.0);

  Model m;
  const VarId x = m.add_continuous(x_lo, x_hi, "x");
  const VarId y = m.add_continuous(y_lo, y_hi, "y");

  // Random <= rows through the positive quadrant; rhs chosen so the origin
  // stays feasible (bounded + feasible by construction).
  std::vector<Line> lines;
  const std::size_t rows = 1 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  for (std::size_t r = 0; r < rows; ++r) {
    const Line line{rng.uniform(0.1, 2.0), rng.uniform(0.1, 2.0),
                    rng.uniform(0.5, 6.0)};
    m.add_constraint(line.a * LinExpr(x) + line.b * LinExpr(y),
                     Relation::kLe, line.c);
    lines.push_back(line);
  }
  // Box bounds as lines for the vertex enumeration.
  lines.push_back({1.0, 0.0, x_lo});
  lines.push_back({1.0, 0.0, x_hi});
  lines.push_back({0.0, 1.0, y_lo});
  lines.push_back({0.0, 1.0, y_hi});

  const double cx = rng.uniform(-2.0, 3.0);
  const double cy = rng.uniform(-2.0, 3.0);
  m.set_objective(Sense::kMaximize, cx * LinExpr(x) + cy * LinExpr(y));

  // Vertex enumeration.
  double best = -1e300;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      double px = 0.0, py = 0.0;
      if (!intersect(lines[i], lines[j], px, py)) continue;
      if (!m.is_feasible({px, py}, 1e-7)) continue;
      best = std::max(best, cx * px + cy * py);
    }
  }
  ASSERT_GT(best, -1e299);  // the box corners guarantee feasible vertices

  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Simplex2DGeometric,
                         ::testing::Range<std::uint64_t>(0, 60));

}  // namespace
