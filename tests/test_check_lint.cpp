// Differential and negative tests of the mcs::check formulation linter
// (check/formulation_lint.hpp via the analysis/lint.hpp adapter) and the
// generic model lints / structural differ (check/model_lint.hpp).
//
// Positive direction: every formulation the analysis engine can build —
// fresh, re-patched to the same window, re-patched across an LS-marking
// change, and over a randomized corpus — must lint clean and be
// structurally identical to a from-scratch rebuild.  Negative direction:
// each MCS-F rule must fire when exactly its invariant is corrupted.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/lint.hpp"
#include "analysis/milp_formulation.hpp"
#include "check/diagnostics.hpp"
#include "check/formulation_lint.hpp"
#include "check/model_lint.hpp"
#include "check/presolve_audit.hpp"
#include "lp/presolve.hpp"
#include "gen/generator.hpp"
#include "rt/task.hpp"
#include "support/rng.hpp"

namespace {

using mcs::analysis::build_delay_milp;
using mcs::analysis::DelayMilp;
using mcs::analysis::FormulationCase;
using mcs::analysis::lint_delay_milp;
using mcs::analysis::update_delay_milp;
using mcs::analysis::verify_patched_equivalence;
using mcs::check::CheckReport;
using mcs::check::diff_models;
using mcs::check::find_rule;
using mcs::check::lint_model;
using mcs::check::rule_catalog;
using mcs::check::Severity;
using mcs::lp::LinExpr;
using mcs::lp::Model;
using mcs::lp::Relation;
using mcs::lp::Sense;
using mcs::lp::VarId;
using mcs::rt::Task;
using mcs::rt::TaskIndex;
using mcs::rt::TaskSet;
using mcs::rt::Time;

Task make_task(std::string name, Time exec, Time mem, Time period,
               Time deadline, mcs::rt::Priority priority, bool ls = false) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = mem;
  t.copy_out = mem;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  t.latency_sensitive = ls;
  return t;
}

TaskSet mixed_set() {
  return TaskSet({make_task("s", 2, 1, 30, 10, 0, true),
                  make_task("a", 4, 2, 40, 30, 1),
                  make_task("b", 3, 1, 50, 45, 2),
                  make_task("c", 5, 2, 80, 70, 3)});
}

std::string render_all(const CheckReport& report) {
  std::string out;
  for (const auto& d : report.diagnostics) {
    out += mcs::check::render(d) + "\n";
  }
  return out;
}

/// Index of the first constraint whose name starts with `prefix`.
std::size_t row_named(const Model& model, const std::string& prefix) {
  for (std::size_t r = 0; r < model.num_constraints(); ++r) {
    const std::string& name = model.constraints()[r].name;
    if (name.rfind(prefix, 0) == 0) {
      return r;
    }
  }
  return static_cast<std::size_t>(-1);
}

/// Asserts a clean lint for one (case, mode) formulation: fresh build,
/// same-window patch, and differential rebuild.
void expect_clean(const TaskSet& tasks, TaskIndex i, Time t,
                  FormulationCase fcase, bool ignore_ls) {
  DelayMilp milp =
      build_delay_milp(tasks, i, t, fcase, ignore_ls, !ignore_ls);
  CheckReport fresh = lint_delay_milp(milp, tasks, i, t, fcase, ignore_ls);
  EXPECT_TRUE(fresh.clean()) << render_all(fresh);

  update_delay_milp(milp, tasks, i, t, ignore_ls);
  CheckReport patched = lint_delay_milp(milp, tasks, i, t, fcase, ignore_ls);
  EXPECT_TRUE(patched.clean()) << render_all(patched);

  CheckReport diff =
      verify_patched_equivalence(milp, tasks, i, t, fcase, ignore_ls);
  EXPECT_TRUE(diff.clean()) << render_all(diff);
}

TEST(CheckLint, FreshAndPatchedFormulationsLintClean) {
  const TaskSet tasks = mixed_set();
  for (TaskIndex i = 0; i < tasks.size(); ++i) {
    const Time t = tasks[i].deadline;
    expect_clean(tasks, i, t, FormulationCase::kNls, true);
    expect_clean(tasks, i, t, FormulationCase::kNls, false);
    if (tasks[i].latency_sensitive) {
      expect_clean(tasks, i, t, FormulationCase::kLsCaseA, false);
      expect_clean(tasks, i, 0, FormulationCase::kLsCaseB, false);
    }
  }
}

TEST(CheckLint, PatchAcrossLsMarkingChangeLintsClean) {
  // The greedy algorithm's cache reuse: build under one marking, flip a
  // task's LS flag, patch, and the model must equal a fresh build for the
  // new marking.  Exercised for the patchable (non-ignore_ls) mode only —
  // that is the only mode the engine patches across markings.
  TaskSet tasks = mixed_set();
  const TaskIndex i = 3;  // lowest priority: sees every LS candidate
  const Time t = tasks[i].deadline;
  DelayMilp milp = build_delay_milp(tasks, i, t, FormulationCase::kNls,
                                    /*ignore_ls=*/false,
                                    /*patchable_ls=*/true);

  tasks[1].latency_sensitive = true;  // promote "a"
  update_delay_milp(milp, tasks, i, t, /*ignore_ls=*/false);

  CheckReport lint = lint_delay_milp(milp, tasks, i, t,
                                     FormulationCase::kNls, false);
  EXPECT_TRUE(lint.clean()) << render_all(lint);
  CheckReport diff = verify_patched_equivalence(milp, tasks, i, t,
                                                FormulationCase::kNls, false);
  EXPECT_TRUE(diff.clean()) << render_all(diff);

  tasks[1].latency_sensitive = false;  // and demote again
  update_delay_milp(milp, tasks, i, t, /*ignore_ls=*/false);
  CheckReport back = lint_delay_milp(milp, tasks, i, t,
                                     FormulationCase::kNls, false);
  EXPECT_TRUE(back.clean()) << render_all(back);
}

TEST(CheckLint, PatchToLargerWindowLintsClean) {
  // Window growth within the same interval count: only the budget RHS and
  // the cancellation budget move; the linter re-derives both.
  const TaskSet tasks = mixed_set();
  const TaskIndex i = 2;
  DelayMilp milp = build_delay_milp(tasks, i, 10, FormulationCase::kNls,
                                    false, true);
  // Find a larger t with the same interval count by probing the built
  // models (the linter itself must not trust the analysis window code).
  for (Time t2 = 11; t2 <= 25; ++t2) {
    const DelayMilp probe =
        build_delay_milp(tasks, i, t2, FormulationCase::kNls, false, true);
    if (probe.num_intervals != milp.num_intervals) {
      continue;
    }
    update_delay_milp(milp, tasks, i, t2, false);
    CheckReport lint =
        lint_delay_milp(milp, tasks, i, t2, FormulationCase::kNls, false);
    EXPECT_TRUE(lint.clean()) << "t2=" << t2 << "\n" << render_all(lint);
    CheckReport diff = verify_patched_equivalence(
        milp, tasks, i, t2, FormulationCase::kNls, false);
    EXPECT_TRUE(diff.clean()) << "t2=" << t2 << "\n" << render_all(diff);
  }
}

TEST(CheckLint, RandomizedCorpusLintsClean) {
  mcs::support::Rng rng(0xC0FFEE);
  mcs::gen::GeneratorConfig config;
  for (int trial = 0; trial < 20; ++trial) {
    config.num_tasks = 3 + static_cast<std::size_t>(trial % 4);
    config.utilization = 0.3 + 0.1 * (trial % 4);
    TaskSet tasks = mcs::gen::generate_task_set(config, rng);
    // Mark the highest-priority task LS (the generator emits all-NLS).
    for (TaskIndex j = 0; j < tasks.size(); ++j) {
      if (tasks[j].priority == 0) {
        tasks[j].latency_sensitive = true;
      }
    }
    for (TaskIndex i = 0; i < tasks.size(); ++i) {
      const Time t = tasks[i].deadline;
      expect_clean(tasks, i, t, FormulationCase::kNls, true);
      expect_clean(tasks, i, t, FormulationCase::kNls, false);
      if (tasks[i].latency_sensitive) {
        expect_clean(tasks, i, t, FormulationCase::kLsCaseA, false);
        expect_clean(tasks, i, 0, FormulationCase::kLsCaseB, false);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Negative tests: each corruption must trip exactly its rule.

struct Fixture {
  TaskSet tasks = mixed_set();
  TaskIndex i = 3;
  Time t;
  DelayMilp milp;

  Fixture()
      : t(tasks[i].deadline),
        milp(build_delay_milp(tasks, i, t, FormulationCase::kNls,
                              /*ignore_ls=*/false, /*patchable_ls=*/true)) {}

  CheckReport lint() const {
    return lint_delay_milp(milp, tasks, i, t, FormulationCase::kNls, false);
  }
};

TEST(CheckLintNegative, PlacementCardinalityCorruptionFires101) {
  Fixture f;
  const std::size_t row = row_named(f.milp.model, "one_exec_");
  ASSERT_NE(row, static_cast<std::size_t>(-1));
  f.milp.model.set_rhs(row, 2.0);
  const CheckReport report = f.lint();
  EXPECT_TRUE(report.has_rule("MCS-F101")) << render_all(report);
  EXPECT_GT(report.error_count(), 0u);
}

TEST(CheckLintNegative, CopyInCardinalityCorruptionFires102) {
  Fixture f;
  const std::size_t row = row_named(f.milp.model, "one_copyin_");
  ASSERT_NE(row, static_cast<std::size_t>(-1));
  f.milp.model.set_rhs(row, 3.0);
  const CheckReport report = f.lint();
  EXPECT_TRUE(report.has_rule("MCS-F102")) << render_all(report);
}

TEST(CheckLintNegative, StrayBinaryColumnFires103) {
  Fixture f;
  f.milp.model.add_binary("stray");
  const CheckReport report = f.lint();
  EXPECT_TRUE(report.has_rule("MCS-F103")) << render_all(report);
}

TEST(CheckLintNegative, BudgetRhsCorruptionFires104) {
  Fixture f;
  const std::size_t row = row_named(f.milp.model, "budget_");
  ASSERT_NE(row, static_cast<std::size_t>(-1));
  f.milp.model.set_rhs(row, f.milp.model.constraints()[row].rhs + 1.0);
  const CheckReport report = f.lint();
  EXPECT_TRUE(report.has_rule("MCS-F104")) << render_all(report);
}

TEST(CheckLintNegative, CancellationBudgetRhsCorruptionFires105) {
  Fixture f;
  ASSERT_NE(f.milp.cancellation_budget_constraint, DelayMilp::kNoConstraint);
  const std::size_t row = f.milp.cancellation_budget_constraint;
  f.milp.model.set_rhs(row, f.milp.model.constraints()[row].rhs + 1.0);
  const CheckReport report = f.lint();
  EXPECT_TRUE(report.has_rule("MCS-F105")) << render_all(report);
}

TEST(CheckLintNegative, FractionalLinkageRhsFires106) {
  Fixture f;
  const std::size_t row = row_named(f.milp.model, "delta_cpu_");
  ASSERT_NE(row, static_cast<std::size_t>(-1));
  f.milp.model.set_rhs(row, 0.5);
  const CheckReport report = f.lint();
  EXPECT_TRUE(report.has_rule("MCS-F106")) << render_all(report);
}

TEST(CheckLintNegative, LsMarkingBoundCorruptionFires107) {
  Fixture f;
  // Flip the first structurally-present urgent (LE) column's upper bound:
  // the marking says one thing, the model another.
  for (const auto& per_task : f.milp.urgent_vars) {
    for (const VarId v : per_task) {
      if (v.index == static_cast<std::size_t>(-1)) {
        continue;
      }
      const double old_ub = f.milp.model.variable(v).upper;
      f.milp.model.set_bounds(v, 0.0, old_ub > 0.5 ? 0.0 : 1.0);
      const CheckReport report = f.lint();
      EXPECT_TRUE(report.has_rule("MCS-F107")) << render_all(report);
      return;
    }
  }
  FAIL() << "no structurally-present urgent column in fixture";
}

TEST(CheckLintNegative, DeltaBoundCorruptionFires108) {
  Fixture f;
  const VarId delta = f.milp.delta_vars[0];
  f.milp.model.set_bounds(delta, 0.0,
                          f.milp.model.variable(delta).upper + 7.0);
  const CheckReport report = f.lint();
  EXPECT_TRUE(report.has_rule("MCS-F108")) << render_all(report);
}

TEST(CheckLintNegative, ObjectiveCorruptionFires109) {
  Fixture f;
  LinExpr objective;
  for (const VarId d : f.milp.delta_vars) {
    objective += mcs::lp::term(d, 2.0);  // wrong weight
  }
  f.milp.model.set_objective(Sense::kMaximize, objective);
  const CheckReport report = f.lint();
  EXPECT_TRUE(report.has_rule("MCS-F109")) << render_all(report);
}

TEST(CheckLintNegative, HandleBookkeepingMismatchFires110) {
  Fixture f;
  mcs::check::FormulationView view = mcs::analysis::formulation_view(f.milp);
  view.num_intervals += 1;  // bookkeeping no longer matches the window
  const CheckReport report = mcs::check::lint_formulation(
      view, f.tasks, f.i, f.t, mcs::check::FormulationCase::kNls, false);
  EXPECT_TRUE(report.has_rule("MCS-F110")) << render_all(report);
}

TEST(CheckLintNegative, PatchedModelDriftFires20x) {
  Fixture f;
  Model drifted = f.milp.model;

  {
    Model extra_col = drifted;
    extra_col.add_continuous(0.0, 1.0, "ghost");
    const CheckReport report = diff_models(f.milp.model, extra_col);
    EXPECT_TRUE(report.has_rule("MCS-F201")) << render_all(report);
  }
  {
    Model bound = drifted;
    bound.set_bounds(f.milp.delta_vars[0], 0.0, 1e6);
    const CheckReport report = diff_models(f.milp.model, bound);
    EXPECT_TRUE(report.has_rule("MCS-F202")) << render_all(report);
  }
  {
    Model extra_row = drifted;
    extra_row.add_constraint(LinExpr(f.milp.delta_vars[0]), Relation::kLe,
                             LinExpr(1.0), "ghost_row");
    const CheckReport report = diff_models(f.milp.model, extra_row);
    EXPECT_TRUE(report.has_rule("MCS-F203")) << render_all(report);
  }
  {
    Model rhs = drifted;
    rhs.set_rhs(0, drifted.constraints()[0].rhs + 1.0);
    const CheckReport report = diff_models(f.milp.model, rhs);
    EXPECT_TRUE(report.has_rule("MCS-F204")) << render_all(report);
  }
  {
    Model objective = drifted;
    objective.set_objective(Sense::kMinimize, drifted.objective());
    const CheckReport report = diff_models(f.milp.model, objective);
    EXPECT_TRUE(report.has_rule("MCS-F205")) << render_all(report);
  }
}

TEST(CheckLintNegative, GenericModelRulesFire) {
  Model model;
  const VarId x = model.add_continuous(0.0, 10.0, "x");
  const VarId dup1 = model.add_continuous(0.0, 1.0, "same");
  const VarId dup2 = model.add_continuous(0.0, 1.0, "same");  // MCS-F007
  model.add_continuous(0.0, 1.0, "dangling");                 // MCS-F004
  model.add_constraint(LinExpr(x), Relation::kLe, LinExpr(5.0), "r");
  model.add_constraint(LinExpr(dup1) + LinExpr(dup2), Relation::kLe,
                       LinExpr(2.0), "r");                    // MCS-F008
  model.add_constraint(LinExpr(0.0), Relation::kLe, LinExpr(1.0),
                       "vacuous");                            // MCS-F005
  model.add_constraint(LinExpr(0.0), Relation::kGe, LinExpr(1.0),
                       "impossible");                         // MCS-F006
  model.set_objective(Sense::kMaximize, LinExpr(x));

  const CheckReport report = lint_model(model);
  EXPECT_TRUE(report.has_rule("MCS-F004")) << render_all(report);
  EXPECT_TRUE(report.has_rule("MCS-F005")) << render_all(report);
  EXPECT_TRUE(report.has_rule("MCS-F006")) << render_all(report);
  EXPECT_TRUE(report.has_rule("MCS-F007")) << render_all(report);
  EXPECT_TRUE(report.has_rule("MCS-F008")) << render_all(report);
}

TEST(CheckLintNegative, PresolveAuditRulesFire30x) {
  using mcs::check::audit_postsolve;
  using mcs::check::audit_presolve;
  using mcs::lp::presolve::kRemoved;
  using mcs::lp::presolve::presolve;
  using mcs::lp::presolve::Presolved;

  // A model presolve visibly reduces: one pinned column, one slack row.
  Model model;
  const VarId x = model.add_continuous(0.0, 10.0, "x");
  const VarId f = model.add_continuous(3.0, 3.0, "f");
  model.add_constraint(LinExpr(x) + LinExpr(f), Relation::kLe, LinExpr(100.0),
                       "slack");
  model.add_constraint(LinExpr(x) - LinExpr(f), Relation::kLe, LinExpr(4.0),
                       "tight");
  model.set_objective(Sense::kMaximize, LinExpr(x) + LinExpr(f));

  const Presolved pristine = presolve(model);
  ASSERT_FALSE(pristine.infeasible);
  ASSERT_GT(pristine.stats.cols_removed, 0u);
  {
    const CheckReport clean = audit_presolve(model, pristine);
    ASSERT_TRUE(clean.clean()) << render_all(clean);
  }

  {
    // MCS-F301: stats counter disagrees with the reduction log.
    Presolved corrupted = presolve(model);
    corrupted.stats.rows_removed += 1;
    const CheckReport report = audit_presolve(model, corrupted);
    EXPECT_TRUE(report.has_rule("MCS-F301")) << render_all(report);
  }
  {
    // MCS-F301: log entry lost while the map still records the removal.
    Presolved corrupted = presolve(model);
    corrupted.log.clear();
    const CheckReport report = audit_presolve(model, corrupted);
    EXPECT_TRUE(report.has_rule("MCS-F301")) << render_all(report);
  }
  {
    // MCS-F301: map no longer a monotone dense embedding.
    Presolved corrupted = presolve(model);
    corrupted.map.col_map[x.index] = 7;
    const CheckReport report = audit_presolve(model, corrupted);
    EXPECT_TRUE(report.has_rule("MCS-F301")) << render_all(report);
  }
  {
    // MCS-F302: reduced domain wider than the original.
    Presolved corrupted = presolve(model);
    const std::size_t rx = corrupted.map.col_map[x.index];
    ASSERT_NE(rx, kRemoved);
    corrupted.reduced.set_bounds(VarId{rx}, -5.0, 50.0);
    const CheckReport report = audit_presolve(model, corrupted);
    EXPECT_TRUE(report.has_rule("MCS-F302")) << render_all(report);
  }
  {
    // MCS-F302: fixed value outside the original bounds.
    Presolved corrupted = presolve(model);
    ASSERT_EQ(corrupted.map.col_map[f.index], kRemoved);
    corrupted.map.fixed_value[f.index] = 99.0;
    const CheckReport report = audit_presolve(model, corrupted);
    EXPECT_TRUE(report.has_rule("MCS-F302")) << render_all(report);
  }

  // A genuinely optimal point audits clean; corruptions fire F303/F304.
  const std::vector<double> optimum = {7.0, 3.0};  // x - f <= 4 binds
  {
    const CheckReport clean = audit_postsolve(model, optimum, 10.0);
    EXPECT_TRUE(clean.clean()) << render_all(clean);
  }
  {
    // MCS-F303: bound violation.
    const CheckReport report =
        audit_postsolve(model, {12.0, 3.0}, 15.0);
    EXPECT_TRUE(report.has_rule("MCS-F303")) << render_all(report);
  }
  {
    // MCS-F303: row violation within bounds.
    const CheckReport report = audit_postsolve(model, {10.0, 3.0}, 13.0);
    EXPECT_TRUE(report.has_rule("MCS-F303")) << render_all(report);
  }
  {
    // MCS-F304: objective transfer mismatch.
    const CheckReport report = audit_postsolve(model, optimum, 11.5);
    EXPECT_TRUE(report.has_rule("MCS-F304")) << render_all(report);
    EXPECT_FALSE(report.has_rule("MCS-F303")) << render_all(report);
  }
}

TEST(CheckLint, EveryEmittableRuleIsCatalogued) {
  // The catalogue is the contract with docs/LINTING.md: ordered by ID,
  // unique, and resolvable through find_rule.
  const auto& catalog = rule_catalog();
  ASSERT_FALSE(catalog.empty());
  for (std::size_t r = 1; r < catalog.size(); ++r) {
    EXPECT_LT(std::string(catalog[r - 1].id), std::string(catalog[r].id));
  }
  for (const auto& rule : catalog) {
    const auto* found = find_rule(rule.id);
    ASSERT_NE(found, nullptr) << rule.id;
    EXPECT_EQ(found, &rule);
    EXPECT_NE(std::string(rule.summary), "");
    EXPECT_NE(std::string(rule.reference), "");
  }
  EXPECT_EQ(find_rule("MCS-F999"), nullptr);
}

TEST(CheckLint, DocsMirrorTheRuleCatalogue) {
  // docs/LINTING.md promises a row per catalogued rule with the matching
  // severity; adding a rule without documenting it fails here.
  std::ifstream doc(std::string(MCS_SOURCE_DIR) + "/docs/LINTING.md");
  ASSERT_TRUE(doc.is_open()) << "docs/LINTING.md missing";
  std::stringstream buffer;
  buffer << doc.rdbuf();
  const std::string text = buffer.str();
  for (const auto& rule : rule_catalog()) {
    const std::string row = std::string("| ") + rule.id + " | " +
                            mcs::check::to_string(rule.severity) + " |";
    EXPECT_NE(text.find(row), std::string::npos)
        << "docs/LINTING.md has no row for " << rule.id << " with severity "
        << mcs::check::to_string(rule.severity);
  }
}

TEST(CheckLint, CleanFixtureHasNoDiagnostics) {
  // Baseline for the negative tests above: untouched fixture is clean, so
  // every firing really is caused by the corruption.
  Fixture f;
  const CheckReport report = f.lint();
  EXPECT_TRUE(report.clean()) << render_all(report);
  const CheckReport diff = verify_patched_equivalence(
      f.milp, f.tasks, f.i, f.t, FormulationCase::kNls, false);
  EXPECT_TRUE(diff.clean()) << render_all(diff);
}

}  // namespace
