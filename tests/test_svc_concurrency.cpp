// Concurrency soak for the admission-control service (docs/SERVICE.md).
//
// Several client threads drive one AdmissionService through the submit()
// worker-pool path, each in lockstep against its own core (submit the next
// request only after the previous response arrives — the same per-core
// ordering a socket session gives).  The service's thread count is swept
// over {1, 4, 8}; the per-client transcript of verdicts and the final
// per-core verdict map must be byte-identical across all three, which is
// the service's documented determinism contract ("for a fixed per-core
// request order ... independent of thread count").  Only the `cached` flag
// may vary: the shared LRU cache sees a different global interleaving each
// run.  Runs under TSan in CI to shake out data races in the core-mutex /
// cache-mutex / engine-session choreography.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rt/types.hpp"
#include "support/rng.hpp"
#include "svc/json.hpp"
#include "svc/service.hpp"

using namespace mcs;
using svc::Json;

namespace {

std::string request_sync(svc::AdmissionService& service,
                         const std::string& line) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  service.submit(line,
                 [&promise](std::string r) { promise.set_value(std::move(r)); });
  return future.get();
}

/// Reduces a response to its thread-count-invariant content: everything
/// except the `cached` flag (and the mutable status counters).
std::string canonical(const std::string& response_line) {
  const Json response = svc::parse_json(response_line);
  std::ostringstream out;
  const Json* ok = response.find("ok");
  out << "ok=" << (ok != nullptr && ok->as_bool());
  if (const Json* committed = response.find("committed")) {
    out << " committed=" << committed->as_bool();
  }
  if (const Json* error = response.find("error")) {
    out << " error=" << error->find("code")->as_string();
  }
  if (const Json* verdict = response.find("verdict")) {
    out << " schedulable=" << verdict->find("schedulable")->as_bool()
        << " degraded=" << verdict->find("degraded")->as_bool()
        << " rounds=" << verdict->find("rounds")->as_int64()
        << " fp=" << verdict->find("fingerprint")->as_string()
        << " tasks=" << verdict->find("tasks")->dump();
  }
  if (const Json* tasks = response.find("tasks")) {
    if (tasks->is_number()) out << " tasks=" << tasks->as_int64();
  }
  return out.str();
}

/// Scripted client: a deterministic per-core request sequence derived from
/// `client` alone, so the same requests are issued no matter how many
/// worker threads the service runs.  Returns the canonical transcript.
std::vector<std::string> run_client(svc::AdmissionService& service,
                                    int client, int ops) {
  support::Rng rng(0xC0FFEEu + static_cast<std::uint64_t>(client));
  const std::string core = "core-" + std::to_string(client);
  std::vector<std::string> transcript;
  std::vector<std::string> admitted;  // names currently on the core
  int next_id = 0;

  for (int op = 0; op < ops; ++op) {
    std::string line;
    const double r = rng.uniform01();
    if (admitted.empty() || (r < 0.5 && admitted.size() < 3)) {
      const std::string name =
          "c" + std::to_string(client) + "t" + std::to_string(next_id);
      const rt::Time exec = rng.uniform_int(100, 500);
      const rt::Time copy = rng.uniform_int(20, 150);
      const rt::Time period = rng.uniform_int(1500, 8000);
      std::ostringstream req;
      req << "{\"op\":\"admit\",\"core\":\"" << core
          << "\",\"task\":{\"name\":\"" << name << "\",\"exec\":" << exec
          << ",\"copy_in\":" << copy << ",\"copy_out\":" << copy
          << ",\"period\":" << period << ",\"deadline\":" << period
          << ",\"prio\":" << next_id << "}}";
      ++next_id;
      line = req.str();
      const std::string response = request_sync(service, line);
      transcript.push_back(canonical(response));
      if (svc::parse_json(response).find("committed")->as_bool()) {
        admitted.push_back(name);
      }
      continue;
    }
    if (r < 0.65) {
      const std::size_t victim = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(admitted.size()) - 1));
      line = "{\"op\":\"remove\",\"core\":\"" + core + "\",\"name\":\"" +
             admitted[victim] + "\"}";
      admitted.erase(admitted.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      const char* mode = rng.bernoulli(0.5) ? "greedy" : "wp";
      line = "{\"op\":\"analyze\",\"core\":\"" + core + "\",\"mode\":\"" +
             mode + "\"}";
    }
    transcript.push_back(canonical(request_sync(service, line)));
  }
  return transcript;
}

struct SoakOutcome {
  std::map<int, std::vector<std::string>> transcripts;  // client -> lines
  std::map<std::string, std::string> final_verdicts;    // core -> canonical
  svc::ServiceStats stats;
};

SoakOutcome run_soak(std::size_t service_threads, int clients, int ops) {
  svc::ServiceConfig config;
  config.threads = service_threads;
  config.cache_capacity = 16;
  // High water comfortably above the client count: this test is about
  // determinism, not shedding (test_svc_degradation covers shedding).
  config.queue_high_water = 64;
  svc::AdmissionService service(std::move(config));

  SoakOutcome outcome;
  std::vector<std::thread> threads;
  std::mutex outcome_mutex;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<std::string> transcript = run_client(service, c, ops);
      const std::lock_guard<std::mutex> lock(outcome_mutex);
      outcome.transcripts[c] = std::move(transcript);
    });
  }
  for (std::thread& t : threads) t.join();
  service.drain();

  for (int c = 0; c < clients; ++c) {
    const std::string core = "core-" + std::to_string(c);
    outcome.final_verdicts[core] = canonical(service.handle_line(
        "{\"op\":\"analyze\",\"core\":\"" + core + "\"}"));
  }
  outcome.stats = service.stats();
  return outcome;
}

}  // namespace

TEST(SvcConcurrency, VerdictsIndependentOfServiceThreadCount) {
  constexpr int kClients = 4;
  constexpr int kOps = 12;
  const SoakOutcome one = run_soak(1, kClients, kOps);
  const SoakOutcome four = run_soak(4, kClients, kOps);
  const SoakOutcome eight = run_soak(8, kClients, kOps);

  EXPECT_EQ(one.final_verdicts, four.final_verdicts);
  EXPECT_EQ(one.final_verdicts, eight.final_verdicts);
  // The scripted clients only issue valid requests: a transcript full of
  // identical *errors* would match across thread counts while testing
  // nothing, so require every line to be a verdict or a remove ack.
  for (const auto& [client, transcript] : one.transcripts) {
    ASSERT_EQ(transcript.size(), static_cast<std::size_t>(kOps))
        << "client " << client;
    for (const std::string& line : transcript) {
      EXPECT_EQ(line.find("error="), std::string::npos)
          << "client " << client << ": " << line;
      EXPECT_NE(line.find("ok=1"), std::string::npos)
          << "client " << client << ": " << line;
    }
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(one.transcripts.at(c), four.transcripts.at(c))
        << "client " << c << " diverged between 1 and 4 service threads";
    EXPECT_EQ(one.transcripts.at(c), eight.transcripts.at(c))
        << "client " << c << " diverged between 1 and 8 service threads";
  }
  // Nothing was shed and every request was answered exactly once.
  for (const SoakOutcome* o : {&one, &four, &eight}) {
    EXPECT_EQ(o->stats.shed, 0u);
    EXPECT_EQ(o->stats.queue_depth, 0u);
    EXPECT_EQ(o->stats.cores, static_cast<std::size_t>(kClients));
  }
}

TEST(SvcConcurrency, ParallelClientsOnOneSharedCore) {
  // All clients hammer the *same* core: requests serialize on the core
  // mutex in some order, but every response must still be internally
  // consistent (committed == schedulable, task membership a function of
  // the accepted admits).  This is the TSan-relevant contention pattern.
  svc::ServiceConfig config;
  config.threads = 4;
  config.cache_capacity = 16;
  svc::AdmissionService service(std::move(config));

  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> committed{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      std::ostringstream req;
      req << "{\"op\":\"admit\",\"core\":\"shared\",\"task\":{\"name\":\"t"
          << c << "\",\"exec\":200,\"copy_in\":40,\"copy_out\":40,"
          << "\"period\":4000,\"deadline\":4000,\"prio\":" << c << "}}";
      const Json response =
          svc::parse_json(request_sync(service, req.str()));
      ASSERT_TRUE(response.find("ok")->as_bool());
      if (response.find("committed")->as_bool()) {
        committed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  service.drain();

  const Json final_verdict = svc::parse_json(
      service.handle_line("{\"op\":\"analyze\",\"core\":\"shared\"}"));
  ASSERT_TRUE(final_verdict.find("ok")->as_bool());
  const Json* verdict = final_verdict.find("verdict");
  EXPECT_EQ(
      static_cast<int>(verdict->find("tasks")->as_array().size()),
      committed.load());
}
