// Unit tests for the admission-control service's building blocks: the
// hardened JSON layer (svc/json.hpp), canonical task-set fingerprints
// (svc/fingerprint.hpp), the LRU verdict cache (svc/cache.hpp), and the
// crash-safe JSONL request log (svc/request_log.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "rt/task.hpp"
#include "svc/cache.hpp"
#include "svc/fingerprint.hpp"
#include "svc/json.hpp"
#include "svc/request_log.hpp"

using namespace mcs;
using svc::Json;

namespace {

rt::Task make_task(const std::string& name, rt::Priority prio,
                   rt::Time exec = 100, rt::Time copy = 20,
                   rt::Time period = 1000, rt::Time deadline = 900,
                   bool ls = false) {
  rt::Task t;
  t.name = name;
  t.exec = exec;
  t.copy_in = copy;
  t.copy_out = copy;
  t.period = period;
  t.deadline = deadline;
  t.priority = prio;
  t.latency_sensitive = ls;
  return t;
}

svc::Verdict make_verdict(bool schedulable, rt::Time wcrt) {
  svc::Verdict v;
  v.schedulable = schedulable;
  v.names = {"a"};
  v.wcrt = {wcrt};
  v.ls = {false};
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// JSON

TEST(SvcJson, RoundTripsScalarsAndNesting) {
  const std::string text =
      R"({"s":"a\"b","n":-42,"d":1.5,"t":true,"f":false,"z":null,)"
      R"("arr":[1,2,3],"obj":{"k":"v"}})";
  const Json v = svc::parse_json(text);
  EXPECT_EQ(v.find("s")->as_string(), "a\"b");
  EXPECT_EQ(v.find("n")->as_int64(), -42);
  EXPECT_DOUBLE_EQ(v.find("d")->as_number(), 1.5);
  EXPECT_TRUE(v.find("t")->as_bool());
  EXPECT_FALSE(v.find("f")->as_bool());
  EXPECT_TRUE(v.find("z")->is_null());
  EXPECT_EQ(v.find("arr")->as_array().size(), 3u);
  EXPECT_EQ(v.find("obj")->find("k")->as_string(), "v");
  // dump() is an exact inverse for this value model.
  EXPECT_EQ(svc::parse_json(v.dump()).dump(), v.dump());
}

TEST(SvcJson, KeepsLargeIntegersExact) {
  // 2^53 + 1 is not representable as a double; the tick path must not
  // round-trip through one.
  const Json v = svc::parse_json("9007199254740993");
  EXPECT_EQ(v.as_int64(), INT64_C(9007199254740993));
  EXPECT_EQ(v.dump(), "9007199254740993");
  const Json neg = svc::parse_json("-9223372036854775808");
  EXPECT_EQ(neg.as_int64(), std::numeric_limits<std::int64_t>::min());
}

TEST(SvcJson, RejectsMalformedInput) {
  const char* bad[] = {
      "",                      // empty
      "{",                     // truncated object
      "[1,",                   // truncated array
      "\"abc",                 // unterminated string
      "{\"a\":1,\"a\":2}",     // duplicate key
      "nan",                   // not JSON
      "NaN",                   //
      "Infinity",              //
      "-Infinity",             //
      "1e999",                 // double overflow
      "01",                    // leading zero
      "+1",                    // sign not allowed
      "1.",                    // missing fraction digits
      ".5",                    // missing integer part
      "{\"a\":1}x",            // trailing garbage
      "\"\\q\"",               // bad escape
      "\"\\ud800\"",           // lone surrogate
      "{\"a\" 1}",             // missing colon
      "[1 2]",                 // missing comma
      "tru",                   // truncated literal
      "\"\x01\"",              // raw control character
  };
  for (const char* text : bad) {
    EXPECT_THROW(svc::parse_json(text), svc::JsonError)
        << "accepted: " << text;
  }
}

TEST(SvcJson, RejectsExcessiveNestingDepth) {
  std::string deep;
  for (std::size_t i = 0; i <= Json::kMaxDepth; ++i) deep += "[";
  for (std::size_t i = 0; i <= Json::kMaxDepth; ++i) deep += "]";
  EXPECT_THROW(svc::parse_json(deep), svc::JsonError);
  std::string ok_depth;
  for (std::size_t i = 0; i + 1 < Json::kMaxDepth; ++i) ok_depth += "[";
  for (std::size_t i = 0; i + 1 < Json::kMaxDepth; ++i) ok_depth += "]";
  EXPECT_NO_THROW(svc::parse_json(ok_depth));
}

TEST(SvcJson, AsInt64RejectsNonIntegralNumbers) {
  EXPECT_THROW(svc::parse_json("1.5").as_int64(), svc::JsonError);
  EXPECT_THROW(svc::parse_json("1e300").as_int64(), svc::JsonError);
  EXPECT_THROW(svc::parse_json("\"7\"").as_int64(), svc::JsonError);
  EXPECT_EQ(svc::parse_json("2e3").as_int64(), 2000);
}

TEST(SvcJson, IntegerOverflowIsAStructuredError) {
  EXPECT_THROW(svc::parse_json("99999999999999999999999"), svc::JsonError);
  EXPECT_THROW(svc::parse_json("9223372036854775808"), svc::JsonError);
}

TEST(SvcJson, EscapesControlCharacters) {
  EXPECT_EQ(svc::json_escape("a\"b\\c\n\x01"), "a\\\"b\\\\c\\n\\u0001");
  const Json v{std::string("tab\there")};
  EXPECT_EQ(v.dump(), "\"tab\\there\"");
  EXPECT_EQ(svc::parse_json(v.dump()).as_string(), "tab\there");
}

TEST(SvcJson, FindDistinguishesAbsentFromNull) {
  const Json v = svc::parse_json(R"({"present":null})");
  ASSERT_NE(v.find("present"), nullptr);
  EXPECT_TRUE(v.find("present")->is_null());
  EXPECT_EQ(v.find("absent"), nullptr);
}

// ---------------------------------------------------------------------------
// Fingerprints

TEST(SvcFingerprint, InvariantUnderTaskReordering) {
  const rt::TaskSet forward({make_task("a", 0), make_task("b", 1, 50)});
  const rt::TaskSet backward({make_task("b", 1, 50), make_task("a", 0)});
  for (const auto mode :
       {svc::AnalysisMode::kGreedy, svc::AnalysisMode::kMarked,
        svc::AnalysisMode::kWp}) {
    EXPECT_EQ(svc::fingerprint(forward, mode),
              svc::fingerprint(backward, mode));
  }
}

TEST(SvcFingerprint, GreedyAndWpNormalizeLsMarks) {
  const rt::TaskSet unmarked({make_task("a", 0), make_task("b", 1)});
  const rt::TaskSet marked(
      {make_task("a", 0, 100, 20, 1000, 900, /*ls=*/true), make_task("b", 1)});
  EXPECT_EQ(svc::fingerprint(unmarked, svc::AnalysisMode::kGreedy),
            svc::fingerprint(marked, svc::AnalysisMode::kGreedy));
  EXPECT_EQ(svc::fingerprint(unmarked, svc::AnalysisMode::kWp),
            svc::fingerprint(marked, svc::AnalysisMode::kWp));
  EXPECT_NE(svc::fingerprint(unmarked, svc::AnalysisMode::kMarked),
            svc::fingerprint(marked, svc::AnalysisMode::kMarked));
}

TEST(SvcFingerprint, SensitiveToEveryAnalyzedParameter) {
  const rt::TaskSet base({make_task("a", 0)});
  const std::uint64_t fp = svc::fingerprint(base, svc::AnalysisMode::kGreedy);
  const rt::TaskSet renamed({make_task("b", 0)});
  const rt::TaskSet exec({make_task("a", 0, 101)});
  const rt::TaskSet copy({make_task("a", 0, 100, 21)});
  const rt::TaskSet period({make_task("a", 0, 100, 20, 1001)});
  const rt::TaskSet deadline({make_task("a", 0, 100, 20, 1000, 901)});
  const rt::TaskSet prio({make_task("a", 7)});
  for (const rt::TaskSet* variant :
       {&renamed, &exec, &copy, &period, &deadline, &prio}) {
    EXPECT_NE(svc::fingerprint(*variant, svc::AnalysisMode::kGreedy), fp);
  }
}

TEST(SvcFingerprint, ModesDoNotAlias) {
  const rt::TaskSet set({make_task("a", 0)});
  const std::uint64_t greedy =
      svc::fingerprint(set, svc::AnalysisMode::kGreedy);
  const std::uint64_t marked =
      svc::fingerprint(set, svc::AnalysisMode::kMarked);
  const std::uint64_t wp = svc::fingerprint(set, svc::AnalysisMode::kWp);
  EXPECT_NE(greedy, marked);
  EXPECT_NE(greedy, wp);
  EXPECT_NE(marked, wp);
}

TEST(SvcFingerprint, CanonicalOrderSortsByPriority) {
  const rt::TaskSet set(
      {make_task("low", 5), make_task("high", 1), make_task("mid", 3)});
  const std::vector<rt::TaskIndex> order = svc::canonical_order(set);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(set[order[0]].name, "high");
  EXPECT_EQ(set[order[1]].name, "mid");
  EXPECT_EQ(set[order[2]].name, "low");
}

// ---------------------------------------------------------------------------
// Verdict cache

TEST(SvcCache, EvictsLeastRecentlyUsed) {
  svc::VerdictCache cache(2);
  EXPECT_FALSE(cache.insert(1, make_verdict(true, 10)));
  EXPECT_FALSE(cache.insert(2, make_verdict(true, 20)));
  EXPECT_TRUE(cache.insert(3, make_verdict(true, 30)));  // evicts 1
  EXPECT_FALSE(cache.lookup(1).has_value());
  ASSERT_TRUE(cache.lookup(2).has_value());
  ASSERT_TRUE(cache.lookup(3).has_value());
  EXPECT_EQ(cache.lookup(3)->wcrt[0], 30);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SvcCache, LookupRefreshesRecency) {
  svc::VerdictCache cache(2);
  cache.insert(1, make_verdict(true, 10));
  cache.insert(2, make_verdict(true, 20));
  ASSERT_TRUE(cache.lookup(1).has_value());  // 2 is now LRU
  cache.insert(3, make_verdict(true, 30));   // evicts 2
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
}

TEST(SvcCache, ReinsertRefreshesInPlace) {
  svc::VerdictCache cache(2);
  cache.insert(1, make_verdict(true, 10));
  cache.insert(2, make_verdict(true, 20));
  EXPECT_FALSE(cache.insert(1, make_verdict(false, 11)));  // refresh, no evict
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup(1)->schedulable);
  cache.insert(3, make_verdict(true, 30));  // evicts 2 (LRU), not 1
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
}

TEST(SvcCache, CapacityZeroDisablesCaching) {
  svc::VerdictCache cache(0);
  EXPECT_FALSE(cache.insert(1, make_verdict(true, 10)));
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Request log

TEST(SvcRequestLog, RoundTripsRecords) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "svc_log_roundtrip.jsonl";
  std::filesystem::remove(path);
  {
    svc::RequestLogWriter writer(path, /*truncate=*/true);
    EXPECT_EQ(writer.append("{\"op\":\"status\"}", "{\"ok\":true}"), 0u);
    EXPECT_EQ(writer.append("{\"op\":\"x\",\"s\":\"a\\nb\"}",
                            "{\"ok\":false}"),
              1u);
  }
  const svc::RequestLogContents contents = svc::read_request_log(path);
  EXPECT_TRUE(contents.has_header);
  EXPECT_FALSE(contents.truncated_tail);
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_EQ(contents.records[0].seq, 0u);
  EXPECT_EQ(contents.records[0].request, "{\"op\":\"status\"}");
  EXPECT_EQ(contents.records[0].response, "{\"ok\":true}");
  EXPECT_EQ(contents.records[1].request, "{\"op\":\"x\",\"s\":\"a\\nb\"}");
  std::filesystem::remove(path);
}

TEST(SvcRequestLog, DropsTornTrailingLine) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "svc_log_torn.jsonl";
  std::filesystem::remove(path);
  {
    svc::RequestLogWriter writer(path, true);
    writer.append("{\"op\":\"status\"}", "{\"ok\":true}");
  }
  {
    // Simulate a SIGKILL landing mid-write: a partial, unterminated line.
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "{\"seq\":1,\"request\":\"{\\\"op";
  }
  const svc::RequestLogContents contents = svc::read_request_log(path);
  EXPECT_TRUE(contents.truncated_tail);
  ASSERT_EQ(contents.records.size(), 1u);
  EXPECT_EQ(contents.records[0].seq, 0u);
  std::filesystem::remove(path);
}

TEST(SvcRequestLog, ReopenAppendsWithoutSecondHeader) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "svc_log_reopen.jsonl";
  std::filesystem::remove(path);
  {
    svc::RequestLogWriter writer(path, true);
    writer.append("{\"op\":\"a\"}", "{\"ok\":true}");
  }
  {
    // Restarted process: appends to the same file, seq resets to 0 (the
    // restart marker mcs_cli --verify-log keys on).
    svc::RequestLogWriter writer(path, false);
    EXPECT_EQ(writer.append("{\"op\":\"b\"}", "{\"ok\":true}"), 0u);
  }
  const svc::RequestLogContents contents = svc::read_request_log(path);
  EXPECT_TRUE(contents.has_header);
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_EQ(contents.records[0].seq, 0u);
  EXPECT_EQ(contents.records[1].seq, 0u);
  std::filesystem::remove(path);
}

TEST(SvcRequestLog, MissingFileYieldsEmptyContents) {
  const svc::RequestLogContents contents = svc::read_request_log(
      std::filesystem::path(::testing::TempDir()) / "svc_log_nonexistent");
  EXPECT_FALSE(contents.has_header);
  EXPECT_TRUE(contents.records.empty());
  EXPECT_FALSE(contents.truncated_tail);
}

TEST(SvcRequestLog, MalformedCompleteLineThrows) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "svc_log_malformed.jsonl";
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << "{\"seq\":0,\"request\":\"x\",\"response\":\"y\"}\n";
    out << "not json at all\n";
  }
  EXPECT_THROW(svc::read_request_log(path), std::runtime_error);
  std::filesystem::remove(path);
}
