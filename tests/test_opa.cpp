#include "analysis/opa.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/nps.hpp"
#include "analysis/schedulability.hpp"
#include "gen/generator.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace {

using mcs::analysis::analyze;
using mcs::analysis::Approach;
using mcs::analysis::audsley_assign;
using mcs::analysis::OpaResult;
using mcs::rt::Task;
using mcs::rt::TaskSet;
using mcs::rt::Time;

Task make_task(std::string name, Time exec, Time mem, Time period,
               Time deadline, mcs::rt::Priority priority) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = mem;
  t.copy_out = mem;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  return t;
}

TEST(Opa, AssignsDistinctPrioritiesWhenFeasible) {
  const TaskSet tasks({make_task("a", 2, 1, 40, 30, 0),
                       make_task("b", 3, 1, 60, 50, 1),
                       make_task("c", 4, 1, 90, 80, 2)});
  const OpaResult result =
      audsley_assign(tasks, Approach::kNonPreemptive);
  ASSERT_TRUE(result.schedulable);
  std::set<mcs::rt::Priority> unique(result.priorities.begin(),
                                     result.priorities.end());
  EXPECT_EQ(unique.size(), tasks.size());
  // Verify the produced assignment really is schedulable.
  TaskSet assigned = tasks;
  for (std::size_t i = 0; i < assigned.size(); ++i) {
    assigned[i].priority = result.priorities[i];
  }
  EXPECT_TRUE(analyze(assigned, Approach::kNonPreemptive).schedulable);
}

TEST(Opa, DiscoversAndVerifiesAssignment) {
  // A tight-deadline big task next to a relaxed tiny one:
  //
  //   big:  e = 52 (50+1+1), D = 53,  T = 200
  //   tiny: e = 1,           D = 200, T = 200
  //
  // Either order happens to be feasible (blocking and interference are
  // symmetric at these sizes); the point under test is that OPA finds
  // *some* assignment and that it verifies under the plain analysis.
  TaskSet tasks({make_task("big", 50, 1, 200, 53, 0),
                 make_task("tiny", 1, 0, 200, 200, 1)});
  const OpaResult opa = audsley_assign(tasks, Approach::kNonPreemptive);
  ASSERT_TRUE(opa.schedulable);
  TaskSet assigned = tasks;
  for (std::size_t i = 0; i < assigned.size(); ++i) {
    assigned[i].priority = opa.priorities[i];
  }
  EXPECT_TRUE(analyze(assigned, Approach::kNonPreemptive).schedulable);
}

TEST(Opa, FixedAssignmentsVerifyWheneverFound) {
  // Search random sets for DM failures; whenever OPA claims to fix one,
  // the produced assignment must verify under the plain analysis.
  mcs::support::Rng rng(2024);
  std::size_t dm_failures = 0;
  std::size_t opa_fixes = 0;
  for (int trial = 0; trial < 25; ++trial) {
    mcs::gen::GeneratorConfig cfg;
    cfg.num_tasks = 4;
    cfg.utilization = rng.uniform(0.3, 0.6);
    cfg.gamma = rng.uniform(0.1, 0.4);
    cfg.beta = rng.uniform(0.1, 0.5);
    const TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
    if (analyze(tasks, Approach::kNonPreemptive).schedulable) continue;
    ++dm_failures;
    const OpaResult opa = audsley_assign(tasks, Approach::kNonPreemptive);
    if (!opa.schedulable) continue;
    ++opa_fixes;
    TaskSet assigned = tasks;
    for (std::size_t i = 0; i < assigned.size(); ++i) {
      assigned[i].priority = opa.priorities[i];
    }
    EXPECT_TRUE(analyze(assigned, Approach::kNonPreemptive).schedulable);
  }
  // The search must have exercised the interesting path at least once.
  EXPECT_GT(dm_failures, 0u);
}

TEST(Opa, InfeasibleSetRejected) {
  const TaskSet tasks({make_task("a", 30, 5, 40, 35, 0),
                       make_task("b", 30, 5, 40, 35, 1)});
  const OpaResult result =
      audsley_assign(tasks, Approach::kNonPreemptive);
  EXPECT_FALSE(result.schedulable);
}

TEST(Opa, TestCountIsQuadraticallyBounded) {
  const TaskSet tasks({make_task("a", 2, 1, 40, 30, 0),
                       make_task("b", 3, 1, 60, 50, 1),
                       make_task("c", 4, 1, 90, 80, 2),
                       make_task("d", 5, 1, 120, 100, 3)});
  const OpaResult result =
      audsley_assign(tasks, Approach::kNonPreemptive);
  EXPECT_TRUE(result.schedulable);
  EXPECT_LE(result.test_count, tasks.size() * tasks.size());
}

TEST(Opa, RejectsEmptyTest) {
  const TaskSet tasks({make_task("a", 2, 1, 40, 30, 0)});
  EXPECT_THROW(
      audsley_assign(
          tasks,
          std::function<bool(const TaskSet&, mcs::rt::TaskIndex)>{}),
      mcs::support::ContractViolation);
}

// ---------------------------------------------------------------------------
// Dominance property: whenever DM succeeds, OPA succeeds — for both the
// NPS analysis and the WP MILP analysis, over random task sets.
// ---------------------------------------------------------------------------

struct OpaCase {
  std::uint64_t seed;
  Approach approach;
};

class OpaDominance : public ::testing::TestWithParam<OpaCase> {};

TEST_P(OpaDominance, OpaSchedulesWheneverDmDoes) {
  const auto [seed, approach] = GetParam();
  mcs::support::Rng rng(seed * 191 + 7);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 4;
  cfg.utilization = rng.uniform(0.2, 0.6);
  cfg.gamma = rng.uniform(0.1, 0.4);
  const TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);  // DM priorities
  const bool dm_ok = analyze(tasks, approach).schedulable;
  if (!dm_ok) return;
  const OpaResult opa = audsley_assign(tasks, approach);
  EXPECT_TRUE(opa.schedulable) << "seed " << seed;
}

std::vector<OpaCase> opa_cases() {
  std::vector<OpaCase> cases;
  for (std::uint64_t s = 0; s < 12; ++s) {
    cases.push_back({s, Approach::kNonPreemptive});
  }
  for (std::uint64_t s = 0; s < 8; ++s) {
    cases.push_back({s + 50, Approach::kWasilyPellizzoni});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OpaDominance,
                         ::testing::ValuesIn(opa_cases()),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param.approach)) +
                                  "_s" + std::to_string(param_info.param.seed);
                         });

}  // namespace
