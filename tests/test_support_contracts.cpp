#include "support/contracts.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using mcs::support::ContractViolation;

TEST(Contracts, RequirePassesOnTrue) {
  MCS_REQUIRE(1 + 1 == 2, "arithmetic holds");
  SUCCEED();
}

TEST(Contracts, RequireThrowsWithContext) {
  try {
    MCS_REQUIRE(false, "the message");
    FAIL() << "MCS_REQUIRE(false) did not throw";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("test_support_contracts.cpp"), std::string::npos);
  }
}

TEST(Contracts, RequireEvaluatesConditionOnce) {
  int evaluations = 0;
  MCS_REQUIRE([&] {
    ++evaluations;
    return true;
  }(), "side effect counter");
  EXPECT_EQ(evaluations, 1);
}

TEST(Contracts, ViolationIsALogicError) {
  // Contract violations are programming errors; catching std::logic_error
  // must work (C++ Core Guidelines E.x: use the standard hierarchy).
  try {
    mcs::support::contract_fail("invariant", "x > 0", "file.cpp", 7, "msg");
  } catch (const std::logic_error& error) {
    EXPECT_NE(std::string(error.what()).find("invariant"),
              std::string::npos);
    return;
  }
  FAIL() << "not catchable as std::logic_error";
}

TEST(Contracts, MessageWithoutDetailStillFormats) {
  try {
    mcs::support::contract_fail("precondition", "ok()", "f.cpp", 3, "");
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("f.cpp:3"), std::string::npos);
  }
}

}  // namespace
