#include "lp/lp_writer.hpp"

#include <gtest/gtest.h>

#include "analysis/milp_formulation.hpp"
#include "gen/generator.hpp"
#include "lp/model.hpp"
#include "support/rng.hpp"

namespace {

using mcs::lp::kInfinity;
using mcs::lp::LinExpr;
using mcs::lp::Model;
using mcs::lp::Relation;
using mcs::lp::Sense;
using mcs::lp::to_lp_format;
using mcs::lp::VarId;

TEST(LpWriter, GoldenSmallModel) {
  Model m;
  const VarId x = m.add_continuous(0, 4, "x");
  const VarId y = m.add_binary("y");
  m.add_constraint(2.0 * LinExpr(x) + LinExpr(y), Relation::kLe, 7.0,
                   "cap");
  m.set_objective(Sense::kMaximize, 3.0 * LinExpr(x) - LinExpr(y));
  const std::string text = to_lp_format(m);
  EXPECT_EQ(text,
            "Maximize\n"
            " obj: 3 x - 1 y\n"
            "Subject To\n"
            " cap: 2 x + 1 y <= 7\n"
            "Bounds\n"
            " 0 <= x <= 4\n"
            " 0 <= y <= 1\n"
            "Binaries\n"
            " y\n"
            "End\n");
}

TEST(LpWriter, HandlesUnnamedAndAwkwardNames) {
  Model m;
  const VarId a = m.add_continuous(0, 1);            // unnamed
  const VarId b = m.add_continuous(0, 1, "2nd var");  // starts with digit
  const VarId c = m.add_continuous(0, 1, "e");        // numeric-prefix trap
  m.set_objective(Sense::kMinimize,
                  LinExpr(a) + LinExpr(b) + LinExpr(c));
  const std::string text = to_lp_format(m);
  EXPECT_NE(text.find("x0"), std::string::npos);
  EXPECT_NE(text.find("v2nd_var"), std::string::npos);
  EXPECT_NE(text.find("ve"), std::string::npos);
}

TEST(LpWriter, BoundSections) {
  Model m;
  (void)m.add_continuous(-kInfinity, kInfinity, "free_v");
  (void)m.add_continuous(-kInfinity, 5, "ub_only");
  (void)m.add_continuous(-3, kInfinity, "lb_only");
  (void)m.add_integer(1, 9, "k");
  m.set_objective(Sense::kMinimize, LinExpr(0.0));
  const std::string text = to_lp_format(m);
  EXPECT_NE(text.find("free_v free"), std::string::npos);
  EXPECT_NE(text.find("-inf <= ub_only <= 5"), std::string::npos);
  EXPECT_NE(text.find("-3 <= lb_only"), std::string::npos);
  EXPECT_NE(text.find("Generals\n k"), std::string::npos);
}

TEST(LpWriter, EmptyObjectiveAndConstraintSafe) {
  Model m;
  (void)m.add_continuous(0, 1, "x");
  m.set_objective(Sense::kMinimize, LinExpr(0.0));
  const std::string text = to_lp_format(m);
  EXPECT_NE(text.find("obj: 0"), std::string::npos);
  EXPECT_NE(text.find("End"), std::string::npos);
}

TEST(LpWriter, AnalysisMilpExportsCompletely) {
  // The real use case: dump a schedulability-analysis MILP for an external
  // solver.  Check structural completeness (every variable bounded, all
  // sections present, one row per constraint).
  mcs::support::Rng rng(17);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 3;
  cfg.utilization = 0.4;
  cfg.gamma = 0.3;
  const auto tasks = mcs::gen::generate_task_set(cfg, rng);
  const auto milp = mcs::analysis::build_delay_milp(
      tasks, tasks.by_priority().back(), tasks[0].period,
      mcs::analysis::FormulationCase::kNls);
  const std::string text = to_lp_format(milp.model);
  EXPECT_NE(text.find("Maximize"), std::string::npos);
  EXPECT_NE(text.find("Subject To"), std::string::npos);
  EXPECT_NE(text.find("Binaries"), std::string::npos);
  EXPECT_NE(text.find("Delta_0"), std::string::npos);
  // One "<=", ">=", or "=" line per constraint.
  std::size_t rows = 0;
  for (std::size_t pos = text.find("Subject To");
       pos != std::string::npos && pos < text.find("Bounds");
       pos = text.find('\n', pos + 1)) {
    ++rows;
  }
  EXPECT_GE(rows, milp.model.num_constraints());
}

}  // namespace
