#include "support/stats.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace {

using mcs::support::ContractViolation;
using mcs::support::mean_of;
using mcs::support::percentile;
using mcs::support::RunningStats;

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.sum(), 4.5);
}

TEST(RunningStats, MeanVarianceMatchDefinition) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyRejects) {
  const RunningStats s;
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
  EXPECT_THROW(s.max(), ContractViolation);
}

TEST(RunningStats, VarianceNeedsTwo) {
  RunningStats s;
  s.add(1.0);
  EXPECT_THROW(s.variance(), ContractViolation);
}

TEST(Percentile, MedianInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, 0.5), 2.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> data{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(data, 1.0), 5.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.33), 7.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), ContractViolation);
  EXPECT_THROW(percentile({1.0}, 1.5), ContractViolation);
}

TEST(MeanOf, Basic) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(mean_of({}), ContractViolation);
}

}  // namespace
