// The central soundness property of the reproduction: for every protocol,
// simulated response times never exceed the analysis' WCRT bounds.  This
// exercises the full stack — generator -> analysis (MILP / NPS) ->
// simulator — on randomized task sets and release patterns.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/schedulability.hpp"
#include "gen/generator.hpp"
#include "rt/types.hpp"
#include "sim/engine.hpp"
#include "sim/job_source.hpp"
#include "support/rng.hpp"

namespace {

using mcs::analysis::analyze;
using mcs::analysis::Approach;
using mcs::gen::GeneratorConfig;
using mcs::gen::generate_task_set;
using mcs::rt::kTicksPerUnit;
using mcs::rt::TaskSet;
using mcs::rt::Time;
using mcs::sim::Protocol;
using mcs::sim::random_sporadic_releases;
using mcs::sim::simulate;
using mcs::sim::synchronous_periodic_releases;
using mcs::sim::Trace;
using mcs::support::Rng;

Protocol protocol_of(Approach approach) {
  switch (approach) {
    case Approach::kProposed:
      return Protocol::kProposed;
    case Approach::kWasilyPellizzoni:
      return Protocol::kWasilyPellizzoni;
    case Approach::kNonPreemptive:
      return Protocol::kNonPreemptive;
  }
  return Protocol::kNonPreemptive;
}

struct SoundnessCase {
  std::uint64_t seed;
  Approach approach;
};

class AnalysisSoundness : public ::testing::TestWithParam<SoundnessCase> {};

TEST_P(AnalysisSoundness, SimulatedResponseNeverExceedsBound) {
  const auto [seed, approach] = GetParam();
  Rng rng(seed * 1297 + 11);
  GeneratorConfig cfg;
  cfg.num_tasks = 2 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  cfg.utilization = rng.uniform(0.2, 0.55);
  cfg.gamma = rng.uniform(0.05, 0.5);
  cfg.beta = rng.uniform(0.2, 0.9);
  TaskSet tasks = generate_task_set(cfg, rng);

  const auto result = analyze(tasks, approach);
  if (!result.schedulable) {
    return;  // analysis makes no claim; nothing to validate
  }

  // Apply the LS marking the greedy algorithm chose (kProposed only).
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].latency_sensitive = result.ls_flags[i];
  }

  const Time horizon = 600 * kTicksPerUnit;
  for (int pattern = 0; pattern < 3; ++pattern) {
    const auto releases =
        pattern == 0
            ? synchronous_periodic_releases(tasks, horizon)
            : random_sporadic_releases(tasks, horizon,
                                       pattern == 1 ? 0.0 : 0.6, rng);
    const Trace trace =
        simulate(tasks, protocol_of(approach), releases);
    ASSERT_FALSE(trace.aborted);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const Time observed = trace.worst_response(i);
      ASSERT_NE(observed, mcs::rt::kTimeMax)
          << "incomplete job of a schedulable set";
      EXPECT_LE(observed, result.wcrt[i])
          << to_string(approach) << " task " << tasks[i].name
          << " pattern " << pattern << " seed " << seed;
    }
    // A schedulable verdict must also mean no deadline miss in simulation.
    EXPECT_TRUE(trace.all_deadlines_met());
  }
}

std::vector<SoundnessCase> soundness_cases() {
  std::vector<SoundnessCase> cases;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    cases.push_back({seed, Approach::kProposed});
  }
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    cases.push_back({seed, Approach::kWasilyPellizzoni});
    cases.push_back({seed, Approach::kNonPreemptive});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnalysisSoundness, ::testing::ValuesIn(soundness_cases()),
    [](const auto& param_info) {
      return std::string(to_string(param_info.param.approach)) + "_seed" +
             std::to_string(param_info.param.seed);
    });

// ---------------------------------------------------------------------------
// Containment: WP-schedulable implies proposed-schedulable (greedy round 0
// is the WP analysis), on random instances.
// ---------------------------------------------------------------------------

class GreedyContainment : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyContainment, ProposedDominatesWp) {
  Rng rng(GetParam() * 733 + 5);
  GeneratorConfig cfg;
  cfg.num_tasks = 3;
  cfg.utilization = rng.uniform(0.3, 0.8);
  cfg.gamma = rng.uniform(0.1, 0.5);
  cfg.beta = rng.uniform(0.1, 0.7);
  const TaskSet tasks = generate_task_set(cfg, rng);
  const bool wp = analyze(tasks, Approach::kWasilyPellizzoni).schedulable;
  if (wp) {
    EXPECT_TRUE(analyze(tasks, Approach::kProposed).schedulable);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyContainment,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
