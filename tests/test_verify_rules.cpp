// Per-rule negative tests of the model checker (verify/): each
// ProtocolMutation plants exactly one protocol defect in the stepper, and
// the exploration must catch it with the MCS-V rule that documents that
// defect — with a replayable counterexample whose independent trace audit
// agrees something is wrong (for the rules the per-trace auditor can see).
//
// This is the mutation-testing half of the verifier's own soundness story:
// a checker that proves the healthy protocol clean is only trustworthy if
// it also *fails* every deliberately broken protocol.
#include <gtest/gtest.h>

#include <string>

#include "check/diagnostics.hpp"
#include "rt/task.hpp"
#include "sim/step.hpp"
#include "verify/verify.hpp"

namespace {

using mcs::rt::Task;
using mcs::rt::TaskSet;
using mcs::rt::Time;
using mcs::sim::Protocol;
using mcs::sim::ProtocolMutation;
using mcs::verify::VerifyOptions;
using mcs::verify::VerifyResult;

Task make_task(std::string name, Time exec, Time copy_in, Time copy_out,
               Time period, Time deadline, mcs::rt::Priority priority,
               bool ls = false) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = copy_in;
  t.copy_out = copy_out;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  t.latency_sensitive = ls;
  return t;
}

std::string render_all(const mcs::check::CheckReport& report) {
  std::string out;
  for (const auto& d : report.diagnostics) {
    out += mcs::check::render(d) + "\n";
  }
  return out;
}

/// Two-task system with an LS task on top: every mutation except the
/// blocking-specific ones is observable here within a tiny state space.
TaskSet pair_set() {
  return TaskSet({make_task("fast", 2, 1, 1, 8, 8, 0, true),
                  make_task("slow", 3, 1, 1, 12, 12, 1)});
}

/// Fine-lattice options: mutations that need a release to land strictly
/// inside an interval (cancellation, promotion, blocking) require offsets
/// off the period grid.
VerifyOptions fine(Time horizon, std::uint32_t offsets = 3,
                   std::uint32_t jitter = 1) {
  VerifyOptions options;
  options.check_analysis_soundness = false;
  options.horizon = horizon;
  options.lattice = 1;
  options.offset_steps = offsets;
  options.jitter_steps = jitter;
  return options;
}

VerifyResult run(const TaskSet& tasks, ProtocolMutation mutation,
                 VerifyOptions options) {
  options.mutation = mutation;
  return mcs::verify::verify(tasks, Protocol::kProposed, options);
}

void expect_caught(const VerifyResult& result, const char* rule) {
  ASSERT_FALSE(result.report.clean())
      << "mutation escaped the exploration";
  EXPECT_TRUE(result.report.has_rule(rule))
      << "expected " << rule << ", got:\n" << render_all(result.report);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_FALSE(result.counterexample->releases.empty());
}

TEST(VerifyRules, UnmutatedBaselineIsClean) {
  const VerifyResult result =
      run(pair_set(), ProtocolMutation::kNone, fine(16));
  EXPECT_TRUE(result.report.clean()) << render_all(result.report);
  EXPECT_TRUE(result.complete);
}

TEST(VerifyRules, ExecuteWithoutLoadTripsV001) {
  const VerifyResult result =
      run(pair_set(), ProtocolMutation::kExecuteWithoutLoad, fine(16));
  expect_caught(result, "MCS-V001");
  // The counterexample replays into a non-empty trace (the per-trace
  // auditor skips its per-job Property-1 rule on prefix traces, so only
  // the verifier's own verdict is asserted here).
  EXPECT_FALSE(result.counterexample->trace.intervals.empty());
}

TEST(VerifyRules, SkipCopyOutTripsV002) {
  const VerifyResult result =
      run(pair_set(), ProtocolMutation::kSkipCopyOut, fine(16));
  expect_caught(result, "MCS-V002");
  EXPECT_FALSE(result.counterexample->trace.intervals.empty());
}

TEST(VerifyRules, InvertedCopyInPriorityTripsV003) {
  // One high-priority task against three simultaneously-ready low-priority
  // tasks: with the DMA always picking the *lowest*-priority ready job,
  // the top job's copy-in is passed over once per low execution, and it
  // watches three of them — one more than Property 3 allows.  (Two low
  // tasks are not enough: the DMA pipelines the top copy-in under the
  // second low execution and the count stays at the legal 2.)
  const TaskSet tasks({make_task("top", 2, 1, 1, 12, 12, 0),
                       make_task("lo1", 2, 1, 1, 12, 12, 1),
                       make_task("lo2", 2, 1, 1, 12, 12, 2),
                       make_task("lo3", 2, 1, 1, 12, 12, 3)});
  const VerifyResult result =
      run(tasks, ProtocolMutation::kInvertCopyInPriority, fine(14, 2, 0));
  expect_caught(result, "MCS-V003");
}

TEST(VerifyRules, IgnoredLsCancellationTripsV004) {
  // An LS task over two non-LS tasks: without R3, an LS release that lands
  // during a lower-priority copy-in has to sit out that job's execution
  // too, exceeding Property 4's single blocking interval.
  const TaskSet tasks({make_task("ls", 1, 1, 1, 12, 12, 0, true),
                       make_task("n1", 3, 1, 1, 12, 12, 1),
                       make_task("n2", 3, 2, 1, 12, 12, 2)});
  const VerifyResult result =
      run(tasks, ProtocolMutation::kIgnoreLsCancellation, fine(14, 4, 0));
  expect_caught(result, "MCS-V004");
}

TEST(VerifyRules, FrozenSchedulerTripsV005) {
  const VerifyResult result =
      run(pair_set(), ProtocolMutation::kFreezeScheduler, fine(16));
  expect_caught(result, "MCS-V005");
}

TEST(VerifyRules, ZeroLengthSpinTripsV006) {
  const VerifyResult result =
      run(pair_set(), ProtocolMutation::kZeroLengthSpin, fine(16));
  expect_caught(result, "MCS-V006");
}

TEST(VerifyRules, SpuriousCancellationTripsV007) {
  const VerifyResult result =
      run(pair_set(), ProtocolMutation::kSpuriousCancellation, fine(16));
  expect_caught(result, "MCS-V007");
  EXPECT_FALSE(result.counterexample->trace_audit.clean());
}

TEST(VerifyRules, InflatedExecutionTripsV009) {
  const VerifyResult result =
      run(pair_set(), ProtocolMutation::kInflateExecution, fine(16));
  expect_caught(result, "MCS-V009");
}

TEST(VerifyRules, UrgentNonLsPromotionTripsV010) {
  // All-NLS system: any urgent promotion the mutation performs is of an
  // ineligible job.  The promotion needs an interval with no completed
  // copy-in and a release strictly inside it — the offset sweep finds one.
  const TaskSet tasks({make_task("t1", 3, 1, 1, 10, 10, 0),
                       make_task("t2", 2, 1, 1, 10, 10, 1)});
  const VerifyResult result =
      run(tasks, ProtocolMutation::kUrgentNonLs, fine(12, 4, 0));
  expect_caught(result, "MCS-V010");
}

}  // namespace
