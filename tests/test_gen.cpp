#include "gen/generator.hpp"
#include "gen/uunifast.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "rt/types.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace {

using mcs::gen::GeneratorConfig;
using mcs::gen::generate_task_set;
using mcs::gen::partition_worst_fit;
using mcs::gen::uunifast;
using mcs::rt::kTicksPerUnit;
using mcs::rt::TaskSet;
using mcs::rt::Time;
using mcs::support::Rng;

TEST(UUniFast, SumsToTarget) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto utils = uunifast(6, 0.75, rng);
    ASSERT_EQ(utils.size(), 6u);
    const double sum = std::accumulate(utils.begin(), utils.end(), 0.0);
    EXPECT_NEAR(sum, 0.75, 1e-12);
    for (const double u : utils) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 0.75 + 1e-12);
    }
  }
}

TEST(UUniFast, SingleTaskGetsEverything) {
  Rng rng(9);
  const auto utils = uunifast(1, 0.4, rng);
  ASSERT_EQ(utils.size(), 1u);
  EXPECT_DOUBLE_EQ(utils[0], 0.4);
}

class GeneratorLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorLaws, GeneratedSetsObeyThePaperRecipe) {
  Rng rng(GetParam());
  GeneratorConfig cfg;
  cfg.num_tasks = 5;
  cfg.utilization = 0.6;
  cfg.gamma = 0.3;
  cfg.beta = 0.4;
  const TaskSet set = generate_task_set(cfg, rng);
  ASSERT_EQ(set.size(), 5u);

  for (const auto& t : set) {
    // Periods within the scaled [10, 100] range.
    EXPECT_GE(t.period, 10 * kTicksPerUnit - 1);
    EXPECT_LE(t.period, 100 * kTicksPerUnit + 1);
    // l = u = gamma * C (within rounding).
    EXPECT_EQ(t.copy_in, t.copy_out);
    EXPECT_NEAR(static_cast<double>(t.copy_in),
                cfg.gamma * static_cast<double>(t.exec), 1.0);
    // Deadline window: C + beta (T - C) <= D <= T, give or take rounding.
    const double d_lo = static_cast<double>(t.exec) +
                        cfg.beta * static_cast<double>(t.period - t.exec);
    EXPECT_GE(static_cast<double>(t.deadline), d_lo - 2.0);
    EXPECT_LE(t.deadline, t.period);
    EXPECT_GE(t.exec, 1);
  }
  // Total execution utilization close to the target (rounding error only).
  EXPECT_NEAR(set.utilization(), cfg.utilization, 1e-3);
  // DM priorities: unique and ordered by deadline.
  const auto order = set.by_priority();
  for (std::size_t k = 0; k + 1 < order.size(); ++k) {
    EXPECT_LE(set[order[k]].deadline, set[order[k + 1]].deadline);
  }
  // No task is latency-sensitive at generation time.
  EXPECT_TRUE(set.latency_sensitive_tasks().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorLaws,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(Generator, DeterministicForSameSeed) {
  GeneratorConfig cfg;
  cfg.num_tasks = 4;
  cfg.utilization = 0.5;
  Rng rng_a(77);
  Rng rng_b(77);
  const TaskSet a = generate_task_set(cfg, rng_a);
  const TaskSet b = generate_task_set(cfg, rng_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].exec, b[i].exec);
    EXPECT_EQ(a[i].period, b[i].period);
    EXPECT_EQ(a[i].deadline, b[i].deadline);
  }
}

TEST(Generator, GammaZeroMeansNoMemoryPhases) {
  Rng rng(3);
  GeneratorConfig cfg;
  cfg.gamma = 0.0;
  const TaskSet set = generate_task_set(cfg, rng);
  for (const auto& t : set) {
    EXPECT_EQ(t.copy_in, 0);
    EXPECT_EQ(t.copy_out, 0);
  }
}

TEST(Generator, RejectsBadParameters) {
  Rng rng(1);
  GeneratorConfig cfg;
  cfg.num_tasks = 0;
  EXPECT_THROW(generate_task_set(cfg, rng),
               mcs::support::ContractViolation);
  cfg = GeneratorConfig{};
  cfg.beta = 1.5;
  EXPECT_THROW(generate_task_set(cfg, rng),
               mcs::support::ContractViolation);
  cfg = GeneratorConfig{};
  cfg.period_min = 200.0;  // > period_max
  EXPECT_THROW(generate_task_set(cfg, rng),
               mcs::support::ContractViolation);
}

TEST(PartitionWorstFit, BalancesLoad) {
  Rng rng(21);
  GeneratorConfig cfg;
  cfg.num_tasks = 12;
  cfg.utilization = 1.8;
  const TaskSet big = generate_task_set(cfg, rng);
  const auto parts =
      partition_worst_fit({big.tasks().begin(), big.tasks().end()}, 3);
  ASSERT_EQ(parts.size(), 3u);
  std::size_t total = 0;
  for (const auto& p : parts) {
    total += p.size();
    EXPECT_LT(p.utilization(), 1.0);  // 1.8 / 3 with worst-fit headroom
  }
  EXPECT_EQ(total, 12u);
}

TEST(PartitionWorstFit, SingleCoreKeepsEverything) {
  Rng rng(23);
  GeneratorConfig cfg;
  const TaskSet set = generate_task_set(cfg, rng);
  const auto parts =
      partition_worst_fit({set.tasks().begin(), set.tasks().end()}, 1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), set.size());
}

}  // namespace
