#include "support/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

namespace telemetry = mcs::support::telemetry;

/// Every test starts from a clean, enabled registry (the registry is
/// process-global).
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::set_enabled(true);
    telemetry::reset();
  }
  void TearDown() override {
    telemetry::reset();
    telemetry::set_enabled(true);
  }
};

TEST_F(TelemetryTest, CountersAccumulate) {
  telemetry::count("t.alpha");
  telemetry::count("t.alpha", 4);
  telemetry::count("t.beta", 2);
  const auto snap = telemetry::snapshot();
  EXPECT_EQ(snap.counters.at("t.alpha"), 5u);
  EXPECT_EQ(snap.counters.at("t.beta"), 2u);
}

TEST_F(TelemetryTest, ConcurrentIncrementsFromManyThreadsSumExactly) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        telemetry::count("t.concurrent");
        telemetry::record("t.concurrent_hist", 1.0);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const auto snap = telemetry::snapshot();
  EXPECT_EQ(snap.counters.at("t.concurrent"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.histograms.at("t.concurrent_hist").count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(TelemetryTest, ScopedTimersNest) {
  {
    const telemetry::ScopedTimer outer("t.outer");
    {
      const telemetry::ScopedTimer inner("t.inner");
      telemetry::count("t.work");
    }
    {
      const telemetry::ScopedTimer inner("t.inner");
    }
  }
  const auto snap = telemetry::snapshot();
  ASSERT_EQ(snap.timers.count("t.outer"), 1u);
  ASSERT_EQ(snap.timers.count("t.inner"), 1u);
  const auto& outer = snap.timers.at("t.outer");
  const auto& inner = snap.timers.at("t.inner");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 2u);
  // The outer span contains both inner spans.
  EXPECT_GE(outer.total_seconds, inner.total_seconds);
  EXPECT_GE(outer.max_seconds, outer.min_seconds);
}

TEST_F(TelemetryTest, HistogramStatsAreSane) {
  for (int i = 1; i <= 100; ++i) {
    telemetry::record("t.hist", static_cast<double>(i));
  }
  const auto snap = telemetry::snapshot();
  const auto& h = snap.histograms.at("t.hist");
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.sum, 5050.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  // Geometric buckets have <= ~19% relative error; generous brackets.
  EXPECT_GE(h.p50, 35.0);
  EXPECT_LE(h.p50, 75.0);
  EXPECT_GE(h.p99, h.p90);
  EXPECT_GE(h.p90, h.p50);
  EXPECT_LE(h.p99, 100.0);
}

TEST_F(TelemetryTest, DisabledModeIsANoOp) {
  telemetry::set_enabled(false);
  EXPECT_FALSE(telemetry::enabled());
  telemetry::count("t.off");
  telemetry::record("t.off_hist", 1.0);
  telemetry::add_time("t.off_timer", 0.5);
  {
    const telemetry::ScopedTimer timer("t.off_scoped");
  }
  telemetry::set_enabled(true);
  const auto snap = telemetry::snapshot();
  EXPECT_TRUE(snap.empty());
}

TEST_F(TelemetryTest, ScopedTimerDisarmedAtConstructionStaysOff) {
  telemetry::set_enabled(false);
  {
    const telemetry::ScopedTimer timer("t.flip");
    // Re-enabling mid-span must not make the destructor record a bogus
    // sample for a timer that never read the clock.
    telemetry::set_enabled(true);
  }
  const auto snap = telemetry::snapshot();
  EXPECT_EQ(snap.timers.count("t.flip"), 0u);
}

TEST_F(TelemetryTest, JsonSnapshotRoundTripsNamesAndValues) {
  telemetry::count("t.json_counter", 42);
  telemetry::add_time("t.json_timer", 1.5);
  telemetry::add_time("t.json_timer", 0.5);
  telemetry::record("t.json_hist", 3.0);

  std::ostringstream os;
  telemetry::write_json(telemetry::snapshot(), os);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"schema\": \"mcs-telemetry-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"t.json_counter\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"t.json_timer\": {\"count\": 2, \"total_seconds\": 2"),
            std::string::npos);
  EXPECT_NE(json.find("\"t.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Balanced braces: crude but effective well-formedness check for the
  // fixed flat schema.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(TelemetryTest, JsonEscapesSpecialCharacters) {
  telemetry::count("t.quote\"backslash\\", 1);
  std::ostringstream os;
  telemetry::write_json(telemetry::snapshot(), os);
  EXPECT_NE(os.str().find("t.quote\\\"backslash\\\\"), std::string::npos);
}

TEST_F(TelemetryTest, ResetClearsEverything) {
  telemetry::count("t.reset_me");
  telemetry::add_time("t.reset_timer", 0.1);
  telemetry::record("t.reset_hist", 2.0);
  telemetry::reset();
  EXPECT_TRUE(telemetry::snapshot().empty());
  // The registry keeps working after a reset.
  telemetry::count("t.after_reset");
  EXPECT_EQ(telemetry::snapshot().counters.at("t.after_reset"), 1u);
}

TEST_F(TelemetryTest, SnapshotMergesShardsOfExitedThreads) {
  std::thread worker([] { telemetry::count("t.from_worker", 7); });
  worker.join();
  const auto snap = telemetry::snapshot();
  EXPECT_EQ(snap.counters.at("t.from_worker"), 7u);
}

}  // namespace
