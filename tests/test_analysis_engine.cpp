// Differential and determinism tests for the AnalysisEngine session layer:
// carried solver state (formulation patches, reusable B&B sessions, carried
// incumbents, warm-started fixpoints) must never change a result — only how
// fast it is computed.  All tests run with relative_gap = 0 so every MILP
// is solved to proven optimality: exact optima are independent of the
// search path, making the expected equalities bit-exact rather than
// tolerance-based.
#include "analysis/engine.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "rt/task.hpp"
#include "support/rng.hpp"

namespace {

using mcs::analysis::AnalysisEngine;
using mcs::analysis::AnalysisOptions;
using mcs::analysis::Approach;
using mcs::analysis::EngineConfig;
using mcs::analysis::ProposedResult;
using mcs::analysis::TaskBoundResult;
using mcs::analysis::WpResult;
using mcs::rt::Task;
using mcs::rt::TaskSet;

AnalysisOptions exact_options() {
  AnalysisOptions options;
  options.milp.relative_gap = 0.0;  // proven optima: search-path independent
  return options;
}

Task make_task(std::string name, mcs::rt::Time exec, mcs::rt::Time mem,
               mcs::rt::Time period, mcs::rt::Time deadline,
               mcs::rt::Priority priority) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = mem;
  t.copy_out = mem;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  return t;
}

void expect_same_bound(const TaskBoundResult& got, const TaskBoundResult& want,
                       const char* context) {
  EXPECT_EQ(got.wcrt, want.wcrt) << context;
  EXPECT_EQ(got.schedulable, want.schedulable) << context;
  EXPECT_EQ(got.exceeded_deadline, want.exceeded_deadline) << context;
}

void expect_same_wp(const WpResult& got, const WpResult& want,
                    const char* context) {
  EXPECT_EQ(got.schedulable, want.schedulable) << context;
  ASSERT_EQ(got.per_task.size(), want.per_task.size()) << context;
  for (std::size_t i = 0; i < got.per_task.size(); ++i) {
    expect_same_bound(got.per_task[i], want.per_task[i], context);
  }
}

void expect_same_proposed(const ProposedResult& got,
                          const ProposedResult& want, const char* context) {
  EXPECT_EQ(got.schedulable, want.schedulable) << context;
  EXPECT_EQ(got.rounds, want.rounds) << context;
  EXPECT_EQ(got.ls_flags, want.ls_flags) << context;
  ASSERT_EQ(got.per_task.size(), want.per_task.size()) << context;
  for (std::size_t i = 0; i < got.per_task.size(); ++i) {
    expect_same_bound(got.per_task[i], want.per_task[i], context);
  }
}

/// Small corpus of generated task sets spanning the interesting regimes
/// (comfortably schedulable through WP-failing / greedy-promoting).
std::vector<TaskSet> corpus() {
  std::vector<TaskSet> sets;
  const struct {
    double utilization, gamma;
    std::uint64_t seed;
  } points[] = {
      {0.50, 0.20, 11}, {0.60, 0.30, 22}, {0.70, 0.40, 33},
      {0.72, 0.45, 44}, {0.75, 0.45, 55}, {0.65, 0.50, 66},
  };
  for (const auto& p : points) {
    mcs::gen::GeneratorConfig cfg;
    cfg.num_tasks = 4;
    cfg.utilization = p.utilization;
    cfg.gamma = p.gamma;
    mcs::support::Rng rng(p.seed);
    sets.push_back(mcs::gen::generate_task_set(cfg, rng));
  }
  return sets;
}

// A warm engine that has already analyzed other task sets (and the same
// task set, repeatedly) must return exactly what a throwaway engine
// returns: carried sessions, patched formulations, and carried incumbents
// are invisible in the results.
TEST(AnalysisEngine, CarriedStateMatchesThrowawayAcrossCorpus) {
  const AnalysisOptions options = exact_options();
  AnalysisEngine warm;  // accumulates state across the whole corpus
  for (const TaskSet& tasks : corpus()) {
    const WpResult wp_warm = warm.analyze_wp(tasks, options);
    const ProposedResult prop_warm = warm.analyze_proposed(tasks, options);
    // Second pass over the same set: the greedy loop re-enters round 0
    // with formulations last patched for the final promoted marking, so
    // this exercises the LS-delta patch path in both directions.
    const ProposedResult prop_again = warm.analyze_proposed(tasks, options);

    AnalysisEngine fresh_wp, fresh_prop;
    expect_same_wp(wp_warm, fresh_wp.analyze_wp(tasks, options), "wp");
    const ProposedResult prop_fresh =
        fresh_prop.analyze_proposed(tasks, options);
    expect_same_proposed(prop_warm, prop_fresh, "proposed");
    expect_same_proposed(prop_again, prop_fresh, "proposed re-run");
  }
}

// threads = 1 and threads = N must agree exactly — including the solver
// effort statistics, because task i's build/patch/solve chain lands on the
// same per-worker cache for every thread count.
TEST(AnalysisEngine, ThreadCountDoesNotChangeResults) {
  const AnalysisOptions options = exact_options();
  AnalysisEngine serial(EngineConfig{/*threads=*/1});
  AnalysisEngine pooled(EngineConfig{/*threads=*/3});
  for (const TaskSet& tasks : corpus()) {
    const WpResult wp_serial = serial.analyze_wp(tasks, options);
    const WpResult wp_pooled = pooled.analyze_wp(tasks, options);
    expect_same_wp(wp_pooled, wp_serial, "wp threads");
    EXPECT_EQ(wp_pooled.total_milp_nodes, wp_serial.total_milp_nodes);
    EXPECT_EQ(wp_pooled.any_relaxation_fallback,
              wp_serial.any_relaxation_fallback);

    const ProposedResult p_serial = serial.analyze_proposed(tasks, options);
    const ProposedResult p_pooled = pooled.analyze_proposed(tasks, options);
    expect_same_proposed(p_pooled, p_serial, "proposed threads");
    EXPECT_EQ(p_pooled.total_milp_nodes, p_serial.total_milp_nodes);
  }
}

// Injecting the WP verdict as greedy round 0 (what the experiment harness
// does) must be indistinguishable from letting the greedy loop compute
// round 0 itself: the all-NLS round-0 formulation coincides with WP's.
TEST(AnalysisEngine, WpRound0InjectionMatchesComputedRound0) {
  const AnalysisOptions options = exact_options();
  for (const TaskSet& tasks : corpus()) {
    AnalysisEngine engine_a, engine_b;
    const WpResult wp = engine_a.analyze_wp(tasks, options);
    const ProposedResult injected =
        engine_a.analyze_proposed(tasks, options, &wp);
    const ProposedResult computed = engine_b.analyze_proposed(tasks, options);
    expect_same_proposed(injected, computed, "round-0 injection");
  }
}

// The corpus must actually cover the greedy promotion path — otherwise the
// injection and re-run tests above would be vacuous for rounds > 1.
TEST(AnalysisEngine, CorpusExercisesGreedyPromotions) {
  const AnalysisOptions options = exact_options();
  std::size_t multi_round_sets = 0;
  AnalysisEngine engine;
  for (const TaskSet& tasks : corpus()) {
    if (engine.analyze_proposed(tasks, options).rounds > 1) {
      ++multi_round_sets;
    }
  }
  EXPECT_GE(multi_round_sets, 1u)
      << "tune the corpus: every set was WP-schedulable in round 0";
}

// Flipping LS flags back and forth retargets cached patchable formulations
// through column-bound patches; each marking must still bound exactly like
// a from-scratch build of that marking.
TEST(AnalysisEngine, LsMarkingPatchesMatchFreshBuilds) {
  const AnalysisOptions options = exact_options();
  TaskSet tasks({make_task("hp", 20, 8, 200, 150, 0),
                 make_task("mid", 35, 12, 300, 260, 1),
                 make_task("lp", 50, 15, 500, 420, 2)});
  AnalysisEngine warm;
  for (int pass = 0; pass < 2; ++pass) {
    for (int marking = 0; marking < 4; ++marking) {
      tasks[0].latency_sensitive = (marking & 1) != 0;
      tasks[1].latency_sensitive = (marking & 2) != 0;
      for (mcs::rt::TaskIndex i = 0; i < tasks.size(); ++i) {
        AnalysisEngine fresh;
        expect_same_bound(warm.bound_response_time(tasks, i, options),
                          fresh.bound_response_time(tasks, i, options),
                          "marking flip");
      }
    }
  }
}

// Changing task parameters (not flags) must invalidate carried state: the
// engine re-fingerprints on every call, so an edited task set analyzes as
// if the engine were new.
TEST(AnalysisEngine, ParameterEditDropsCarriedState) {
  const AnalysisOptions options = exact_options();
  TaskSet tasks({make_task("a", 20, 5, 200, 120, 0),
                 make_task("b", 30, 8, 300, 250, 1)});
  AnalysisEngine warm;
  (void)warm.analyze_wp(tasks, options);
  tasks[1].exec = 60;  // same shape, different numbers
  AnalysisEngine fresh;
  expect_same_wp(warm.analyze_wp(tasks, options),
                 fresh.analyze_wp(tasks, options), "after edit");
}

// The sensitivity search warm-starts each probe's fixpoints from the
// previous schedulable factor's WCRTs; its brackets must still be real:
// the reported max factor analyzes schedulable from scratch and the
// failing bracket does not.
TEST(AnalysisEngine, SensitivityWarmStartBracketsAreReal) {
  const TaskSet tasks({make_task("a", 20, 5, 200, 120, 0),
                       make_task("b", 30, 8, 300, 250, 1),
                       make_task("c", 25, 6, 400, 380, 2)});
  mcs::analysis::SensitivityOptions options;
  options.analysis = exact_options();
  options.tolerance = 0.05;
  AnalysisEngine engine;
  const auto result = engine.max_scaling_factor(
      tasks, Approach::kProposed,
      mcs::analysis::ScalingDimension::kMemoryPhases, options);
  ASSERT_GT(result.max_factor, 0.0);
  ASSERT_GT(result.min_failing_factor, result.max_factor);

  const auto scale_mem = [&](double factor) {
    TaskSet scaled = tasks;
    for (mcs::rt::TaskIndex i = 0; i < scaled.size(); ++i) {
      scaled[i].copy_in = static_cast<mcs::rt::Time>(
          std::ceil(static_cast<double>(scaled[i].copy_in) * factor));
      scaled[i].copy_out = static_cast<mcs::rt::Time>(
          std::ceil(static_cast<double>(scaled[i].copy_out) * factor));
    }
    return scaled;
  };
  AnalysisEngine fresh_lo, fresh_hi;
  EXPECT_TRUE(fresh_lo
                  .analyze(scale_mem(result.max_factor), Approach::kProposed,
                           options.analysis)
                  .schedulable);
  EXPECT_FALSE(fresh_hi
                   .analyze(scale_mem(result.min_failing_factor),
                            Approach::kProposed, options.analysis)
                   .schedulable);
}

}  // namespace
