// Differential tests for the warm-restart simplex path and the
// warm-started branch & bound: whatever the warm machinery does, it must
// agree with a cold solve on status and objective.  Also covers the
// cached-formulation patch path (update_delay_milp) and incumbent seeding.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/milp_formulation.hpp"
#include "analysis/window.hpp"
#include "gen/generator.hpp"
#include "lp/milp.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "rt/task.hpp"
#include "support/rng.hpp"

namespace {

using mcs::analysis::build_delay_milp;
using mcs::analysis::DelayMilp;
using mcs::analysis::FormulationCase;
using mcs::analysis::update_delay_milp;
using mcs::lp::Basis;
using mcs::lp::kInfinity;
using mcs::lp::LinExpr;
using mcs::lp::LpSolution;
using mcs::lp::MilpOptions;
using mcs::lp::MilpResult;
using mcs::lp::Model;
using mcs::lp::Relation;
using mcs::lp::Sense;
using mcs::lp::SimplexOptions;
using mcs::lp::SimplexSolver;
using mcs::lp::solve_lp;
using mcs::lp::solve_milp;
using mcs::lp::SolveStatus;
using mcs::lp::VarId;
using mcs::rt::Task;
using mcs::rt::TaskIndex;
using mcs::rt::TaskSet;
using mcs::rt::Time;
using mcs::support::Rng;

constexpr double kTol = 1e-6;

/// Objective agreement scaled to the magnitude of the problem.
void expect_same_optimum(const LpSolution& warm, const LpSolution& cold,
                         const char* label) {
  ASSERT_EQ(warm.status, cold.status) << label;
  if (cold.status != SolveStatus::kOptimal) return;
  const double scale = std::max(1.0, std::abs(cold.objective));
  EXPECT_NEAR(warm.objective, cold.objective, kTol * scale) << label;
}

/// A random bounded LP: every variable has a finite lower bound (the
/// warm-boundable column shape) and most have finite uppers.
Model random_bounded_lp(Rng& rng, std::size_t vars, std::size_t rows) {
  Model m;
  std::vector<VarId> xs;
  for (std::size_t v = 0; v < vars; ++v) {
    const double lo = static_cast<double>(rng.uniform_int(0, 3));
    const double hi = lo + static_cast<double>(rng.uniform_int(1, 8));
    xs.push_back(m.add_continuous(lo, hi, "x" + std::to_string(v)));
  }
  for (std::size_t r = 0; r < rows; ++r) {
    LinExpr lhs;
    for (const VarId x : xs) {
      if (rng.uniform01() < 0.6) {
        lhs += static_cast<double>(rng.uniform_int(-4, 6)) * LinExpr(x);
      }
    }
    const double rhs = static_cast<double>(rng.uniform_int(0, 40));
    const double roll = rng.uniform01();
    const Relation rel = roll < 0.5 ? Relation::kLe
                         : roll < 0.8 ? Relation::kGe
                                      : Relation::kEq;
    lhs += LinExpr(1.0 * static_cast<double>(rng.uniform_int(0, 2)));
    m.add_constraint(lhs, rel, rhs);
  }
  LinExpr obj;
  for (const VarId x : xs) {
    obj += static_cast<double>(rng.uniform_int(-5, 5)) * LinExpr(x);
  }
  m.set_objective(rng.uniform01() < 0.5 ? Sense::kMinimize : Sense::kMaximize,
                  obj);
  return m;
}

class WarmVsCold : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WarmVsCold, RandomBoundedLpBoundChangeChains) {
  Rng rng(GetParam() * 131 + 7);
  const std::size_t vars = 3 + GetParam() % 6;
  const std::size_t rows = 2 + GetParam() % 5;
  Model base = random_bounded_lp(rng, vars, rows);

  SimplexSolver warm_solver(base);
  Model cold_model = base;  // tracks the same bound changes

  // Mimic a branch & bound dive: a chain of bound tightenings with the
  // occasional relaxation back to a wider range, warm-solving after each.
  std::vector<std::pair<double, double>> current;
  for (std::size_t v = 0; v < vars; ++v) {
    current.emplace_back(base.variables()[v].lower,
                         base.variables()[v].upper);
  }
  Basis parent;
  for (std::size_t step = 0; step < 25; ++step) {
    const std::size_t v =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(vars) - 1));
    const auto [model_lo, model_hi] =
        std::pair(base.variables()[v].lower, base.variables()[v].upper);
    double lo = static_cast<double>(
        rng.uniform_int(static_cast<std::int64_t>(model_lo),
                        static_cast<std::int64_t>(model_hi)));
    double hi = static_cast<double>(
        rng.uniform_int(static_cast<std::int64_t>(lo),
                        static_cast<std::int64_t>(model_hi)));
    if (rng.uniform01() < 0.25) {  // relax back to the root range
      lo = model_lo;
      hi = model_hi;
    }
    warm_solver.set_bounds(VarId{v}, lo, hi);
    cold_model.set_bounds(VarId{v}, lo, hi);
    current[v] = {lo, hi};

    const LpSolution warm = warm_solver.solve_warm(
        parent.empty() || rng.uniform01() < 0.5 ? nullptr : &parent);
    const LpSolution cold = solve_lp(cold_model);
    expect_same_optimum(warm, cold,
                        ("step " + std::to_string(step)).c_str());
    if (warm.status == SolveStatus::kOptimal) {
      parent = warm_solver.basis();
    }
  }
}

TEST_P(WarmVsCold, DelayMilpRelaxationFixChains) {
  Rng rng(GetParam() * 977 + 3);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 4;
  cfg.utilization = rng.uniform(0.3, 0.5);
  cfg.gamma = rng.uniform(0.1, 0.4);
  TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    tasks[j].latency_sensitive = rng.uniform01() < 0.5;
  }
  const auto i =
      static_cast<TaskIndex>(rng.uniform_int(0, static_cast<std::int64_t>(tasks.size()) - 1));
  const Time t = tasks[i].period;
  DelayMilp milp = build_delay_milp(tasks, i, t, FormulationCase::kNls,
                                    /*ignore_ls=*/false);

  // Clamp every integral variable to its (finite) root range in a copy —
  // the same transformation branch & bound performs — then drive a chain
  // of 0/1 fixes through warm and cold solvers.
  Model root = milp.model;
  std::vector<std::size_t> ints;
  for (std::size_t v = 0; v < root.num_variables(); ++v) {
    if (root.variables()[v].type != mcs::lp::VarType::kContinuous) {
      ints.push_back(v);
      root.set_bounds(VarId{v}, std::ceil(root.variables()[v].lower),
                      std::floor(root.variables()[v].upper));
    }
  }
  ASSERT_FALSE(ints.empty());

  SimplexSolver warm_solver(root);
  Model cold_model = root;
  Basis parent;
  for (std::size_t step = 0; step < 30; ++step) {
    const std::size_t v = ints[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ints.size()) - 1))];
    const double root_lo = root.variables()[v].lower;
    const double root_hi = root.variables()[v].upper;
    double lo = root_lo;
    double hi = root_hi;
    if (rng.uniform01() < 0.7) {  // fix to one endpoint, as branching does
      lo = hi = rng.uniform01() < 0.5 ? root_lo : root_hi;
    }
    warm_solver.set_bounds(VarId{v}, lo, hi);
    cold_model.set_bounds(VarId{v}, lo, hi);

    const LpSolution warm = warm_solver.solve_warm(
        parent.empty() || rng.uniform01() < 0.5 ? nullptr : &parent);
    const LpSolution cold = solve_lp(cold_model);
    expect_same_optimum(warm, cold,
                        ("relaxation step " + std::to_string(step)).c_str());
    if (warm.status == SolveStatus::kOptimal) {
      parent = warm_solver.basis();
    }
  }
}

TEST_P(WarmVsCold, BranchAndBoundSameOptimumWarmOnAndOff) {
  Rng rng(GetParam() * 313 + 11);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 4;
  cfg.utilization = rng.uniform(0.3, 0.5);
  cfg.gamma = rng.uniform(0.1, 0.4);
  TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    tasks[j].latency_sensitive = rng.uniform01() < 0.4;
  }
  const auto i =
      static_cast<TaskIndex>(rng.uniform_int(0, static_cast<std::int64_t>(tasks.size()) - 1));
  // Half-period window: full-period NLS instances at this utilization can
  // take minutes to prove optimal, which is tree size, not coverage — the
  // warm/cold agreement being tested is exercised on any nontrivial tree.
  const DelayMilp milp =
      build_delay_milp(tasks, i, tasks[i].period / 2, FormulationCase::kNls,
                       /*ignore_ls=*/false);

  MilpOptions opt;
  opt.relative_gap = 0.0;  // prove optimality: the optimum value is unique
  opt.max_nodes = 50000;
  // Branch the Constraint 13 selectors first, exactly as the analysis
  // configures its solves — without this, proving optimality is orders of
  // magnitude slower and the test would time out.
  opt.branch_priority.assign(milp.model.num_variables(), 0);
  for (const VarId alpha : milp.alpha_vars) {
    opt.branch_priority[alpha.index] = 1;
  }
  opt.use_warm_start = true;
  const MilpResult warm = solve_milp(milp.model, opt);
  opt.use_warm_start = false;
  const MilpResult cold = solve_milp(milp.model, opt);

  ASSERT_EQ(warm.status, cold.status);
  if (cold.status != SolveStatus::kOptimal) return;
  ASSERT_TRUE(warm.has_incumbent);
  ASSERT_TRUE(cold.has_incumbent);
  const double scale = std::max(1.0, std::abs(cold.objective));
  EXPECT_NEAR(warm.objective, cold.objective, kTol * scale);
  EXPECT_NEAR(warm.best_bound, cold.best_bound, kTol * scale);
  EXPECT_TRUE(milp.model.is_feasible(warm.values, 1e-6));
  EXPECT_TRUE(milp.model.is_feasible(cold.values, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmVsCold,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(MilpStartValues, FeasibleIncumbentSeedsTheSearch) {
  // max x + y, x,y integer in [0,5], x + y <= 7.
  Model m;
  const VarId x = m.add_integer(0, 5, "x");
  const VarId y = m.add_integer(0, 5, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kLe, 7.0);
  m.set_objective(Sense::kMaximize, LinExpr(x) + LinExpr(y));

  MilpOptions opt;
  opt.start_values = {2.0, 5.0};  // feasible, objective 7 = optimum
  const MilpResult res = solve_milp(m, opt);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 7.0, kTol);
}

TEST(MilpStartValues, InfeasibleOrFractionalSeedIsIgnored) {
  Model m;
  const VarId x = m.add_integer(0, 5, "x");
  const VarId y = m.add_integer(0, 5, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kLe, 7.0);
  m.set_objective(Sense::kMaximize, LinExpr(x) + LinExpr(y));

  MilpOptions opt;
  opt.start_values = {9.0, 9.0};  // violates bounds and the constraint
  MilpResult res = solve_milp(m, opt);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 7.0, kTol);

  opt.start_values = {0.5, 0.5};  // fractional: must not become incumbent
  res = solve_milp(m, opt);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 7.0, kTol);
}

Task make_task(std::string name, Time exec, Time mem, Time period,
               Time deadline, mcs::rt::Priority priority, bool ls = false) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = mem;
  t.copy_out = mem;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  t.latency_sensitive = ls;
  return t;
}

TEST(UpdateDelayMilp, PatchEqualsRebuild) {
  const TaskSet tasks({make_task("s", 2, 1, 30, 10, 0, true),
                       make_task("a", 4, 2, 40, 30, 1),
                       make_task("b", 3, 1, 50, 45, 2),
                       make_task("c", 5, 2, 80, 70, 3)});
  // Case (b) always has two intervals, so any pair of window lengths is a
  // legal patch target; budgets and the cancellation budget change with t.
  const TaskIndex i = 0;
  for (const Time t0 : {Time{5}, Time{40}}) {
    DelayMilp cached =
        build_delay_milp(tasks, i, t0, FormulationCase::kLsCaseB);
    for (const Time t1 : {Time{0}, Time{35}, Time{90}, Time{160}}) {
      update_delay_milp(cached, tasks, i, t1);
      const DelayMilp fresh =
          build_delay_milp(tasks, i, t1, FormulationCase::kLsCaseB);
      ASSERT_EQ(cached.model.num_constraints(),
                fresh.model.num_constraints());
      for (std::size_t c = 0; c < fresh.model.num_constraints(); ++c) {
        EXPECT_DOUBLE_EQ(cached.model.constraints()[c].rhs,
                         fresh.model.constraints()[c].rhs)
            << "t0=" << t0 << " t1=" << t1 << " constraint " << c;
      }
      const MilpResult a = solve_milp(cached.model);
      const MilpResult b = solve_milp(fresh.model);
      ASSERT_EQ(a.status, b.status);
      EXPECT_NEAR(a.objective, b.objective, kTol);
    }
  }
}

TEST(UpdateDelayMilp, PatchMatchesRebuildAcrossGrowingWindows) {
  // NLS case: find two window lengths with the same interval count and
  // check the patched model solves to the rebuilt model's optimum.
  const TaskSet tasks({make_task("s", 2, 1, 30, 10, 0, true),
                       make_task("a", 4, 2, 40, 30, 1),
                       make_task("b", 3, 1, 50, 45, 2),
                       make_task("c", 5, 2, 80, 70, 3)});
  const TaskIndex i = 2;
  const Time t0 = 20;
  const std::size_t n0 =
      mcs::analysis::window_intervals_nls(tasks, i, t0);
  Time t1 = t0 + 1;
  while (mcs::analysis::window_intervals_nls(tasks, i, t1) == n0) {
    ++t1;
  }
  --t1;  // largest window with the same interval count
  ASSERT_GT(t1, t0);

  DelayMilp cached = build_delay_milp(tasks, i, t0, FormulationCase::kNls);
  update_delay_milp(cached, tasks, i, t1);
  const DelayMilp fresh =
      build_delay_milp(tasks, i, t1, FormulationCase::kNls);
  ASSERT_EQ(cached.model.num_constraints(), fresh.model.num_constraints());
  for (std::size_t c = 0; c < fresh.model.num_constraints(); ++c) {
    EXPECT_DOUBLE_EQ(cached.model.constraints()[c].rhs,
                     fresh.model.constraints()[c].rhs)
        << "constraint " << c;
  }
  const MilpResult a = solve_milp(cached.model);
  const MilpResult b = solve_milp(fresh.model);
  ASSERT_EQ(a.status, b.status);
  EXPECT_NEAR(a.objective, b.objective, kTol);
}

}  // namespace
