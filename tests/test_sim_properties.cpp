// Property-based validation of the protocol implementation: the paper's
// Properties 1-4 (and the engine's structural invariants) must hold on
// randomized task sets under randomized sporadic release patterns.  These
// tests are the executable counterpart of the proofs in §IV-B.
#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "sim/checker.hpp"
#include "sim/engine.hpp"
#include "sim/job_source.hpp"
#include "support/rng.hpp"

namespace {

using mcs::gen::GeneratorConfig;
using mcs::gen::generate_task_set;
using mcs::rt::TaskSet;
using mcs::rt::Time;
using mcs::sim::check_trace;
using mcs::sim::count_blocking_intervals;
using mcs::sim::Protocol;
using mcs::sim::random_sporadic_releases;
using mcs::sim::simulate;
using mcs::sim::synchronous_periodic_releases;
using mcs::sim::Trace;
using mcs::support::Rng;

struct PropertyCase {
  std::uint64_t seed;
  Protocol protocol;
};

class ProtocolProperties : public ::testing::TestWithParam<PropertyCase> {};

std::string explain(const mcs::sim::CheckResult& result) {
  std::string out;
  for (const auto& v : result.violations) {
    out += v + "\n";
  }
  return out;
}

TEST_P(ProtocolProperties, RandomTracesSatisfyAllInvariants) {
  const auto [seed, protocol] = GetParam();
  Rng rng(seed);
  GeneratorConfig cfg;
  cfg.num_tasks = 2 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  cfg.utilization = rng.uniform(0.2, 0.65);
  cfg.gamma = rng.uniform(0.05, 0.5);
  cfg.beta = rng.uniform(0.1, 0.9);
  TaskSet tasks = generate_task_set(cfg, rng);

  // Random latency-sensitive subset (only meaningful for kProposed).
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].latency_sensitive = rng.bernoulli(0.4);
  }

  const Time horizon = 400 * mcs::rt::kTicksPerUnit;
  const auto releases = rng.bernoulli(0.5)
                            ? synchronous_periodic_releases(tasks, horizon)
                            : random_sporadic_releases(tasks, horizon,
                                                       /*max_slack=*/0.8, rng);
  const Trace trace = simulate(tasks, protocol, releases);
  const auto check = check_trace(tasks, protocol, trace);
  EXPECT_TRUE(check.ok()) << explain(check);
}

std::vector<PropertyCase> make_cases() {
  std::vector<PropertyCase> cases;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    cases.push_back({seed, Protocol::kProposed});
  }
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    cases.push_back({seed + 100, Protocol::kWasilyPellizzoni});
    cases.push_back({seed + 200, Protocol::kNonPreemptive});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProtocolProperties,
                         ::testing::ValuesIn(make_cases()),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param.protocol)) +
                                  "_seed" + std::to_string(param_info.param.seed);
                         });

// ---------------------------------------------------------------------------
// Focused property: LS jobs in all-LS task sets never see more than one
// blocking interval, even under adversarial (randomized) release offsets.
// ---------------------------------------------------------------------------

class LsBlockingBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LsBlockingBound, AtMostOneBlockingInterval) {
  Rng rng(GetParam() * 31 + 7);
  GeneratorConfig cfg;
  cfg.num_tasks = 4;
  cfg.utilization = rng.uniform(0.3, 0.6);
  cfg.gamma = rng.uniform(0.1, 0.5);
  TaskSet tasks = generate_task_set(cfg, rng);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].latency_sensitive = true;
  }
  const Time horizon = 300 * mcs::rt::kTicksPerUnit;
  const auto releases =
      random_sporadic_releases(tasks, horizon, 1.0, rng);
  const Trace trace = simulate(tasks, Protocol::kProposed, releases);
  for (const auto& job : trace.jobs) {
    if (!job.completed() || job.ready_time != job.release) continue;
    EXPECT_LE(count_blocking_intervals(tasks, trace, job), 1u)
        << "job of task " << tasks[job.id.task].name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsBlockingBound,
                         ::testing::Range<std::uint64_t>(0, 30));

// ---------------------------------------------------------------------------
// Focused property: under WP (no LS machinery) blocking never exceeds two
// intervals — the bound [3] proves and the paper's analysis encodes.
// ---------------------------------------------------------------------------

class NlsBlockingBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NlsBlockingBound, AtMostTwoBlockingIntervals) {
  Rng rng(GetParam() * 17 + 3);
  GeneratorConfig cfg;
  cfg.num_tasks = 5;
  cfg.utilization = rng.uniform(0.3, 0.7);
  cfg.gamma = rng.uniform(0.1, 0.5);
  const TaskSet tasks = generate_task_set(cfg, rng);
  const Time horizon = 300 * mcs::rt::kTicksPerUnit;
  const auto releases =
      random_sporadic_releases(tasks, horizon, 1.0, rng);
  const Trace trace = simulate(tasks, Protocol::kWasilyPellizzoni, releases);
  for (const auto& job : trace.jobs) {
    if (!job.completed() || job.ready_time != job.release) continue;
    EXPECT_LE(count_blocking_intervals(tasks, trace, job), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NlsBlockingBound,
                         ::testing::Range<std::uint64_t>(0, 30));

// ---------------------------------------------------------------------------
// Work conservation sanity: every released job of a feasible, lightly
// loaded set completes under every protocol.
// ---------------------------------------------------------------------------

class LightLoadCompletion : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LightLoadCompletion, AllJobsComplete) {
  Rng rng(GetParam() + 500);
  GeneratorConfig cfg;
  cfg.num_tasks = 3;
  cfg.utilization = 0.3;
  cfg.gamma = 0.2;
  const TaskSet tasks = generate_task_set(cfg, rng);
  const Time horizon = 500 * mcs::rt::kTicksPerUnit;
  const auto releases = synchronous_periodic_releases(tasks, horizon);
  for (const Protocol p :
       {Protocol::kProposed, Protocol::kWasilyPellizzoni,
        Protocol::kNonPreemptive}) {
    const Trace trace = simulate(tasks, p, releases);
    EXPECT_FALSE(trace.aborted);
    for (const auto& job : trace.jobs) {
      EXPECT_TRUE(job.completed()) << to_string(p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LightLoadCompletion,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
