#include "rt/arrival_estimation.hpp"

#include <gtest/gtest.h>

#include "rt/arrival.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace {

using mcs::rt::ArrivalCurvePtr;
using mcs::rt::estimate_arrival_curve;
using mcs::rt::SporadicArrival;
using mcs::rt::Time;

TEST(ArrivalEstimation, PeriodicTraceRecoversSporadicCurve) {
  std::vector<Time> releases;
  for (Time t = 0; t <= 100; t += 10) {
    releases.push_back(t);
  }
  const ArrivalCurvePtr estimated = estimate_arrival_curve(releases);
  const SporadicArrival truth(10);
  for (Time delta = 0; delta <= 100; ++delta) {
    EXPECT_EQ(estimated->releases_in(delta), truth.releases_in(delta))
        << "delta " << delta;
  }
}

TEST(ArrivalEstimation, SingleReleaseIsOneForever) {
  const ArrivalCurvePtr curve = estimate_arrival_curve({42});
  EXPECT_EQ(curve->releases_in(0), 0u);
  EXPECT_EQ(curve->releases_in(1), 1u);
  EXPECT_EQ(curve->releases_in(1'000'000), 1u);
}

TEST(ArrivalEstimation, BurstIsCaptured) {
  // Three releases back-to-back, then a long gap, then one more.
  const ArrivalCurvePtr curve =
      estimate_arrival_curve({0, 1, 2, 100});
  EXPECT_EQ(curve->releases_in(1), 1u);
  EXPECT_EQ(curve->releases_in(2), 2u);   // window (length 2) holds {0,1}
  EXPECT_EQ(curve->releases_in(3), 3u);   // {0,1,2}
  EXPECT_EQ(curve->releases_in(50), 3u);  // the burst dominates
  EXPECT_EQ(curve->releases_in(101), 4u);
}

TEST(ArrivalEstimation, UnsortedAndDuplicateInput) {
  const ArrivalCurvePtr curve = estimate_arrival_curve({30, 0, 30, 10});
  // Duplicate releases at 30: any tiny window already holds 2.
  EXPECT_EQ(curve->releases_in(1), 2u);
  EXPECT_EQ(curve->releases_in(31), 4u);
}

TEST(ArrivalEstimation, EmptyInputRejected) {
  EXPECT_THROW(estimate_arrival_curve({}),
               mcs::support::ContractViolation);
}

TEST(ArrivalEstimation, EstimateNeverExceedsGroundTruthOnRandomTraces) {
  // Draw sporadic traces with inter-arrivals >= T; the estimated curve
  // must stay at or below the sporadic bound (it has seen only a subset of
  // the behaviours the bound covers).
  mcs::support::Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const Time period = rng.uniform_int(5, 50);
    std::vector<Time> releases;
    Time t = rng.uniform_int(0, period);
    for (int k = 0; k < 40; ++k) {
      releases.push_back(t);
      t += period + rng.uniform_int(0, period);
    }
    const ArrivalCurvePtr estimated = estimate_arrival_curve(releases);
    const SporadicArrival truth(period);
    for (Time delta = 0; delta <= 20 * period; delta += period / 2 + 1) {
      EXPECT_LE(estimated->releases_in(delta), truth.releases_in(delta))
          << "period " << period << " delta " << delta;
    }
  }
}

TEST(ArrivalEstimation, MonotoneNonDecreasing) {
  const ArrivalCurvePtr curve =
      estimate_arrival_curve({0, 3, 4, 9, 11, 20});
  std::uint64_t prev = 0;
  for (Time delta = 0; delta <= 25; ++delta) {
    const std::uint64_t now = curve->releases_in(delta);
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
