// Metamorphic properties of the response-time analysis: inflating any
// workload parameter can never *decrease* a WCRT bound, and removing a task
// can never increase the bounds of the others.  These catch sign errors and
// missing terms that point tests cannot.
#include <gtest/gtest.h>

#include "analysis/response_time.hpp"
#include "gen/generator.hpp"
#include "rt/task.hpp"
#include "support/rng.hpp"

namespace {

using mcs::analysis::bound_response_time;
using mcs::rt::TaskIndex;
using mcs::rt::TaskSet;
using mcs::rt::Time;
using mcs::support::Rng;

TaskSet random_set(std::uint64_t seed, std::size_t n = 3) {
  Rng rng(seed);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = n;
  cfg.utilization = rng.uniform(0.2, 0.5);
  cfg.gamma = rng.uniform(0.1, 0.4);
  cfg.beta = 0.8;  // loose deadlines so bounds stay finite
  TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
  // Stretch deadlines so iteration converges rather than aborting at D.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].deadline = tasks[i].period;
  }
  return tasks;
}

/// WCRT of every task (kTimeMax when unbounded).  Solved to proven
/// optimality: with the default 0.5% relative gap the dual-bound wobble
/// between two nearby instances can mask strict monotonicity.
std::vector<Time> all_bounds(const TaskSet& tasks) {
  mcs::analysis::AnalysisOptions exact;
  exact.milp.relative_gap = 0.0;
  exact.milp.max_nodes = 200000;
  std::vector<Time> result;
  for (TaskIndex i = 0; i < tasks.size(); ++i) {
    result.push_back(bound_response_time(tasks, i, exact).wcrt);
  }
  return result;
}

void expect_pointwise_ge(const std::vector<Time>& grown,
                         const std::vector<Time>& base,
                         const char* label) {
  ASSERT_EQ(grown.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (base[i] == mcs::rt::kTimeMax) continue;
    if (grown[i] == mcs::rt::kTimeMax) continue;  // grew past the deadline
    EXPECT_GE(grown[i], base[i]) << label << ", task " << i;
  }
}

class AnalysisMonotonicity : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AnalysisMonotonicity, InflatingExecutionTime) {
  TaskSet tasks = random_set(GetParam() * 7 + 1);
  const auto base = all_bounds(tasks);
  Rng rng(GetParam());
  const auto victim = static_cast<TaskIndex>(
      rng.uniform_int(0, static_cast<std::int64_t>(tasks.size()) - 1));
  tasks[victim].exec += tasks[victim].exec / 2 + 1;
  expect_pointwise_ge(all_bounds(tasks), base, "exec inflation");
}

TEST_P(AnalysisMonotonicity, InflatingMemoryPhases) {
  TaskSet tasks = random_set(GetParam() * 7 + 2);
  const auto base = all_bounds(tasks);
  Rng rng(GetParam());
  const auto victim = static_cast<TaskIndex>(
      rng.uniform_int(0, static_cast<std::int64_t>(tasks.size()) - 1));
  tasks[victim].copy_in += tasks[victim].copy_in / 2 + 1;
  tasks[victim].copy_out += tasks[victim].copy_out / 2 + 1;
  expect_pointwise_ge(all_bounds(tasks), base, "memory inflation");
}

TEST_P(AnalysisMonotonicity, ShrinkingAPeriod) {
  // A shorter period means more interference for lower-priority tasks.
  TaskSet tasks = random_set(GetParam() * 7 + 3);
  const auto base = all_bounds(tasks);
  const auto order = tasks.by_priority();
  const TaskIndex top = order.front();
  tasks[top].period = std::max<Time>(1, tasks[top].period / 2);
  tasks[top].deadline = std::min(tasks[top].deadline, tasks[top].period);
  tasks[top].arrival = mcs::rt::make_sporadic(tasks[top].period);
  const auto grown = all_bounds(tasks);
  // Only compare tasks other than the modified one (its own window and
  // deadline changed).
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (i == top) continue;
    if (base[i] == mcs::rt::kTimeMax || grown[i] == mcs::rt::kTimeMax) {
      continue;
    }
    EXPECT_GE(grown[i], base[i]) << "task " << i;
  }
}

TEST_P(AnalysisMonotonicity, RemovingATaskNeverHurtsTheRest) {
  TaskSet tasks = random_set(GetParam() * 7 + 4, 4);
  const auto base = all_bounds(tasks);
  // Drop the last task; rebuild the set.
  std::vector<mcs::rt::Task> remaining(tasks.tasks().begin(),
                                       tasks.tasks().end() - 1);
  TaskSet smaller(std::move(remaining));
  mcs::analysis::AnalysisOptions exact;
  exact.milp.relative_gap = 0.0;
  exact.milp.max_nodes = 200000;
  for (TaskIndex i = 0; i < smaller.size(); ++i) {
    const Time shrunk = bound_response_time(smaller, i, exact).wcrt;
    if (shrunk == mcs::rt::kTimeMax || base[i] == mcs::rt::kTimeMax) {
      continue;
    }
    EXPECT_LE(shrunk, base[i]) << "task " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisMonotonicity,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
