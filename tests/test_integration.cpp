// End-to-end integration tests: generator -> analysis (all approaches) ->
// simulator -> checker, plus cross-component consistency that none of the
// per-module suites can see.
#include <gtest/gtest.h>

#include "analysis/schedulability.hpp"
#include "exp/experiment.hpp"
#include "gen/generator.hpp"
#include "sim/checker.hpp"
#include "sim/engine.hpp"
#include "sim/job_source.hpp"
#include "support/rng.hpp"

namespace {

using mcs::analysis::AnalysisOptions;
using mcs::analysis::analyze;
using mcs::analysis::Approach;
using mcs::gen::GeneratorConfig;
using mcs::gen::generate_task_set;
using mcs::rt::kTicksPerUnit;
using mcs::rt::TaskSet;
using mcs::sim::Protocol;
using mcs::support::Rng;

TEST(Integration, FullPipelineOnOneTaskSet) {
  Rng rng(1234);
  GeneratorConfig cfg;
  cfg.num_tasks = 4;
  cfg.utilization = 0.35;
  cfg.gamma = 0.25;
  cfg.beta = 0.5;
  TaskSet tasks = generate_task_set(cfg, rng);

  const auto proposed = analyze(tasks, Approach::kProposed);
  const auto wp = analyze(tasks, Approach::kWasilyPellizzoni);
  const auto nps = analyze(tasks, Approach::kNonPreemptive);

  // Greedy containment at the task-set level.
  if (wp.schedulable) {
    EXPECT_TRUE(proposed.schedulable);
  }

  // Every schedulable verdict must be confirmed by simulation.
  struct Case {
    Approach approach;
    Protocol protocol;
    const mcs::analysis::ApproachResult* result;
  };
  const Case cases[] = {
      {Approach::kProposed, Protocol::kProposed, &proposed},
      {Approach::kWasilyPellizzoni, Protocol::kWasilyPellizzoni, &wp},
      {Approach::kNonPreemptive, Protocol::kNonPreemptive, &nps},
  };
  for (const Case& c : cases) {
    if (!c.result->schedulable) continue;
    TaskSet marked = tasks;
    for (std::size_t i = 0; i < marked.size(); ++i) {
      marked[i].latency_sensitive = c.result->ls_flags[i];
    }
    const auto releases =
        mcs::sim::synchronous_periodic_releases(marked, 500 * kTicksPerUnit);
    const auto trace = mcs::sim::simulate(marked, c.protocol, releases);
    EXPECT_TRUE(trace.all_deadlines_met()) << to_string(c.approach);
    EXPECT_TRUE(
        mcs::sim::check_trace(marked, c.protocol, trace).ok())
        << to_string(c.approach);
  }
}

TEST(Integration, AnalysisIsDeterministic) {
  Rng rng(77);
  GeneratorConfig cfg;
  cfg.num_tasks = 4;
  cfg.utilization = 0.4;
  cfg.gamma = 0.3;
  const TaskSet tasks = generate_task_set(cfg, rng);
  const auto a = analyze(tasks, Approach::kProposed);
  const auto b = analyze(tasks, Approach::kProposed);
  EXPECT_EQ(a.schedulable, b.schedulable);
  EXPECT_EQ(a.wcrt, b.wcrt);
  EXPECT_EQ(a.ls_flags, b.ls_flags);
}

TEST(Integration, ExperimentPointMatchesManualLoop) {
  // One sweep point run through the harness must agree with analyzing the
  // same generated task sets by hand.
  mcs::exp::ExperimentConfig cfg;
  cfg.name = "manual";
  cfg.title = "cross-check";
  cfg.base.num_tasks = 3;
  cfg.base.gamma = 0.2;
  cfg.base.beta = 0.3;
  cfg.sweep = mcs::exp::SweepParam::kUtilization;
  cfg.values = {0.3};
  cfg.tasksets_per_point = 6;
  cfg.seed = 99;
  cfg.threads = 1;
  const auto result = mcs::exp::run_experiment(cfg);
  ASSERT_EQ(result.points.size(), 1u);

  // Reproduce the harness's RNG discipline: one stream per (seed, point,
  // slot) tuple via derive_seed (see sweep_runner.hpp).
  std::size_t ok_nps = 0, ok_wp = 0, ok_prop = 0;
  for (std::size_t s = 0; s < cfg.tasksets_per_point; ++s) {
    GeneratorConfig g = cfg.base;
    g.utilization = 0.3;
    Rng rng(mcs::support::derive_seed(cfg.seed, 0, s));
    const TaskSet tasks = generate_task_set(g, rng);
    if (analyze(tasks, Approach::kNonPreemptive, cfg.analysis).schedulable) {
      ++ok_nps;
    }
    const bool wp =
        analyze(tasks, Approach::kWasilyPellizzoni, cfg.analysis).schedulable;
    ok_wp += wp ? std::size_t{1} : std::size_t{0};
    ok_prop += (wp || analyze(tasks, Approach::kProposed,
                              cfg.analysis).schedulable)
                   ? std::size_t{1}
                   : std::size_t{0};
  }
  EXPECT_EQ(result.points[0].schedulable_nps, ok_nps);
  EXPECT_EQ(result.points[0].schedulable_wp, ok_wp);
  EXPECT_EQ(result.points[0].schedulable_proposed, ok_prop);
}

TEST(Integration, MulticorePartitionAnalyzesPerCore) {
  // The paper's partitioned-multicore story: generate a big set, partition
  // worst-fit, analyze each core in isolation (Section II).
  Rng rng(31);
  GeneratorConfig cfg;
  cfg.num_tasks = 9;
  cfg.utilization = 0.9;  // across 3 cores
  cfg.gamma = 0.2;
  const TaskSet flat = generate_task_set(cfg, rng);
  const auto cores = mcs::gen::partition_worst_fit(
      {flat.tasks().begin(), flat.tasks().end()}, 3);
  ASSERT_EQ(cores.size(), 3u);
  for (const TaskSet& core : cores) {
    if (core.empty()) continue;
    const auto result = analyze(core, Approach::kProposed);
    EXPECT_EQ(result.wcrt.size(), core.size());
    // Every per-core analysis must terminate with a verdict; low per-core
    // utilization makes these schedulable in practice.
    EXPECT_TRUE(result.schedulable);
  }
}

TEST(Integration, LpRelaxationModeRunsEndToEnd) {
  Rng rng(55);
  GeneratorConfig cfg;
  cfg.num_tasks = 5;
  cfg.utilization = 0.4;
  cfg.gamma = 0.3;
  const TaskSet tasks = generate_task_set(cfg, rng);
  AnalysisOptions fast;
  fast.lp_relaxation_only = true;
  const auto relaxed = analyze(tasks, Approach::kProposed, fast);
  const auto exact = analyze(tasks, Approach::kProposed);
  // Relaxation never accepts a set the exact analysis rejects.
  if (relaxed.schedulable) {
    EXPECT_TRUE(exact.schedulable);
  }
}

}  // namespace
