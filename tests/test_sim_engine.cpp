#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "sim/checker.hpp"
#include "support/contracts.hpp"
#include "sim/job_source.hpp"

namespace {

using mcs::rt::Task;
using mcs::rt::TaskSet;
using mcs::rt::Time;
using mcs::sim::check_trace;
using mcs::sim::CopyInOutcome;
using mcs::sim::CpuAction;
using mcs::sim::JobId;
using mcs::sim::Protocol;
using mcs::sim::Release;
using mcs::sim::simulate;
using mcs::sim::Trace;

Task make_task(std::string name, Time exec, Time copy_in, Time copy_out,
               Time period, Time deadline, mcs::rt::Priority priority,
               bool ls = false) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = copy_in;
  t.copy_out = copy_out;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  t.latency_sensitive = ls;
  return t;
}

// ---------------------------------------------------------------------------
// Single-job scenarios: exact hand-computed timelines.
// ---------------------------------------------------------------------------

TEST(SimSingleJob, ThreePhasePipelineUnderProposed) {
  const TaskSet tasks({make_task("a", 5, 2, 1, 100, 100, 0)});
  const Trace trace =
      simulate(tasks, Protocol::kProposed, {{JobId{0, 0}, 0}});
  // I_0 copy-in [0,2), I_1 exec [2,7), I_2 copy-out [7,8).
  ASSERT_EQ(trace.intervals.size(), 3u);
  EXPECT_EQ(trace.intervals[0].copy_in_outcome, CopyInOutcome::kCompleted);
  EXPECT_EQ(trace.intervals[0].end, 2);
  EXPECT_EQ(trace.intervals[1].cpu_action, CpuAction::kExecute);
  EXPECT_EQ(trace.intervals[1].end, 7);
  EXPECT_EQ(trace.intervals[2].copy_out_duration, 1);
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.jobs[0].exec_start, 2);
  EXPECT_EQ(trace.jobs[0].completion, 8);
  EXPECT_EQ(trace.jobs[0].response_time(), 8);
  EXPECT_TRUE(check_trace(tasks, Protocol::kProposed, trace).ok());
}

TEST(SimSingleJob, ResponseEqualsTotalDemandForIsolatedJob) {
  const TaskSet tasks({make_task("a", 7, 3, 2, 100, 100, 0)});
  for (const Protocol p : {Protocol::kProposed, Protocol::kWasilyPellizzoni,
                           Protocol::kNonPreemptive}) {
    const Trace trace = simulate(tasks, p, {{JobId{0, 0}, 5}});
    ASSERT_EQ(trace.jobs.size(), 1u);
    EXPECT_EQ(trace.jobs[0].response_time(), 12) << to_string(p);
  }
}

TEST(SimSingleJob, ZeroMemoryPhases) {
  const TaskSet tasks({make_task("a", 4, 0, 0, 50, 50, 0)});
  const Trace trace =
      simulate(tasks, Protocol::kProposed, {{JobId{0, 0}, 0}});
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.jobs[0].response_time(), 4);
  EXPECT_TRUE(check_trace(tasks, Protocol::kProposed, trace).ok());
}

TEST(SimSingleJob, LateReleaseStartsIdleInterval) {
  const TaskSet tasks({make_task("a", 2, 1, 1, 100, 100, 0)});
  const Trace trace =
      simulate(tasks, Protocol::kProposed, {{JobId{0, 0}, 42}});
  ASSERT_FALSE(trace.intervals.empty());
  EXPECT_EQ(trace.intervals[0].start, 42);
  EXPECT_EQ(trace.jobs[0].completion, 42 + 4);
}

// ---------------------------------------------------------------------------
// Two-job pipelining: DMA copy-in of the next task overlaps execution.
// ---------------------------------------------------------------------------

TEST(SimPipeline, CopyInOverlapsExecution) {
  const TaskSet tasks({make_task("A", 5, 2, 1, 100, 100, 0),
                       make_task("B", 4, 3, 2, 100, 100, 1)});
  const Trace trace = simulate(tasks, Protocol::kProposed,
                               {{JobId{0, 0}, 0}, {JobId{1, 0}, 0}});
  // I_0 [0,2): copy-in A.  I_1 [2,7): exec A || copy-in B.
  // I_2 [7,11): exec B || copy-out A.  I_3 [11,13): copy-out B.
  ASSERT_EQ(trace.intervals.size(), 4u);
  EXPECT_EQ(trace.intervals[1].end, 7);
  EXPECT_EQ(trace.intervals[1].cpu_action, CpuAction::kExecute);
  EXPECT_EQ(trace.intervals[1].copy_in_outcome, CopyInOutcome::kCompleted);
  EXPECT_EQ(trace.intervals[2].copy_out_duration, 1);
  EXPECT_EQ(trace.jobs[0].completion, 8);   // copy-out A inside I_2
  EXPECT_EQ(trace.jobs[1].completion, 13);
  EXPECT_TRUE(check_trace(tasks, Protocol::kProposed, trace).ok());
}

TEST(SimPipeline, WpAndProposedIdenticalWithoutLsTasks) {
  const TaskSet tasks({make_task("A", 5, 2, 1, 40, 40, 0),
                       make_task("B", 4, 3, 2, 60, 60, 1),
                       make_task("C", 3, 1, 1, 80, 80, 2)});
  const auto releases =
      mcs::sim::synchronous_periodic_releases(tasks, 200);
  const Trace wp = simulate(tasks, Protocol::kWasilyPellizzoni, releases);
  const Trace prop = simulate(tasks, Protocol::kProposed, releases);
  ASSERT_EQ(wp.jobs.size(), prop.jobs.size());
  for (std::size_t j = 0; j < wp.jobs.size(); ++j) {
    EXPECT_EQ(wp.jobs[j].completion, prop.jobs[j].completion);
  }
  EXPECT_EQ(wp.intervals.size(), prop.intervals.size());
}

// ---------------------------------------------------------------------------
// The Figure 1 phenomenon: double blocking under [3], rescued by R3-R5.
// ---------------------------------------------------------------------------

class Figure1Scenario : public ::testing::Test {
 protected:
  // hi is released just after lp2's copy-in completed; under [3] it then
  // waits for lp1's and lp2's executions (two blocking intervals) and
  // misses; NPS (single blocking) and the proposed protocol (cancellation
  // via R3 + urgent promotion via R4/R5) both meet the deadline.
  TaskSet make_tasks(bool hi_is_ls) {
    return TaskSet({make_task("hi", 3, 1, 1, 100, 10, 0, hi_is_ls),
                    make_task("lp1", 4, 1, 1, 100, 100, 1),
                    make_task("lp2", 4, 1, 1, 100, 100, 2)});
  }
  const std::vector<Release> releases_{
      {JobId{1, 0}, 0}, {JobId{2, 0}, 0}, {JobId{0, 0}, 2}};
};

TEST_F(Figure1Scenario, WpDoubleBlockingMissesDeadline) {
  const TaskSet tasks = make_tasks(false);
  const Trace trace =
      simulate(tasks, Protocol::kWasilyPellizzoni, releases_);
  EXPECT_TRUE(check_trace(tasks, Protocol::kWasilyPellizzoni, trace).ok());
  // hi completes at 13 > absolute deadline 12.
  EXPECT_EQ(trace.jobs[2].completion, 13);
  EXPECT_TRUE(trace.jobs[2].missed_deadline());
}

TEST_F(Figure1Scenario, NpsSingleBlockingMeetsDeadline) {
  const TaskSet tasks = make_tasks(false);
  const Trace trace = simulate(tasks, Protocol::kNonPreemptive, releases_);
  // lp1 runs [0,6); hi runs [6,11): completion 11 <= 12.
  EXPECT_EQ(trace.jobs[2].completion, 11);
  EXPECT_FALSE(trace.jobs[2].missed_deadline());
}

TEST_F(Figure1Scenario, ProposedUrgentPromotionMeetsDeadline) {
  const TaskSet tasks = make_tasks(true);
  const Trace trace = simulate(tasks, Protocol::kProposed, releases_);
  EXPECT_TRUE(check_trace(tasks, Protocol::kProposed, trace).ok());
  // lp2's load is invalidated; hi executes urgently in I_2 and completes
  // at 10 <= 12.
  EXPECT_EQ(trace.jobs[2].completion, 10);
  EXPECT_TRUE(trace.jobs[2].became_urgent);
  EXPECT_FALSE(trace.jobs[2].missed_deadline());
}

// ---------------------------------------------------------------------------
// R3 cancellation mid-transfer.
// ---------------------------------------------------------------------------

TEST(SimCancellation, LsReleaseDuringLowerPriorityCopyInCancels) {
  const TaskSet tasks({make_task("ls", 3, 2, 1, 100, 50, 0, true),
                       make_task("lo", 5, 6, 1, 100, 100, 1)});
  // lo's copy-in spans [0,6); ls arrives at 3 -> cancel at 3.
  const Trace trace = simulate(tasks, Protocol::kProposed,
                               {{JobId{1, 0}, 0}, {JobId{0, 0}, 3}});
  ASSERT_FALSE(trace.intervals.empty());
  EXPECT_EQ(trace.intervals[0].copy_in_outcome, CopyInOutcome::kCancelled);
  EXPECT_EQ(trace.intervals[0].copy_in_duration, 3);
  EXPECT_EQ(trace.intervals[0].end, 3);
  EXPECT_TRUE(trace.jobs[1].became_urgent);
  // ls executes urgently in I_1: copy-in [3,5), exec [5,8).  In parallel
  // the DMA re-loads lo ([3,9)), which stretches I_1 to 9 (R6), so ls's
  // copy-out runs in I_2 = [9,10).
  EXPECT_EQ(trace.jobs[1].exec_start, 5);
  EXPECT_EQ(trace.jobs[1].completion, 10);
  // lo is re-loaded afterwards and still completes.
  EXPECT_TRUE(trace.jobs[0].completed());
  EXPECT_EQ(trace.jobs[0].copy_in_cancellations, 1u);
  EXPECT_TRUE(check_trace(tasks, Protocol::kProposed, trace).ok());
}

TEST(SimCancellation, HigherPriorityCopyInIsNotCancelled) {
  const TaskSet tasks({make_task("hi", 3, 6, 1, 100, 100, 0),
                       make_task("ls", 3, 2, 1, 100, 50, 1, true)});
  // hi's copy-in in progress; ls (lower priority) released -> no R3.
  const Trace trace = simulate(tasks, Protocol::kProposed,
                               {{JobId{0, 0}, 0}, {JobId{1, 0}, 3}});
  EXPECT_EQ(trace.intervals[0].copy_in_outcome, CopyInOutcome::kCompleted);
  EXPECT_FALSE(trace.jobs[1].became_urgent);
  EXPECT_TRUE(check_trace(tasks, Protocol::kProposed, trace).ok());
}

TEST(SimCancellation, NlsReleaseNeverCancels) {
  const TaskSet tasks({make_task("hi", 3, 2, 1, 100, 50, 0, false),
                       make_task("lo", 5, 6, 1, 100, 100, 1)});
  const Trace trace = simulate(tasks, Protocol::kProposed,
                               {{JobId{1, 0}, 0}, {JobId{0, 0}, 3}});
  EXPECT_EQ(trace.intervals[0].copy_in_outcome, CopyInOutcome::kCompleted);
  EXPECT_FALSE(trace.jobs[1].became_urgent);
}

// ---------------------------------------------------------------------------
// R4 urgent promotion when no copy-in ran in the interval.
// ---------------------------------------------------------------------------

TEST(SimUrgent, PromotionWithoutCancellation) {
  const TaskSet tasks({make_task("S", 3, 2, 1, 100, 50, 0, true),
                       make_task("A", 10, 1, 1, 100, 100, 1)});
  // A loads in I_0 [0,1) and executes in I_1 [1,11); S arrives at 5 while
  // the DMA is idle (nothing ready at I_1's start) -> urgent at end of I_1.
  const Trace trace = simulate(tasks, Protocol::kProposed,
                               {{JobId{1, 0}, 0}, {JobId{0, 0}, 5}});
  ASSERT_GE(trace.intervals.size(), 3u);
  EXPECT_EQ(trace.intervals[1].copy_in_outcome, CopyInOutcome::kNone);
  EXPECT_EQ(trace.intervals[2].cpu_action, CpuAction::kUrgentExecute);
  EXPECT_EQ(trace.jobs[1].exec_start, 11 + 2);
  EXPECT_EQ(trace.jobs[1].completion, 11 + 2 + 3 + 1);
  EXPECT_TRUE(check_trace(tasks, Protocol::kProposed, trace).ok());
}

TEST(SimUrgent, HighestPriorityLsReleasedWins) {
  const TaskSet tasks({make_task("S1", 2, 1, 1, 100, 50, 0, true),
                       make_task("S2", 2, 1, 1, 100, 50, 1, true),
                       make_task("A", 10, 1, 1, 100, 100, 2)});
  // Both LS tasks arrive during A's execution interval (no copy-in there);
  // only the higher-priority one becomes urgent.
  const Trace trace =
      simulate(tasks, Protocol::kProposed,
               {{JobId{2, 0}, 0}, {JobId{1, 0}, 5}, {JobId{0, 0}, 6}});
  ASSERT_GE(trace.intervals.size(), 3u);
  EXPECT_TRUE(trace.jobs.at(2).became_urgent);   // S1 released at 6
  EXPECT_FALSE(trace.jobs.at(1).became_urgent);  // S2 served via DMA later
  EXPECT_TRUE(check_trace(tasks, Protocol::kProposed, trace).ok());
}

// ---------------------------------------------------------------------------
// NPS semantics.
// ---------------------------------------------------------------------------

TEST(SimNps, NonPreemptiveBlockingThenPriorityOrder) {
  const TaskSet tasks({make_task("hi", 2, 1, 1, 100, 100, 0),
                       make_task("mid", 3, 1, 1, 100, 100, 1),
                       make_task("lo", 8, 1, 1, 100, 100, 2)});
  // lo starts first (released alone), hi+mid arrive during lo.
  const Trace trace =
      simulate(tasks, Protocol::kNonPreemptive,
               {{JobId{2, 0}, 0}, {JobId{1, 0}, 1}, {JobId{0, 0}, 2}});
  // lo: [0,10); hi: [10,14); mid: [14,19).
  EXPECT_EQ(trace.jobs[0].completion, 10);
  EXPECT_EQ(trace.jobs[2].completion, 14);
  EXPECT_EQ(trace.jobs[1].completion, 19);
  EXPECT_TRUE(check_trace(tasks, Protocol::kNonPreemptive, trace).ok());
}

// ---------------------------------------------------------------------------
// Precedence: a job is deferred until the previous job of its task ends.
// ---------------------------------------------------------------------------

TEST(SimPrecedence, BackToBackJobsDoNotOverlap) {
  const TaskSet tasks({make_task("a", 10, 2, 2, 5, 50, 0)});
  // Period 5 < response time: the second job must wait for the first.
  const Trace trace = simulate(tasks, Protocol::kProposed,
                               {{JobId{0, 0}, 0}, {JobId{0, 1}, 5}});
  ASSERT_EQ(trace.jobs.size(), 2u);
  EXPECT_TRUE(trace.jobs[0].completed());
  EXPECT_TRUE(trace.jobs[1].completed());
  EXPECT_GE(trace.jobs[1].ready_time, trace.jobs[0].completion);
  EXPECT_GT(trace.jobs[1].completion, trace.jobs[0].completion);
}

TEST(SimGuards, RejectsForeignReleases) {
  const TaskSet tasks({make_task("a", 1, 1, 1, 10, 10, 0)});
  EXPECT_THROW(
      simulate(tasks, Protocol::kProposed, {{JobId{3, 0}, 0}}),
      mcs::support::ContractViolation);
  EXPECT_THROW(
      simulate(tasks, Protocol::kProposed, {{JobId{0, 0}, -1}}),
      mcs::support::ContractViolation);
}

TEST(SimGuards, AbortsOnIntervalBudget) {
  const TaskSet tasks({make_task("a", 10, 1, 1, 2, 2, 0)});
  // Heavily overloaded task; tiny interval budget forces an abort.
  mcs::sim::SimOptions options;
  options.max_intervals = 3;
  const auto releases = mcs::sim::synchronous_periodic_releases(tasks, 100);
  const Trace trace =
      simulate(tasks, Protocol::kProposed, releases, options);
  EXPECT_TRUE(trace.aborted);
  EXPECT_FALSE(trace.all_deadlines_met());
}

}  // namespace
