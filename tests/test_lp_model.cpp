#include "lp/model.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace {

using mcs::lp::LinExpr;
using mcs::lp::Model;
using mcs::lp::Relation;
using mcs::lp::Sense;
using mcs::lp::term;
using mcs::lp::VarId;
using mcs::lp::VarType;
using mcs::support::ContractViolation;

TEST(LinExpr, ArithmeticComposition) {
  Model m;
  const VarId x = m.add_continuous(0, 10, "x");
  const VarId y = m.add_continuous(0, 10, "y");
  LinExpr e = 2.0 * LinExpr(x) + term(y, 3.0) - 1.0;
  const LinExpr n = e.normalized();
  ASSERT_EQ(n.terms().size(), 2u);
  EXPECT_DOUBLE_EQ(n.constant(), -1.0);
  EXPECT_DOUBLE_EQ(m.evaluate(n, {1.0, 2.0}), 2.0 + 6.0 - 1.0);
}

TEST(LinExpr, NormalizeMergesDuplicatesAndDropsZeros) {
  Model m;
  const VarId x = m.add_continuous(0, 1, "x");
  const VarId y = m.add_continuous(0, 1, "y");
  LinExpr e;
  e.add_term(x, 2.0);
  e.add_term(y, 1.0);
  e.add_term(x, -2.0);
  e.add_term(y, 0.5);
  const LinExpr n = e.normalized();
  ASSERT_EQ(n.terms().size(), 1u);
  EXPECT_EQ(n.terms()[0].first, y.index);
  EXPECT_DOUBLE_EQ(n.terms()[0].second, 1.5);
}

TEST(Model, ConstraintFoldsConstantsIntoRhs) {
  Model m;
  const VarId x = m.add_continuous(0, 10, "x");
  // x + 3 <= 2 x + 5  ==>  -x <= 2
  m.add_constraint(LinExpr(x) + 3.0, Relation::kLe, 2.0 * LinExpr(x) + 5.0);
  ASSERT_EQ(m.num_constraints(), 1u);
  const auto& c = m.constraints()[0];
  ASSERT_EQ(c.lhs.terms().size(), 1u);
  EXPECT_DOUBLE_EQ(c.lhs.terms()[0].second, -1.0);
  EXPECT_DOUBLE_EQ(c.rhs, 2.0);
  EXPECT_DOUBLE_EQ(c.lhs.constant(), 0.0);
}

TEST(Model, VariableKinds) {
  Model m;
  const VarId x = m.add_continuous(-1.5, 2.5, "x");
  const VarId b = m.add_binary("b");
  const VarId k = m.add_integer(0, 9, "k");
  EXPECT_EQ(m.variable(x).type, VarType::kContinuous);
  EXPECT_EQ(m.variable(b).type, VarType::kBinary);
  EXPECT_DOUBLE_EQ(m.variable(b).upper, 1.0);
  EXPECT_EQ(m.variable(k).type, VarType::kInteger);
  EXPECT_TRUE(m.has_integer_variables());
}

TEST(Model, HasIntegerVariablesIgnoresFixed) {
  Model m;
  const VarId b = m.add_binary("b");
  m.set_bounds(b, 1.0, 1.0);
  EXPECT_FALSE(m.has_integer_variables());
}

TEST(Model, RejectsInvalidBounds) {
  Model m;
  EXPECT_THROW(m.add_continuous(2.0, 1.0, "bad"), ContractViolation);
  const VarId x = m.add_continuous(0, 1, "x");
  EXPECT_THROW(m.set_bounds(x, 3.0, 2.0), ContractViolation);
}

TEST(Model, RejectsForeignVariables) {
  Model m;
  LinExpr e;
  e.add_term(VarId{5}, 1.0);  // variable never added
  EXPECT_THROW(m.add_constraint(e, Relation::kLe, 1.0), ContractViolation);
}

TEST(Model, FeasibilityCheck) {
  Model m;
  const VarId x = m.add_continuous(0, 4, "x");
  const VarId b = m.add_binary("b");
  m.add_constraint(LinExpr(x) + LinExpr(b), Relation::kLe, 3.0);
  m.add_constraint(LinExpr(x), Relation::kGe, 1.0);
  EXPECT_TRUE(m.is_feasible({2.0, 1.0}, 1e-9));
  EXPECT_FALSE(m.is_feasible({3.5, 1.0}, 1e-9));   // violates row 1
  EXPECT_FALSE(m.is_feasible({0.0, 0.0}, 1e-9));   // violates row 2
  EXPECT_FALSE(m.is_feasible({2.0, 0.5}, 1e-9));   // fractional binary
  EXPECT_FALSE(m.is_feasible({5.0, 0.0}, 1e-9));   // bound violation
  EXPECT_FALSE(m.is_feasible({2.0}, 1e-9));        // wrong arity
}

TEST(Model, ObjectiveEvaluation) {
  Model m;
  const VarId x = m.add_continuous(0, 10, "x");
  m.set_objective(Sense::kMaximize, 3.0 * LinExpr(x) + 1.0);
  EXPECT_EQ(m.objective_sense(), Sense::kMaximize);
  EXPECT_DOUBLE_EQ(m.evaluate(m.objective(), {2.0}), 7.0);
}

}  // namespace
