#include "analysis/sensitivity.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace {

using mcs::analysis::analyze;
using mcs::analysis::Approach;
using mcs::analysis::max_scaling_factor;
using mcs::analysis::ScalingDimension;
using mcs::analysis::SensitivityOptions;
using mcs::rt::Task;
using mcs::rt::TaskSet;

Task make_task(std::string name, mcs::rt::Time exec, mcs::rt::Time mem,
               mcs::rt::Time period, mcs::rt::Time deadline,
               mcs::rt::Priority priority) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = mem;
  t.copy_out = mem;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  return t;
}

TEST(Sensitivity, BracketsAreConsistent) {
  const TaskSet tasks({make_task("a", 20, 5, 200, 120, 0),
                       make_task("b", 30, 8, 300, 250, 1)});
  const auto result = max_scaling_factor(
      tasks, Approach::kNonPreemptive, ScalingDimension::kMemoryPhases);
  ASSERT_GT(result.max_factor, 0.0);
  EXPECT_LT(result.max_factor, result.min_failing_factor);
  EXPECT_GT(result.analysis_runs, 2u);
  // The reported max factor must actually be schedulable, the failing
  // bracket not (when within the limit).
  // (Re-derive via the public API to keep this test self-contained.)
}

TEST(Sensitivity, UnschedulableBaseReportsZero) {
  const TaskSet tasks({make_task("a", 100, 10, 110, 50, 0)});
  const auto result = max_scaling_factor(
      tasks, Approach::kNonPreemptive, ScalingDimension::kMemoryPhases);
  EXPECT_DOUBLE_EQ(result.max_factor, 0.0);
  EXPECT_DOUBLE_EQ(result.min_failing_factor, 1.0);
}

TEST(Sensitivity, GenerousHeadroomHitsTheLimit) {
  // A nearly idle set never fails within the search limit.
  const TaskSet tasks({make_task("a", 1, 0, 1'000'000, 1'000'000, 0)});
  SensitivityOptions options;
  options.upper_limit = 8.0;
  const auto result =
      max_scaling_factor(tasks, Approach::kNonPreemptive,
                         ScalingDimension::kExecutionTimes, options);
  EXPECT_GE(result.max_factor, 8.0);
}

TEST(Sensitivity, MemoryScalingMatchesDirectCheck) {
  mcs::support::Rng rng(31);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 3;
  cfg.utilization = 0.3;
  cfg.gamma = 0.1;
  cfg.beta = 0.6;
  const TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
  SensitivityOptions options;
  options.tolerance = 0.05;
  const auto result = max_scaling_factor(
      tasks, Approach::kWasilyPellizzoni,
      ScalingDimension::kMemoryPhases, options);
  if (result.max_factor == 0.0) return;  // base unschedulable: nothing more

  // Cross-check: scale by the reported factor and by the failing bracket.
  const auto apply = [&](double factor) {
    TaskSet scaled = tasks;
    for (std::size_t i = 0; i < scaled.size(); ++i) {
      scaled[i].copy_in = static_cast<mcs::rt::Time>(
          std::ceil(static_cast<double>(scaled[i].copy_in) * factor));
      scaled[i].copy_out = static_cast<mcs::rt::Time>(
          std::ceil(static_cast<double>(scaled[i].copy_out) * factor));
    }
    return analyze(scaled, Approach::kWasilyPellizzoni).schedulable;
  };
  EXPECT_TRUE(apply(result.max_factor));
  if (result.min_failing_factor < options.upper_limit) {
    EXPECT_FALSE(apply(result.min_failing_factor));
  }
}

TEST(Sensitivity, RejectsBadOptions) {
  const TaskSet tasks({make_task("a", 10, 2, 100, 100, 0)});
  SensitivityOptions bad;
  bad.tolerance = 0.0;
  EXPECT_THROW(max_scaling_factor(tasks, Approach::kNonPreemptive,
                                  ScalingDimension::kMemoryPhases, bad),
               mcs::support::ContractViolation);
}

}  // namespace
