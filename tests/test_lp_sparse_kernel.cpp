// Differential tests for the two simplex kernels (lp/simplex.hpp).
//
// The load-bearing property is kernel equivalence: the sparse revised
// simplex (PFI basis, Devex pricing, bound-flipping dual ratio test) and
// the dense full-tableau reference implement one contract, so every model
// must solve to the same status and — at MILP gap 0 — the same objective
// and bound through either.  The adversarial section drives both kernels
// through the classic degeneracy traps (Beale's cycling example, the
// Klee–Minty cube, equal-bounds-saturated models); the differential
// section sweeps randomized delay MILPs, warm-started re-solves, a
// session's patch chain, and the committed workload corpus, mirroring
// test_lp_presolve.cpp.
//
// What is deliberately NOT asserted: cross-kernel identity of pivot
// sequences, node counts, or vertex choices.  Degenerate LPs have many
// alternate optima; the kernels are free to land on different ones as long
// as status and objective agree.  Determinism is asserted per kernel: the
// same kernel on the same model must reproduce its result bit-identically.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/milp_formulation.hpp"
#include "gen/generator.hpp"
#include "lp/milp.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "rt/io.hpp"
#include "rt/task.hpp"
#include "support/rng.hpp"

namespace {

using mcs::analysis::build_delay_milp;
using mcs::analysis::DelayMilp;
using mcs::analysis::FormulationCase;
using mcs::analysis::update_delay_milp;
using mcs::lp::LinExpr;
using mcs::lp::LpSolution;
using mcs::lp::MilpOptions;
using mcs::lp::MilpResult;
using mcs::lp::MilpSolver;
using mcs::lp::Model;
using mcs::lp::Relation;
using mcs::lp::Sense;
using mcs::lp::SimplexKernel;
using mcs::lp::SimplexOptions;
using mcs::lp::SimplexSolver;
using mcs::lp::solve_lp;
using mcs::lp::solve_milp;
using mcs::lp::SolveStatus;
using mcs::lp::term;
using mcs::lp::VarId;
using mcs::rt::TaskIndex;
using mcs::rt::TaskSet;
using mcs::rt::Time;
using mcs::support::Rng;

constexpr double kTol = 1e-6;

/// Solves the LP relaxation through both kernels and requires agreement to
/// 1e-9 relative on the objective (when optimal) and exact agreement on
/// status.  Returns the sparse solution for further checks.
LpSolution expect_lp_kernels_agree(const Model& model, const char* label,
                                   SimplexOptions options = {}) {
  options.kernel = SimplexKernel::kSparse;
  const LpSolution sparse = solve_lp(model, options);
  options.kernel = SimplexKernel::kDense;
  const LpSolution dense = solve_lp(model, options);
  EXPECT_EQ(sparse.status, dense.status) << label;
  if (sparse.status == SolveStatus::kOptimal &&
      dense.status == SolveStatus::kOptimal) {
    const double scale =
        std::max({1.0, std::abs(sparse.objective), std::abs(dense.objective)});
    EXPECT_NEAR(sparse.objective, dense.objective, 1e-9 * scale) << label;
    EXPECT_TRUE(model.is_feasible(sparse.values, 1e-6)) << label;
    EXPECT_TRUE(model.is_feasible(dense.values, 1e-6)) << label;
  }
  return sparse;
}

// --- Adversarial LPs ---------------------------------------------------------

/// Beale's classic cycling example: the textbook pivot sequence under
/// Dantzig pricing with a naive ratio tie-break loops forever at the
/// degenerate origin vertex.  Optimal value is -1/20.
Model beale_model() {
  Model m;
  const VarId x1 = m.add_continuous(0.0, mcs::lp::kInfinity, "x1");
  const VarId x2 = m.add_continuous(0.0, mcs::lp::kInfinity, "x2");
  const VarId x3 = m.add_continuous(0.0, mcs::lp::kInfinity, "x3");
  const VarId x4 = m.add_continuous(0.0, mcs::lp::kInfinity, "x4");
  m.add_constraint(term(x1, 0.25) + term(x2, -60.0) + term(x3, -1.0 / 25.0) +
                       term(x4, 9.0),
                   Relation::kLe, 0.0, "r1");
  m.add_constraint(term(x1, 0.5) + term(x2, -90.0) + term(x3, -1.0 / 50.0) +
                       term(x4, 3.0),
                   Relation::kLe, 0.0, "r2");
  m.add_constraint(LinExpr(x3), Relation::kLe, 1.0, "cap");
  m.set_objective(Sense::kMinimize, term(x1, -0.75) + term(x2, 150.0) +
                                        term(x3, -1.0 / 50.0) + term(x4, 6.0));
  return m;
}

TEST(SparseKernelAdversarial, BealeCyclingExampleTerminatesOnBothKernels) {
  const Model m = beale_model();
  const LpSolution sparse = expect_lp_kernels_agree(m, "beale");
  ASSERT_EQ(sparse.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sparse.objective, -0.05, 1e-9);
}

TEST(SparseKernelAdversarial, BealeUnderImmediateBlandRule) {
  // Forcing Bland's rule from the first pivot exercises the anti-cycling
  // path both kernels share; termination and the optimum must survive.
  SimplexOptions opt;
  opt.bland_threshold = 1;
  const Model m = beale_model();
  const LpSolution sparse = expect_lp_kernels_agree(m, "beale+bland", opt);
  ASSERT_EQ(sparse.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sparse.objective, -0.05, 1e-9);
}

TEST(SparseKernelAdversarial, KleeMintyCubeSolvesExactly) {
  // Klee–Minty, n = 8: maximize sum 2^(n-j) x_j over the twisted cube
  //   2 * sum_{j<i} 2^(i-j) x_j + x_i <= 5^i.
  // Dantzig pricing visits an exponential number of vertices on the worst
  // ordering; any pricing rule must still terminate at x_n = 5^n.
  constexpr std::size_t n = 8;
  Model m;
  std::vector<VarId> x;
  for (std::size_t j = 0; j < n; ++j) {
    x.push_back(m.add_continuous(0.0, mcs::lp::kInfinity,
                                 "x" + std::to_string(j + 1)));
  }
  double rhs = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    rhs *= 5.0;  // 5^(i+1)
    LinExpr lhs;
    for (std::size_t j = 0; j < i; ++j) {
      lhs += term(x[j], 2.0 * std::exp2(static_cast<double>(i - j)));
    }
    lhs += LinExpr(x[i]);
    m.add_constraint(lhs, Relation::kLe, rhs, "kv" + std::to_string(i + 1));
  }
  LinExpr obj;
  for (std::size_t j = 0; j < n; ++j) {
    obj += term(x[j], std::exp2(static_cast<double>(n - 1 - j)));
  }
  m.set_objective(Sense::kMaximize, obj);

  const LpSolution sparse = expect_lp_kernels_agree(m, "klee-minty");
  ASSERT_EQ(sparse.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sparse.objective, 390625.0, 1e-9 * 390625.0);  // 5^8
}

TEST(SparseKernelAdversarial, EqualBoundsCorpusAgreesAndSkipsFixedColumns) {
  // Models saturated with lower == upper columns: the fixed columns must
  // never enter a pricing scan (satellite counter fixed_cols_skipped) and
  // the heavy degeneracy they induce must not split the kernels.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed * 977 + 11);
    Model m;
    std::vector<VarId> vars;
    const std::size_t n = 12;
    std::size_t fixed = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const double lo = rng.uniform(0.0, 5.0);
      if (rng.uniform01() < 0.5) {
        vars.push_back(m.add_continuous(lo, lo, "f" + std::to_string(j)));
        ++fixed;
      } else {
        vars.push_back(m.add_continuous(lo, lo + rng.uniform(1.0, 10.0),
                                        "x" + std::to_string(j)));
      }
    }
    for (std::size_t r = 0; r < 8; ++r) {
      LinExpr lhs;
      double activity_hi = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (rng.uniform01() < 0.5) continue;
        const double a = rng.uniform(-4.0, 4.0);
        lhs += term(vars[j], a);
        activity_hi += std::abs(a) * 15.0;
      }
      m.add_constraint(lhs, Relation::kLe,
                       rng.uniform(0.2, 0.8) * activity_hi,
                       "r" + std::to_string(r));
    }
    LinExpr obj;
    for (std::size_t j = 0; j < n; ++j) {
      obj += term(vars[j], rng.uniform(-1.0, 1.0));
    }
    m.set_objective(Sense::kMaximize, obj);

    const std::string label = "equal-bounds seed " + std::to_string(seed);
    expect_lp_kernels_agree(m, label.c_str());

    if (fixed == 0) continue;
    for (const SimplexKernel kernel :
         {SimplexKernel::kSparse, SimplexKernel::kDense}) {
      SimplexOptions opt;
      opt.kernel = kernel;
      SimplexSolver solver(m, opt);
      (void)solver.solve();
      EXPECT_GT(solver.stats().fixed_cols_skipped, 0u) << label;
    }
  }
}

// --- Differential MILP corpus: sparse == dense at gap 0 ----------------------

/// Solves through both kernels at gap 0 and requires certificate identity:
/// status, incumbent presence, objective, and best bound.
void expect_kernels_exact(const Model& model, MilpOptions opt,
                          const char* label) {
  opt.relative_gap = 0.0;
  opt.lp.kernel = SimplexKernel::kSparse;
  const MilpResult sparse = solve_milp(model, opt);
  opt.lp.kernel = SimplexKernel::kDense;
  const MilpResult dense = solve_milp(model, opt);

  ASSERT_EQ(sparse.status, dense.status) << label;
  ASSERT_EQ(sparse.has_incumbent, dense.has_incumbent) << label;
  if (!dense.has_incumbent) return;
  const double scale = std::max(1.0, std::abs(dense.objective));
  EXPECT_NEAR(sparse.objective, dense.objective, kTol * scale) << label;
  EXPECT_NEAR(sparse.best_bound, dense.best_bound, kTol * scale) << label;
  EXPECT_TRUE(model.is_feasible(sparse.values, 1e-6)) << label;
}

class SparseKernelDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparseKernelDifferential, RandomDelayMilpsMatchAcrossKernels) {
  Rng rng(GetParam() * 613 + 29);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 4;
  cfg.utilization = rng.uniform(0.3, 0.5);
  cfg.gamma = rng.uniform(0.1, 0.4);
  TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    tasks[j].latency_sensitive = rng.uniform01() < 0.4;
  }
  const auto i = static_cast<TaskIndex>(
      rng.uniform_int(0, static_cast<std::int64_t>(tasks.size()) - 1));
  // Half-period window as in test_lp_presolve.cpp: the full window buys
  // tree size, not coverage.
  const DelayMilp milp =
      build_delay_milp(tasks, i, tasks[i].period / 2, FormulationCase::kNls,
                       /*ignore_ls=*/false);

  MilpOptions opt;
  opt.max_nodes = 50000;
  opt.branch_priority.assign(milp.model.num_variables(), 0);
  for (const VarId alpha : milp.alpha_vars) {
    opt.branch_priority[alpha.index] = 1;
  }
  expect_kernels_exact(milp.model, opt, "random delay MILP");
}

TEST_P(SparseKernelDifferential, WarmStartedSolvesMatchAcrossKernels) {
  Rng rng(GetParam() * 271 + 5);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 4;
  cfg.utilization = rng.uniform(0.3, 0.45);
  TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
  tasks[0].latency_sensitive = true;
  const auto i = static_cast<TaskIndex>(
      rng.uniform_int(0, static_cast<std::int64_t>(tasks.size()) - 1));
  const DelayMilp milp =
      build_delay_milp(tasks, i, tasks[i].period / 2, FormulationCase::kNls,
                       /*ignore_ls=*/false);

  MilpOptions opt;
  opt.max_nodes = 50000;
  opt.branch_priority.assign(milp.model.num_variables(), 0);
  for (const VarId alpha : milp.alpha_vars) {
    opt.branch_priority[alpha.index] = 1;
  }
  // Seed both kernels with the same incumbent, as the engine's greedy
  // rounds do; exactness must survive the seeded search.
  const MilpResult first = solve_milp(milp.model, opt);
  if (!first.has_incumbent) return;
  opt.start_values = first.values;
  expect_kernels_exact(milp.model, opt, "warm-started delay MILP");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseKernelDifferential,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(SparseKernelSession, GreedyRoundPatchChainMatchesDenseFreshSolves) {
  // The engine's cache-hit path: one patchable formulation, a sparse-kernel
  // MilpSolver session, LS-marking flips applied through update_delay_milp
  // between solves.  Every session solve must match a fresh dense-kernel
  // solve of the current model state — the strongest cross-kernel claim the
  // warm-restart machinery has to honor.
  Rng rng(0xC0FFEE);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 4;
  cfg.utilization = 0.4;
  TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
  const TaskIndex i = static_cast<TaskIndex>(tasks.size() - 1);
  const Time t = tasks[i].period / 2;
  DelayMilp milp = build_delay_milp(tasks, i, t, FormulationCase::kNls,
                                    /*ignore_ls=*/false, /*patchable=*/true);

  MilpSolver session(milp.model);
  MilpOptions opt;
  opt.max_nodes = 50000;
  opt.relative_gap = 0.0;
  opt.lp.kernel = SimplexKernel::kSparse;
  opt.branch_priority.assign(milp.model.num_variables(), 0);
  for (const VarId alpha : milp.alpha_vars) {
    opt.branch_priority[alpha.index] = 1;
  }

  for (int round = 0; round < 4; ++round) {
    const std::size_t flip = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(tasks.size()) - 1));
    tasks[flip].latency_sensitive = !tasks[flip].latency_sensitive;
    update_delay_milp(milp, tasks, i, t, /*ignore_ls=*/false);

    const MilpResult patched = session.solve(opt);

    MilpOptions fresh = opt;
    fresh.lp.kernel = SimplexKernel::kDense;
    fresh.start_values.clear();
    const MilpResult direct = solve_milp(milp.model, fresh);

    const std::string label = "round " + std::to_string(round);
    ASSERT_EQ(patched.status, direct.status) << label;
    ASSERT_EQ(patched.has_incumbent, direct.has_incumbent) << label;
    if (!direct.has_incumbent) continue;
    const double scale = std::max(1.0, std::abs(direct.objective));
    EXPECT_NEAR(patched.objective, direct.objective, kTol * scale) << label;
    EXPECT_TRUE(milp.model.is_feasible(patched.values, 1e-6)) << label;
    opt.start_values = patched.values;  // carry like the engine does
  }
}

TEST(SparseKernelCorpus, CommittedWorkloadFormulationsMatchAcrossKernels) {
  const char* files[] = {"/workloads/quickstart.wl",
                         "/workloads/sensor_chain.wl"};
  for (const char* file : files) {
    const mcs::rt::Workload workload =
        mcs::rt::load_workload_file(std::string(MCS_SOURCE_DIR) + file);
    const TaskSet& tasks = workload.tasks;
    for (TaskIndex i = 0; i < tasks.size(); ++i) {
      // Half-deadline window, same trade as test_lp_presolve.cpp.
      const Time t = tasks[i].deadline / 2;
      const DelayMilp milp = build_delay_milp(
          tasks, i, t, FormulationCase::kNls, /*ignore_ls=*/false);
      MilpOptions opt;
      opt.max_nodes = 50000;
      opt.branch_priority.assign(milp.model.num_variables(), 0);
      for (const VarId alpha : milp.alpha_vars) {
        opt.branch_priority[alpha.index] = 1;
      }
      expect_kernels_exact(milp.model, opt, file);
    }
  }
}

TEST(SparseKernelDeterminism, EachKernelReproducesItselfBitIdentically) {
  // Determinism is per kernel: two fresh solves of the same model through
  // the same kernel must agree bit-for-bit on everything, including tree
  // shape.  (Cross-kernel tree identity is NOT required — degenerate LPs
  // have alternate optimal vertices and the kernels may branch apart.)
  Rng rng(4242);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 5;
  cfg.utilization = 0.45;
  cfg.gamma = 0.3;
  TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
  const auto lowest = tasks.by_priority().back();
  const Time window = tasks[lowest].deadline - tasks[lowest].exec -
                      tasks[lowest].copy_out;
  const DelayMilp milp =
      build_delay_milp(tasks, lowest, std::max<Time>(window, 0),
                       FormulationCase::kNls);

  for (const SimplexKernel kernel :
       {SimplexKernel::kSparse, SimplexKernel::kDense}) {
    MilpOptions opt;
    opt.max_nodes = 30000;
    opt.relative_gap = 0.02;
    opt.lp.kernel = kernel;
    const MilpResult a = solve_milp(milp.model, opt);
    const MilpResult b = solve_milp(milp.model, opt);
    const char* label =
        kernel == SimplexKernel::kSparse ? "sparse" : "dense";
    ASSERT_EQ(a.status, b.status) << label;
    EXPECT_EQ(a.nodes, b.nodes) << label;
    EXPECT_EQ(a.lp_iterations, b.lp_iterations) << label;
    EXPECT_EQ(a.objective, b.objective) << label;  // bitwise
    EXPECT_EQ(a.best_bound, b.best_bound) << label;
    EXPECT_EQ(a.values, b.values) << label;
  }
}

}  // namespace
