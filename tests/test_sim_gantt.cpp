#include "sim/gantt.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "support/contracts.hpp"

namespace {

using mcs::rt::Task;
using mcs::rt::TaskSet;
using mcs::sim::GanttOptions;
using mcs::sim::JobId;
using mcs::sim::Protocol;
using mcs::sim::render_gantt;
using mcs::sim::simulate;

TaskSet two_tasks() {
  Task a;
  a.name = "A";
  a.exec = 5;
  a.copy_in = 2;
  a.copy_out = 2;
  a.period = 100;
  a.deadline = 100;
  a.priority = 0;
  Task b = a;
  b.name = "B";
  b.priority = 1;
  return TaskSet({a, b});
}

TEST(Gantt, RendersBothTimelineRows) {
  const TaskSet tasks = two_tasks();
  const auto trace = simulate(tasks, Protocol::kProposed,
                              {{JobId{0, 0}, 0}, {JobId{1, 0}, 0}});
  const std::string gantt = render_gantt(tasks, Protocol::kProposed, trace);
  EXPECT_NE(gantt.find("CPU |"), std::string::npos);
  EXPECT_NE(gantt.find("DMA |"), std::string::npos);
  EXPECT_NE(gantt.find("vA"), std::string::npos);  // copy-in marker
  EXPECT_NE(gantt.find("^A"), std::string::npos);  // copy-out marker
  EXPECT_NE(gantt.find("A#0"), std::string::npos);
  EXPECT_NE(gantt.find("response="), std::string::npos);
}

TEST(Gantt, NpsHasNoDmaRow) {
  const TaskSet tasks = two_tasks();
  const auto trace = simulate(tasks, Protocol::kNonPreemptive,
                              {{JobId{0, 0}, 0}});
  const std::string gantt =
      render_gantt(tasks, Protocol::kNonPreemptive, trace);
  EXPECT_EQ(gantt.find("DMA |"), std::string::npos);
}

TEST(Gantt, DeadlineMissFlagged) {
  TaskSet tasks = two_tasks();
  tasks[1].deadline = 3;  // impossible: total demand is 8
  const auto trace = simulate(tasks, Protocol::kProposed,
                              {{JobId{1, 0}, 0}});
  const std::string gantt = render_gantt(tasks, Protocol::kProposed, trace);
  EXPECT_NE(gantt.find("DEADLINE MISS"), std::string::npos);
}

TEST(Gantt, ScalingCompressesOutput) {
  const TaskSet tasks = two_tasks();
  const auto trace =
      simulate(tasks, Protocol::kProposed, {{JobId{0, 0}, 0}});
  GanttOptions wide;
  wide.ticks_per_char = 1;
  GanttOptions narrow;
  narrow.ticks_per_char = 4;
  const auto long_render =
      render_gantt(tasks, Protocol::kProposed, trace, wide);
  const auto short_render =
      render_gantt(tasks, Protocol::kProposed, trace, narrow);
  EXPECT_GT(long_render.size(), short_render.size());
}

TEST(Gantt, RejectsBadScale) {
  const TaskSet tasks = two_tasks();
  const auto trace =
      simulate(tasks, Protocol::kProposed, {{JobId{0, 0}, 0}});
  GanttOptions bad;
  bad.ticks_per_char = 0;
  EXPECT_THROW(render_gantt(tasks, Protocol::kProposed, trace, bad),
               mcs::support::ContractViolation);
}

}  // namespace
