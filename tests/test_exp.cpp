#include "exp/experiment.hpp"
#include "exp/figures.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/contracts.hpp"

namespace {

using mcs::analysis::Approach;
using mcs::exp::apply_env_overrides;
using mcs::exp::ExperimentConfig;
using mcs::exp::ExperimentResult;
using mcs::exp::figure2_config;
using mcs::exp::print_result;
using mcs::exp::run_experiment;
using mcs::exp::SweepParam;
using mcs::exp::write_csv;

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.name = "tiny";
  cfg.title = "tiny smoke experiment";
  cfg.base.num_tasks = 3;
  cfg.base.gamma = 0.2;
  cfg.base.beta = 0.3;
  cfg.sweep = SweepParam::kUtilization;
  cfg.values = {0.15, 0.5};
  cfg.tasksets_per_point = 4;
  cfg.seed = 7;
  cfg.threads = 1;
  return cfg;
}

TEST(Experiment, RunsAndCountsConsistently) {
  const ExperimentResult result = run_experiment(tiny_config());
  ASSERT_EQ(result.points.size(), 2u);
  for (const auto& p : result.points) {
    EXPECT_EQ(p.tasksets, 4u);
    EXPECT_LE(p.schedulable_proposed, p.tasksets);
    EXPECT_LE(p.schedulable_wp, p.tasksets);
    EXPECT_LE(p.schedulable_nps, p.tasksets);
    // Fallbacks are counted at most once per task set (regression: the WP
    // and Proposed analyses of one set used to tick the counter twice).
    EXPECT_LE(p.relaxation_fallbacks, p.tasksets);
    EXPECT_LE(p.fallbacks_wp, p.tasksets);
    EXPECT_LE(p.fallbacks_proposed, p.tasksets);
    EXPECT_LE(p.relaxation_fallbacks, p.fallbacks_wp + p.fallbacks_proposed);
    // Percentiles are ordered and positive for a point that did work.
    EXPECT_GT(p.p50_seconds, 0.0);
    EXPECT_LE(p.p50_seconds, p.p90_seconds);
    EXPECT_LE(p.p90_seconds, p.p99_seconds);
    // Greedy containment: proposed dominates WP by construction.
    EXPECT_GE(p.schedulable_proposed, p.schedulable_wp);
    EXPECT_GE(p.ratio(Approach::kProposed), p.ratio(Approach::kWasilyPellizzoni));
  }
  // Low utilization must not be harder than high utilization.
  EXPECT_GE(result.points[0].schedulable_proposed,
            result.points[1].schedulable_proposed);
}

TEST(Experiment, DeterministicAcrossRunsAndThreadCounts) {
  ExperimentConfig cfg = tiny_config();
  const ExperimentResult a = run_experiment(cfg);
  cfg.threads = 3;
  const ExperimentResult b = run_experiment(cfg);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].schedulable_proposed,
              b.points[i].schedulable_proposed);
    EXPECT_EQ(a.points[i].schedulable_wp, b.points[i].schedulable_wp);
    EXPECT_EQ(a.points[i].schedulable_nps, b.points[i].schedulable_nps);
  }
}

TEST(Experiment, PrintsTableWithHeaderAndRows) {
  const ExperimentResult result = run_experiment(tiny_config());
  std::ostringstream out;
  print_result(result, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("proposed"), std::string::npos);
  EXPECT_NE(text.find("wp2016"), std::string::npos);
  EXPECT_NE(text.find("nps"), std::string::npos);
  EXPECT_NE(text.find("0.150"), std::string::npos);
  EXPECT_NE(text.find("0.500"), std::string::npos);
}

TEST(Experiment, WritesCsv) {
  const ExperimentResult result = run_experiment(tiny_config());
  const auto dir = std::filesystem::temp_directory_path();
  write_csv(result, dir);
  const auto path = dir / "tiny.csv";
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  // Deterministic schema: no wall-time columns (those live in the JSONL
  // log / telemetry), error count appended — see EXPERIMENTS.md.
  EXPECT_EQ(header,
            "U,proposed,wp2016,nps,relaxation_fallbacks,"
            "fallbacks_wp,fallbacks_proposed,tasksets,errors");
  std::string row;
  int rows = 0;
  while (std::getline(in, row)) {
    if (!row.empty()) ++rows;
  }
  EXPECT_EQ(rows, 2);
  std::filesystem::remove(path);
}

TEST(Experiment, RejectsEmptyConfigs) {
  ExperimentConfig cfg = tiny_config();
  cfg.values.clear();
  EXPECT_THROW(run_experiment(cfg), mcs::support::ContractViolation);
  cfg = tiny_config();
  cfg.tasksets_per_point = 0;
  EXPECT_THROW(run_experiment(cfg), mcs::support::ContractViolation);
}

TEST(Experiment, EnvOverridesApply) {
  setenv("MCS_TASKSETS", "11", 1);
  setenv("MCS_SEED", "99", 1);
  setenv("MCS_THREADS", "2", 1);
  ExperimentConfig cfg = tiny_config();
  apply_env_overrides(cfg);
  EXPECT_EQ(cfg.tasksets_per_point, 11u);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.threads, 2u);
  unsetenv("MCS_TASKSETS");
  unsetenv("MCS_SEED");
  unsetenv("MCS_THREADS");
}

TEST(Experiment, EnvOverridesRejectMalformedValues) {
  // Regression: "10x" used to parse as 10 and "abc" as seed 0 — silently.
  const auto expect_rejected = [](const char* name, const char* value) {
    setenv(name, value, 1);
    ExperimentConfig cfg;
    cfg.name = "env";
    cfg.values = {0.5};
    EXPECT_THROW(apply_env_overrides(cfg), mcs::support::ContractViolation)
        << name << "=" << value;
    unsetenv(name);
  };
  expect_rejected("MCS_TASKSETS", "10x");
  expect_rejected("MCS_TASKSETS", "abc");
  expect_rejected("MCS_TASKSETS", "");
  expect_rejected("MCS_TASKSETS", "0");
  expect_rejected("MCS_TASKSETS", "-3");
  expect_rejected("MCS_SEED", "abc");
  expect_rejected("MCS_SEED", "99 ");
  expect_rejected("MCS_SEED", "0x10");
  expect_rejected("MCS_SEED", "99999999999999999999999999");
  expect_rejected("MCS_THREADS", "two");
  expect_rejected("MCS_THREADS", "2.5");
}

TEST(Experiment, EnvOverridesAcceptZeroThreads) {
  setenv("MCS_THREADS", "0", 1);  // 0 = hardware concurrency
  ExperimentConfig cfg = tiny_config();
  apply_env_overrides(cfg);
  EXPECT_EQ(cfg.threads, 0u);
  unsetenv("MCS_THREADS");
}

TEST(Figure2Configs, AllInsetsWellFormed) {
  for (const char inset : {'a', 'b', 'c', 'd', 'e', 'f'}) {
    const ExperimentConfig cfg = figure2_config(inset);
    EXPECT_FALSE(cfg.name.empty());
    EXPECT_FALSE(cfg.values.empty());
    EXPECT_GT(cfg.tasksets_per_point, 0u);
    EXPECT_GE(cfg.base.num_tasks, 4u);
  }
  EXPECT_THROW(figure2_config('z'), mcs::support::ContractViolation);
}

TEST(Figure2Configs, SweepAxesMatchThePaper) {
  EXPECT_EQ(figure2_config('a').sweep, SweepParam::kUtilization);
  EXPECT_EQ(figure2_config('d').sweep, SweepParam::kUtilization);
  EXPECT_EQ(figure2_config('e').sweep, SweepParam::kGamma);
  EXPECT_EQ(figure2_config('f').sweep, SweepParam::kBeta);
  // gamma = 0.1 in (a) and (b), as stated in §VII.
  EXPECT_DOUBLE_EQ(figure2_config('a').base.gamma, 0.1);
  EXPECT_DOUBLE_EQ(figure2_config('b').base.gamma, 0.1);
}


TEST(Experiment, NumTasksSweepParam) {
  ExperimentConfig cfg = tiny_config();
  cfg.sweep = SweepParam::kNumTasks;
  cfg.values = {2, 4};
  const ExperimentResult result = run_experiment(cfg);
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_DOUBLE_EQ(result.points[0].x, 2.0);
  EXPECT_DOUBLE_EQ(result.points[1].x, 4.0);
  // Both points ran the full task-set count.
  EXPECT_EQ(result.points[0].tasksets, cfg.tasksets_per_point);
}

TEST(Experiment, SweepParamNames) {
  EXPECT_STREQ(to_string(SweepParam::kUtilization), "U");
  EXPECT_STREQ(to_string(SweepParam::kGamma), "gamma");
  EXPECT_STREQ(to_string(SweepParam::kBeta), "beta");
  EXPECT_STREQ(to_string(SweepParam::kNumTasks), "n");
}

}  // namespace
