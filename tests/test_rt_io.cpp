#include "rt/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/contracts.hpp"

namespace {

using mcs::rt::load_workload;
using mcs::rt::save_workload;
using mcs::rt::Workload;

Workload parse(const std::string& text) {
  std::istringstream in(text);
  return load_workload(in);
}

TEST(WorkloadIo, ParsesTasksWithExplicitPriorities) {
  const Workload w = parse(
      "task a C=10 l=2 u=3 T=100 D=90 prio=1\n"
      "task b C=20 l=0 u=0 T=200 D=150 prio=0 ls\n");
  ASSERT_EQ(w.tasks.size(), 2u);
  EXPECT_EQ(w.tasks[0].exec, 10);
  EXPECT_EQ(w.tasks[0].copy_in, 2);
  EXPECT_EQ(w.tasks[0].copy_out, 3);
  EXPECT_EQ(w.tasks[0].period, 100);
  EXPECT_EQ(w.tasks[0].deadline, 90);
  EXPECT_EQ(w.tasks[0].priority, 1u);
  EXPECT_FALSE(w.tasks[0].latency_sensitive);
  EXPECT_TRUE(w.tasks[1].latency_sensitive);
  EXPECT_EQ(w.tasks[1].priority, 0u);
}

TEST(WorkloadIo, AssignsDeadlineMonotonicWhenNoPriorities) {
  const Workload w = parse(
      "task slow C=10 T=100 D=90\n"
      "task fast C=5 T=50 D=20\n");
  EXPECT_EQ(w.tasks[1].priority, 0u);  // D=20 first
  EXPECT_EQ(w.tasks[0].priority, 1u);
}

TEST(WorkloadIo, ImplicitDeadlineEqualsPeriod) {
  const Workload w = parse("task a C=10 T=100\n");
  EXPECT_EQ(w.tasks[0].deadline, 100);
}

TEST(WorkloadIo, CommentsAndBlankLinesIgnored) {
  const Workload w = parse(
      "# header comment\n"
      "\n"
      "task a C=10 T=100  # trailing comment\n");
  EXPECT_EQ(w.tasks.size(), 1u);
}

TEST(WorkloadIo, ParsesChains) {
  const Workload w = parse(
      "task a C=10 T=100\n"
      "task b C=10 T=100\n"
      "chain ab age=500 tasks=a,b\n");
  ASSERT_EQ(w.chains.size(), 1u);
  EXPECT_EQ(w.chains[0].name, "ab");
  EXPECT_EQ(w.chains[0].max_data_age, 500);
  EXPECT_EQ(w.chains[0].tasks,
            (std::vector<mcs::rt::TaskIndex>{0, 1}));
}

TEST(WorkloadIo, ErrorsCarryLineNumbers) {
  const auto expect_error = [](const std::string& text,
                               const std::string& fragment) {
    try {
      parse(text);
      FAIL() << "expected parse failure for: " << text;
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find(fragment),
                std::string::npos)
          << error.what();
    }
  };
  expect_error("task a C=10 T=xyz\n", "line 1");
  expect_error("task a C=10\n", "needs at least C= and T=");
  expect_error("task a C=10 T=100 bogus=1\n", "unknown attribute");
  expect_error("widget a\n", "unknown directive");
  expect_error("task a C=10 T=100\ntask a C=5 T=50\n", "duplicate task");
  expect_error("task a C=10 T=100\nchain c tasks=a,zz\n",
               "unknown task 'zz'");
  expect_error("task a C=10 T=100\nchain c age=5\n", "chain needs tasks=");
  expect_error("", "no tasks");
  expect_error("task a C=10 T=100 prio=0\ntask b C=10 T=100\n",
               "either every task needs prio= or none");
}

TEST(WorkloadIo, MalformedNumbersAreStructuredErrors) {
  // Hostile numeric input must fail with a line-numbered std::runtime_error
  // — never silent truncation, never a crash (the suite runs under
  // ASan/UBSan in CI).
  const auto expect_invalid = [](const std::string& text) {
    try {
      parse(text);
      FAIL() << "accepted: " << text;
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find("invalid number"),
                std::string::npos)
          << error.what();
    }
  };
  expect_invalid("task a C=nan T=100\n");
  expect_invalid("task a C=NaN T=100\n");
  expect_invalid("task a C=inf T=100\n");
  expect_invalid("task a C=1.5 T=100\n");                    // fractional
  expect_invalid("task a C=10 T=9223372036854775808\n");     // > int64 max
  expect_invalid("task a C=10 T=99999999999999999999999\n"); // way past
  expect_invalid("task a C=1e3 T=100\n");                    // exponent
  expect_invalid("task a C=0x10 T=100\n");                   // hex
  expect_invalid("task a C= T=100\n");                       // empty value
}

TEST(WorkloadIo, InvalidTaskParametersViolateContracts) {
  // Values that *parse* but break TaskSet invariants surface as contract
  // violations from validation, not as accepted workloads.
  EXPECT_THROW(parse("task a C=-5 T=100\n"), mcs::support::ContractViolation);
  EXPECT_THROW(parse("task a C=0 T=100\n"), mcs::support::ContractViolation);
  EXPECT_THROW(parse("task a C=10 l=-1 T=100\n"),
               mcs::support::ContractViolation);
  EXPECT_THROW(parse("task a C=10 T=-100\n"),
               mcs::support::ContractViolation);
  EXPECT_THROW(parse("task a C=10 T=100 D=0\n"),
               mcs::support::ContractViolation);
  EXPECT_THROW(
      parse("task a C=10 T=100 prio=3\ntask b C=10 T=100 prio=3\n"),
      mcs::support::ContractViolation);  // duplicate priority
}

TEST(WorkloadIo, TruncatedDirectivesAreErrors) {
  const auto expect_error = [](const std::string& text) {
    EXPECT_THROW(parse(text), std::runtime_error) << "accepted: " << text;
  };
  expect_error("task\n");                  // directive without a name
  expect_error("task a\n");                // no attributes at all
  expect_error("task a C\n");              // key without '='
  expect_error("chain\n");                 // chain without a name
  expect_error("task a C=10 T=100\nchain c tasks=\n");  // empty member list
}

TEST(WorkloadIo, RoundTripPreservesEverything) {
  const Workload original = parse(
      "task a C=10 l=2 u=3 T=100 D=90 prio=1\n"
      "task b C=20 l=1 u=1 T=200 D=150 prio=0 ls\n"
      "chain ab age=700 tasks=a,b\n");
  std::ostringstream out;
  save_workload(original, out);
  const Workload reloaded = parse(out.str());
  ASSERT_EQ(reloaded.tasks.size(), original.tasks.size());
  for (std::size_t i = 0; i < original.tasks.size(); ++i) {
    EXPECT_EQ(reloaded.tasks[i].name, original.tasks[i].name);
    EXPECT_EQ(reloaded.tasks[i].exec, original.tasks[i].exec);
    EXPECT_EQ(reloaded.tasks[i].copy_in, original.tasks[i].copy_in);
    EXPECT_EQ(reloaded.tasks[i].copy_out, original.tasks[i].copy_out);
    EXPECT_EQ(reloaded.tasks[i].period, original.tasks[i].period);
    EXPECT_EQ(reloaded.tasks[i].deadline, original.tasks[i].deadline);
    EXPECT_EQ(reloaded.tasks[i].priority, original.tasks[i].priority);
    EXPECT_EQ(reloaded.tasks[i].latency_sensitive,
              original.tasks[i].latency_sensitive);
  }
  ASSERT_EQ(reloaded.chains.size(), 1u);
  EXPECT_EQ(reloaded.chains[0].tasks, original.chains[0].tasks);
  EXPECT_EQ(reloaded.chains[0].max_data_age,
            original.chains[0].max_data_age);
}

TEST(WorkloadIo, MissingFileReportsPath) {
  try {
    mcs::rt::load_workload_file("/nonexistent/workload.txt");
    FAIL();
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("/nonexistent/workload.txt"),
              std::string::npos);
  }
}

}  // namespace
