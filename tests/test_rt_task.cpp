#include "rt/task.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace {

using mcs::rt::Task;
using mcs::rt::TaskIndex;
using mcs::rt::TaskSet;
using mcs::support::ContractViolation;

Task make_task(std::string name, mcs::rt::Time exec, mcs::rt::Time mem,
               mcs::rt::Time period, mcs::rt::Time deadline,
               mcs::rt::Priority priority) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = mem;
  t.copy_out = mem;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  return t;
}

TEST(Task, DerivedQuantities) {
  const Task t = make_task("t", 10, 3, 100, 80, 0);
  EXPECT_EQ(t.total_demand(), 16);
  EXPECT_DOUBLE_EQ(t.utilization(), 0.1);
}

TEST(TaskSet, ValidationFillsArrivalCurves) {
  TaskSet set({make_task("a", 5, 1, 50, 50, 0)});
  ASSERT_NE(set[0].arrival, nullptr);
  EXPECT_EQ(set[0].arrival->releases_in(51), 2u);
}

TEST(TaskSet, RejectsDuplicatePriorities) {
  EXPECT_THROW(TaskSet({make_task("a", 5, 1, 50, 50, 3),
                        make_task("b", 5, 1, 60, 60, 3)}),
               ContractViolation);
}

TEST(TaskSet, RejectsNonPositiveParameters) {
  EXPECT_THROW(TaskSet({make_task("a", 0, 1, 50, 50, 0)}),
               ContractViolation);
  EXPECT_THROW(TaskSet({make_task("a", 5, -1, 50, 50, 0)}),
               ContractViolation);
  EXPECT_THROW(TaskSet({make_task("a", 5, 1, 0, 50, 0)}),
               ContractViolation);
  EXPECT_THROW(TaskSet({make_task("a", 5, 1, 50, 0, 0)}),
               ContractViolation);
}

TEST(TaskSet, PriorityViews) {
  // priority: b(0) > c(1) > a(2); smaller value = higher priority.
  TaskSet set({make_task("a", 5, 1, 50, 50, 2),
               make_task("b", 5, 1, 60, 60, 0),
               make_task("c", 5, 1, 70, 70, 1)});
  EXPECT_EQ(set.higher_priority(0), (std::vector<TaskIndex>{1, 2}));
  EXPECT_EQ(set.lower_priority(1), (std::vector<TaskIndex>{0, 2}));
  EXPECT_TRUE(set.higher_priority(1).empty());
  EXPECT_TRUE(set.lower_priority(0).empty());
  EXPECT_EQ(set.by_priority(), (std::vector<TaskIndex>{1, 2, 0}));
}

TEST(TaskSet, UtilizationSums) {
  TaskSet set({make_task("a", 10, 5, 100, 100, 0),
               make_task("b", 20, 0, 100, 100, 1)});
  EXPECT_DOUBLE_EQ(set.utilization(), 0.3);
  EXPECT_DOUBLE_EQ(set.total_utilization(), 0.4);  // (10+10+20)/100 + 20/100
}

TEST(TaskSet, LatencySensitiveView) {
  TaskSet set({make_task("a", 5, 1, 50, 50, 0),
               make_task("b", 5, 1, 60, 60, 1)});
  EXPECT_TRUE(set.latency_sensitive_tasks().empty());
  set[1].latency_sensitive = true;
  EXPECT_EQ(set.latency_sensitive_tasks(), (std::vector<TaskIndex>{1}));
}

TEST(TaskSet, MaxCopyDurations) {
  TaskSet set({make_task("a", 5, 3, 50, 50, 0),
               make_task("b", 5, 7, 60, 60, 1)});
  set[0].copy_out = 9;
  EXPECT_EQ(set.max_copy_in(), 7);
  EXPECT_EQ(set.max_copy_out(), 9);
}

TEST(TaskSet, DeadlineMonotonicAssignment) {
  TaskSet set({make_task("slow", 5, 1, 100, 90, 0),
               make_task("fast", 5, 1, 50, 20, 1),
               make_task("mid", 5, 1, 80, 40, 2)});
  set.assign_deadline_monotonic_priorities();
  EXPECT_EQ(set[1].priority, 0u);  // D = 20
  EXPECT_EQ(set[2].priority, 1u);  // D = 40
  EXPECT_EQ(set[0].priority, 2u);  // D = 90
}

TEST(TaskSet, DeadlineMonotonicTieBreaksByIndex) {
  TaskSet set({make_task("first", 5, 1, 100, 50, 0),
               make_task("second", 5, 1, 100, 50, 1)});
  set.assign_deadline_monotonic_priorities();
  EXPECT_LT(set[0].priority, set[1].priority);
}

}  // namespace
