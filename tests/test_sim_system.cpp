#include "sim/system.hpp"

#include <gtest/gtest.h>

#include "analysis/schedulability.hpp"
#include "gen/generator.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace {

using mcs::gen::GeneratorConfig;
using mcs::gen::generate_task_set;
using mcs::gen::partition_worst_fit;
using mcs::rt::ContentionPolicy;
using mcs::rt::TaskSet;
using mcs::sim::Protocol;
using mcs::sim::simulate_system;
using mcs::sim::SystemSimOptions;
using mcs::support::Rng;

std::vector<TaskSet> make_system(std::uint64_t seed, std::size_t cores) {
  Rng rng(seed);
  GeneratorConfig cfg;
  cfg.num_tasks = 4 * cores;
  cfg.utilization = 0.25 * static_cast<double>(cores);
  cfg.gamma = 0.2;
  cfg.beta = 0.7;
  const TaskSet flat = generate_task_set(cfg, rng);
  return partition_worst_fit({flat.tasks().begin(), flat.tasks().end()},
                             cores);
}

TEST(SystemSim, SimulatesEveryCore) {
  const auto cores = make_system(3, 3);
  Rng rng(1);
  SystemSimOptions options;
  const auto result = simulate_system(cores, options, rng);
  ASSERT_EQ(result.traces.size(), 3u);
  ASSERT_EQ(result.metrics.size(), 3u);
  ASSERT_EQ(result.inflated_cores.size(), 3u);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_GT(result.traces[m].jobs.size(), 0u);
    EXPECT_GT(result.metrics[m].jobs_completed, 0u);
  }
}

TEST(SystemSim, InflationIsAppliedBeforeSimulation) {
  const auto cores = make_system(5, 2);
  Rng rng(1);
  SystemSimOptions options;
  options.contention = ContentionPolicy::kFullyBacklogged;
  const auto result = simulate_system(cores, options, rng);
  for (std::size_t m = 0; m < cores.size(); ++m) {
    for (std::size_t i = 0; i < cores[m].size(); ++i) {
      EXPECT_EQ(result.inflated_cores[m][i].copy_in,
                2 * cores[m][i].copy_in);
    }
  }
}

TEST(SystemSim, AnalysisVerdictImpliesSimulatedDeadlines) {
  // If the per-core analysis (on the same inflated sets) says schedulable,
  // the system simulation must meet every deadline.
  const auto cores = make_system(7, 2);
  const auto inflated = mcs::rt::apply_memory_contention(
      cores, ContentionPolicy::kDemandAware);
  bool analysis_ok = true;
  for (const auto& core : inflated) {
    analysis_ok =
        analysis_ok &&
        mcs::analysis::analyze(core,
                               mcs::analysis::Approach::kNonPreemptive)
            .schedulable;
  }
  if (!analysis_ok) {
    GTEST_SKIP() << "generated system not schedulable; nothing to check";
  }
  Rng rng(2);
  SystemSimOptions options;
  options.protocol = Protocol::kNonPreemptive;
  const auto result = simulate_system(cores, options, rng);
  EXPECT_TRUE(result.all_deadlines_met);
}

TEST(SystemSim, SporadicPatternsRun) {
  const auto cores = make_system(11, 2);
  Rng rng(3);
  SystemSimOptions options;
  options.sporadic = true;
  const auto result = simulate_system(cores, options, rng);
  EXPECT_EQ(result.traces.size(), 2u);
}

TEST(SystemSim, RejectsEmptySystem) {
  Rng rng(1);
  SystemSimOptions options;
  EXPECT_THROW(simulate_system({}, options, rng),
               mcs::support::ContractViolation);
}

}  // namespace
