#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

using mcs::support::parallel_for;
using mcs::support::ThreadPool;

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<int> hits(200, 0);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 200);
  for (const int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, SingleWorkerIsSequentialSafe) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPool, WorkerCountDefaultsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, TaskExceptionPropagatesThroughWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("bad task set"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, RemainingTasksStillRunWhenOneThrows) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter, i] {
      if (i == 10) throw std::runtime_error("boom");
      counter.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The throwing task did not take the queue (or the process) down.
  EXPECT_EQ(counter.load(), 49);
}

TEST(ThreadPool, FirstExceptionWinsAndErrorIsClearedAfterRethrow) {
  ThreadPool pool(1);  // single worker: deterministic order
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::logic_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle did not rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "first");
  }
  // The pool stays usable: accounting survived the throw paths and the
  // stored error was consumed by the rethrow.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesTaskExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_for(pool, 20,
                            [](std::size_t i) {
                              if (i == 7) {
                                throw std::runtime_error("element 7");
                              }
                            }),
               std::runtime_error);
  // Subsequent parallel_for calls start from a clean slate.
  std::atomic<int> counter{0};
  parallel_for(pool, 10, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ParallelForErrorCarriesIndexAndCause) {
  ThreadPool pool(3);
  try {
    parallel_for(pool, 20, [](std::size_t i) {
      if (i == 7) throw std::logic_error("bad formulation");
    });
    FAIL() << "parallel_for did not rethrow";
  } catch (const mcs::support::ParallelForError& error) {
    EXPECT_EQ(error.index(), 7u);
    EXPECT_NE(std::string(error.what()).find("index 7"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("bad formulation"),
              std::string::npos);
    ASSERT_NE(error.cause(), nullptr);
    EXPECT_THROW(std::rethrow_exception(error.cause()), std::logic_error);
  }
}

TEST(ThreadPool, ChunkedVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(23);
  mcs::support::parallel_for_chunked(
      pool, hits.size(), 3,
      [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ChunkedStripesRunSequentially) {
  // Chunk c owns the indices congruent to c mod chunks and must run them
  // in ascending order — callers key exclusive per-chunk state off
  // i % chunks and rely on it (analysis engine worker mapping).
  ThreadPool pool(4);
  constexpr std::size_t kChunks = 3;
  constexpr std::size_t kCount = 50;
  std::atomic<std::size_t> ticket{0};
  std::vector<std::size_t> stamp(kCount, 0);
  mcs::support::parallel_for_chunked(
      pool, kCount, kChunks,
      [&](std::size_t i) { stamp[i] = ticket.fetch_add(1); });
  for (std::size_t c = 0; c < kChunks; ++c) {
    for (std::size_t i = c + kChunks; i < kCount; i += kChunks) {
      EXPECT_LT(stamp[i - kChunks], stamp[i])
          << "stripe " << c << " ran out of order at index " << i;
    }
  }
}

TEST(ThreadPool, ChunkedClampsChunksAndHandlesZeroCount) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(4);
  // More chunks than indices: clamped, still exactly-once.
  mcs::support::parallel_for_chunked(
      pool, hits.size(), 99, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  // chunks = 0 means "pool worker count"; count = 0 is a no-op.
  std::atomic<int> counter{0};
  mcs::support::parallel_for_chunked(
      pool, 10, 0, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
  EXPECT_NO_THROW(mcs::support::parallel_for_chunked(
      pool, 0, 3, [](std::size_t) { FAIL() << "body ran for count 0"; }));
}

TEST(ThreadPool, ChunkedPropagatesErrorWithIndex) {
  ThreadPool pool(3);
  try {
    mcs::support::parallel_for_chunked(pool, 30, 4, [](std::size_t i) {
      if (i == 13) throw std::runtime_error("boom");
    });
    FAIL() << "parallel_for_chunked did not rethrow";
  } catch (const mcs::support::ParallelForError& error) {
    EXPECT_EQ(error.index(), 13u);
  }
}

}  // namespace
