#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace {

using mcs::support::parallel_for;
using mcs::support::ThreadPool;

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<int> hits(200, 0);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 200);
  for (const int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, SingleWorkerIsSequentialSafe) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPool, WorkerCountDefaultsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

}  // namespace
