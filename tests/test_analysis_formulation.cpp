// Structural tests of the delay MILP (milp_formulation.hpp): the solved
// worst-case "schedule" must obey the protocol's combinatorial structure,
// and the formulation must react to windows, LS flags, and cases exactly as
// §V prescribes.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/milp_formulation.hpp"
#include "analysis/window.hpp"
#include "gen/generator.hpp"
#include "lp/milp.hpp"
#include "rt/task.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace {

using mcs::analysis::build_delay_milp;
using mcs::analysis::DelayMilp;
using mcs::analysis::FormulationCase;
using mcs::lp::MilpOptions;
using mcs::lp::MilpResult;
using mcs::lp::solve_milp;
using mcs::lp::SolveStatus;
using mcs::lp::VarId;
using mcs::rt::Task;
using mcs::rt::TaskIndex;
using mcs::rt::TaskSet;
using mcs::rt::Time;

bool on(const MilpResult& r, VarId v) {
  return v.index != static_cast<std::size_t>(-1) && r.values[v.index] > 0.5;
}

Task make_task(std::string name, Time exec, Time mem, Time period,
               Time deadline, mcs::rt::Priority priority, bool ls = false) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = mem;
  t.copy_out = mem;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  t.latency_sensitive = ls;
  return t;
}

TaskSet mixed_set() {
  return TaskSet({make_task("s", 2, 1, 30, 10, 0, true),
                  make_task("a", 4, 2, 40, 30, 1),
                  make_task("b", 3, 1, 50, 45, 2),
                  make_task("c", 5, 2, 80, 70, 3)});
}

MilpResult solve(const DelayMilp& milp) {
  MilpOptions options;
  options.branch_priority.assign(milp.model.num_variables(), 0);
  for (const VarId a : milp.alpha_vars) {
    options.branch_priority[a.index] = 1;
  }
  return solve_milp(milp.model, options);
}

TEST(DelayMilp, SolvedScheduleObeysProtocolStructure) {
  const TaskSet tasks = mixed_set();
  const TaskIndex i = 3;  // lowest priority
  const Time window = 40;
  const DelayMilp milp =
      build_delay_milp(tasks, i, window, FormulationCase::kNls);
  const MilpResult r = solve(milp);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);

  const std::size_t N = milp.num_intervals;
  // Exactly one execution in I_1 .. I_{N-2}; at most one in I_0.
  for (std::size_t k = 0; k + 1 < N; ++k) {
    int execs = 0;
    for (TaskIndex j = 0; j < tasks.size(); ++j) {
      execs += on(r, milp.exec_vars[j][k]) ? 1 : 0;
      execs += on(r, milp.urgent_vars[j][k]) ? 1 : 0;
    }
    if (k == 0) {
      EXPECT_LE(execs, 1);
    } else {
      EXPECT_EQ(execs, 1) << "interval " << k;
    }
  }
  // tau_i never executes inside the delay window.
  for (std::size_t k = 0; k + 1 < N; ++k) {
    EXPECT_FALSE(on(r, milp.exec_vars[i][k]));
    EXPECT_FALSE(on(r, milp.urgent_vars[i][k]));
  }
  // Interference budgets respected.
  const auto budgets = mcs::analysis::interference_budgets(tasks, i, window);
  for (TaskIndex j = 0; j < tasks.size(); ++j) {
    if (j == i) continue;
    int uses = 0;
    for (std::size_t k = 0; k + 1 < N; ++k) {
      uses += on(r, milp.exec_vars[j][k]) ? 1 : 0;
      uses += on(r, milp.urgent_vars[j][k]) ? 1 : 0;
    }
    const bool lp_task = tasks[j].priority > tasks[i].priority;
    EXPECT_LE(uses, lp_task ? 1 : static_cast<int>(budgets[j]));
  }
  // Delta never exceeds max(cpu, dma) reconstructed from the assignment.
  for (std::size_t k = 0; k < N; ++k) {
    double cpu = k == N - 1 ? static_cast<double>(tasks[i].exec) : 0.0;
    for (TaskIndex j = 0; j < tasks.size() && k + 1 < N; ++j) {
      if (on(r, milp.exec_vars[j][k])) cpu += static_cast<double>(tasks[j].exec);
      if (on(r, milp.urgent_vars[j][k])) {
        cpu += static_cast<double>(tasks[j].copy_in + tasks[j].exec);
      }
    }
    const double delta = r.values[milp.delta_vars[k].index];
    // dma side is bounded by max copy-out + max copy-in of the set.
    const double dma_ub = static_cast<double>(tasks.max_copy_out() +
                                              tasks.max_copy_in());
    EXPECT_LE(delta, std::max(cpu, dma_ub) + 1e-6) << "interval " << k;
  }
}

TEST(DelayMilp, UrgentExecutionRequiresCancellation) {
  // Force a schedule with an urgent execution: the interval before it must
  // carry a cancellation (Constraint 8).
  const TaskSet tasks = mixed_set();
  const DelayMilp milp =
      build_delay_milp(tasks, 3, 40, FormulationCase::kNls);
  const MilpResult r = solve(milp);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  for (std::size_t k = 1; k + 1 < milp.num_intervals; ++k) {
    bool urgent_here = false;
    for (TaskIndex j = 0; j < tasks.size(); ++j) {
      urgent_here |= on(r, milp.urgent_vars[j][k]);
    }
    if (!urgent_here) continue;
    bool cancel_before = false;
    for (TaskIndex j = 0; j < tasks.size(); ++j) {
      cancel_before |= on(r, milp.cancel_vars[j][k - 1]);
    }
    EXPECT_TRUE(cancel_before) << "urgent execution in interval " << k;
  }
}

TEST(DelayMilp, NoLsTasksMeansNoUrgentOrCancelVariables) {
  TaskSet tasks = mixed_set();
  tasks[0].latency_sensitive = false;
  const DelayMilp milp =
      build_delay_milp(tasks, 3, 40, FormulationCase::kNls);
  for (TaskIndex j = 0; j < tasks.size(); ++j) {
    for (std::size_t k = 0; k < milp.num_intervals; ++k) {
      EXPECT_EQ(milp.urgent_vars[j][k].index, static_cast<std::size_t>(-1));
      EXPECT_EQ(milp.cancel_vars[j][k].index, static_cast<std::size_t>(-1));
    }
  }
}

TEST(DelayMilp, IgnoreLsMatchesStrippedFlags) {
  // Analyzing with ignore_ls must produce the same optimum as physically
  // clearing every LS flag (the WP baseline equivalence, DESIGN.md §5.3).
  const TaskSet tasks = mixed_set();
  TaskSet stripped = tasks;
  for (std::size_t j = 0; j < stripped.size(); ++j) {
    stripped[j].latency_sensitive = false;
  }
  for (const TaskIndex i : {TaskIndex{1}, TaskIndex{3}}) {
    const DelayMilp with_flag = build_delay_milp(
        tasks, i, 30, FormulationCase::kNls, /*ignore_ls=*/true);
    const DelayMilp without = build_delay_milp(
        stripped, i, 30, FormulationCase::kNls, /*ignore_ls=*/false);
    const MilpResult a = solve(with_flag);
    const MilpResult b = solve(without);
    ASSERT_EQ(a.status, SolveStatus::kOptimal);
    ASSERT_EQ(b.status, SolveStatus::kOptimal);
    EXPECT_NEAR(a.objective, b.objective, 1e-6);
  }
}

TEST(DelayMilp, ObjectiveMonotoneInWindow) {
  const TaskSet tasks = mixed_set();
  double prev = 0.0;
  for (const Time t : {Time{0}, Time{20}, Time{40}, Time{80}, Time{160}}) {
    const DelayMilp milp =
        build_delay_milp(tasks, 3, t, FormulationCase::kNls);
    const MilpResult r = solve(milp);
    ASSERT_EQ(r.status, SolveStatus::kOptimal);
    EXPECT_GE(r.objective, prev - 1e-9) << "window " << t;
    prev = r.objective;
  }
}

TEST(DelayMilp, LsCaseBIsTwoIntervals) {
  const TaskSet tasks = mixed_set();
  const DelayMilp milp =
      build_delay_milp(tasks, 0, 0, FormulationCase::kLsCaseB);
  EXPECT_EQ(milp.num_intervals, 2u);
  const MilpResult r = solve(milp);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  // Delta_1 >= l_s + C_s: the CPU performs copy-in + execution (C15).
  EXPECT_GE(r.values[milp.delta_vars[1].index],
            static_cast<double>(tasks[0].copy_in + tasks[0].exec) - 1e-6);
}

TEST(DelayMilp, LsCaseAForbidsLpBlockingBeyondFirstInterval) {
  const TaskSet tasks = mixed_set();
  const DelayMilp milp =
      build_delay_milp(tasks, 0, 20, FormulationCase::kLsCaseA);
  // lp executions may exist only in I_0 (Constraint 14).
  for (TaskIndex j = 1; j < tasks.size(); ++j) {  // all lp of task 0
    for (std::size_t k = 1; k + 1 < milp.num_intervals; ++k) {
      EXPECT_EQ(milp.exec_vars[j][k].index, static_cast<std::size_t>(-1))
          << "task " << j << " interval " << k;
    }
  }
}

TEST(DelayMilp, RejectsLsCaseForNonLsTask) {
  const TaskSet tasks = mixed_set();
  EXPECT_THROW(build_delay_milp(tasks, 1, 10, FormulationCase::kLsCaseA),
               mcs::support::ContractViolation);
  EXPECT_THROW(
      build_delay_milp(tasks, 0, 10, FormulationCase::kLsCaseA, true),
      mcs::support::ContractViolation);
}

// Randomized: the delay MILP always solves (never infeasible/unbounded) and
// yields a non-negative bounded objective.
class DelayMilpRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DelayMilpRandom, AlwaysSolvable) {
  mcs::support::Rng rng(GetParam() * 101 + 13);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  cfg.utilization = rng.uniform(0.2, 0.7);
  cfg.gamma = rng.uniform(0.0, 0.5);
  TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    tasks[j].latency_sensitive = rng.bernoulli(0.5);
  }
  const auto i =
      static_cast<TaskIndex>(rng.uniform_int(
          0, static_cast<std::int64_t>(tasks.size()) - 1));
  const Time window = rng.uniform_int(0, tasks[i].deadline);
  const FormulationCase fcase =
      tasks[i].latency_sensitive
          ? (rng.bernoulli(0.5) ? FormulationCase::kLsCaseA
                                : FormulationCase::kLsCaseB)
          : FormulationCase::kNls;
  const DelayMilp milp = build_delay_milp(tasks, i, window, fcase);
  const MilpResult r = solve(milp);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_GE(r.objective, 0.0);
  EXPECT_TRUE(std::isfinite(r.objective));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelayMilpRandom,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
