// Tests for the task-chain extension: model validation, the compositional
// age bound, trace measurement, and the bound-vs-measurement soundness
// property across random chains.
#include <gtest/gtest.h>

#include "analysis/chains.hpp"
#include "analysis/schedulability.hpp"
#include "gen/generator.hpp"
#include "rt/chain.hpp"
#include "sim/chain_age.hpp"
#include "sim/engine.hpp"
#include "sim/job_source.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace {

using mcs::analysis::chain_age_bound;
using mcs::analysis::ChainAgeBound;
using mcs::rt::Chain;
using mcs::rt::Task;
using mcs::rt::TaskSet;
using mcs::rt::Time;
using mcs::rt::validate_chain;
using mcs::sim::measure_chain_age;
using mcs::sim::Protocol;
using mcs::support::ContractViolation;

Task make_task(std::string name, Time exec, Time mem, Time period,
               Time deadline, mcs::rt::Priority priority) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = mem;
  t.copy_out = mem;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  return t;
}

TaskSet pipeline() {
  return TaskSet({make_task("a", 2, 1, 20, 18, 0),
                  make_task("b", 3, 1, 30, 28, 1),
                  make_task("c", 4, 1, 40, 38, 2)});
}

TEST(ChainModel, ValidationRules) {
  const TaskSet tasks = pipeline();
  Chain ok{"ok", {0, 1, 2}, 0};
  validate_chain(tasks, ok);

  Chain too_short{"s", {0}, 0};
  EXPECT_THROW(validate_chain(tasks, too_short), ContractViolation);
  Chain unknown{"u", {0, 7}, 0};
  EXPECT_THROW(validate_chain(tasks, unknown), ContractViolation);
  Chain repeated{"r", {0, 1, 0}, 0};
  EXPECT_THROW(validate_chain(tasks, repeated), ContractViolation);
}

TEST(ChainBound, ComposesPerStageTerms) {
  const TaskSet tasks = pipeline();
  const Chain chain{"c", {0, 1, 2}, 0};
  const std::vector<Time> wcrt{6, 9, 12};
  const ChainAgeBound bound = chain_age_bound(tasks, chain, wcrt);
  ASSERT_TRUE(bound.valid);
  // A_3 <= R_1 + (T_1 + R_1 + R_2) + (T_2 + R_2 + R_3)
  //      = 6 + (20 + 6 + 9) + (30 + 9 + 12) = 92.
  EXPECT_EQ(bound.max_data_age, 6 + (20 + 6 + 9) + (30 + 9 + 12));
  EXPECT_TRUE(bound.meets_constraint);
}

TEST(ChainBound, ConstraintEvaluation) {
  const TaskSet tasks = pipeline();
  Chain chain{"c", {0, 1}, 40};
  const std::vector<Time> wcrt{6, 9, 12};
  const ChainAgeBound bound = chain_age_bound(tasks, chain, wcrt);
  ASSERT_TRUE(bound.valid);
  EXPECT_EQ(bound.max_data_age, 6 + (20 + 6 + 9));
  EXPECT_FALSE(bound.meets_constraint);  // 41 > 40
}

TEST(ChainBound, InvalidWhenStageUnbounded) {
  const TaskSet tasks = pipeline();
  const Chain chain{"c", {0, 1, 2}, 0};
  const std::vector<Time> wcrt{6, mcs::rt::kTimeMax, 12};
  EXPECT_FALSE(chain_age_bound(tasks, chain, wcrt).valid);
}

TEST(ChainBound, InvalidOnBacklog) {
  const TaskSet tasks = pipeline();
  const Chain chain{"c", {0, 1, 2}, 0};
  const std::vector<Time> wcrt{25, 9, 12};  // R_1 > T_1
  EXPECT_FALSE(chain_age_bound(tasks, chain, wcrt).valid);
}

TEST(ChainMeasurement, HandComputedTwoStage) {
  // a: C=2, l=u=1, T=10; b: C=2, l=u=1, T=10, lower priority.
  const TaskSet tasks({make_task("a", 2, 1, 10, 10, 0),
                       make_task("b", 2, 1, 10, 10, 1)});
  const Chain chain{"ab", {0, 1}, 0};
  const auto releases =
      mcs::sim::synchronous_periodic_releases(tasks, 100);
  const auto trace =
      mcs::sim::simulate(tasks, Protocol::kProposed, releases);
  const auto measured = measure_chain_age(tasks, chain, trace);
  ASSERT_GT(measured.samples, 0u);
  EXPECT_LT(measured.max_age, 30);  // well under T_a + T_b + responses
}

TEST(ChainMeasurement, NoSamplesDuringTransientOnly) {
  // Chain whose producer never completes before the consumer samples:
  // single release each, consumer first.
  const TaskSet tasks({make_task("a", 2, 1, 100, 100, 1),
                       make_task("b", 2, 1, 100, 100, 0)});
  const Chain chain{"ab", {0, 1}, 0};
  // b released first and completes before a produces anything.
  const auto trace = mcs::sim::simulate(
      tasks, Protocol::kProposed,
      {{mcs::sim::JobId{1, 0}, 0}, {mcs::sim::JobId{0, 0}, 50}});
  const auto measured = measure_chain_age(tasks, chain, trace);
  EXPECT_EQ(measured.samples, 0u);
  EXPECT_EQ(measured.max_age, mcs::rt::kTimeMax);
}

// ---------------------------------------------------------------------------
// Property: measured age never exceeds the compositional bound, for random
// schedulable task sets under periodic releases, on every protocol.
// ---------------------------------------------------------------------------

class ChainSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainSoundness, MeasuredAgeWithinBound) {
  mcs::support::Rng rng(GetParam() * 577 + 29);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = 3;
  cfg.utilization = rng.uniform(0.2, 0.45);
  cfg.gamma = rng.uniform(0.05, 0.4);
  cfg.beta = 0.6;
  TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);

  // Random 2- or 3-stage chain over distinct tasks.
  Chain chain{"rand", {0, 1}, 0};
  if (rng.bernoulli(0.5)) {
    chain.tasks = {0, 1, 2};
  }
  rng.shuffle(chain.tasks);

  struct Mode {
    mcs::analysis::Approach approach;
    Protocol protocol;
  };
  const Mode modes[] = {
      {mcs::analysis::Approach::kProposed, Protocol::kProposed},
      {mcs::analysis::Approach::kNonPreemptive, Protocol::kNonPreemptive},
  };
  for (const Mode& mode : modes) {
    const auto result = mcs::analysis::analyze(tasks, mode.approach);
    if (!result.schedulable) continue;
    const auto bound = chain_age_bound(tasks, chain, result.wcrt);
    if (!bound.valid) continue;

    TaskSet marked = tasks;
    for (std::size_t i = 0; i < marked.size(); ++i) {
      marked[i].latency_sensitive = result.ls_flags[i];
    }
    const auto releases = mcs::sim::synchronous_periodic_releases(
        marked, 800 * mcs::rt::kTicksPerUnit);
    const auto trace = mcs::sim::simulate(marked, mode.protocol, releases);
    const auto measured = measure_chain_age(marked, chain, trace);
    if (measured.samples == 0) continue;
    EXPECT_LE(measured.max_age, bound.max_data_age)
        << to_string(mode.approach) << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainSoundness,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
