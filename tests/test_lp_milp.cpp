#include "lp/milp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.hpp"
#include "support/rng.hpp"

namespace {

using mcs::lp::kInfinity;
using mcs::lp::LinExpr;
using mcs::lp::MilpOptions;
using mcs::lp::MilpResult;
using mcs::lp::Model;
using mcs::lp::Relation;
using mcs::lp::Sense;
using mcs::lp::solve_lp;
using mcs::lp::solve_milp;
using mcs::lp::SolveStatus;
using mcs::lp::VarId;

constexpr double kTol = 1e-5;

// Brute force over all integer assignments (requires every variable to be
// integral with a small finite domain).
double brute_force_best(const Model& model, bool& feasible) {
  const std::size_t n = model.num_variables();
  std::vector<double> assignment(n, 0.0);
  std::vector<std::pair<long, long>> domains;
  domains.reserve(n);
  for (const auto& v : model.variables()) {
    domains.emplace_back(static_cast<long>(std::ceil(v.lower)),
                         static_cast<long>(std::floor(v.upper)));
  }
  feasible = false;
  const bool maximize = model.objective_sense() == Sense::kMaximize;
  double best = maximize ? -kInfinity : kInfinity;
  // Odometer enumeration.
  std::vector<long> current;
  for (const auto& [lo, hi] : domains) {
    if (lo > hi) return best;
    current.push_back(lo);
  }
  for (;;) {
    for (std::size_t i = 0; i < n; ++i) {
      assignment[i] = static_cast<double>(current[i]);
    }
    if (model.is_feasible(assignment, 1e-7)) {
      feasible = true;
      const double obj = model.evaluate(model.objective(), assignment);
      best = maximize ? std::max(best, obj) : std::min(best, obj);
    }
    std::size_t pos = 0;
    while (pos < n && ++current[pos] > domains[pos].second) {
      current[pos] = domains[pos].first;
      ++pos;
    }
    if (pos == n) break;
  }
  return best;
}

TEST(Milp, PureLpPassThrough) {
  Model m;
  const VarId x = m.add_continuous(0, 4, "x");
  m.set_objective(Sense::kMaximize, LinExpr(x));
  const MilpResult r = solve_milp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, kTol);
}

TEST(Milp, SmallKnapsack) {
  // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary -> a=1,c=1 (17) vs b+c (20).
  Model m;
  const VarId a = m.add_binary("a");
  const VarId b = m.add_binary("b");
  const VarId c = m.add_binary("c");
  m.add_constraint(3.0 * LinExpr(a) + 4.0 * LinExpr(b) + 2.0 * LinExpr(c),
                   Relation::kLe, 6.0);
  m.set_objective(Sense::kMaximize,
                  10.0 * LinExpr(a) + 13.0 * LinExpr(b) + 7.0 * LinExpr(c));
  const MilpResult r = solve_milp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 20.0, kTol);
  EXPECT_NEAR(r.values[b.index], 1.0, kTol);
  EXPECT_NEAR(r.values[c.index], 1.0, kTol);
  EXPECT_NEAR(r.values[a.index], 0.0, kTol);
}

TEST(Milp, IntegerRounding) {
  // max x with 2x <= 7, x integer -> 3 (LP would say 3.5).
  Model m;
  const VarId x = m.add_integer(0, 100, "x");
  m.add_constraint(2.0 * LinExpr(x), Relation::kLe, 7.0);
  m.set_objective(Sense::kMaximize, LinExpr(x));
  const MilpResult r = solve_milp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, kTol);
}

TEST(Milp, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 has no integer point.
  Model m;
  const VarId x = m.add_integer(0, 10, "x");
  m.add_constraint(LinExpr(x), Relation::kGe, 0.4);
  m.add_constraint(LinExpr(x), Relation::kLe, 0.6);
  m.set_objective(Sense::kMaximize, LinExpr(x));
  EXPECT_EQ(solve_milp(m).status, SolveStatus::kInfeasible);
}

TEST(Milp, MixedIntegerContinuous) {
  // max 2b + y, y <= 1.5, y <= 10 b, b binary.
  Model m;
  const VarId b = m.add_binary("b");
  const VarId y = m.add_continuous(0, 1.5, "y");
  m.add_constraint(LinExpr(y) - 10.0 * LinExpr(b), Relation::kLe, 0.0);
  m.set_objective(Sense::kMaximize, 2.0 * LinExpr(b) + LinExpr(y));
  const MilpResult r = solve_milp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.5, kTol);
}

TEST(Milp, BigMMaxEncoding) {
  // The analysis encodes Delta = max(A, B) via Constraint 13's big-M pair;
  // verify the encoding picks the true maximum under maximization.
  Model m;
  const double big_m = 100.0;
  const VarId delta = m.add_continuous(0, kInfinity, "delta");
  const VarId alpha = m.add_binary("alpha");
  const double a = 7.0, b = 11.0;
  m.add_constraint(LinExpr(delta),
                   Relation::kLe, LinExpr(a) + big_m * LinExpr(alpha));
  m.add_constraint(LinExpr(delta), Relation::kLe,
                   LinExpr(b) + big_m * (1.0 - LinExpr(alpha)));
  m.set_objective(Sense::kMaximize, LinExpr(delta));
  const MilpResult r = solve_milp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 11.0, kTol);
}

TEST(Milp, AssignmentProblem) {
  // 3x3 assignment, minimize cost; optimal = 1 + 2 + 1 = 4 on off-diagonal.
  const double cost[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 1}};
  Model m;
  std::vector<std::vector<VarId>> x(3, std::vector<VarId>(3));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          m.add_binary();
    }
  }
  for (int i = 0; i < 3; ++i) {
    LinExpr row, col;
    for (int j = 0; j < 3; ++j) {
      row += LinExpr(x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
      col += LinExpr(x[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)]);
    }
    m.add_constraint(row, Relation::kEq, 1.0);
    m.add_constraint(col, Relation::kEq, 1.0);
  }
  LinExpr obj;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      obj += cost[i][j] *
             LinExpr(x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
  }
  m.set_objective(Sense::kMinimize, obj);
  const MilpResult r = solve_milp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, kTol);
}

TEST(Milp, NodeLimitYieldsSafeBound) {
  // A knapsack too large to finish in 1 node: bound must still dominate
  // the optimum (maximization -> best_bound >= optimum).
  mcs::support::Rng rng(99);
  Model m;
  LinExpr weight, value;
  for (int i = 0; i < 12; ++i) {
    const VarId v = m.add_binary();
    weight += rng.uniform(1.0, 5.0) * LinExpr(v);
    value += rng.uniform(1.0, 9.0) * LinExpr(v);
  }
  m.add_constraint(weight, Relation::kLe, 12.0);
  m.set_objective(Sense::kMaximize, value);

  const MilpResult full = solve_milp(m);
  ASSERT_EQ(full.status, SolveStatus::kOptimal);

  MilpOptions tight;
  tight.max_nodes = 1;
  const MilpResult limited = solve_milp(m, tight);
  EXPECT_EQ(limited.status, SolveStatus::kNodeLimit);
  EXPECT_GE(limited.best_bound, full.objective - kTol);
}

TEST(Milp, DeterministicAcrossRuns) {
  mcs::support::Rng rng(7);
  Model m;
  LinExpr weight, value;
  for (int i = 0; i < 10; ++i) {
    const VarId v = m.add_binary();
    weight += rng.uniform(1.0, 5.0) * LinExpr(v);
    value += rng.uniform(1.0, 9.0) * LinExpr(v);
  }
  m.add_constraint(weight, Relation::kLe, 10.0);
  m.set_objective(Sense::kMaximize, value);
  const MilpResult r1 = solve_milp(m);
  const MilpResult r2 = solve_milp(m);
  ASSERT_EQ(r1.status, SolveStatus::kOptimal);
  EXPECT_EQ(r1.objective, r2.objective);
  EXPECT_EQ(r1.values, r2.values);
  EXPECT_EQ(r1.nodes, r2.nodes);
}

// ---------------------------------------------------------------------------
// Property test: B&B equals brute-force enumeration on random small pure
// integer programs.
// ---------------------------------------------------------------------------

class MilpVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MilpVsBruteForce, MatchesEnumeration) {
  mcs::support::Rng rng(GetParam() * 7919 + 3);
  Model m;
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  const std::size_t rows = 1 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  std::vector<VarId> vars;
  for (std::size_t i = 0; i < n; ++i) {
    const auto lo = rng.uniform_int(-2, 1);
    const auto hi = lo + rng.uniform_int(1, 3);
    vars.push_back(m.add_integer(static_cast<double>(lo),
                                 static_cast<double>(hi)));
  }
  for (std::size_t r = 0; r < rows; ++r) {
    LinExpr lhs;
    for (const VarId v : vars) {
      lhs += rng.uniform(-3.0, 3.0) * LinExpr(v);
    }
    const Relation rel = rng.bernoulli(0.5) ? Relation::kLe : Relation::kGe;
    m.add_constraint(lhs, rel, rng.uniform(-6.0, 6.0));
  }
  LinExpr obj;
  for (const VarId v : vars) {
    obj += rng.uniform(-4.0, 4.0) * LinExpr(v);
  }
  const Sense sense = rng.bernoulli(0.5) ? Sense::kMaximize : Sense::kMinimize;
  m.set_objective(sense, obj);

  bool feasible = false;
  const double expected = brute_force_best(m, feasible);
  const MilpResult r = solve_milp(m);
  if (!feasible) {
    EXPECT_EQ(r.status, SolveStatus::kInfeasible);
  } else {
    ASSERT_EQ(r.status, SolveStatus::kOptimal)
        << "status=" << to_string(r.status);
    EXPECT_NEAR(r.objective, expected, 1e-5);
    EXPECT_TRUE(m.is_feasible(r.values, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpVsBruteForce,
                         ::testing::Range<std::uint64_t>(0, 120));

}  // namespace
