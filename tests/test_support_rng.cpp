#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "support/contracts.hpp"

namespace {

using mcs::support::ContractViolation;
using mcs::support::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.uniform01();
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Rng, UniformRejectsEmptyRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(1.0, 0.0), ContractViolation);
}

TEST(Rng, LogUniformRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.log_uniform(10.0, 100.0);
    ASSERT_GE(x, 10.0);
    ASSERT_LE(x, 100.0);
  }
}

TEST(Rng, LogUniformIsLogSymmetric) {
  // Median of log-uniform([10,100]) should be near sqrt(10*100) ~ 31.6,
  // not the arithmetic midpoint 55.
  Rng rng(19);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(rng.log_uniform(10.0, 100.0));
  }
  const auto mid =
      samples.begin() +
      static_cast<std::ptrdiff_t>(samples.size() / 2);
  std::nth_element(samples.begin(), mid, samples.end());
  const double median = samples[samples.size() / 2];
  EXPECT_NEAR(median, 31.62, 1.5);
}

TEST(Rng, LogUniformRejectsNonPositive) {
  Rng rng(1);
  EXPECT_THROW(rng.log_uniform(0.0, 10.0), ContractViolation);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(23);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(3, 7);
    ASSERT_GE(x, 3);
    ASSERT_LE(x, 7);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(29);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
  }
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(-10, -5);
    ASSERT_GE(x, -10);
    ASSERT_LE(x, -5);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(41);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(43);
  const std::vector<double> weights{0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.discrete(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.2);
}

TEST(Rng, DiscreteRejectsDegenerateInputs) {
  Rng rng(1);
  EXPECT_THROW(rng.discrete({}), ContractViolation);
  EXPECT_THROW(rng.discrete({0.0, 0.0}), ContractViolation);
  EXPECT_THROW(rng.discrete({-1.0, 2.0}), ContractViolation);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> data{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = data;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, data);
}

TEST(Rng, SplitStreamsDecorrelated) {
  Rng parent(51);
  Rng child0 = parent.split(0);
  Rng child1 = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child0() == child1()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(DeriveSeed, TupleComponentsAllMatter) {
  using mcs::support::derive_seed;
  const std::uint64_t base = derive_seed(7, 3, 5);
  EXPECT_NE(base, derive_seed(8, 3, 5));
  EXPECT_NE(base, derive_seed(7, 4, 5));
  EXPECT_NE(base, derive_seed(7, 3, 6));
  // Order-sensitive: (a, b) and (b, a) are different tuples.
  EXPECT_NE(derive_seed(7, 3, 5), derive_seed(7, 5, 3));
  // Pure function of the tuple.
  EXPECT_EQ(base, derive_seed(7, 3, 5));
}

TEST(DeriveSeed, NoCollisionsOnSweepShapedGrid) {
  // The additive scheme this replaced (seed + C * (p + 1)) collided whenever
  // two (seed, point) pairs landed on the same sum.  Scan a grid shaped
  // like a big sweep: every (point, slot) must map to a distinct seed, and
  // nearby base seeds must not alias each other's grids.
  using mcs::support::derive_seed;
  std::set<std::uint64_t> seen;
  std::size_t inserted = 0;
  for (std::uint64_t seed : {1ULL, 2ULL, 2020ULL}) {
    for (std::uint64_t p = 0; p < 32; ++p) {
      for (std::uint64_t s = 0; s < 128; ++s) {
        seen.insert(derive_seed(seed, p, s));
        ++inserted;
      }
    }
  }
  EXPECT_EQ(seen.size(), inserted);
}

TEST(DeriveSeed, DerivedStreamsDecorrelated) {
  using mcs::support::derive_seed;
  Rng a(derive_seed(99, 0, 0));
  Rng b(derive_seed(99, 0, 1));
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  // Regression anchor: experiment reproducibility depends on this exact
  // sequence never changing across platforms or refactors.
  std::uint64_t state = 0;
  const std::uint64_t first = mcs::support::splitmix64(state);
  const std::uint64_t second = mcs::support::splitmix64(state);
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
  EXPECT_EQ(second, 0x6e789e6aa1b965f4ULL);
}

}  // namespace
