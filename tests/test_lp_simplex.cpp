#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lp/model.hpp"
#include "support/rng.hpp"

namespace {

using mcs::lp::kInfinity;
using mcs::lp::LinExpr;
using mcs::lp::LpSolution;
using mcs::lp::Model;
using mcs::lp::Relation;
using mcs::lp::Sense;
using mcs::lp::solve_lp;
using mcs::lp::SolveStatus;
using mcs::lp::VarId;

constexpr double kTol = 1e-6;

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  (2, 6), z = 36.
  Model m;
  const VarId x = m.add_continuous(0, kInfinity, "x");
  const VarId y = m.add_continuous(0, kInfinity, "y");
  m.add_constraint(LinExpr(x), Relation::kLe, 4.0);
  m.add_constraint(2.0 * LinExpr(y), Relation::kLe, 12.0);
  m.add_constraint(3.0 * LinExpr(x) + 2.0 * LinExpr(y), Relation::kLe, 18.0);
  m.set_objective(Sense::kMaximize, 3.0 * LinExpr(x) + 5.0 * LinExpr(y));
  const LpSolution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 36.0, kTol);
  EXPECT_NEAR(sol.values[x.index], 2.0, kTol);
  EXPECT_NEAR(sol.values[y.index], 6.0, kTol);
}

TEST(Simplex, MinimizationWithGeRows) {
  // min 2x + 3y  s.t. x + y >= 4, x + 2y >= 6  ->  (2, 2), z = 10.
  Model m;
  const VarId x = m.add_continuous(0, kInfinity, "x");
  const VarId y = m.add_continuous(0, kInfinity, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kGe, 4.0);
  m.add_constraint(LinExpr(x) + 2.0 * LinExpr(y), Relation::kGe, 6.0);
  m.set_objective(Sense::kMinimize, 2.0 * LinExpr(x) + 3.0 * LinExpr(y));
  const LpSolution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 10.0, kTol);
  EXPECT_NEAR(sol.values[x.index], 2.0, kTol);
  EXPECT_NEAR(sol.values[y.index], 2.0, kTol);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y  s.t. x + y = 5, x - y = 1  ->  (3, 2), z = 5.
  Model m;
  const VarId x = m.add_continuous(0, kInfinity, "x");
  const VarId y = m.add_continuous(0, kInfinity, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kEq, 5.0);
  m.add_constraint(LinExpr(x) - LinExpr(y), Relation::kEq, 1.0);
  m.set_objective(Sense::kMinimize, LinExpr(x) + LinExpr(y));
  const LpSolution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[x.index], 3.0, kTol);
  EXPECT_NEAR(sol.values[y.index], 2.0, kTol);
}

TEST(Simplex, DetectsInfeasibility) {
  Model m;
  const VarId x = m.add_continuous(0, 10, "x");
  m.add_constraint(LinExpr(x), Relation::kGe, 5.0);
  m.add_constraint(LinExpr(x), Relation::kLe, 3.0);
  m.set_objective(Sense::kMaximize, LinExpr(x));
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, IllScaledFeasibleModelIsNotDeclaredInfeasible) {
  // Regression: the phase-1 infeasibility gate used to be absolute
  // (feasibility_tol * 10) while every other termination test in the solver
  // scales with the data, so a feasible model with 1e9-scale right-hand
  // sides could be declared infeasible on residuals that are pure noise at
  // its magnitude.  Each tiny equality below keeps its artificial stuck
  // basic at 3e-8 (the 5e-10 coefficient sits under both pivot_tol and
  // reduced_cost_tol), which is legal per-row; the sum 40 * 3e-8 = 1.2e-6
  // crossed the old absolute gate even though the model is exactly
  // feasible (x = 1.5e9, every y = 60).
  Model m;
  const VarId x = m.add_continuous(0.0, 2e9, "x");
  m.add_constraint(LinExpr(x), Relation::kEq, 1.5e9);
  for (int i = 0; i < 40; ++i) {
    const VarId y = m.add_continuous(0.0, 1e6, "y");
    m.add_constraint(term(y, 5e-10), Relation::kEq, 3e-8);
  }
  m.set_objective(Sense::kMinimize, LinExpr(x));
  const LpSolution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[x.index], 1.5e9, 1.0);
}

TEST(Simplex, IllScaledInfeasibleModelIsStillDetected) {
  // Companion to the feasible regression above: the phase-1 gate is
  // scale-relative but capped, so rhs magnitudes around 1e9 must not push
  // the threshold past tick scale and swallow a genuine (>= 1 tick)
  // infeasibility.  Uncapped, feasibility_tol * 10 * rhs_scale would be
  // ~1500 here and the 4-tick gap between the two rows would pass as
  // phase-1 noise.
  Model m;
  const VarId x = m.add_continuous(0.0, 2e9, "x");
  m.add_constraint(LinExpr(x), Relation::kGe, 1.5e9 + 2.0);
  m.add_constraint(LinExpr(x), Relation::kLe, 1.5e9 - 2.0);
  m.set_objective(Sense::kMinimize, LinExpr(x));
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Model m;
  const VarId x = m.add_continuous(0, kInfinity, "x");
  const VarId y = m.add_continuous(0, kInfinity, "y");
  m.add_constraint(LinExpr(x) - LinExpr(y), Relation::kLe, 1.0);
  m.set_objective(Sense::kMaximize, LinExpr(x));
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, VariableUpperBoundsRespected) {
  // max x + y with x <= 2 (bound), x + y <= 3.
  Model m;
  const VarId x = m.add_continuous(0, 2, "x");
  const VarId y = m.add_continuous(0, kInfinity, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kLe, 3.0);
  m.set_objective(Sense::kMaximize, 2.0 * LinExpr(x) + LinExpr(y));
  const LpSolution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[x.index], 2.0, kTol);
  EXPECT_NEAR(sol.values[y.index], 1.0, kTol);
  EXPECT_NEAR(sol.objective, 5.0, kTol);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y with x >= -5, y >= -3, x + y >= -6  ->  z = -6 on the row.
  Model m;
  const VarId x = m.add_continuous(-5, kInfinity, "x");
  const VarId y = m.add_continuous(-3, kInfinity, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kGe, -6.0);
  m.set_objective(Sense::kMinimize, LinExpr(x) + LinExpr(y));
  const LpSolution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -6.0, kTol);
}

TEST(Simplex, FreeVariables) {
  // min x subject to x >= -7 expressed through a constraint on a free var.
  Model m;
  const VarId x = m.add_continuous(-kInfinity, kInfinity, "x");
  m.add_constraint(LinExpr(x), Relation::kGe, -7.0);
  m.set_objective(Sense::kMinimize, LinExpr(x));
  const LpSolution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -7.0, kTol);
}

TEST(Simplex, UpperBoundedOnlyVariable) {
  // max x with x <= 9 and no lower bound, plus x >= 0 via constraint.
  Model m;
  const VarId x = m.add_continuous(-kInfinity, 9, "x");
  m.add_constraint(LinExpr(x), Relation::kGe, 0.0);
  m.set_objective(Sense::kMaximize, LinExpr(x));
  const LpSolution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 9.0, kTol);
}

TEST(Simplex, FixedVariablesContribute) {
  Model m;
  const VarId x = m.add_continuous(3, 3, "x");
  const VarId y = m.add_continuous(0, kInfinity, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kLe, 5.0);
  m.set_objective(Sense::kMaximize, LinExpr(x) + LinExpr(y));
  const LpSolution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[x.index], 3.0, kTol);
  EXPECT_NEAR(sol.values[y.index], 2.0, kTol);
}

TEST(Simplex, NoConstraintsBoundFlipOnly) {
  Model m;
  const VarId x = m.add_continuous(1, 4, "x");
  const VarId y = m.add_continuous(-2, 5, "y");
  m.set_objective(Sense::kMaximize, LinExpr(x) - 2.0 * LinExpr(y));
  const LpSolution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[x.index], 4.0, kTol);
  EXPECT_NEAR(sol.values[y.index], -2.0, kTol);
  EXPECT_NEAR(sol.objective, 8.0, kTol);
}

TEST(Simplex, ObjectiveConstantCarriedThrough) {
  Model m;
  const VarId x = m.add_continuous(0, 2, "x");
  m.set_objective(Sense::kMaximize, LinExpr(x) + 10.0);
  const LpSolution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 12.0, kTol);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate LP (multiple constraints active at the optimum).
  Model m;
  const VarId x = m.add_continuous(0, kInfinity, "x");
  const VarId y = m.add_continuous(0, kInfinity, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kLe, 1.0);
  m.add_constraint(LinExpr(x), Relation::kLe, 1.0);
  m.add_constraint(LinExpr(y), Relation::kLe, 1.0);
  m.add_constraint(2.0 * LinExpr(x) + 2.0 * LinExpr(y), Relation::kLe, 2.0);
  m.set_objective(Sense::kMaximize, LinExpr(x) + LinExpr(y));
  const LpSolution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 1.0, kTol);
}

TEST(Simplex, RedundantEqualityRows) {
  Model m;
  const VarId x = m.add_continuous(0, kInfinity, "x");
  const VarId y = m.add_continuous(0, kInfinity, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Relation::kEq, 4.0);
  m.add_constraint(2.0 * LinExpr(x) + 2.0 * LinExpr(y), Relation::kEq, 8.0);
  m.set_objective(Sense::kMaximize, LinExpr(x));
  const LpSolution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 4.0, kTol);
}

TEST(Simplex, SolutionSatisfiesModel) {
  Model m;
  const VarId a = m.add_continuous(0, 6, "a");
  const VarId b = m.add_continuous(1, 8, "b");
  const VarId c = m.add_continuous(-2, 2, "c");
  m.add_constraint(LinExpr(a) + LinExpr(b) + LinExpr(c), Relation::kLe, 9.0);
  m.add_constraint(LinExpr(a) - LinExpr(c), Relation::kGe, 1.0);
  m.add_constraint(LinExpr(b) + 0.5 * LinExpr(c), Relation::kEq, 4.0);
  m.set_objective(Sense::kMaximize,
                  LinExpr(a) + 2.0 * LinExpr(b) + 0.5 * LinExpr(c));
  const LpSolution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_TRUE(m.is_feasible(sol.values, 1e-6));
}

// ---------------------------------------------------------------------------
// Property test: on random LPs with box bounds only, the optimum must match
// the analytic per-variable bound solution; with one coupling row, the
// simplex answer must be feasible and at least as good as greedy rounding.
// ---------------------------------------------------------------------------

class SimplexRandomBox : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandomBox, MatchesAnalyticBoxOptimum) {
  mcs::support::Rng rng(GetParam());
  Model m;
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(1, 8));
  std::vector<VarId> vars;
  LinExpr obj;
  double expected = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = rng.uniform(-10.0, 0.0);
    const double hi = lo + rng.uniform(0.0, 10.0);
    const double coef = rng.uniform(-5.0, 5.0);
    const VarId v = m.add_continuous(lo, hi, "v" + std::to_string(i));
    vars.push_back(v);
    obj += coef * LinExpr(v);
    expected += coef >= 0.0 ? coef * hi : coef * lo;
  }
  m.set_objective(Sense::kMaximize, obj);
  const LpSolution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, expected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomBox,
                         ::testing::Range<std::uint64_t>(0, 25));

class SimplexRandomFeasibility
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandomFeasibility, OptimalSolutionsAreFeasible) {
  mcs::support::Rng rng(GetParam() + 1000);
  Model m;
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 5));
  const std::size_t rows = 1 + static_cast<std::size_t>(rng.uniform_int(0, 5));
  std::vector<VarId> vars;
  for (std::size_t i = 0; i < n; ++i) {
    vars.push_back(m.add_continuous(0.0, rng.uniform(0.5, 10.0)));
  }
  for (std::size_t r = 0; r < rows; ++r) {
    LinExpr lhs;
    for (const VarId v : vars) {
      lhs += rng.uniform(0.0, 3.0) * LinExpr(v);
    }
    // rhs >= 0 keeps the origin feasible so the LP is always feasible.
    m.add_constraint(lhs, Relation::kLe, rng.uniform(0.0, 20.0));
  }
  LinExpr obj;
  for (const VarId v : vars) {
    obj += rng.uniform(-2.0, 4.0) * LinExpr(v);
  }
  m.set_objective(Sense::kMaximize, obj);
  const LpSolution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_TRUE(m.is_feasible(sol.values, 1e-6));
  // The optimum cannot be worse than the all-zero solution.
  EXPECT_GE(sol.objective, -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomFeasibility,
                         ::testing::Range<std::uint64_t>(0, 50));

}  // namespace
