// Graceful-degradation tests for deadline-bounded analysis requests
// (docs/SERVICE.md §Budgets, analysis/budget.hpp).
//
// The safety contract under test: a degraded (budget-truncated) analysis
// replaces delay-MILP optima with LP relaxation dual bounds, which only
// *over*-estimate response times.  So a degraded verdict may flip
// schedulable -> unschedulable (pessimism), but never unschedulable ->
// schedulable; per-task degraded WCRT bounds dominate the exact ones; and
// a degraded-schedulable greedy run's final LS marking is an exact witness
// of schedulability.  Checked over a randomized corpus of the paper's own
// task-set distribution (§VII).
//
// Also covered: degraded verdicts are never cached, and overload shedding
// answers with a well-formed `overloaded` error carrying a retry-after
// hint instead of queueing unboundedly.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/budget.hpp"
#include "analysis/engine.hpp"
#include "gen/generator.hpp"
#include "rt/task.hpp"
#include "rt/types.hpp"
#include "support/rng.hpp"
#include "svc/json.hpp"
#include "svc/service.hpp"

using namespace mcs;
using svc::Json;

namespace {

rt::TaskSet corpus_set(std::uint64_t seed, double utilization) {
  gen::GeneratorConfig config;
  config.num_tasks = 4;
  config.utilization = utilization;
  config.gamma = 0.2;
  config.beta = 0.5;
  support::Rng rng(seed);
  return gen::generate_task_set(config, rng);
}

}  // namespace

// ---------------------------------------------------------------------------
// SolveBudget semantics

TEST(SvcDegradation, DefaultBudgetIsUnlimited) {
  const analysis::SolveBudget budget;
  EXPECT_TRUE(budget.is_unlimited());
  EXPECT_FALSE(budget.exceeded());
}

TEST(SvcDegradation, ExhaustedBudgetIsMonotonicallyExceeded) {
  const analysis::SolveBudget budget = analysis::SolveBudget::exhausted();
  EXPECT_FALSE(budget.is_unlimited());
  EXPECT_TRUE(budget.exceeded());
  EXPECT_TRUE(budget.exceeded());  // stays exceeded
}

TEST(SvcDegradation, NonPositiveHeadroomIsExhausted) {
  EXPECT_TRUE(
      analysis::SolveBudget::after(std::chrono::nanoseconds{0}).exceeded());
  EXPECT_TRUE(
      analysis::SolveBudget::after(std::chrono::nanoseconds{-5}).exceeded());
  EXPECT_FALSE(analysis::SolveBudget::after(std::chrono::hours{1}).exceeded());
}

// ---------------------------------------------------------------------------
// Safety of degraded analysis (engine level)

TEST(SvcDegradation, DegradedVerdictsNeverOverClaimSameMarking) {
  // Fixed marking (analyze_marked / analyze_wp): the degraded path answers
  // with LP dual bounds, which are upper bounds on the MILP optima, so a
  // degraded "schedulable" — per task and for the whole set — must be
  // confirmed by the exact analysis.  Raw WCRT numbers are *not* compared
  // outside the both-schedulable case: for a task past its deadline both
  // analyses report their (different) deadline-crossing values, and two
  // safe upper bounds from different solve paths may differ either way.
  const analysis::SolveBudget exhausted = analysis::SolveBudget::exhausted();
  const analysis::SolveBudget unlimited;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    for (const double u : {0.4, 0.7}) {
      const rt::TaskSet generated = corpus_set(seed, u);
      // Mark the highest-priority task LS so the marked analysis exercises
      // the LS case (a)/(b) formulations, not just the NLS one.
      std::vector<rt::Task> with_ls;
      for (rt::TaskIndex i = 0; i < generated.size(); ++i) {
        rt::Task t = generated[i];
        if (t.priority == 0) t.latency_sensitive = true;
        with_ls.push_back(std::move(t));
      }
      const rt::TaskSet marked_set(with_ls);

      analysis::AnalysisOptions exact_options;
      exact_options.budget = &unlimited;
      analysis::AnalysisOptions degraded_options;
      degraded_options.budget = &exhausted;

      analysis::AnalysisEngine exact_engine;
      analysis::AnalysisEngine degraded_engine;
      for (const bool wp : {false, true}) {
        const rt::TaskSet& tasks = wp ? generated : marked_set;
        const analysis::WpResult exact =
            wp ? exact_engine.analyze_wp(tasks, exact_options)
               : exact_engine.analyze_marked(tasks, exact_options);
        const analysis::WpResult degraded =
            wp ? degraded_engine.analyze_wp(tasks, degraded_options)
               : degraded_engine.analyze_marked(tasks, degraded_options);

        EXPECT_TRUE(degraded.degraded) << "seed " << seed;
        EXPECT_FALSE(exact.degraded) << "seed " << seed;
        // Never flips unschedulable -> schedulable.
        if (degraded.schedulable) {
          EXPECT_TRUE(exact.schedulable)
              << "seed " << seed << " u=" << u << " wp=" << wp
              << ": degraded verdict over-claimed schedulability";
        }
        ASSERT_EQ(degraded.per_task.size(), exact.per_task.size());
        for (std::size_t i = 0; i < exact.per_task.size(); ++i) {
          if (!degraded.per_task[i].schedulable) continue;
          EXPECT_TRUE(exact.per_task[i].schedulable)
              << "seed " << seed << " u=" << u << " wp=" << wp << " task "
              << i << ": degraded bound claimed schedulable where the exact "
              << "analysis does not";
          // Both below the deadline: the pure-relaxation bound dominates
          // the exact fixpoint pointwise, up to one tick of delay_to_ticks
          // rounding between the two solve paths.
          if (exact.per_task[i].schedulable) {
            EXPECT_GE(degraded.per_task[i].wcrt + 1, exact.per_task[i].wcrt)
                << "seed " << seed << " u=" << u << " wp=" << wp << " task "
                << i << ": degraded bound materially below the exact bound";
          }
        }
      }
    }
  }
}

TEST(SvcDegradation, DegradedGreedyMarkingIsAnExactWitness) {
  // Greedy re-marks the set, so degraded and exact runs may end at
  // different markings and per-task bounds are not comparable.  The
  // provable statement (and the one admission decisions rely on): when the
  // degraded greedy run answers schedulable, its final LS marking is a
  // witness under which the *exact* fixed-marking analysis is schedulable.
  const analysis::SolveBudget exhausted = analysis::SolveBudget::exhausted();
  bool saw_degraded_schedulable = false;
  for (std::uint64_t seed = 20; seed <= 40; ++seed) {
    const rt::TaskSet tasks = corpus_set(seed, 0.4);

    analysis::AnalysisOptions degraded_options;
    degraded_options.budget = &exhausted;
    analysis::AnalysisEngine degraded_engine;
    const analysis::ProposedResult degraded =
        degraded_engine.analyze_proposed(tasks, degraded_options);
    EXPECT_TRUE(degraded.degraded);
    if (!degraded.schedulable) continue;
    saw_degraded_schedulable = true;

    std::vector<rt::Task> marked_tasks;
    for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
      rt::Task t = tasks[i];
      t.latency_sensitive = degraded.ls_flags[i];
      marked_tasks.push_back(std::move(t));
    }
    analysis::AnalysisEngine exact_engine;
    const analysis::WpResult exact =
        exact_engine.analyze_marked(rt::TaskSet(marked_tasks));
    EXPECT_TRUE(exact.schedulable)
        << "seed " << seed
        << ": degraded greedy claimed schedulable but its marking is not an "
           "exact witness";
  }
  EXPECT_TRUE(saw_degraded_schedulable)
      << "corpus never produced a degraded-schedulable set; the safety "
         "direction was not exercised — loosen the generator config";
}

// ---------------------------------------------------------------------------
// Service-level budget handling

TEST(SvcDegradation, ExplicitZeroBudgetDegradesDeterministically) {
  svc::AdmissionService service;
  const std::string response_line = service.handle_line(
      "{\"op\":\"analyze\",\"core\":\"c\",\"task\":{\"name\":\"a\","
      "\"exec\":300,\"copy_in\":60,\"copy_out\":60,\"period\":2000,"
      "\"deadline\":1700,\"prio\":0},\"budget_ms\":0}");
  const Json response = svc::parse_json(response_line);
  ASSERT_TRUE(response.find("ok")->as_bool()) << response_line;
  EXPECT_TRUE(response.find("verdict")->find("degraded")->as_bool());
  EXPECT_FALSE(response.find("verdict")->find("cached")->as_bool());
  EXPECT_EQ(service.stats().degraded_verdicts, 1u);
}

TEST(SvcDegradation, DegradedVerdictsAreNeverCached) {
  svc::AdmissionService service;
  const std::string request =
      "{\"op\":\"analyze\",\"core\":\"c\",\"task\":{\"name\":\"a\","
      "\"exec\":300,\"copy_in\":60,\"copy_out\":60,\"period\":2000,"
      "\"deadline\":1700,\"prio\":0},\"budget_ms\":0}";
  for (int i = 0; i < 2; ++i) {
    const Json response = svc::parse_json(service.handle_line(request));
    ASSERT_TRUE(response.find("ok")->as_bool());
    EXPECT_TRUE(response.find("verdict")->find("degraded")->as_bool());
    EXPECT_FALSE(response.find("verdict")->find("cached")->as_bool())
        << "degraded verdict was served from cache on attempt " << i;
  }
  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.degraded_verdicts, 2u);
  EXPECT_EQ(stats.cache_entries, 0u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(SvcDegradation, DegradedScheduleCommitsAreSound) {
  // An admit under an exhausted budget may commit only when the degraded
  // verdict is schedulable; by the dominance direction above that commit
  // is sound.  Verify the committed state re-analyzes schedulable with an
  // unlimited budget.
  svc::AdmissionService service;
  const Json admit = svc::parse_json(service.handle_line(
      "{\"op\":\"admit\",\"core\":\"c\",\"task\":{\"name\":\"a\","
      "\"exec\":100,\"copy_in\":10,\"copy_out\":10,\"period\":5000,"
      "\"deadline\":5000,\"prio\":0},\"budget_ms\":0}"));
  ASSERT_TRUE(admit.find("ok")->as_bool());
  EXPECT_TRUE(admit.find("verdict")->find("degraded")->as_bool());
  if (admit.find("committed")->as_bool()) {
    const Json exact = svc::parse_json(
        service.handle_line("{\"op\":\"analyze\",\"core\":\"c\"}"));
    ASSERT_TRUE(exact.find("ok")->as_bool());
    EXPECT_FALSE(exact.find("verdict")->find("degraded")->as_bool());
    EXPECT_TRUE(exact.find("verdict")->find("schedulable")->as_bool())
        << "service committed a task under a degraded verdict that the "
           "exact analysis rejects";
  }
}

TEST(SvcDegradation, NegativeBudgetIsABadRequest) {
  svc::AdmissionService service;
  const Json response = svc::parse_json(service.handle_line(
      "{\"op\":\"analyze\",\"core\":\"c\",\"budget_ms\":-1}"));
  EXPECT_FALSE(response.find("ok")->as_bool());
  EXPECT_EQ(response.find("error")->find("code")->as_string(), "bad_request");
}

// ---------------------------------------------------------------------------
// Overload shedding

TEST(SvcDegradation, SheddingAnswersWithRetryAfter) {
  // One worker, high water of 1: stall the worker on a latch, then pile on
  // requests.  Everything beyond the high water must be shed with a
  // well-formed `overloaded` error carrying retry_after_ms >= the base
  // hint, and every callback must fire exactly once.
  std::mutex latch_mutex;
  std::condition_variable latch_cv;
  bool release = false;

  svc::ServiceConfig config;
  config.threads = 1;
  config.queue_high_water = 1;
  config.base_retry_ms = 25;
  config.test_request_hook = [&] {
    std::unique_lock<std::mutex> lock(latch_mutex);
    latch_cv.wait(lock, [&] { return release; });
  };
  svc::AdmissionService service(std::move(config));

  constexpr std::size_t kRequests = 6;
  std::vector<std::future<std::string>> futures;
  std::vector<std::promise<std::string>> promises(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(promises[i].get_future());
    std::promise<std::string>* p = &promises[i];
    service.submit("{\"op\":\"status\"}",
                   [p](std::string r) { p->set_value(std::move(r)); });
  }
  {
    const std::lock_guard<std::mutex> lock(latch_mutex);
    release = true;
  }
  latch_cv.notify_all();
  service.drain();

  int shed = 0;
  for (auto& future : futures) {
    const std::string line = future.get();  // throws if a callback was lost
    const Json response = svc::parse_json(line);
    if (response.find("ok")->as_bool()) continue;
    const Json* error = response.find("error");
    ASSERT_NE(error, nullptr) << line;
    EXPECT_EQ(error->find("code")->as_string(), "overloaded") << line;
    const Json* retry = error->find("retry_after_ms");
    ASSERT_NE(retry, nullptr) << line;
    EXPECT_GE(retry->as_int64(), 25) << line;
    ++shed;
  }
  EXPECT_GT(shed, 0) << "nothing was shed despite a stalled worker";
  EXPECT_EQ(service.stats().shed, static_cast<std::uint64_t>(shed));
  EXPECT_EQ(service.stats().queue_depth, 0u);
}
