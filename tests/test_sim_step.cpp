// Tests of the incremental interval stepper (sim/step.hpp).
//
// The stepper's contract is that all scheduler state lives in one explicit
// StepState value: snapshot -> restore must be a perfect no-op, stepping
// after a restore must reproduce the original future exactly, and driving
// the protocol one interval at a time (with releases fed lazily, the way
// the model checker does) must agree with the batch simulator to the bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "rt/task.hpp"
#include "sim/engine.hpp"
#include "sim/job_source.hpp"
#include "sim/step.hpp"
#include "sim/trace.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace {

using mcs::rt::Task;
using mcs::rt::TaskSet;
using mcs::rt::Time;
using mcs::sim::IntervalStepper;
using mcs::sim::Protocol;
using mcs::sim::Release;
using mcs::sim::StepOutcome;
using mcs::sim::StepState;
using mcs::sim::Trace;

Task make_task(std::string name, Time exec, Time copy_in, Time copy_out,
               Time period, Time deadline, mcs::rt::Priority priority,
               bool ls = false) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = copy_in;
  t.copy_out = copy_out;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  t.latency_sensitive = ls;
  return t;
}

TaskSet mixed_set() {
  return TaskSet({make_task("s", 2, 1, 1, 30, 10, 0, true),
                  make_task("a", 4, 2, 2, 40, 30, 1),
                  make_task("b", 3, 1, 1, 50, 45, 2),
                  make_task("c", 5, 2, 2, 80, 70, 3)});
}

void expect_job_eq(const mcs::sim::JobRecord& x, const mcs::sim::JobRecord& y) {
  EXPECT_EQ(x.id, y.id);
  EXPECT_EQ(x.release, y.release);
  EXPECT_EQ(x.ready_time, y.ready_time);
  EXPECT_EQ(x.absolute_deadline, y.absolute_deadline);
  EXPECT_EQ(x.copy_in_start, y.copy_in_start);
  EXPECT_EQ(x.exec_start, y.exec_start);
  EXPECT_EQ(x.completion, y.completion);
  EXPECT_EQ(x.became_urgent, y.became_urgent);
  EXPECT_EQ(x.copy_in_cancellations, y.copy_in_cancellations);
}

void expect_state_eq(const StepState& x, const StepState& y) {
  EXPECT_EQ(x.now, y.now);
  EXPECT_EQ(x.intervals, y.intervals);
  ASSERT_EQ(x.jobs.size(), y.jobs.size());
  for (std::size_t i = 0; i < x.jobs.size(); ++i) {
    expect_job_eq(x.jobs[i], y.jobs[i]);
  }
  ASSERT_EQ(x.tasks.size(), y.tasks.size());
  for (std::size_t i = 0; i < x.tasks.size(); ++i) {
    EXPECT_EQ(x.tasks[i].queue, y.tasks[i].queue);
    EXPECT_EQ(x.tasks[i].next, y.tasks[i].next);
    EXPECT_EQ(x.tasks[i].busy, y.tasks[i].busy);
    EXPECT_EQ(x.tasks[i].last_completion, y.tasks[i].last_completion);
  }
  EXPECT_EQ(x.ready, y.ready);
  EXPECT_EQ(x.loaded, y.loaded);
  EXPECT_EQ(x.pending_copyout, y.pending_copyout);
  EXPECT_EQ(x.urgent, y.urgent);
}

void expect_record_eq(const mcs::sim::IntervalRecord& x,
                      const mcs::sim::IntervalRecord& y) {
  EXPECT_EQ(x.index, y.index);
  EXPECT_EQ(x.start, y.start);
  EXPECT_EQ(x.end, y.end);
  EXPECT_EQ(x.cpu_action, y.cpu_action);
  EXPECT_EQ(x.cpu_job, y.cpu_job);
  EXPECT_EQ(x.cpu_busy, y.cpu_busy);
  EXPECT_EQ(x.copy_out_job, y.copy_out_job);
  EXPECT_EQ(x.copy_out_duration, y.copy_out_duration);
  EXPECT_EQ(x.copy_in_job, y.copy_in_job);
  EXPECT_EQ(x.copy_in_outcome, y.copy_in_outcome);
  EXPECT_EQ(x.copy_in_duration, y.copy_in_duration);
  EXPECT_EQ(x.dma_busy, y.dma_busy);
}

/// Sporadic releases with randomized per-job jitter, model-consistent with
/// the verifier's bounded choice model.
std::vector<Release> jittered_releases(const TaskSet& tasks, Time horizon,
                                       std::uint64_t seed) {
  mcs::support::Rng rng(seed);
  std::vector<Release> releases;
  for (mcs::rt::TaskIndex t = 0; t < tasks.size(); ++t) {
    Time when = static_cast<Time>(rng.uniform_int(0, 3));
    std::uint64_t seq = 0;
    while (when < horizon) {
      releases.push_back(Release{mcs::sim::JobId{t, seq++}, when});
      when += tasks[t].period + static_cast<Time>(rng.uniform_int(0, 2));
    }
  }
  mcs::sim::sort_releases(releases);
  return releases;
}

TEST(SimStep, SnapshotRestoreIsANoOpAtEveryStep) {
  const TaskSet tasks = mixed_set();
  for (const Protocol protocol :
       {Protocol::kProposed, Protocol::kWasilyPellizzoni}) {
    IntervalStepper stepper(tasks, protocol);
    for (const Release& r : jittered_releases(tasks, 400, 7)) {
      stepper.add_release(r.job, r.time);
    }
    while (true) {
      const StepState before = stepper.snapshot();
      const std::optional<StepOutcome> first = stepper.step();
      const StepState after = stepper.snapshot();

      // Rewind and repeat: the step must replay identically.
      stepper.restore(before);
      expect_state_eq(stepper.state(), before);
      const std::optional<StepOutcome> second = stepper.step();
      ASSERT_EQ(first.has_value(), second.has_value());
      if (!first) {
        break;
      }
      expect_record_eq(first->record, second->record);
      EXPECT_EQ(first->completed, second->completed);
      expect_state_eq(stepper.state(), after);
    }
    EXPECT_FALSE(stepper.has_pending_work());
  }
}

TEST(SimStep, SteppedExecutionMatchesBatchSimulator) {
  const TaskSet tasks = mixed_set();
  for (const Protocol protocol :
       {Protocol::kProposed, Protocol::kWasilyPellizzoni}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const std::vector<Release> releases =
          jittered_releases(tasks, 500, seed);
      const Trace batch = mcs::sim::simulate(tasks, protocol, releases);

      IntervalStepper stepper(tasks, protocol);
      for (const Release& r : releases) {
        stepper.add_release(r.job, r.time);
      }
      Trace stepped;
      while (const std::optional<StepOutcome> out = stepper.step()) {
        stepped.intervals.push_back(out->record);
      }
      stepped.jobs = stepper.state().jobs;

      ASSERT_EQ(stepped.intervals.size(), batch.intervals.size());
      for (std::size_t i = 0; i < stepped.intervals.size(); ++i) {
        expect_record_eq(stepped.intervals[i], batch.intervals[i]);
      }
      ASSERT_EQ(stepped.jobs.size(), batch.jobs.size());
      for (std::size_t i = 0; i < stepped.jobs.size(); ++i) {
        expect_job_eq(stepped.jobs[i], batch.jobs[i]);
      }
    }
  }
}

TEST(SimStep, LazyReleaseFeedingMatchesUpfrontFeeding) {
  // The model checker commits releases only when they could influence the
  // next interval (release time <= the preview's end upper bound).  Feeding
  // that way must produce the same execution as feeding everything upfront.
  const TaskSet tasks = mixed_set();
  for (const Protocol protocol :
       {Protocol::kProposed, Protocol::kWasilyPellizzoni}) {
    const std::vector<Release> releases = jittered_releases(tasks, 500, 11);

    IntervalStepper upfront(tasks, protocol);
    for (const Release& r : releases) {
      upfront.add_release(r.job, r.time);
    }

    IntervalStepper lazy(tasks, protocol);
    std::size_t next = 0;
    std::vector<mcs::sim::IntervalRecord> lazy_records;
    while (true) {
      // Commit releases until none falls at or before the next interval's
      // conservative end bound (adding one can extend the bound, so loop
      // to a fixpoint).
      while (next < releases.size()) {
        const mcs::sim::StepPreview preview = lazy.preview();
        const Time bound = preview.has_event ? preview.end_upper_bound
                                             : releases[next].time;
        if (releases[next].time > bound) {
          break;
        }
        lazy.add_release(releases[next].job, releases[next].time);
        ++next;
      }
      const std::optional<StepOutcome> out = lazy.step();
      if (!out) {
        if (next < releases.size()) {
          continue;  // idle gap: commit the next release and resume
        }
        break;
      }
      lazy_records.push_back(out->record);
    }

    std::vector<mcs::sim::IntervalRecord> upfront_records;
    while (const std::optional<StepOutcome> out = upfront.step()) {
      upfront_records.push_back(out->record);
    }
    ASSERT_EQ(lazy_records.size(), upfront_records.size());
    for (std::size_t i = 0; i < lazy_records.size(); ++i) {
      expect_record_eq(lazy_records[i], upfront_records[i]);
    }
    expect_state_eq(lazy.state(), upfront.state());
  }
}

TEST(SimStep, PreviewBoundsTheIntervalEnd) {
  const TaskSet tasks = mixed_set();
  for (const Protocol protocol :
       {Protocol::kProposed, Protocol::kWasilyPellizzoni}) {
    IntervalStepper stepper(tasks, protocol);
    for (const Release& r : jittered_releases(tasks, 400, 3)) {
      stepper.add_release(r.job, r.time);
    }
    while (true) {
      const mcs::sim::StepPreview preview = stepper.preview();
      const std::optional<StepOutcome> out = stepper.step();
      if (!out) {
        EXPECT_FALSE(preview.has_event);
        break;
      }
      ASSERT_TRUE(preview.has_event);
      EXPECT_EQ(out->record.start, preview.start);
      EXPECT_LE(out->record.end, preview.end_upper_bound);
    }
  }
}

TEST(SimStep, RejectsNonPreemptiveProtocol) {
  const TaskSet tasks = mixed_set();
  EXPECT_THROW(IntervalStepper(tasks, Protocol::kNonPreemptive),
               mcs::support::ContractViolation);
}

}  // namespace
