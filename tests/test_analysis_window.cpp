#include "analysis/window.hpp"

#include <gtest/gtest.h>

#include "rt/task.hpp"
#include "support/contracts.hpp"

namespace {

using mcs::analysis::interference_budgets;
using mcs::analysis::window_intervals_ls;
using mcs::analysis::window_intervals_nls;
using mcs::rt::Task;
using mcs::rt::TaskSet;

TaskSet three_tasks() {
  // Priorities: a(0) > b(1) > c(2); periods 10 / 20 / 40.
  std::vector<Task> tasks(3);
  const char* names[] = {"a", "b", "c"};
  const mcs::rt::Time periods[] = {10, 20, 40};
  for (std::size_t i = 0; i < 3; ++i) {
    tasks[i].name = names[i];
    tasks[i].exec = 2;
    tasks[i].copy_in = 1;
    tasks[i].copy_out = 1;
    tasks[i].period = periods[i];
    tasks[i].deadline = periods[i];
    tasks[i].priority = static_cast<mcs::rt::Priority>(i);
  }
  return TaskSet(std::move(tasks));
}

TEST(Window, BudgetsCountOnlyHigherPriorityTasks) {
  const TaskSet set = three_tasks();
  // Task c: hp = {a, b}.  t = 20: eta_a = 2, eta_b = 1 -> budgets 3, 2.
  const auto budgets = interference_budgets(set, 2, 20);
  EXPECT_EQ(budgets[0], 3u);
  EXPECT_EQ(budgets[1], 2u);
  EXPECT_EQ(budgets[2], 0u);
}

TEST(Window, HighestPriorityTaskHasNoInterference) {
  const TaskSet set = three_tasks();
  const auto budgets = interference_budgets(set, 0, 100);
  EXPECT_EQ(budgets[0], 0u);
  EXPECT_EQ(budgets[1], 0u);
  EXPECT_EQ(budgets[2], 0u);
  // Theorem 1: N = 0 + 3; Corollary 1: N = 0 + 2.
  EXPECT_EQ(window_intervals_nls(set, 0, 100), 3u);
  EXPECT_EQ(window_intervals_ls(set, 0, 100), 2u);
}

TEST(Window, Theorem1FormulaWithBlockingClamp) {
  const TaskSet set = three_tasks();
  // Task c (lowest priority, no lp tasks) at t = 20: interference
  // (2+1) + (1+1) = 5, zero blocking intervals, +1 own execution -> 6.
  EXPECT_EQ(window_intervals_nls(set, 2, 20), 6u);
  // Task b (one lp task) at t = 20: eta_a = 2 -> (2+1) + 1 + 1 = 5.
  EXPECT_EQ(window_intervals_nls(set, 1, 20), 5u);
  // Task a (two lp tasks): full Theorem 1 count 0 + 2 + 1 = 3.
  EXPECT_EQ(window_intervals_nls(set, 0, 20), 3u);
  // Corollary 1 removes exactly one blocking interval when two lp tasks
  // exist (task a), and none can be removed when none exist (task c).
  EXPECT_EQ(window_intervals_ls(set, 0, 20),
            window_intervals_nls(set, 0, 20) - 1);
  EXPECT_EQ(window_intervals_ls(set, 2, 20),
            window_intervals_nls(set, 2, 20));
}

TEST(Window, GrowsMonotonicallyWithT) {
  const TaskSet set = three_tasks();
  std::size_t prev = 0;
  for (mcs::rt::Time t = 0; t <= 100; t += 5) {
    const std::size_t n = window_intervals_nls(set, 2, t);
    EXPECT_GE(n, prev);
    prev = n;
  }
}

TEST(Window, ZeroWindowStillHasCarryIn) {
  const TaskSet set = three_tasks();
  // eta(0) = 0 but the +1 carry-in instances remain: task c sees
  // 2 carry-ins + its own execution interval.
  EXPECT_EQ(window_intervals_nls(set, 2, 0), 3u);
  // Task a alone in the window still needs a copy-in interval: N >= 2... but
  // with two lp tasks the blocking intervals dominate: 0 + 2 + 1.
  EXPECT_EQ(window_intervals_nls(set, 0, 0), 3u);
}

TEST(Window, RejectsBadArguments) {
  const TaskSet set = three_tasks();
  EXPECT_THROW(window_intervals_nls(set, 7, 10),
               mcs::support::ContractViolation);
  EXPECT_THROW(window_intervals_nls(set, 0, -1),
               mcs::support::ContractViolation);
}

}  // namespace
