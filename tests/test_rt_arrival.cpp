#include "rt/arrival.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace {

using mcs::rt::ArrivalCurvePtr;
using mcs::rt::make_sporadic;
using mcs::rt::PeriodicJitterArrival;
using mcs::rt::SporadicArrival;
using mcs::rt::StaircaseArrival;
using mcs::rt::Time;
using mcs::support::ContractViolation;

TEST(SporadicArrival, PaperConvention) {
  // eta(delta) = ceil(delta / T): eta(0)=0, eta(1)=1, eta(T)=1, eta(T+1)=2.
  const SporadicArrival eta(10);
  EXPECT_EQ(eta.releases_in(0), 0u);
  EXPECT_EQ(eta.releases_in(1), 1u);
  EXPECT_EQ(eta.releases_in(10), 1u);
  EXPECT_EQ(eta.releases_in(11), 2u);
  EXPECT_EQ(eta.releases_in(20), 2u);
  EXPECT_EQ(eta.releases_in(95), 10u);
}

TEST(SporadicArrival, RejectsNonPositivePeriod) {
  EXPECT_THROW(SporadicArrival(0), ContractViolation);
  EXPECT_THROW(SporadicArrival(-5), ContractViolation);
}

TEST(SporadicArrival, MonotoneNonDecreasing) {
  const SporadicArrival eta(7);
  std::uint64_t prev = 0;
  for (Time d = 0; d <= 100; ++d) {
    const std::uint64_t cur = eta.releases_in(d);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(PeriodicJitterArrival, JitterAddsReleases) {
  const PeriodicJitterArrival eta(10, 5);
  EXPECT_EQ(eta.releases_in(0), 0u);
  EXPECT_EQ(eta.releases_in(6), 2u);   // ceil(11/10)
  EXPECT_EQ(eta.releases_in(15), 2u);  // ceil(20/10)
  EXPECT_EQ(eta.releases_in(16), 3u);
}

TEST(PeriodicJitterArrival, ZeroJitterEqualsSporadic) {
  const PeriodicJitterArrival jittered(10, 0);
  const SporadicArrival sporadic(10);
  for (Time d = 0; d <= 50; ++d) {
    EXPECT_EQ(jittered.releases_in(d), sporadic.releases_in(d));
  }
}

TEST(PeriodicJitterArrival, MinSeparationShrinksWithJitter) {
  EXPECT_EQ(PeriodicJitterArrival(10, 3).min_separation(), 7);
  EXPECT_EQ(PeriodicJitterArrival(10, 20).min_separation(), 1);
}

TEST(StaircaseArrival, StepsApply) {
  const StaircaseArrival eta({{5, 1}, {12, 2}, {30, 5}});
  EXPECT_EQ(eta.releases_in(0), 0u);
  EXPECT_EQ(eta.releases_in(4), 0u);
  EXPECT_EQ(eta.releases_in(5), 1u);
  EXPECT_EQ(eta.releases_in(11), 1u);
  EXPECT_EQ(eta.releases_in(12), 2u);
  EXPECT_EQ(eta.releases_in(1000), 5u);
  EXPECT_EQ(eta.min_separation(), 12);
}

TEST(StaircaseArrival, RejectsNonMonotoneSteps) {
  EXPECT_THROW(StaircaseArrival({{5, 2}, {4, 3}}), ContractViolation);
  EXPECT_THROW(StaircaseArrival({{5, 2}, {8, 1}}), ContractViolation);
}

TEST(MakeSporadic, FactoryProducesEquivalentCurve) {
  const ArrivalCurvePtr eta = make_sporadic(25);
  EXPECT_EQ(eta->releases_in(26), 2u);
  EXPECT_EQ(eta->min_separation(), 25);
}

}  // namespace
