# Automotive ECU core (microseconds) — examples/automotive_ecu.cpp.
task injection C=180 l=40  u=40  T=2000   D=1600
task airbag    C=120 l=30  u=30  T=5000   D=1900
task lambda    C=400 l=90  u=90  T=10000  D=6000
task knock     C=500 l=120 u=120 T=10000  D=8000
task diag      C=900 l=250 u=250 T=50000  D=40000
task logger    C=700 l=350 u=350 T=100000 D=90000
