# Quickstart workload (times in microseconds) — the same system as
# examples/quickstart.cpp.  Try:
#   mcs_cli analyze  workloads/quickstart.wl
#   mcs_cli simulate workloads/quickstart.wl --gantt
task control C=300 l=60  u=60  T=2000  D=1700
task vision  C=900 l=350 u=350 T=5000  D=5000
task logging C=600 l=150 u=150 T=10000 D=10000
chain perceive age=20000 tasks=vision,control
