# Verify-corpus: one latency-sensitive task over a non-LS task (ticks).
# Small enough for exhaustive model checking (mcs_lint verify).
task fast C=2 l=1 u=1 T=8  D=8  prio=0 ls
task slow C=3 l=1 u=1 T=12 D=12 prio=1
