# Verify-corpus: two non-LS tasks — exercises the pure R1/R2/R5/R6 core
# (no cancellations, no urgent promotions) and Property 3's 2-interval
# blocking bound.
task hi C=2 l=1 u=1 T=10 D=10 prio=0
task lo C=4 l=2 u=1 T=15 D=15 prio=1
