# Verify-corpus: harmonic periods, LS on top — the dense release lattice
# (gcd = 6) maximizes interleavings per hyperperiod at a small state count.
task a C=2 l=1 u=1 T=6  D=6  prio=0 ls
task b C=3 l=1 u=2 T=12 D=12 prio=1
