# Verify-corpus: four tasks, two LS — the largest corpus system; the
# default jitter/offset model is kept but the shared lattice (gcd = 5)
# keeps exhaustion under the state budget.
task s1 C=1 l=1 u=1 T=10 D=10 prio=0 ls
task s2 C=2 l=1 u=1 T=20 D=20 prio=1 ls
task w1 C=3 l=1 u=1 T=20 D=20 prio=2
task w2 C=2 l=1 u=1 T=40 D=40 prio=3
