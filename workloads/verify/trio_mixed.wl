# Verify-corpus: three tasks, middle-priority LS — exercises R3
# cancellations of the low task's copy-in and R4 urgent promotions while a
# higher-priority NLS task competes for the DMA.
task top C=1 l=1 u=1 T=8  D=8  prio=0
task mid C=2 l=1 u=1 T=12 D=12 prio=1 ls
task low C=2 l=2 u=1 T=24 D=24 prio=2
