# Verify-corpus: a copy-free task (l = u = 0) next to a normal one —
# exercises the zero-duration DMA edge cases of R2/R6 (zero-length
# copy phases, completion at interval start).
task pure C=2 l=0 u=0 T=9  D=9  prio=0 ls
task mem  C=3 l=2 u=2 T=18 D=18 prio=1
