# Sensor-to-actuator pipeline (microseconds) — examples/sensor_chain.cpp.
task sense   C=400  l=150 u=150 T=5000  D=4000
task filter  C=900  l=300 u=300 T=10000 D=9000
task actuate C=300  l=100 u=100 T=10000 D=8000
task logger  C=1500 l=600 u=600 T=50000 D=45000
chain act age=45000 tasks=sense,filter,actuate
