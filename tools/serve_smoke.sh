#!/usr/bin/env bash
# Kill/restart smoke for the admission-control service (docs/SERVICE.md).
#
# Starts mcs_serve on a Unix socket with a JSONL request log, replays a
# scripted admission session through mcs_cli admit, SIGKILLs the server
# mid-stream, restarts it on the same log, finishes the session, and then
# requires (a) the log tail to parse — at worst one torn line, which the
# reader drops — and (b) every logged non-degraded verdict to re-derive
# identically under `mcs_cli admit --verify-log`.  The service-layer
# counterpart of tools/resume_smoke.sh.
#
# Usage: tools/serve_smoke.sh <build-dir>
set -uo pipefail

BUILD=${1:?usage: serve_smoke.sh <build-dir>}
SERVE=$(realpath "$BUILD/tools/mcs_serve")
CLI=$(realpath "$BUILD/tools/mcs_cli")

WORK=$(mktemp -d)
trap 'kill -9 "$server_pid" 2>/dev/null; rm -rf "$WORK"' EXIT
SOCK=$WORK/svc.sock
LOG=$WORK/svc.jsonl
server_pid=

start_server() {
  rm -f "$SOCK"  # a SIGKILLed server leaves a stale socket file behind
  "$SERVE" --socket="$SOCK" --no-stdio --log="$LOG" --threads=2 &
  server_pid=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$server_pid" 2>/dev/null || { echo "server died on startup"; exit 1; }
    sleep 0.05
  done
  echo "server socket never appeared"
  exit 1
}

cat > "$WORK/session1.jsonl" <<'EOF'
{"id":1,"op":"admit","core":"c0","task":{"name":"control","exec":300,"copy_in":60,"copy_out":60,"period":2000,"deadline":1700,"prio":0}}
{"id":2,"op":"admit","core":"c0","task":{"name":"vision","exec":900,"copy_in":350,"copy_out":350,"period":5000,"deadline":5000,"prio":1}}
{"id":3,"op":"analyze","core":"c0"}
{"id":4,"op":"mark_ls","core":"c0","name":"vision","ls":true}
EOF

cat > "$WORK/session2.jsonl" <<'EOF'
{"id":5,"op":"admit","core":"c0","task":{"name":"logging","exec":600,"copy_in":150,"copy_out":150,"period":10000,"deadline":10000,"prio":2}}
{"id":6,"op":"analyze","core":"c0"}
{"id":7,"op":"status"}
EOF

echo "== session 1 =="
start_server
"$CLI" admit --socket="$SOCK" --script="$WORK/session1.jsonl" || {
  echo "session 1 failed"; exit 1; }

echo "== SIGKILL mid-stream =="
# Stream a request and kill the server while the session is open: the log
# may gain at most one torn trailing line.
{ printf '%s\n' '{"id":90,"op":"analyze","core":"c0"}'; sleep 1; } | \
  "$CLI" admit --socket="$SOCK" &
streamer=$!
sleep 0.3
kill -9 "$server_pid"
wait "$streamer" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
echo "killed server pid $server_pid"

echo "== restart on the same log =="
start_server
"$CLI" admit --socket="$SOCK" --script="$WORK/session2.jsonl" || {
  echo "session 2 failed"; exit 1; }

printf '%s\n' '{"op":"shutdown"}' | "$CLI" admit --socket="$SOCK" || true
wait "$server_pid" 2>/dev/null || true
server_pid=

echo "== verify log replays =="
records=$(grep -c '"request"' "$LOG" || true)
echo "log holds ${records:-0} request records"
"$CLI" admit --verify-log="$LOG" || { echo "verify-log failed"; exit 1; }
echo "serve smoke passed: log tail parseable, verdicts re-derived"
