#!/usr/bin/env bash
# Kill/resume smoke for the sweep work-queue engine.
#
# Runs a small registry sweep to completion (the reference), runs it again
# but SIGKILLs the process midway, finishes the killed run with --resume,
# and requires the resumed CSV to be byte-identical to the reference —
# the determinism contract of EXPERIMENTS.md enforced against a real
# process kill rather than the in-process crash emulation the unit tests
# use.
#
# Usage: tools/resume_smoke.sh <path to mcs_bench> [sweep] [kill-delay-s]
set -euo pipefail

MCS_BENCH=$(realpath "${1:?usage: resume_smoke.sh <path to mcs_bench> [sweep] [kill-delay-s]}")
SWEEP=${2:-fig2a}
KILL_DELAY=${3:-0.5}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
mkdir -p "$WORK/ref" "$WORK/cut"

# Small enough to finish in seconds, large enough that the kill lands
# while units are still open.  Callers may override.
export MCS_TASKSETS=${MCS_TASKSETS:-16}

echo "== reference run (uninterrupted) =="
(cd "$WORK/ref" && "$MCS_BENCH" "$SWEEP" --threads=2)

echo "== killed run (SIGKILL after ${KILL_DELAY}s) =="
(cd "$WORK/cut" && exec "$MCS_BENCH" "$SWEEP" --threads=1) &
pid=$!
sleep "$KILL_DELAY"
if kill -9 "$pid" 2>/dev/null; then
  echo "killed pid $pid midway"
else
  echo "run finished before the kill landed (still a valid resume test)"
fi
wait "$pid" 2>/dev/null || true

units_before=$(grep -c '"point"' "$WORK/cut/$SWEEP.jsonl" 2>/dev/null || true)
echo "log holds ${units_before:-0} unit records at the kill point"

echo "== resume =="
(cd "$WORK/cut" && "$MCS_BENCH" "$SWEEP" --resume --threads=2)

echo "== diff =="
diff "$WORK/ref/$SWEEP.csv" "$WORK/cut/$SWEEP.csv"
echo "resume smoke passed: CSV byte-identical after SIGKILL + --resume"
