// mcs_lint — standalone front end to the mcs::check static-analysis layer.
//
//   mcs_lint workload <file> [--task=<name>] [--window=<ticks>]
//       Builds every delay-MILP formulation the analysis engine would use
//       for the workload (fresh and cache-patched, per case and LS mode),
//       lints each against the Section V invariants, differentially
//       verifies patched == fresh, round-trips each model through the
//       LP writer/reader, and audits the presolve reduction pipeline plus
//       an end-to-end solve's postsolved incumbent (MCS-F3xx).
//   mcs_lint lp <file>
//       Parses a CPLEX-LP-format file, runs the generic model lints
//       (MCS-F0xx), and verifies the write->reparse round trip.
//   mcs_lint trace <workload> <intervals.csv> <jobs.csv>
//             [--protocol=proposed|wp|nps]
//       Re-imports an exported trace and audits it against the protocol
//       invariants R1-R6 / Properties 1-4 (MCS-P0xx).
//   mcs_lint verify <workload> [--protocol=proposed|wp] [--horizon=<ticks>]
//             [--lattice=<ticks>] [--offsets=<n>] [--jitter=<n>]
//             [--threads=<n>] [--max-states=<n>]
//       Exhaustive bounded model check of the R1-R6 protocol (MCS-V0xx):
//       explores every release offset/jitter choice the bounded model
//       admits and checks Properties 1-4, deadlock/livelock freedom, R3
//       bookkeeping, and analysis soundness (exhaustive WCRT <= MILP
//       bound) on every reachable transition.  A violation prints the rule
//       plus a replayable counterexample; a clean *complete* run is a
//       proof over the model.
//   mcs_lint rules
//       Prints the rule catalogue (ID, severity, summary, reference).
//
// Exit status: 0 when every report is clean, 1 when any diagnostic was
// emitted (warnings included — see CheckReport::clean()), 2 on usage or
// input errors (for `verify`, also when the state budget truncated the
// exploration — an incomplete search must not pass as a proof).
// Diagnostics go to stdout, one per line, prefixed with the context that
// produced them.
#include <algorithm>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "analysis/milp_formulation.hpp"
#include "check/diagnostics.hpp"
#include "check/model_lint.hpp"
#include "check/presolve_audit.hpp"
#include "check/trace_audit.hpp"
#include "lp/lp_reader.hpp"
#include "lp/lp_writer.hpp"
#include "lp/milp.hpp"
#include "lp/presolve.hpp"
#include "rt/io.hpp"
#include "sim/trace_import.hpp"
#include "verify/verify.hpp"

using namespace mcs;

namespace {

int usage() {
  std::cerr <<
      "usage:\n"
      "  mcs_lint workload <file> [--task=<name>] [--window=<ticks>]\n"
      "  mcs_lint lp <file>\n"
      "  mcs_lint trace <workload> <intervals.csv> <jobs.csv>\n"
      "            [--protocol=proposed|wp|nps]\n"
      "  mcs_lint verify <workload> [--protocol=proposed|wp]\n"
      "            [--horizon=<ticks>] [--lattice=<ticks>] [--offsets=<n>]\n"
      "            [--jitter=<n>] [--threads=<n>] [--max-states=<n>]\n"
      "  mcs_lint rules\n";
  return 2;
}

std::optional<std::string> option(int argc, char** argv, const char* key) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return std::nullopt;
}

/// Prints a report with a context prefix; returns the number of findings.
std::size_t report_findings(const std::string& context,
                            const check::CheckReport& report) {
  for (const check::Diagnostic& d : report.diagnostics) {
    std::cout << context << ": " << check::render(d) << "\n";
  }
  return report.diagnostics.size();
}

/// Write -> reparse -> diff self-check of the LP writer (positional
/// identity; names may be sanitized, so they are excluded).
check::CheckReport roundtrip_check(const lp::Model& model) {
  check::CheckReport report;
  try {
    const lp::Model reparsed = lp::read_lp_format(lp::to_lp_format(model));
    check::DiffOptions diff_options;
    diff_options.compare_names = false;
    report = check::diff_models(model, reparsed, diff_options);
  } catch (const lp::LpParseError& e) {
    report.add("MCS-F201", check::Severity::kError, "model",
               std::string("LP writer output does not reparse: ") + e.what());
  }
  return report;
}

/// Lints one (task, case, mode) formulation the way the engine uses it:
/// fresh build, then the patch path re-targeted to the same arguments,
/// then the differential patched-vs-fresh comparison, then the LP
/// round trip.  Returns the total finding count.
std::size_t lint_one_formulation(const rt::TaskSet& tasks, rt::TaskIndex i,
                                 rt::Time t, analysis::FormulationCase fcase,
                                 bool ignore_ls) {
  std::ostringstream context;
  context << tasks[i].name << " case=" << analysis::to_string(fcase)
          << " t=" << t << (ignore_ls ? " ignore-ls" : "");

  const bool patchable = !ignore_ls;
  analysis::DelayMilp milp =
      analysis::build_delay_milp(tasks, i, t, fcase, ignore_ls, patchable);

  std::size_t findings = report_findings(
      context.str() + " [fresh]",
      analysis::lint_delay_milp(milp, tasks, i, t, fcase, ignore_ls));

  analysis::update_delay_milp(milp, tasks, i, t, ignore_ls);
  findings += report_findings(
      context.str() + " [patched]",
      analysis::lint_delay_milp(milp, tasks, i, t, fcase, ignore_ls));
  findings += report_findings(
      context.str() + " [diff]",
      analysis::verify_patched_equivalence(milp, tasks, i, t, fcase,
                                           ignore_ls));
  findings += report_findings(context.str() + " [roundtrip]",
                              roundtrip_check(milp.model));

  // Presolve exactness audit (MCS-F301/F302) plus an end-to-end solve of
  // the default path — presolve, branch & bound, postsolve — whose
  // incumbent must check out against the pristine model (MCS-F303/F304).
  // The solve is budgeted: the audit needs *an* incumbent that travelled
  // through postsolve, not a proven optimum, and large formulations take
  // minutes to close at gap 0.
  const lp::presolve::Presolved pre = lp::presolve::presolve(milp.model);
  findings += report_findings(context.str() + " [presolve]",
                              check::audit_presolve(milp.model, pre));
  if (!pre.infeasible) {
    lp::MilpOptions solve_options;
    // Node budget inversely proportional to model size: per-node LP cost
    // grows with the formulation, and the big committed workloads (tens
    // of thousands of ticks of window) would otherwise dominate the
    // sweep's wall time at no audit benefit.
    solve_options.max_nodes = std::clamp<std::size_t>(
        50000 / std::max<std::size_t>(1, milp.model.num_variables()), 16,
        1000);
    solve_options.relative_gap = 0.05;
    solve_options.branch_priority.assign(milp.model.num_variables(), 0);
    for (const lp::VarId alpha : milp.alpha_vars) {
      solve_options.branch_priority[alpha.index] = 1;
    }
    const lp::MilpResult res = lp::solve_milp(milp.model, solve_options);
    if (res.has_incumbent) {
      findings += report_findings(
          context.str() + " [postsolve]",
          check::audit_postsolve(milp.model, res.values, res.objective));
    }
  }
  return findings;
}

int cmd_workload(const std::string& path, int argc, char** argv) {
  rt::Workload workload;
  try {
    workload = rt::load_workload_file(path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  const rt::TaskSet& tasks = workload.tasks;

  const std::optional<std::string> only = option(argc, argv, "task");
  std::optional<rt::Time> window;
  if (const auto w = option(argc, argv, "window")) {
    try {
      window = static_cast<rt::Time>(std::stoll(*w));
    } catch (const std::exception&) {
      std::cerr << "error: malformed --window '" << *w << "'\n";
      return 2;
    }
  }

  std::size_t findings = 0;
  bool matched = false;
  for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
    if (only && tasks[i].name != *only) {
      continue;
    }
    matched = true;
    const rt::Time t = window.value_or(tasks[i].deadline);
    // The engine analyzes every task as NLS for the baseline protocol
    // (ignore_ls) and under the current marking; LS tasks additionally get
    // the Case A / Case B windows of Corollary 1.
    findings += lint_one_formulation(tasks, i, t,
                                     analysis::FormulationCase::kNls, true);
    findings += lint_one_formulation(tasks, i, t,
                                     analysis::FormulationCase::kNls, false);
    if (tasks[i].latency_sensitive) {
      findings += lint_one_formulation(
          tasks, i, t, analysis::FormulationCase::kLsCaseA, false);
      findings += lint_one_formulation(
          tasks, i, 0, analysis::FormulationCase::kLsCaseB, false);
    }
  }
  if (only && !matched) {
    std::cerr << "error: no task named '" << *only << "'\n";
    return 2;
  }
  if (findings == 0) {
    std::cout << "clean: " << path << "\n";
    return 0;
  }
  std::cout << findings << " finding(s) in " << path << "\n";
  return 1;
}

int cmd_lp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open " << path << "\n";
    return 2;
  }
  lp::Model model;
  try {
    model = lp::read_lp_format(in);
  } catch (const lp::LpParseError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  std::size_t findings = report_findings(path, check::lint_model(model));
  findings += report_findings(path + " [roundtrip]", roundtrip_check(model));
  if (findings == 0) {
    std::cout << "clean: " << path << "\n";
    return 0;
  }
  std::cout << findings << " finding(s) in " << path << "\n";
  return 1;
}

int cmd_trace(const std::string& workload_path,
              const std::string& intervals_path, const std::string& jobs_path,
              int argc, char** argv) {
  sim::Protocol protocol = sim::Protocol::kProposed;
  if (const auto p = option(argc, argv, "protocol")) {
    if (*p == "proposed") {
      protocol = sim::Protocol::kProposed;
    } else if (*p == "wp") {
      protocol = sim::Protocol::kWasilyPellizzoni;
    } else if (*p == "nps") {
      protocol = sim::Protocol::kNonPreemptive;
    } else {
      std::cerr << "error: unknown protocol '" << *p << "'\n";
      return 2;
    }
  }

  rt::Workload workload;
  sim::Trace trace;
  try {
    workload = rt::load_workload_file(workload_path);
    trace = sim::import_trace_csv_files(workload.tasks, intervals_path,
                                        jobs_path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  const check::CheckReport report =
      check::audit_trace(workload.tasks, protocol, trace);
  const std::size_t findings = report_findings(intervals_path, report);
  if (findings == 0) {
    std::cout << "clean: " << intervals_path << "\n";
    return 0;
  }
  std::cout << findings << " finding(s) in " << intervals_path << "\n";
  return 1;
}

template <typename T>
bool parse_number(const std::optional<std::string>& text, const char* key,
                  T& out) {
  if (!text) {
    return true;
  }
  try {
    out = static_cast<T>(std::stoll(*text));
  } catch (const std::exception&) {
    std::cerr << "error: malformed --" << key << " '" << *text << "'\n";
    return false;
  }
  return true;
}

int cmd_verify(const std::string& path, int argc, char** argv) {
  sim::Protocol protocol = sim::Protocol::kProposed;
  if (const auto p = option(argc, argv, "protocol")) {
    if (*p == "proposed") {
      protocol = sim::Protocol::kProposed;
    } else if (*p == "wp") {
      protocol = sim::Protocol::kWasilyPellizzoni;
    } else {
      std::cerr << "error: unknown protocol '" << *p
                << "' (verify explores interval protocols only)\n";
      return 2;
    }
  }

  verify::VerifyOptions options;
  if (!parse_number(option(argc, argv, "horizon"), "horizon",
                    options.horizon) ||
      !parse_number(option(argc, argv, "lattice"), "lattice",
                    options.lattice) ||
      !parse_number(option(argc, argv, "offsets"), "offsets",
                    options.offset_steps) ||
      !parse_number(option(argc, argv, "jitter"), "jitter",
                    options.jitter_steps) ||
      !parse_number(option(argc, argv, "threads"), "threads",
                    options.threads) ||
      !parse_number(option(argc, argv, "max-states"), "max-states",
                    options.max_states)) {
    return 2;
  }

  rt::Workload workload;
  try {
    workload = rt::load_workload_file(path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  const verify::VerifyResult result =
      verify::verify(workload.tasks, protocol, options);

  std::cout << "explored " << result.states << " states ("
            << result.release_branches << " release branches, "
            << result.steps << " interval steps, " << result.dedup_hits
            << " dedup hits, depth " << result.depth << ") over horizon "
            << result.horizon << " lattice " << result.lattice << "\n";
  for (rt::TaskIndex i = 0; i < workload.tasks.size(); ++i) {
    std::cout << "  " << workload.tasks[i].name << ": exhaustive wcrt "
              << result.exact_wcrt[i];
    if (result.analysis_wcrt[i] != rt::kTimeMax) {
      std::cout << ", analysis bound " << result.analysis_wcrt[i];
    }
    std::cout << "\n";
  }

  std::size_t findings = report_findings(path, result.report);
  if (result.counterexample) {
    const verify::Counterexample& cex = *result.counterexample;
    std::cout << "counterexample: " << cex.releases.size()
              << " release(s), " << cex.trace.intervals.size()
              << " interval(s)\n";
    for (const sim::Release& r : cex.releases) {
      std::cout << "  release " << workload.tasks[r.job.task].name << "#"
                << r.job.seq << " at t=" << r.time << "\n";
    }
    findings += report_findings(path + " [counterexample-audit]",
                                cex.trace_audit);
  }
  if (findings > 0) {
    std::cout << findings << " finding(s) in " << path << "\n";
    return 1;
  }
  if (!result.complete) {
    std::cout << "incomplete: state budget exhausted after " << result.states
              << " states; no violation found but nothing is proved\n";
    return 2;
  }
  std::cout << "clean: " << path << " (bounded model exhausted; properties "
            << "proved for this model)\n";
  return 0;
}

int cmd_rules() {
  for (const check::RuleInfo& rule : check::rule_catalog()) {
    std::cout << rule.id << "  " << check::to_string(rule.severity) << "  "
              << rule.summary << "  [" << rule.reference << "]\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string command = argv[1];
  try {
    if (command == "workload" && argc >= 3) {
      return cmd_workload(argv[2], argc, argv);
    }
    if (command == "lp" && argc >= 3) {
      return cmd_lp(argv[2]);
    }
    if (command == "trace" && argc >= 5) {
      return cmd_trace(argv[2], argv[3], argv[4], argc, argv);
    }
    if (command == "verify" && argc >= 3) {
      return cmd_verify(argv[2], argc, argv);
    }
    if (command == "rules") {
      return cmd_rules();
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
