// mcs_serve — long-running admission-control service (docs/SERVICE.md).
//
//   mcs_serve [--socket=<path>] [--no-stdio] [--threads=<n>]
//             [--cache=<entries>] [--high-water=<n>] [--budget-ms=<ms>]
//             [--log=<file>] [--log-truncate] [--telemetry=<file>]
//
// Speaks the newline-delimited JSON admission protocol on stdin/stdout
// and, with --socket, on a Unix-domain stream socket; both transports feed
// one shared AdmissionService (per-core engines, verdict cache, overload
// shedding).  Runs until stdin reaches EOF (unless --no-stdio) or a
// `shutdown` request arrives.  --budget-ms sets the default per-request
// degradation budget for requests that carry none (0 = unlimited).
//
// Exit status: 0 on clean shutdown, 2 on usage or startup errors.
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <optional>
#include <string>

#include "support/telemetry.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

using namespace mcs;

namespace {

int usage() {
  std::cerr
      << "usage: mcs_serve [--socket=<path>] [--no-stdio] [--threads=<n>]\n"
         "                 [--cache=<entries>] [--high-water=<n>]\n"
         "                 [--budget-ms=<ms>] [--log=<file>] "
         "[--log-truncate]\n"
         "                 [--telemetry=<file>]\n"
         "Serves the newline-delimited JSON admission protocol "
         "(docs/SERVICE.md)\n"
         "on stdin/stdout and, with --socket, on a Unix-domain socket.\n";
  return 2;
}

std::optional<std::string> option(int argc, char** argv, const char* key) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return std::nullopt;
}

bool flag(int argc, char** argv, const char* key) {
  const std::string name = std::string("--") + key;
  for (int i = 0; i < argc; ++i) {
    if (name == argv[i]) return true;
  }
  return false;
}

std::size_t parse_count(const std::string& text, const char* what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty()) {
    throw std::runtime_error(std::string("bad ") + what + ": " + text);
  }
  return static_cast<std::size_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  const int rest_argc = argc - 1;
  char** rest_argv = argv + 1;
  for (int i = 0; i < rest_argc; ++i) {
    if (std::strcmp(rest_argv[i], "--help") == 0 ||
        std::strcmp(rest_argv[i], "-h") == 0) {
      return usage();
    }
  }
  try {
    svc::ServiceConfig config;
    if (const auto v = option(rest_argc, rest_argv, "threads")) {
      config.threads = parse_count(*v, "--threads");
    }
    if (const auto v = option(rest_argc, rest_argv, "cache")) {
      config.cache_capacity = parse_count(*v, "--cache");
    }
    if (const auto v = option(rest_argc, rest_argv, "high-water")) {
      config.queue_high_water = parse_count(*v, "--high-water");
    }
    if (const auto v = option(rest_argc, rest_argv, "budget-ms")) {
      char* end = nullptr;
      config.default_budget_ms = std::strtod(v->c_str(), &end);
      if (end == nullptr || *end != '\0' || config.default_budget_ms < 0) {
        throw std::runtime_error("bad --budget-ms: " + *v);
      }
    }
    if (const auto v = option(rest_argc, rest_argv, "log")) {
      config.log_path = *v;
      config.log_truncate = flag(rest_argc, rest_argv, "log-truncate");
    }
    const auto telemetry_file = option(rest_argc, rest_argv, "telemetry");
    if (telemetry_file) {
      support::telemetry::set_enabled(true);
    }

    svc::ServerConfig server;
    server.serve_stdio = !flag(rest_argc, rest_argv, "no-stdio");
    if (const auto v = option(rest_argc, rest_argv, "socket")) {
      server.socket_path = *v;
    }
    server.max_line_bytes = config.max_request_bytes;

    svc::AdmissionService service(std::move(config));
    const int rc = svc::run_server(service, server);
    if (telemetry_file) {
      support::telemetry::write_json_file(*telemetry_file);
      std::cerr << "telemetry written to " << *telemetry_file << "\n";
    }
    return rc;
  } catch (const std::exception& error) {
    std::cerr << "mcs_serve: " << error.what() << "\n";
    return 2;
  }
}
