// mcs_cli — command-line front end to the library.
//
//   mcs_cli analyze  <workload>  [--approach=proposed|wp|nps|all] [--opa]
//                                [--threads=<n>]
//   mcs_cli simulate <workload>  [--protocol=proposed|wp|nps]
//                                [--horizon=<ticks>] [--pattern=sync|sporadic]
//                                [--seed=<n>] [--gantt]
//   mcs_cli chains   <workload>  [--approach=proposed|wp|nps]
//   mcs_cli export-lp <workload> <task-name> [--window=<ticks>] [--ls-case=a|b]
//   mcs_cli admit    [--socket=<path>] [--script=<file>]
//                    [--verify-log=<file>]
//   mcs_cli example  — print a sample workload file
//
// `admit` is the client side of the admission-control service
// (docs/SERVICE.md): it reads newline-delimited JSON requests from
// --script (or stdin) and sends them in lockstep to the mcs_serve socket
// named by --socket — or, without --socket, to an in-process
// AdmissionService, so scripted sessions run without a server.
// --verify-log replays a service request log (svc/request_log.hpp)
// against a fresh in-process service and checks every non-degraded
// verdict re-derives identically.
//
// Every command additionally accepts --telemetry=<file>: after the command
// runs, a JSON snapshot of the solver/analysis telemetry (simplex
// iterations, B&B nodes, fixpoint rounds, timers — see
// support/telemetry.hpp for the schema) is written to <file>.
//
// Workload files use the format documented in rt/io.hpp.  Exit status: 0 on
// success (analyze: schedulable), 1 on a negative verdict, 2 on usage or
// input errors.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/chains.hpp"
#include "analysis/engine.hpp"
#include "analysis/milp_formulation.hpp"
#include "lp/lp_writer.hpp"
#include "rt/io.hpp"
#include "sim/chain_age.hpp"
#include "sim/engine.hpp"
#include "sim/gantt.hpp"
#include "sim/job_source.hpp"
#include "sim/metrics.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"
#include "svc/json.hpp"
#include "svc/request_log.hpp"
#include "svc/service.hpp"

using namespace mcs;

namespace {

int usage() {
  std::cerr <<
      "usage:\n"
      "  mcs_cli analyze   <workload> [--approach=proposed|wp|nps|all] "
      "[--opa]\n"
      "                    [--threads=<n>]  (0 = hardware concurrency; the\n"
      "                    verdicts and bounds are thread-count "
      "independent)\n"
      "  mcs_cli simulate  <workload> [--protocol=proposed|wp|nps]\n"
      "                    [--horizon=<ticks>] [--pattern=sync|sporadic]\n"
      "                    [--seed=<n>] [--gantt]\n"
      "  mcs_cli chains    <workload> [--approach=proposed|wp|nps]\n"
      "  mcs_cli export-lp <workload> <task> [--window=<ticks>] "
      "[--ls-case=a|b]\n"
      "  mcs_cli admit     [--socket=<path>] [--script=<file>]\n"
      "                    [--verify-log=<file>]  (admission-control "
      "client,\n"
      "                    docs/SERVICE.md; no --socket = in-process "
      "service)\n"
      "  mcs_cli example\n"
      "options common to all commands:\n"
      "  --telemetry=<file>  write a JSON solver/analysis telemetry "
      "snapshot\n";
  return 2;
}

/// "--key=value" option access over argv.
std::optional<std::string> option(int argc, char** argv, const char* key) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return std::nullopt;
}

bool flag(int argc, char** argv, const char* key) {
  const std::string name = std::string("--") + key;
  for (int i = 0; i < argc; ++i) {
    if (name == argv[i]) return true;
  }
  return false;
}

std::optional<analysis::Approach> parse_approach(const std::string& name) {
  if (name == "proposed") return analysis::Approach::kProposed;
  if (name == "wp") return analysis::Approach::kWasilyPellizzoni;
  if (name == "nps") return analysis::Approach::kNonPreemptive;
  return std::nullopt;
}

std::optional<sim::Protocol> parse_protocol(const std::string& name) {
  if (name == "proposed") return sim::Protocol::kProposed;
  if (name == "wp") return sim::Protocol::kWasilyPellizzoni;
  if (name == "nps") return sim::Protocol::kNonPreemptive;
  return std::nullopt;
}

std::string show_time(rt::Time t) {
  return t == rt::kTimeMax ? std::string("-") : std::to_string(t);
}

int cmd_analyze(const rt::Workload& workload, int argc, char** argv) {
  const std::string which =
      option(argc, argv, "approach").value_or("all");
  const bool use_opa = flag(argc, argv, "opa");

  std::vector<analysis::Approach> approaches;
  if (which == "all") {
    approaches = {analysis::Approach::kProposed,
                  analysis::Approach::kWasilyPellizzoni,
                  analysis::Approach::kNonPreemptive};
  } else if (const auto parsed = parse_approach(which)) {
    approaches = {*parsed};
  } else {
    std::cerr << "unknown approach '" << which << "'\n";
    return 2;
  }

  // One engine across every requested approach: formulations built for the
  // WP pass are patched (not rebuilt) for the proposed greedy rounds, and
  // --threads fans the per-task bounds out on a pool (deterministically —
  // any thread count gives the same output).
  analysis::EngineConfig engine_config;
  engine_config.threads = static_cast<std::size_t>(
      std::stoull(option(argc, argv, "threads").value_or("1")));
  analysis::AnalysisEngine engine(engine_config);

  const auto& tasks = workload.tasks;
  bool all_ok = true;
  for (const auto approach : approaches) {
    const auto result = engine.analyze(tasks, approach, {});
    std::cout << "== " << to_string(approach) << ": "
              << (result.schedulable ? "SCHEDULABLE" : "not schedulable")
              << "\n";
    std::cout << std::left << std::setw(14) << "  task" << std::setw(10)
              << "D" << std::setw(12) << "WCRT" << "LS\n";
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      std::cout << "  " << std::left << std::setw(12) << tasks[i].name
                << std::setw(10) << tasks[i].deadline << std::setw(12)
                << show_time(result.wcrt[i])
                << (result.ls_flags[i] ? "yes" : "") << "\n";
    }
    if (!result.schedulable && use_opa) {
      const auto opa = engine.audsley_assign(tasks, approach, {});
      std::cout << "  OPA: " << (opa.schedulable
                                     ? "feasible priority order found"
                                     : "infeasible under any order")
                << " (" << opa.test_count << " tests)\n";
      if (opa.schedulable) {
        for (std::size_t i = 0; i < tasks.size(); ++i) {
          std::cout << "    " << tasks[i].name << " -> prio "
                    << opa.priorities[i] << "\n";
        }
      }
      all_ok = all_ok && opa.schedulable;
    } else {
      all_ok = all_ok && result.schedulable;
    }
  }
  return all_ok ? 0 : 1;
}

int cmd_simulate(const rt::Workload& workload, int argc, char** argv) {
  const auto protocol =
      parse_protocol(option(argc, argv, "protocol").value_or("proposed"));
  if (!protocol) {
    std::cerr << "unknown protocol\n";
    return 2;
  }
  // Horizon in raw ticks (same unit as the workload file); default: twenty
  // times the largest period.
  rt::Time horizon = 0;
  if (const auto h = option(argc, argv, "horizon")) {
    horizon = static_cast<rt::Time>(std::stoll(*h));
  } else {
    for (const auto& t : workload.tasks) {
      horizon = std::max(horizon, 20 * t.period);
    }
  }
  const std::string pattern =
      option(argc, argv, "pattern").value_or("sync");
  const std::uint64_t seed =
      std::stoull(option(argc, argv, "seed").value_or("1"));

  support::Rng rng(seed);
  const auto releases =
      pattern == "sporadic"
          ? sim::random_sporadic_releases(workload.tasks, horizon, 0.5, rng)
          : sim::synchronous_periodic_releases(workload.tasks, horizon);
  const auto trace = sim::simulate(workload.tasks, *protocol, releases);
  const auto metrics = sim::compute_metrics(workload.tasks, trace);

  std::cout << "protocol " << to_string(*protocol) << ", "
            << trace.jobs.size() << " jobs, " << trace.intervals.size()
            << " intervals\n"
            << "deadline misses: " << metrics.deadline_misses
            << ", cancellations: " << metrics.cancellations
            << ", urgent promotions: " << metrics.urgent_promotions << "\n"
            << std::fixed << std::setprecision(3)
            << "cpu utilization: " << metrics.cpu_utilization()
            << ", dma utilization: " << metrics.dma_utilization()
            << ", hiding ratio: " << metrics.hiding_ratio() << "\n";
  for (std::size_t i = 0; i < workload.tasks.size(); ++i) {
    std::cout << "  " << std::left << std::setw(12)
              << workload.tasks[i].name
              << " worst response: " << show_time(trace.worst_response(i))
              << "\n";
  }
  if (flag(argc, argv, "gantt")) {
    sim::GanttOptions opt;
    opt.ticks_per_char =
        std::max<rt::Time>(1, horizon / 120);
    opt.job_summary = false;
    std::cout << "\n"
              << sim::render_gantt(workload.tasks, *protocol, trace, opt);
  }
  return metrics.deadline_misses == 0 ? 0 : 1;
}

int cmd_chains(const rt::Workload& workload, int argc, char** argv) {
  if (workload.chains.empty()) {
    std::cerr << "workload has no chains\n";
    return 2;
  }
  const auto approach = parse_approach(
      option(argc, argv, "approach").value_or("proposed"));
  if (!approach) {
    std::cerr << "unknown approach\n";
    return 2;
  }
  const auto result = analysis::analyze(workload.tasks, *approach);
  bool all_ok = true;
  for (const auto& chain : workload.chains) {
    const auto bound =
        analysis::chain_age_bound(workload.tasks, chain, result.wcrt);
    std::cout << chain.name << ": ";
    if (!bound.valid) {
      std::cout << "no valid age bound (stage unbounded or backlogged)\n";
      all_ok = false;
      continue;
    }
    std::cout << "max data age <= " << bound.max_data_age;
    if (chain.max_data_age > 0) {
      std::cout << " (constraint " << chain.max_data_age << ": "
                << (bound.meets_constraint ? "met" : "VIOLATED") << ")";
      all_ok = all_ok && bound.meets_constraint;
    }
    std::cout << "\n";
  }
  return all_ok ? 0 : 1;
}

int cmd_export_lp(const rt::Workload& workload, int argc, char** argv) {
  if (argc < 1) {
    std::cerr << "export-lp needs a task name\n";
    return 2;
  }
  const std::string task_name = argv[0];
  std::optional<rt::TaskIndex> index;
  for (std::size_t i = 0; i < workload.tasks.size(); ++i) {
    if (workload.tasks[i].name == task_name) {
      index = i;
    }
  }
  if (!index) {
    std::cerr << "unknown task '" << task_name << "'\n";
    return 2;
  }
  const rt::Time window = static_cast<rt::Time>(std::stoll(
      option(argc, argv, "window")
          .value_or(std::to_string(workload.tasks[*index].deadline))));
  auto fcase = analysis::FormulationCase::kNls;
  if (const auto ls = option(argc, argv, "ls-case")) {
    fcase = *ls == "b" ? analysis::FormulationCase::kLsCaseB
                       : analysis::FormulationCase::kLsCaseA;
  }
  const auto milp =
      analysis::build_delay_milp(workload.tasks, *index, window, fcase);
  lp::write_lp_format(milp.model, std::cout);
  return 0;
}

// ---------------------------------------------------------------------------
// admit — admission-control client (docs/SERVICE.md).

/// Lockstep line client over a Unix-domain stream socket: one request
/// line out, one response line back.
class LineSocket {
 public:
  explicit LineSocket(const std::string& path) {
    sockaddr_un addr{};
    if (path.size() >= sizeof addr.sun_path) {
      throw std::runtime_error("socket path too long: " + path);
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) < 0) {
      const std::string message =
          "connect " + path + ": " + std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error(message);
    }
  }
  ~LineSocket() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineSocket(const LineSocket&) = delete;
  LineSocket& operator=(const LineSocket&) = delete;

  void send_line(const std::string& line) {
    std::string buf = line;
    buf.push_back('\n');
    std::size_t written = 0;
    while (written < buf.size()) {
      const ssize_t n =
          ::write(fd_, buf.data() + written, buf.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("send: ") + std::strerror(errno));
      }
      written += static_cast<std::size_t>(n);
    }
  }

  std::string recv_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
      }
      if (n == 0) {
        throw std::runtime_error("server closed the connection mid-response");
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

bool response_ok(const std::string& response) {
  try {
    const svc::Json parsed = svc::parse_json(response);
    const svc::Json* ok = parsed.find("ok");
    return ok != nullptr && ok->is_bool() && ok->as_bool();
  } catch (const svc::JsonError&) {
    return false;
  }
}

/// Replays a request log against a fresh in-process service: every record
/// must re-derive a response with the same ok field (and, for non-degraded
/// verdicts, the same fingerprint and schedulability).  Timing-dependent
/// records — overload sheds, degraded verdicts — only need a well-formed
/// counterpart.  A torn trailing line (SIGKILL artifact) is reported but
/// is not an error.
int cmd_verify_log(const std::string& path) {
  const svc::RequestLogContents contents = svc::read_request_log(path);
  auto service = std::make_unique<svc::AdmissionService>(svc::ServiceConfig{});
  std::size_t replayed = 0;
  std::size_t skipped = 0;
  std::size_t restarts = 0;
  std::optional<std::uint64_t> last_seq;
  for (const svc::RequestLogRecord& rec : contents.records) {
    // Sequence numbers are strictly increasing within one server process
    // and reset to 0 on restart; a SIGKILLed server loses its in-memory
    // state, so the replay must shed its state at the same point.
    if (last_seq && rec.seq <= *last_seq) {
      service = std::make_unique<svc::AdmissionService>(svc::ServiceConfig{});
      ++restarts;
    }
    last_seq = rec.seq;
    svc::Json logged;
    try {
      logged = svc::parse_json(rec.response);
    } catch (const svc::JsonError& e) {
      std::cerr << "verify-log: unparseable logged response at seq "
                << rec.seq << ": " << e.what() << "\n";
      return 1;
    }
    const svc::Json* err = logged.find("error");
    if (err != nullptr) {
      const svc::Json* code = err->find("code");
      if (code != nullptr && code->is_string() &&
          code->as_string() == "overloaded") {
        ++skipped;  // shedding depends on live queue depth
        continue;
      }
    }
    const std::string fresh_text = service->handle_line(rec.request);
    const svc::Json fresh = svc::parse_json(fresh_text);
    const svc::Json* logged_ok = logged.find("ok");
    const svc::Json* fresh_ok = fresh.find("ok");
    if (logged_ok == nullptr || fresh_ok == nullptr ||
        logged_ok->as_bool() != fresh_ok->as_bool()) {
      std::cerr << "verify-log: ok mismatch at seq " << rec.seq << "\n  log: "
                << rec.response << "\n  now: " << fresh_text << "\n";
      return 1;
    }
    const svc::Json* logged_v = logged.find("verdict");
    const svc::Json* fresh_v = fresh.find("verdict");
    if (logged_v != nullptr && fresh_v != nullptr) {
      const auto degraded = [](const svc::Json& v) {
        const svc::Json* d = v.find("degraded");
        return d != nullptr && d->is_bool() && d->as_bool();
      };
      if (!degraded(*logged_v) && !degraded(*fresh_v)) {
        const auto field_text = [](const svc::Json& v, const char* key) {
          const svc::Json* f = v.find(key);
          return f == nullptr ? std::string("<absent>") : f->dump();
        };
        for (const char* key : {"schedulable", "fingerprint", "tasks"}) {
          if (field_text(*logged_v, key) != field_text(*fresh_v, key)) {
            std::cerr << "verify-log: verdict." << key << " mismatch at seq "
                      << rec.seq << "\n  log: " << rec.response
                      << "\n  now: " << fresh_text << "\n";
            return 1;
          }
        }
      }
    }
    ++replayed;
  }
  std::cout << "verify-log: " << replayed << " records re-derived across "
            << (restarts + 1) << " server run(s), " << skipped
            << " skipped (overload sheds)"
            << (contents.truncated_tail ? ", torn tail dropped" : "") << "\n";
  return 0;
}

int cmd_admit(int argc, char** argv) {
  if (const auto log_path = option(argc, argv, "verify-log")) {
    return cmd_verify_log(*log_path);
  }
  const auto socket_path = option(argc, argv, "socket");
  const auto script_path = option(argc, argv, "script");

  std::ifstream script;
  std::istream* in = &std::cin;
  if (script_path) {
    script.open(*script_path);
    if (!script.is_open()) {
      std::cerr << "cannot open script " << *script_path << "\n";
      return 2;
    }
    in = &script;
  }

  std::optional<LineSocket> remote;
  std::optional<svc::AdmissionService> local;
  if (socket_path) {
    remote.emplace(*socket_path);
  } else {
    local.emplace(svc::ServiceConfig{});
  }

  bool all_ok = true;
  std::string line;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    std::string response;
    if (remote) {
      remote->send_line(line);
      response = remote->recv_line();
    } else {
      response = local->handle_line(line);
    }
    std::cout << response << "\n";
    all_ok = all_ok && response_ok(response);
  }
  return all_ok ? 0 : 1;
}

constexpr const char* kExample = R"(# mcs-cosched example workload (times in ticks; pick your own unit)
task control  C=300  l=60  u=60  T=2000  D=1700
task vision   C=900  l=350 u=350 T=5000  D=5000
task logging  C=600  l=150 u=150 T=10000 D=10000
chain perceive age=20000 tasks=vision,control
)";

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string command = argv[1];
  if (command == "example") {
    std::cout << kExample;
    return 0;
  }
  if (command == "admit") {
    // Client mode: no workload file — requests come from --script / stdin.
    try {
      return cmd_admit(argc - 2, argv + 2);
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << "\n";
      return 2;
    }
  }
  if (argc < 3) {
    return usage();
  }
  try {
    const rt::Workload workload = rt::load_workload_file(argv[2]);
    const int rest_argc = argc - 3;
    char** rest_argv = argv + 3;
    // --telemetry=<file> forces collection on and dumps a snapshot once the
    // command has run (whatever its verdict).
    const auto telemetry_file = option(rest_argc, rest_argv, "telemetry");
    if (telemetry_file) {
      support::telemetry::set_enabled(true);
    }
    std::optional<int> status;
    if (command == "analyze") {
      status = cmd_analyze(workload, rest_argc, rest_argv);
    } else if (command == "simulate") {
      status = cmd_simulate(workload, rest_argc, rest_argv);
    } else if (command == "chains") {
      status = cmd_chains(workload, rest_argc, rest_argv);
    } else if (command == "export-lp") {
      status = cmd_export_lp(workload, rest_argc, rest_argv);
    }
    if (status) {
      if (telemetry_file) {
        support::telemetry::write_json_file(*telemetry_file);
        std::cerr << "telemetry written to " << *telemetry_file << "\n";
      }
      return *status;
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
  return usage();
}
