#!/usr/bin/env python3
"""Static-analysis gate for CI: runs mcs_lint over the repo's corpora.

Drives the mcs_lint binary (tools/mcs_lint.cpp) across everything the
repository commits that the linter can audit:

  * every workload in workloads/*.wl — formulation lint (MCS-F1xx),
    differential patched-vs-fresh verification (MCS-F2xx), and the LP
    writer round-trip, for every formulation case the analysis engine
    would build;
  * every LP file passed explicitly or found under the given extra
    directories (*.lp) — generic model lint (MCS-F0xx) plus round-trip;
  * every exported trace pair (<stem>.intervals.csv + <stem>.jobs.csv
    next to a <stem>.wl) — protocol-invariant audit (MCS-P0xx);
  * every workload in workloads/verify/*.wl — exhaustive bounded model
    check of the R1-R6 protocol under both interval protocols (MCS-V0xx),
    including the analysis-soundness cross-check.  A truncated (incomplete)
    exploration fails the gate: it would prove nothing.

The gate fails (exit 1) when any corpus member produces a diagnostic —
warnings included, matching CheckReport::clean() — or when mcs_lint
itself errors.  A missing binary or an empty corpus is a configuration
error (exit 2): a gate that silently checks nothing is worse than none.

Usage:
  tools/lint_check.py <mcs_lint binary> [corpus dirs...]

With no corpus dirs, defaults to workloads/ relative to this script's
repository root.
"""

import pathlib
import subprocess
import sys


def run_lint(binary, args):
    """Runs one mcs_lint invocation; returns (ok, output)."""
    proc = subprocess.run(
        [str(binary)] + [str(a) for a in args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return proc.returncode == 0, proc.stdout


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    binary = pathlib.Path(argv[1])
    if not binary.exists():
        print(f"lint_check: mcs_lint binary not found: {binary}")
        return 2

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    corpus_dirs = [pathlib.Path(d) for d in argv[2:]] or [
        repo_root / "workloads"
    ]

    jobs = []  # (label, mcs_lint args)
    for corpus in corpus_dirs:
        if not corpus.is_dir():
            print(f"lint_check: not a directory: {corpus}")
            return 2
        for wl in sorted(corpus.glob("*.wl")):
            jobs.append((f"workload {wl.name}", ["workload", wl]))
            intervals = wl.with_suffix(".intervals.csv")
            job_csv = wl.with_suffix(".jobs.csv")
            if intervals.exists() and job_csv.exists():
                jobs.append(
                    (f"trace {intervals.name}", ["trace", wl, intervals, job_csv])
                )
        for lp in sorted(corpus.glob("*.lp")):
            jobs.append((f"lp {lp.name}", ["lp", lp]))
        verify_dir = corpus / "verify"
        if verify_dir.is_dir():
            for wl in sorted(verify_dir.glob("*.wl")):
                for protocol in ("proposed", "wp"):
                    jobs.append(
                        (
                            f"verify {wl.name} [{protocol}]",
                            ["verify", wl, f"--protocol={protocol}"],
                        )
                    )

    if not jobs:
        print(f"lint_check: empty corpus in {[str(d) for d in corpus_dirs]}")
        return 2

    failures = 0
    for label, args in jobs:
        ok, output = run_lint(binary, args)
        status = "ok" if ok else "FAIL"
        print(f"[{status}] {label}")
        if not ok:
            failures += 1
            sys.stdout.write(output)

    if failures:
        print(f"lint_check: {failures}/{len(jobs)} corpus member(s) failed")
        return 1
    print(f"lint_check: {len(jobs)} corpus member(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
