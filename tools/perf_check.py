#!/usr/bin/env python3
"""Solver performance gate for CI.

Compares a freshly produced BENCH_solver.json (written by
bench/bench_ablation_solver) against the committed baseline at the repo
root and fails when the warm-started solver has regressed:

  * total simplex pivots of the warm strategies grew by more than the
    allowed factor over the baseline run, or
  * the warm-vs-cold pivot reduction measured in the fresh run fell
    below the required floor (the headline claim of the warm-start
    work: warm restarts must at least halve the pivot count).

Wall-clock numbers are recorded in the JSON for human inspection but are
deliberately NOT gated on: CI machines are too noisy for stable timing
thresholds, whereas pivot counts are deterministic.

Usage:
  tools/perf_check.py <fresh BENCH_solver.json> [<baseline BENCH_solver.json>]
"""

import json
import pathlib
import sys

# A fresh run may spend at most this factor times the baseline's warm
# pivots before CI fails (catches e.g. a warm path that silently starts
# falling back to cold solves everywhere).
MAX_PIVOT_GROWTH = 2.0

# The fresh run's warm-vs-cold pivot reduction must stay above this.
MIN_PIVOT_REDUCTION = 2.0


def load(path):
    with open(path) as fh:
        data = json.load(fh)
    if data.get("schema") != "mcs-bench-solver-v1":
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    return data


def main(argv):
    if len(argv) not in (2, 3):
        sys.exit(__doc__)
    fresh_path = argv[1]
    baseline_path = (
        argv[2]
        if len(argv) == 3
        else pathlib.Path(__file__).resolve().parent.parent / "BENCH_solver.json"
    )
    fresh = load(fresh_path)
    baseline = load(baseline_path)

    fresh_warm = fresh["summary"]["warm_pivots_total"]
    base_warm = baseline["summary"]["warm_pivots_total"]
    reduction = fresh["summary"]["pivot_reduction"]

    print(f"warm pivots: fresh {fresh_warm} vs baseline {base_warm} "
          f"(x{fresh_warm / base_warm:.2f})")
    print(f"warm-vs-cold pivot reduction: {reduction:.2f}x "
          f"(floor {MIN_PIVOT_REDUCTION:.1f}x)")

    failures = []
    if fresh_warm > MAX_PIVOT_GROWTH * base_warm:
        failures.append(
            f"warm pivot count regressed more than {MAX_PIVOT_GROWTH:.1f}x "
            f"over the committed baseline ({fresh_warm} > "
            f"{MAX_PIVOT_GROWTH:.1f} * {base_warm})")
    if reduction < MIN_PIVOT_REDUCTION:
        failures.append(
            f"warm-vs-cold pivot reduction {reduction:.2f}x fell below the "
            f"required {MIN_PIVOT_REDUCTION:.1f}x")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("perf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
