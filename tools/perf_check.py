#!/usr/bin/env python3
"""Performance gates for CI.

Dispatches on the JSON schema of the fresh bench result:

mcs-bench-solver-v1 (written by bench/bench_ablation_solver)
  Compared against the committed BENCH_solver.json baseline; fails when
  the warm-started solver has regressed:
    * total simplex pivots of the warm strategies grew by more than the
      allowed factor over the baseline run, or
    * the warm-vs-cold pivot reduction measured in the fresh run fell
      below the required floor (warm restarts must at least halve the
      pivot count), or
    * the presolve axis regressed: the same-run wall-time speedup of
      "plain, 2%gap, warm+pre" over "plain, 2%gap, warm" fell below the
      floor, or presolve stopped removing anything at all, or
    * the kernel axis regressed: the same-run wall-time speedup of the
      sparse revised-simplex kernel over the dense tableau reference on
      "plain, 2%gap, warm" fell below the floor, or the two kernels
      stopped proving the same optimum on the "alpha, prove, warm" pair
      (their mean bounds must be identical — the 2%-gap strategies hit
      node limits at different trees, so only the prove pair pins bound
      identity).
  Cross-run wall-clock numbers are recorded in the JSON for human
  inspection but deliberately NOT gated on: CI machines are too noisy for
  stable timing thresholds, whereas pivot counts are deterministic.  The
  presolve speedup IS a timing gate, but — like the analysis gate below —
  on a same-run, same-machine ratio, which is far more stable than any
  absolute time.

mcs-bench-analysis-v1 (written by bench/bench_analysis)
  Fails when the AnalysisEngine's single-thread end-to-end speedup over
  the legacy free functions fell below the floor.  This IS a timing
  gate, but on a same-run, same-machine ratio — both numerator and
  denominator see the same hardware and load, so the ratio is far more
  stable than any absolute time.  The committed baseline documents the
  reference speedup; the CI floor sits below it to absorb noise.

Usage:
  tools/perf_check.py <fresh BENCH json> [<baseline BENCH json>]
"""

import json
import pathlib
import sys

# A fresh run may spend at most this factor times the baseline's warm
# pivots before CI fails (catches e.g. a warm path that silently starts
# falling back to cold solves everywhere).
MAX_PIVOT_GROWTH = 2.0

# The fresh run's warm-vs-cold pivot reduction must stay above this.
MIN_PIVOT_REDUCTION = 2.0

# The fresh run's presolve-on vs presolve-off wall-time ratio on the
# "plain, 2%gap, warm" strategy must stay above this.  Recalibrated with
# the sparse revised-simplex kernel: the dense-era baseline showed 1.8x
# because presolve's row/column removals saved expensive tableau pivots;
# sparse pivots are cheap enough that the same removals now leave this
# pair roughly wall-neutral (1.0-1.1x run to run; the alpha-priority
# production pair still shows ~1.3x).  The floor is therefore a
# regression backstop — presolve must never cost real wall time — while
# its functional value stays gated deterministically by the removal
# counts below.
MIN_PRESOLVE_SPEEDUP = 0.9

# The fresh run's sparse-vs-dense kernel wall-time ratio on the
# "plain, 2%gap, warm" strategy must stay above this.  The committed
# baseline shows >= 1.7x; the CI floor absorbs same-run ratio noise.
MIN_SPARSE_KERNEL_SPEEDUP = 1.5

# Relative tolerance for the prove-pair bound identity: both kernels prove
# optimality, so their mean bounds may differ only by accumulated
# round-off, far below this.
KERNEL_BOUND_RTOL = 1e-9

# The fresh run's engine-vs-legacy single-thread speedup must stay above
# this.  The committed baseline shows >= 1.3x; the CI floor is lower to
# absorb run-to-run noise in the ratio.
MIN_ENGINE_SPEEDUP = 1.15

# The fresh run's barrier-vs-queue sweep wall-time ratio must stay above
# this.  The sweep_wall axis replays a fixed straggler-heavy duration
# profile at threads=4 (sleep-based, so it measures scheduling shape, not
# CPU throughput), where removing the per-point barrier lets idle workers
# steal units from the next point; the committed baseline shows >= 1.8x.
MIN_SWEEP_QUEUE_SPEEDUP = 1.15

BASELINES = {
    "mcs-bench-solver-v1": "BENCH_solver.json",
    "mcs-bench-analysis-v1": "BENCH_analysis.json",
}


def load(path, schema=None):
    with open(path) as fh:
        data = json.load(fh)
    if data.get("schema") not in BASELINES:
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    if schema is not None and data["schema"] != schema:
        sys.exit(f"{path}: schema {data['schema']!r}, expected {schema!r}")
    return data


def check_solver(fresh, baseline):
    fresh_warm = fresh["summary"]["warm_pivots_total"]
    base_warm = baseline["summary"]["warm_pivots_total"]
    reduction = fresh["summary"]["pivot_reduction"]

    print(f"warm pivots: fresh {fresh_warm} vs baseline {base_warm} "
          f"(x{fresh_warm / base_warm:.2f})")
    print(f"warm-vs-cold pivot reduction: {reduction:.2f}x "
          f"(floor {MIN_PIVOT_REDUCTION:.1f}x)")

    failures = []
    if fresh_warm > MAX_PIVOT_GROWTH * base_warm:
        failures.append(
            f"warm pivot count regressed more than {MAX_PIVOT_GROWTH:.1f}x "
            f"over the committed baseline ({fresh_warm} > "
            f"{MAX_PIVOT_GROWTH:.1f} * {base_warm})")
    if reduction < MIN_PIVOT_REDUCTION:
        failures.append(
            f"warm-vs-cold pivot reduction {reduction:.2f}x fell below the "
            f"required {MIN_PIVOT_REDUCTION:.1f}x")

    pre_speedup = fresh["summary"]["presolve_speedup"]
    pre_removed = (fresh["summary"]["presolve_rows_removed"]
                   + fresh["summary"]["presolve_cols_removed"])
    print(f"presolve speedup (same-run wall ratio): {pre_speedup:.2f}x "
          f"(floor {MIN_PRESOLVE_SPEEDUP:.1f}x), "
          f"{fresh['summary']['presolve_rows_removed']} rows / "
          f"{fresh['summary']['presolve_cols_removed']} cols removed")
    if pre_speedup < MIN_PRESOLVE_SPEEDUP:
        failures.append(
            f"presolve speedup {pre_speedup:.2f}x fell below the required "
            f"{MIN_PRESOLVE_SPEEDUP:.1f}x")
    if pre_removed == 0:
        failures.append(
            "presolve removed no rows and no columns on the bench corpus")

    kernel_speedup = fresh["summary"].get("sparse_kernel_speedup")
    if kernel_speedup is None:
        failures.append("summary is missing sparse_kernel_speedup "
                        "(bench predates the kernel axis?)")
    else:
        print(f"sparse kernel speedup (same-run wall ratio): "
              f"{kernel_speedup:.2f}x (floor {MIN_SPARSE_KERNEL_SPEEDUP:.1f}x)")
        if kernel_speedup < MIN_SPARSE_KERNEL_SPEEDUP:
            failures.append(
                f"sparse kernel speedup {kernel_speedup:.2f}x fell below "
                f"the required {MIN_SPARSE_KERNEL_SPEEDUP:.1f}x")

    bounds = {s["name"]: s["mean_bound"] for s in fresh["strategies"]}
    prove_sparse = bounds.get("alpha, prove, warm")
    prove_dense = bounds.get("alpha, prove, warm [dense]")
    if prove_sparse is None or prove_dense is None:
        failures.append("prove-pair strategies missing from the fresh run; "
                        "cannot check kernel bound identity")
    else:
        scale = max(1.0, abs(prove_sparse), abs(prove_dense))
        print(f"kernel bound identity (prove pair): sparse {prove_sparse} "
              f"vs dense {prove_dense}")
        if abs(prove_sparse - prove_dense) > KERNEL_BOUND_RTOL * scale:
            failures.append(
                f"kernels proved different optima: sparse {prove_sparse} "
                f"vs dense {prove_dense}")
    return failures


def check_analysis(fresh, baseline):
    speedup = fresh["summary"]["speedup_single_thread"]
    base_speedup = baseline["summary"]["speedup_single_thread"]
    threads_n = fresh["summary"]["threads_n"]
    speedup_nt = fresh["summary"]["speedup_threads_n"]

    print(f"engine speedup (threads=1): {speedup:.2f}x "
          f"(floor {MIN_ENGINE_SPEEDUP:.2f}x, baseline {base_speedup:.2f}x)")
    print(f"engine speedup (threads={threads_n}): {speedup_nt:.2f}x "
          f"(reported, not gated)")

    failures = []
    if speedup < MIN_ENGINE_SPEEDUP:
        failures.append(
            f"engine single-thread speedup {speedup:.2f}x fell below the "
            f"required {MIN_ENGINE_SPEEDUP:.2f}x")

    queue_speedup = fresh["summary"].get("sweep_queue_speedup")
    if queue_speedup is None:
        failures.append("summary is missing sweep_queue_speedup "
                        "(bench predates the sweep-wall axis?)")
    else:
        print(f"sweep barrier-vs-queue speedup (same-run wall ratio): "
              f"{queue_speedup:.2f}x (floor {MIN_SWEEP_QUEUE_SPEEDUP:.2f}x)")
        if queue_speedup < MIN_SWEEP_QUEUE_SPEEDUP:
            failures.append(
                f"sweep queue speedup {queue_speedup:.2f}x fell below the "
                f"required {MIN_SWEEP_QUEUE_SPEEDUP:.2f}x")
    return failures


def main(argv):
    if len(argv) not in (2, 3):
        sys.exit(__doc__)
    fresh = load(argv[1])
    schema = fresh["schema"]
    baseline_path = (
        argv[2]
        if len(argv) == 3
        else pathlib.Path(__file__).resolve().parent.parent
        / BASELINES[schema]
    )
    baseline = load(baseline_path, schema)

    if schema == "mcs-bench-solver-v1":
        failures = check_solver(fresh, baseline)
    else:
        failures = check_analysis(fresh, baseline)

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("perf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
