// Micro-benchmarks of the LP/MILP substrate (the CPLEX replacement).
// Gives context for the paper's reported analysis running times (§VII).
#include <benchmark/benchmark.h>

#include "analysis/milp_formulation.hpp"
#include "gen/generator.hpp"
#include "lp/milp.hpp"
#include "lp/simplex.hpp"
#include "support/rng.hpp"

namespace {

using mcs::lp::LinExpr;
using mcs::lp::Model;
using mcs::lp::Relation;
using mcs::lp::Sense;
using mcs::lp::VarId;

/// Random dense LP with `vars` columns and `rows` <= constraints.
Model random_lp(std::size_t vars, std::size_t rows, std::uint64_t seed) {
  mcs::support::Rng rng(seed);
  Model m;
  std::vector<VarId> xs;
  for (std::size_t i = 0; i < vars; ++i) {
    xs.push_back(m.add_continuous(0.0, rng.uniform(1.0, 10.0)));
  }
  for (std::size_t r = 0; r < rows; ++r) {
    LinExpr lhs;
    for (const VarId v : xs) {
      lhs += rng.uniform(0.0, 2.0) * LinExpr(v);
    }
    m.add_constraint(lhs, Relation::kLe, rng.uniform(5.0, 25.0));
  }
  LinExpr obj;
  for (const VarId v : xs) {
    obj += rng.uniform(0.5, 3.0) * LinExpr(v);
  }
  m.set_objective(Sense::kMaximize, obj);
  return m;
}

/// Random binary knapsack with `vars` items.
Model random_knapsack(std::size_t vars, std::uint64_t seed) {
  mcs::support::Rng rng(seed);
  Model m;
  LinExpr weight, value;
  for (std::size_t i = 0; i < vars; ++i) {
    const VarId v = m.add_binary();
    weight += rng.uniform(1.0, 6.0) * LinExpr(v);
    value += rng.uniform(1.0, 9.0) * LinExpr(v);
  }
  m.add_constraint(weight, Relation::kLe,
                   1.5 * static_cast<double>(vars));
  m.set_objective(Sense::kMaximize, value);
  return m;
}

void BM_SimplexDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Model m = random_lp(n, n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcs::lp::solve_lp(m));
  }
}
BENCHMARK(BM_SimplexDense)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

void BM_MilpKnapsack(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Model m = random_knapsack(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcs::lp::solve_milp(m));
  }
}
BENCHMARK(BM_MilpKnapsack)->Arg(10)->Arg(20)->Arg(30);

/// The MILP actually solved by the schedulability analysis: a delay
/// formulation over a generated task set, solved with the same strategy
/// the analysis uses (alpha-first branching, 2% relative gap with safe
/// dual bounds, bounded nodes).
void BM_DelayMilp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mcs::support::Rng rng(11);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = n;
  cfg.utilization = 0.6;
  cfg.gamma = 0.3;
  const mcs::rt::TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
  const mcs::rt::TaskIndex lowest = tasks.by_priority().back();
  const mcs::rt::Time window = tasks[lowest].deadline;
  auto milp = mcs::analysis::build_delay_milp(
      tasks, lowest, window, mcs::analysis::FormulationCase::kNls);
  mcs::lp::MilpOptions options;
  options.relative_gap = 0.02;
  options.max_nodes = 4000;
  options.branch_priority.assign(milp.model.num_variables(), 0);
  for (const auto alpha : milp.alpha_vars) {
    options.branch_priority[alpha.index] = 1;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcs::lp::solve_milp(milp.model, options));
  }
}
BENCHMARK(BM_DelayMilp)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_DelayMilpLpRelaxation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mcs::support::Rng rng(11);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = n;
  cfg.utilization = 0.6;
  cfg.gamma = 0.3;
  const mcs::rt::TaskSet tasks = mcs::gen::generate_task_set(cfg, rng);
  const mcs::rt::TaskIndex lowest = tasks.by_priority().back();
  const mcs::rt::Time window = tasks[lowest].deadline;
  for (auto _ : state) {
    auto milp = mcs::analysis::build_delay_milp(
        tasks, lowest, window, mcs::analysis::FormulationCase::kNls);
    benchmark::DoNotOptimize(mcs::lp::solve_lp(milp.model));
  }
}
BENCHMARK(BM_DelayMilpLpRelaxation)->Arg(4)->Arg(6);

}  // namespace

BENCHMARK_MAIN();
