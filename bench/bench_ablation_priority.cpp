// Priority-assignment ablation: deadline-monotonic (the default, DESIGN.md
// §5.2) versus Audsley's optimal priority assignment (analysis/opa.hpp)
// under the NPS and WP2016 analyses, across utilization.  OPA dominates DM
// by construction; the gap measures how much the default leaves on the
// table under non-preemptive blocking.
#include <filesystem>
#include <iomanip>
#include <iostream>

#include "analysis/opa.hpp"
#include "analysis/schedulability.hpp"
#include "gen/generator.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"

#include "fig2_common.hpp"

using namespace mcs;

int main() {
  std::size_t tasksets = 25;
  if (const char* env = std::getenv("MCS_TASKSETS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) tasksets = static_cast<std::size_t>(parsed);
  }

  analysis::AnalysisOptions options;
  options.milp.relative_gap = 0.02;
  options.milp.max_nodes = 4000;

  std::cout << "Priority assignment ablation (n=4, gamma=0.2, " << tasksets
            << " sets/point):\n\n"
            << std::left << std::setw(6) << "U" << std::setw(10) << "nps-dm"
            << std::setw(10) << "nps-opa" << std::setw(10) << "wp-dm"
            << std::setw(10) << "wp-opa" << "\n";

  support::CsvWriter csv(std::filesystem::current_path() /
                         "ablation_priority.csv");
  csv.write_row({"U", "nps_dm", "nps_opa", "wp_dm", "wp_opa"});

  for (double u = 0.2; u <= 0.61; u += 0.1) {
    std::size_t nps_dm = 0, nps_opa = 0, wp_dm = 0, wp_opa = 0;
    for (std::size_t s = 0; s < tasksets; ++s) {
      support::Rng rng(271 * s + 3);
      gen::GeneratorConfig cfg;
      cfg.num_tasks = 4;
      cfg.utilization = u;
      cfg.gamma = 0.2;
      cfg.beta = 0.3;
      const rt::TaskSet tasks = gen::generate_task_set(cfg, rng);

      const bool n_dm =
          analysis::analyze(tasks, analysis::Approach::kNonPreemptive,
                            options)
              .schedulable;
      nps_dm += n_dm ? std::size_t{1} : std::size_t{0};
      nps_opa += (n_dm || audsley_assign(tasks,
                                         analysis::Approach::kNonPreemptive,
                                         options)
                              .schedulable)
                     ? std::size_t{1}
                     : std::size_t{0};
      const bool w_dm =
          analysis::analyze(tasks, analysis::Approach::kWasilyPellizzoni,
                            options)
              .schedulable;
      wp_dm += w_dm ? std::size_t{1} : std::size_t{0};
      wp_opa += (w_dm || audsley_assign(tasks,
                                        analysis::Approach::kWasilyPellizzoni,
                                        options)
                             .schedulable)
                    ? std::size_t{1}
                    : std::size_t{0};
    }
    const auto ratio = [&](std::size_t okay) {
      return static_cast<double>(okay) / static_cast<double>(tasksets);
    };
    std::cout << std::left << std::fixed << std::setprecision(1)
              << std::setw(6) << u << std::setprecision(3) << std::setw(10)
              << ratio(nps_dm) << std::setw(10) << ratio(nps_opa)
              << std::setw(10) << ratio(wp_dm) << std::setw(10)
              << ratio(wp_opa) << "\n";
    csv.cell(u).cell(ratio(nps_dm)).cell(ratio(nps_opa)).cell(ratio(wp_dm))
        .cell(ratio(wp_opa));
    csv.end_row();
  }
  std::cout << "\nwrote ablation_priority.csv\n";
  mcs::bench::write_bench_telemetry("ablation_priority");
  return 0;
}
