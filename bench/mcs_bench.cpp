// The mcs_bench multi-tool binary: every figure sweep, ablation, and bench
// tool behind one entry point (see mcs_bench_main.cpp for the CLI).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return mcs::bench::mcs_bench_main(argc, argv);
}
