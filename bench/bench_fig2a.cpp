// Regenerates Figure 2(a) of the paper (see DESIGN.md §4).
#include "fig2_common.hpp"

int main() { return mcs::bench::run_figure2_inset('a'); }
