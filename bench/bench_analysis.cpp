// Thin wrapper: historical binary name for `mcs_bench analysis`.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return mcs::bench::run_as_tool("analysis", argc, argv);
}
