// Benchmarks of the end-to-end schedulability analysis — the reproduction
// of §VII's reported running times ("a few hundred seconds on average with
// CPLEX" for the authors' larger configurations; our smaller defaults and
// specialized formulation run orders of magnitude faster, see
// EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "analysis/nps.hpp"
#include "analysis/schedulability.hpp"
#include "gen/generator.hpp"
#include "sim/engine.hpp"
#include "sim/job_source.hpp"
#include "support/rng.hpp"

namespace {

using mcs::analysis::analyze;
using mcs::analysis::Approach;

mcs::rt::TaskSet make_set(std::size_t n, double u, double gamma,
                          std::uint64_t seed) {
  mcs::support::Rng rng(seed);
  mcs::gen::GeneratorConfig cfg;
  cfg.num_tasks = n;
  cfg.utilization = u;
  cfg.gamma = gamma;
  return mcs::gen::generate_task_set(cfg, rng);
}

void BM_AnalyzeProposed(benchmark::State& state) {
  const auto tasks =
      make_set(static_cast<std::size_t>(state.range(0)), 0.6, 0.3, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(tasks, Approach::kProposed));
  }
}
BENCHMARK(BM_AnalyzeProposed)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_AnalyzeWp(benchmark::State& state) {
  const auto tasks =
      make_set(static_cast<std::size_t>(state.range(0)), 0.6, 0.3, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(tasks, Approach::kWasilyPellizzoni));
  }
}
BENCHMARK(BM_AnalyzeWp)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_AnalyzeNps(benchmark::State& state) {
  const auto tasks =
      make_set(static_cast<std::size_t>(state.range(0)), 0.6, 0.3, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(tasks, Approach::kNonPreemptive));
  }
}
BENCHMARK(BM_AnalyzeNps)->Arg(3)->Arg(6)->Unit(benchmark::kMicrosecond);

void BM_AnalyzeProposedLpRelaxation(benchmark::State& state) {
  const auto tasks =
      make_set(static_cast<std::size_t>(state.range(0)), 0.6, 0.3, 5);
  mcs::analysis::AnalysisOptions options;
  options.lp_relaxation_only = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(tasks, Approach::kProposed, options));
  }
}
BENCHMARK(BM_AnalyzeProposedLpRelaxation)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_SimulateProposed(benchmark::State& state) {
  const auto tasks =
      make_set(static_cast<std::size_t>(state.range(0)), 0.5, 0.3, 9);
  const auto releases = mcs::sim::synchronous_periodic_releases(
      tasks, 1000 * mcs::rt::kTicksPerUnit);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mcs::sim::simulate(tasks, mcs::sim::Protocol::kProposed, releases));
  }
}
BENCHMARK(BM_SimulateProposed)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
