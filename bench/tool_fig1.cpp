// Reproduces the Figure 1 example of the paper (§III-A): a latency-
// sensitive task blocked by *two* lower-priority tasks under the protocol
// of [3] misses its deadline, while classical non-preemptive scheduling
// (one blocking task) and the proposed protocol (copy-in cancellation +
// urgent promotion, rules R3-R5) both meet it.
//
// Prints the three schedules as ASCII Gantt charts plus the corresponding
// analysis bounds, mirroring Figure 1(a)/(b) and the §IV discussion.
#include <iostream>

#include "analysis/nps.hpp"
#include "analysis/schedulability.hpp"
#include "rt/task.hpp"
#include "sim/checker.hpp"
#include "sim/engine.hpp"
#include "sim/gantt.hpp"

#include "bench_common.hpp"

namespace {

using mcs::rt::Task;
using mcs::rt::TaskSet;
using mcs::sim::JobId;
using mcs::sim::Protocol;
using mcs::sim::Release;

Task make_task(std::string name, mcs::rt::Time exec, mcs::rt::Time mem,
               mcs::rt::Time period, mcs::rt::Time deadline,
               mcs::rt::Priority priority, bool ls) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = mem;
  t.copy_out = mem;
  t.period = period;
  t.deadline = deadline;
  t.priority = priority;
  t.latency_sensitive = ls;
  return t;
}

void show(const TaskSet& tasks, Protocol protocol,
          const std::vector<Release>& releases) {
  const auto trace = mcs::sim::simulate(tasks, protocol, releases);
  const auto check = mcs::sim::check_trace(tasks, protocol, trace);
  std::cout << mcs::sim::render_gantt(tasks, protocol, trace);
  std::cout << "  trace invariants: " << (check.ok() ? "OK" : "VIOLATED")
            << "\n\n";
}

}  // namespace

namespace mcs::bench {

int tool_fig1_main() {
  // tau_i ("hi") is released at t = 2, just after the copy-in of the
  // second lower-priority task completed — the worst case of [3].
  const bool kLsVariant[] = {false, true};

  std::cout << "=== Figure 1 reproduction ==================================\n"
            << "hi: C=3 l=u=1 D=10 (released at t=2); lp1, lp2: C=4 l=u=1\n"
            << "(both pending at t=0)\n\n";

  for (const bool hi_ls : kLsVariant) {
    const TaskSet tasks({make_task("hi", 3, 1, 100, 10, 0, hi_ls),
                         make_task("lp1", 4, 1, 100, 100, 1, false),
                         make_task("lp2", 4, 1, 100, 100, 2, false)});
    const std::vector<Release> releases{
        {JobId{1, 0}, 0}, {JobId{2, 0}, 0}, {JobId{0, 0}, 2}};

    if (!hi_ls) {
      std::cout << "--- Figure 1(a): protocol of [3] (hi blocked twice) ---\n";
      show(tasks, Protocol::kWasilyPellizzoni, releases);
      std::cout << "--- Figure 1(b): non-preemptive scheduling ------------\n";
      show(tasks, Protocol::kNonPreemptive, releases);
    } else {
      std::cout << "--- Proposed protocol, hi marked latency-sensitive ----\n";
      show(tasks, Protocol::kProposed, releases);
    }
  }

  // Analysis-side view of the same task set.
  const TaskSet tasks({make_task("hi", 3, 1, 100, 10, 0, false),
                       make_task("lp1", 4, 1, 100, 100, 1, false),
                       make_task("lp2", 4, 1, 100, 100, 2, false)});
  const auto wp =
      mcs::analysis::analyze(tasks, mcs::analysis::Approach::kWasilyPellizzoni);
  const auto nps =
      mcs::analysis::analyze(tasks, mcs::analysis::Approach::kNonPreemptive);
  const auto prop =
      mcs::analysis::analyze(tasks, mcs::analysis::Approach::kProposed);

  std::cout << "=== Worst-case analysis bounds for task hi (D = 10) ========\n"
            << "  wp2016:   R = " << wp.wcrt[0]
            << (wp.schedulable ? "  (schedulable)" : "  (MISS)") << "\n"
            << "  nps:      R = " << nps.wcrt[0]
            << (nps.wcrt[0] <= 10 ? "  (schedulable)" : "  (MISS)") << "\n"
            << "  proposed: R = " << prop.wcrt[0]
            << (prop.schedulable ? "  (schedulable, hi marked LS)"
                                 : "  (MISS)")
            << "\n"
            << "Shape check: wp2016 > nps > proposed — the [3] protocol is\n"
            << "beaten even by plain NPS here, and the proposed protocol\n"
            << "recovers schedulability (paper §I / Figure 1).\n";
  write_bench_telemetry("fig1_example");
  return 0;
}

}  // namespace mcs::bench
