// Thin wrapper: historical binary name for `mcs_bench fig2d`.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return mcs::bench::run_as_tool("fig2d", argc, argv);
}
