// Driver of the mcs_bench multi-tool binary.
//
//   mcs_bench list
//   mcs_bench <sweep> [--shard=K/N] [--resume] [--log=PATH]
//                     [--out-dir=DIR] [--threads=T] [--max-attempts=M]
//                     [--barrier]
//   mcs_bench merge <sweep> <shard.jsonl>... [--out-dir=DIR]
//   mcs_bench fig1 | tightness | analysis | ablation_solver
//
// Registry sweeps (exp/registry.hpp) run on the deterministic work-queue
// engine: every unit is appended to a crash-safe JSONL log, --resume skips
// completed units, and --shard=K/N (K is 1-based) runs every N-th unit so
// independent processes/machines can split a sweep and `merge` folds their
// logs into the final CSV + telemetry snapshot.  The CSV bytes are
// identical however the work was split — see EXPERIMENTS.md.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "exp/registry.hpp"
#include "exp/sweep_runner.hpp"
#include "support/telemetry.hpp"

#include "bench_common.hpp"

namespace mcs::bench {

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: mcs_bench <command> [options]\n"
         "\n"
         "commands:\n"
         "  list                         registered sweeps and tools\n"
         "  <sweep> [options]            run a registry sweep\n"
         "  merge <sweep> <log>...       merge shard logs into the CSV\n"
         "  fig1|tightness|analysis|ablation_solver   custom bench tools\n"
         "\n"
         "sweep options:\n"
         "  --shard=K/N      run units K-1 mod N (K is 1-based); no CSV\n"
         "  --resume         skip units already in the JSONL log\n"
         "  --log=PATH       result log (default <out-dir>/<sweep>[.shardKofN].jsonl)\n"
         "  --out-dir=DIR    output directory (default .)\n"
         "  --threads=T      worker threads (default MCS_THREADS or hardware)\n"
         "  --max-attempts=M retry budget per unit (default 2)\n"
         "  --barrier        legacy per-point barrier execution (same output)\n"
         "\n"
         "environment: MCS_TASKSETS, MCS_SEED, MCS_THREADS, MCS_TELEMETRY\n";
  return code;
}

std::optional<std::uint64_t> parse_u64(const std::string& text) {
  if (text.empty() || text[0] < '0' || text[0] > '9') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(parsed);
}

struct SweepCli {
  std::filesystem::path out_dir = ".";
  std::filesystem::path log_path;  // empty = default
  std::size_t shard_index = 0;     // 0-based
  std::size_t shard_count = 1;
  std::size_t threads = 0;
  std::uint32_t max_attempts = 2;
  bool resume = false;
  bool barrier = false;
};

/// Parses the sweep options; returns false (after printing to stderr) on a
/// malformed or unknown argument.
bool parse_sweep_args(int argc, char** argv, int first, SweepCli& cli) {
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--resume") {
      cli.resume = true;
    } else if (arg == "--barrier") {
      cli.barrier = true;
    } else if (arg.rfind("--shard=", 0) == 0) {
      const std::string value = value_of("--shard=");
      const std::size_t slash = value.find('/');
      const auto k = slash == std::string::npos
                         ? std::nullopt
                         : parse_u64(value.substr(0, slash));
      const auto n = slash == std::string::npos
                         ? std::nullopt
                         : parse_u64(value.substr(slash + 1));
      if (!k || !n || *k < 1 || *n < 1 || *k > *n) {
        std::cerr << "mcs_bench: bad --shard=" << value
                  << " (expected K/N with 1 <= K <= N)\n";
        return false;
      }
      cli.shard_index = static_cast<std::size_t>(*k - 1);
      cli.shard_count = static_cast<std::size_t>(*n);
    } else if (arg.rfind("--log=", 0) == 0) {
      cli.log_path = value_of("--log=");
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      cli.out_dir = value_of("--out-dir=");
    } else if (arg.rfind("--threads=", 0) == 0) {
      const auto t = parse_u64(value_of("--threads="));
      if (!t) {
        std::cerr << "mcs_bench: bad --threads value\n";
        return false;
      }
      cli.threads = static_cast<std::size_t>(*t);
    } else if (arg.rfind("--max-attempts=", 0) == 0) {
      const auto m = parse_u64(value_of("--max-attempts="));
      if (!m || *m < 1) {
        std::cerr << "mcs_bench: --max-attempts must be >= 1\n";
        return false;
      }
      cli.max_attempts = static_cast<std::uint32_t>(*m);
    } else {
      std::cerr << "mcs_bench: unknown option '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

std::filesystem::path default_log_path(const exp::SweepSpec& spec,
                                       const SweepCli& cli) {
  std::string stem = spec.name;
  if (cli.shard_count > 1) {
    stem += ".shard" + std::to_string(cli.shard_index + 1) + "of" +
            std::to_string(cli.shard_count);
  }
  return cli.out_dir / (stem + ".jsonl");
}

void print_sweep_table(const exp::SweepSpec& spec,
                       const std::vector<exp::SweepRow>& rows) {
  std::cout << "# " << spec.name << " — " << spec.title << "\n"
            << "# " << spec.slots_per_point << " sets/point; seed="
            << spec.seed << "\n"
            << std::left << std::setw(8) << spec.axis;
  for (const exp::MetricSpec& metric : spec.metrics) {
    std::cout << std::setw(metric.column.size() >= 12
                               ? metric.column.size() + 2
                               : 12)
              << metric.column;
  }
  std::cout << "tasksets\n";
  for (const exp::SweepRow& row : rows) {
    std::cout << std::left << std::fixed << std::setprecision(3)
              << std::setw(8) << row.x;
    for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
      const std::size_t width = spec.metrics[m].column.size() >= 12
                                    ? spec.metrics[m].column.size() + 2
                                    : 12;
      if (spec.metrics[m].kind == exp::MetricSpec::kRatio) {
        const double ratio =
            row.ok_units == 0 ? 0.0
                              : static_cast<double>(row.metric_sums[m]) /
                                    static_cast<double>(row.ok_units);
        std::cout << std::setw(width) << ratio;
      } else {
        std::cout << std::setw(width) << row.metric_sums[m];
      }
    }
    std::cout << row.ok_units;
    if (row.errors != 0) {
      std::cout << "  (" << row.errors << " errors)";
    }
    std::cout << "\n";
  }
}

/// Progress printer: one line every ~5% of the shard (always the last),
/// with elapsed wall time and a linear ETA.
class ProgressPrinter {
 public:
  void operator()(std::size_t done, std::size_t total) {
    const std::size_t step = std::max<std::size_t>(1, total / 20);
    if (done % step != 0 && done != total) return;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const double eta = done == 0 ? 0.0
                                 : elapsed / static_cast<double>(done) *
                                       static_cast<double>(total - done);
    std::cerr << "  " << done << "/" << total << " units, " << std::fixed
              << std::setprecision(1) << elapsed << "s elapsed, ETA "
              << eta << "s\n";
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

int run_registry_sweep(const exp::SweepEntry& entry, int argc, char** argv,
                       int first_option) {
  SweepCli cli;
  if (!parse_sweep_args(argc, argv, first_option, cli)) {
    return 2;
  }
  if (cli.threads == 0) {
    if (const char* v = std::getenv("MCS_THREADS")) {
      const auto t = parse_u64(v);
      if (!t) {
        std::cerr << "mcs_bench: bad MCS_THREADS value '" << v << "'\n";
        return 2;
      }
      cli.threads = static_cast<std::size_t>(*t);
    }
  }

  const exp::SweepSpec spec = entry.make();
  std::filesystem::create_directories(cli.out_dir);

  exp::RunnerOptions options;
  options.threads = cli.threads;
  options.shard_index = cli.shard_index;
  options.shard_count = cli.shard_count;
  options.log_path =
      cli.log_path.empty() ? default_log_path(spec, cli) : cli.log_path;
  options.resume = cli.resume;
  options.max_attempts = cli.max_attempts;
  options.barrier_per_point = cli.barrier;
  options.progress = ProgressPrinter{};

  std::cout << "Running sweep '" << spec.name << "'";
  if (cli.shard_count > 1) {
    std::cout << " (shard " << cli.shard_index + 1 << "/" << cli.shard_count
              << ")";
  }
  std::cout << ": " << spec.title
            << "\n(scale with MCS_TASKSETS / MCS_SEED / MCS_THREADS)\n\n";

  const exp::SweepRunResult run = exp::run_sweep(spec, options);
  if (run.resume_skips != 0) {
    std::cout << "resumed: " << run.resume_skips
              << " units already in " << options.log_path.string() << "\n";
  }
  if (run.errors != 0) {
    std::cerr << "WARNING: " << run.errors
              << " units exhausted their retry budget (see error records in "
              << options.log_path.string() << ")\n";
  }

  if (cli.shard_count > 1) {
    std::cout << "shard " << cli.shard_index + 1 << "/" << cli.shard_count
              << " complete: " << run.outcomes.size() << " units in "
              << std::fixed << std::setprecision(1) << run.total_seconds
              << "s -> " << options.log_path.string()
              << "\nmerge all shards with: mcs_bench merge " << spec.name
              << " <shard logs...>\n";
    return 0;
  }

  const std::vector<exp::SweepRow> rows =
      exp::aggregate_outcomes(spec, run.outcomes);
  print_sweep_table(spec, rows);
  std::cout << "# total: " << std::fixed << std::setprecision(1)
            << run.total_seconds << " s\n";
  exp::write_sweep_csv(spec, rows, cli.out_dir / (spec.name + ".csv"));
  std::cout << "wrote " << (cli.out_dir / (spec.name + ".csv")).string()
            << "\n";
  write_bench_telemetry(spec.name);
  return 0;
}

int run_merge(int argc, char** argv) {
  if (argc < 4) {
    std::cerr << "usage: mcs_bench merge <sweep> <shard.jsonl>... "
                 "[--out-dir=DIR]\n";
    return 2;
  }
  const exp::SweepEntry* entry = exp::find_sweep(argv[2]);
  if (entry == nullptr) {
    std::cerr << "mcs_bench: unknown sweep '" << argv[2] << "'\n";
    return 2;
  }
  std::filesystem::path out_dir = ".";
  std::vector<std::filesystem::path> logs;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(std::strlen("--out-dir="));
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "mcs_bench: unknown merge option '" << arg << "'\n";
      return 2;
    } else {
      logs.emplace_back(arg);
    }
  }

  const exp::SweepSpec spec = entry->make();
  const std::vector<exp::UnitOutcome> outcomes =
      exp::merge_sweep_logs(spec, logs);
  const std::vector<exp::SweepRow> rows =
      exp::aggregate_outcomes(spec, outcomes);
  print_sweep_table(spec, rows);
  std::filesystem::create_directories(out_dir);
  exp::write_sweep_csv(spec, rows, out_dir / (spec.name + ".csv"));
  std::cout << "merged " << logs.size() << " logs ("
            << outcomes.size() << " units) -> "
            << (out_dir / (spec.name + ".csv")).string() << "\n";

  // The merged telemetry snapshot: reconstruct the exp.sweep.* series from
  // the unit records (each shard only saw its own slice).
  if (support::telemetry::enabled()) {
    std::size_t errors = 0;
    std::uint64_t retries = 0;
    for (const exp::UnitOutcome& unit : outcomes) {
      if (!unit.ok) ++errors;
      retries += unit.attempts - 1;
      support::telemetry::record("exp.sweep.unit_seconds", unit.seconds);
    }
    support::telemetry::count("exp.sweep.units_done", outcomes.size());
    if (errors != 0) support::telemetry::count("exp.sweep.errors", errors);
    if (retries != 0) support::telemetry::count("exp.sweep.retries", retries);
    const auto path = out_dir / (spec.name + ".telemetry.json");
    support::telemetry::write_json_file(path);
    std::cout << "wrote " << path.string() << "\n";
  }
  return 0;
}

int run_list() {
  std::cout << "registered sweeps:\n";
  for (const exp::SweepEntry& entry : exp::sweep_registry()) {
    std::cout << "  " << std::left << std::setw(20) << entry.name
              << entry.description << "\n";
  }
  std::cout << "custom tools:\n"
            << "  " << std::left << std::setw(20) << "fig1"
            << "Figure 1 example schedules + bounds\n"
            << "  " << std::setw(20) << "tightness"
            << "bound / worst-observed response ratios\n"
            << "  " << std::setw(20) << "analysis"
            << "analysis-pipeline + sweep-wall bench (BENCH_analysis.json)\n"
            << "  " << std::setw(20) << "ablation_solver"
            << "MILP strategy ablation (BENCH_solver.json)\n";
  return 0;
}

}  // namespace

int mcs_bench_main(int argc, char** argv) {
  if (argc < 2) {
    return usage(std::cerr, 2);
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    return usage(std::cout, 0);
  }
  if (command == "list") {
    return run_list();
  }
  if (command == "merge") {
    return run_merge(argc, argv);
  }
  if (command == "fig1") {
    return tool_fig1_main();
  }
  if (command == "tightness") {
    return tool_tightness_main();
  }
  if (command == "analysis") {
    return tool_analysis_main();
  }
  if (command == "ablation_solver") {
    return tool_ablation_solver_main();
  }
  if (const exp::SweepEntry* entry = exp::find_sweep(command)) {
    return run_registry_sweep(*entry, argc, argv, 2);
  }
  std::cerr << "mcs_bench: unknown command or sweep '" << command
            << "' (try: mcs_bench list)\n";
  return 2;
}

int run_as_tool(const char* tool, int argc, char** argv) {
  std::vector<char*> forwarded;
  forwarded.reserve(static_cast<std::size_t>(argc) + 2);
  forwarded.push_back(argv[0]);
  forwarded.push_back(const_cast<char*>(tool));
  for (int i = 1; i < argc; ++i) {
    forwarded.push_back(argv[i]);
  }
  return mcs_bench_main(static_cast<int>(forwarded.size()),
                        forwarded.data());
}

}  // namespace mcs::bench
