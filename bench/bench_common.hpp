// Shared entry points of the mcs_bench multi-tool binary.
//
// Every figure/ablation sweep and every custom bench tool is reachable as
// `mcs_bench <name> [options]`; the historical per-bench binaries
// (bench_fig2a, bench_tightness, ...) are thin wrappers that forward into
// the same driver via run_as_tool(), so they gained the sweep-runner
// options (--shard=K/N, --resume, --log=...) for free.
#pragma once

#include <filesystem>
#include <iostream>
#include <string>

#include "support/telemetry.hpp"

namespace mcs::bench {

/// Writes <name>.telemetry.json into the current directory when telemetry
/// is enabled.  Shared by every bench tool that produces a CSV.
inline void write_bench_telemetry(const std::string& name) {
  if (!support::telemetry::enabled()) return;
  const auto path =
      std::filesystem::current_path() / (name + ".telemetry.json");
  support::telemetry::write_json_file(path);
  std::cout << "wrote " << name << ".telemetry.json\n";
}

/// Custom (non-sweep-registry) bench tools.
int tool_fig1_main();
int tool_tightness_main();
int tool_analysis_main();
int tool_ablation_solver_main();

/// The mcs_bench driver: `mcs_bench <sweep|tool|list|merge> [options]`.
int mcs_bench_main(int argc, char** argv);

/// Wrapper-binary entry: behaves like `mcs_bench <tool> <argv[1..]>`.
int run_as_tool(const char* tool, int argc, char** argv);

}  // namespace mcs::bench
