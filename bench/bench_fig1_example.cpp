// Thin wrapper: historical binary name for `mcs_bench fig1`.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return mcs::bench::run_as_tool("fig1", argc, argv);
}
