// Thin wrapper: historical binary name for `mcs_bench tightness`.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return mcs::bench::run_as_tool("tightness", argc, argv);
}
