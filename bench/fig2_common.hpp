// Shared driver for the Figure 2 reproduction benches: runs one inset's
// sweep, prints the table the figure plots, and writes <name>.csv next to
// the binary.  Scale with MCS_TASKSETS / MCS_SEED / MCS_THREADS; unless
// telemetry is disabled (MCS_TELEMETRY=0) a solver/analysis statistics
// snapshot is written to <name>.telemetry.json alongside the CSV.
#pragma once

#include <filesystem>
#include <iostream>

#include "exp/figures.hpp"
#include "support/telemetry.hpp"

namespace mcs::bench {

/// Writes <name>.telemetry.json into the current directory when telemetry
/// is enabled.  Shared by every bench binary that produces a CSV.
inline void write_bench_telemetry(const std::string& name) {
  if (!support::telemetry::enabled()) return;
  const auto path =
      std::filesystem::current_path() / (name + ".telemetry.json");
  support::telemetry::write_json_file(path);
  std::cout << "wrote " << name << ".telemetry.json\n";
}

inline int run_figure2_inset(char inset) {
  const exp::ExperimentConfig cfg = exp::figure2_config(inset);
  std::cout << "Reproducing Figure 2(" << inset << "): " << cfg.title
            << "\n(scale with MCS_TASKSETS / MCS_SEED / MCS_THREADS)\n\n";
  const exp::ExperimentResult result = exp::run_experiment(cfg);
  exp::print_result(result, std::cout);
  exp::write_csv(result, std::filesystem::current_path());
  std::cout << "wrote " << cfg.name << ".csv\n";
  write_bench_telemetry(cfg.name);
  return 0;
}

}  // namespace mcs::bench
