// Shared driver for the Figure 2 reproduction benches: runs one inset's
// sweep, prints the table the figure plots, and writes <name>.csv next to
// the binary.  Scale with MCS_TASKSETS / MCS_SEED / MCS_THREADS.
#pragma once

#include <filesystem>
#include <iostream>

#include "exp/figures.hpp"

namespace mcs::bench {

inline int run_figure2_inset(char inset) {
  const exp::ExperimentConfig cfg = exp::figure2_config(inset);
  std::cout << "Reproducing Figure 2(" << inset << "): " << cfg.title
            << "\n(scale with MCS_TASKSETS / MCS_SEED / MCS_THREADS)\n\n";
  const exp::ExperimentResult result = exp::run_experiment(cfg);
  exp::print_result(result, std::cout);
  exp::write_csv(result, std::filesystem::current_path());
  std::cout << "wrote " << cfg.name << ".csv\n";
  return 0;
}

}  // namespace mcs::bench
