// End-to-end analysis bench: one Fig. 2-style sweep point (a batch of
// generated task sets, each analyzed the three ways the experiment harness
// does — NPS, WP, and greedy-proposed when WP fails) timed under three
// configurations:
//
//   * "legacy"            — the free functions, i.e. a throwaway
//                           AnalysisEngine per call: no state survives
//                           between the WP pass and the greedy rounds;
//   * "engine, threads=1" — one AnalysisEngine per task set, WP verdict
//                           injected as greedy round 0, formulations and
//                           B&B sessions carried across rounds;
//   * "engine, threads=N" — same, with per-task bounds fanned out on the
//                           engine's thread pool.
//
// All modes solve to proven optimality (relative_gap = 0) so the verdicts
// are mode-independent by construction — the bench hard-fails on any
// disagreement, making it a cheap end-to-end determinism check on top of
// the timing.
//
// A second axis measures the sweep *runner*: the same heterogeneous unit
// mix executed with the legacy per-point barrier versus the global work
// queue (exp::run_sweep with barrier_per_point on/off).  Unit durations are
// a deterministic replay (sleeps), so the axis isolates scheduling shape
// from solver noise and is meaningful even on a single-core CI box; the
// two modes must also produce identical aggregated metrics (a differential
// determinism check on the runner).  Writes BENCH_analysis.json;
// tools/perf_check.py gates both the engine speedup and the queue-vs-
// barrier sweep-wall speedup against the committed baseline in CI.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/engine.hpp"
#include "analysis/greedy.hpp"
#include "analysis/schedulability.hpp"
#include "exp/sweep_runner.hpp"
#include "gen/generator.hpp"
#include "rt/task.hpp"
#include "support/rng.hpp"

#include "bench_common.hpp"

using namespace mcs;

namespace {

// One verdict row per task set; must be identical in every mode.
struct Verdict {
  bool nps = false;
  bool wp = false;
  bool proposed = false;
  std::size_t greedy_rounds = 0;

  bool operator==(const Verdict&) const = default;
};

struct ModeResult {
  std::string name;
  bool engine = false;
  std::size_t threads = 1;
  double wall_ms = 0.0;
  std::vector<Verdict> verdicts;
};

// The experiment-harness pipeline for one task set.  `engine == nullptr`
// selects the legacy free functions (each call builds and discards its own
// session state, and the greedy loop recomputes its WP-equivalent round 0).
Verdict analyze_set(const rt::TaskSet& tasks,
                    const analysis::AnalysisOptions& options,
                    analysis::AnalysisEngine* engine) {
  Verdict v;
  if (engine != nullptr) {
    v.nps = engine->analyze(tasks, analysis::Approach::kNonPreemptive,
                            options)
                .schedulable;
    const auto wp = engine->analyze_wp(tasks, options);
    v.wp = wp.schedulable;
    if (wp.schedulable) {
      v.proposed = true;
      v.greedy_rounds = 0;
    } else {
      const auto prop = engine->analyze_proposed(tasks, options, &wp);
      v.proposed = prop.schedulable;
      v.greedy_rounds = prop.rounds;
    }
  } else {
    v.nps = analysis::analyze(tasks, analysis::Approach::kNonPreemptive,
                              options)
                .schedulable;
    const auto wp = analysis::analyze_wp(tasks, options);
    v.wp = wp.schedulable;
    if (wp.schedulable) {
      v.proposed = true;
      v.greedy_rounds = 0;
    } else {
      const auto prop = analysis::analyze_proposed(tasks, options);
      v.proposed = prop.schedulable;
      v.greedy_rounds = prop.rounds;
    }
  }
  return v;
}

ModeResult run_mode(const std::string& name, bool use_engine,
                    std::size_t threads,
                    const std::vector<rt::TaskSet>& sets,
                    const analysis::AnalysisOptions& options,
                    int repetitions) {
  ModeResult mode;
  mode.name = name;
  mode.engine = use_engine;
  mode.threads = threads;
  mode.wall_ms = 0.0;
  // Best-of-k wall time: the sweep itself is deterministic, so repetition
  // only filters out scheduler noise.
  for (int rep = 0; rep < repetitions; ++rep) {
    std::vector<Verdict> verdicts;
    verdicts.reserve(sets.size());
    const auto t0 = std::chrono::steady_clock::now();
    for (const rt::TaskSet& tasks : sets) {
      if (use_engine) {
        analysis::AnalysisEngine engine(analysis::EngineConfig{threads});
        verdicts.push_back(analyze_set(tasks, options, &engine));
      } else {
        verdicts.push_back(analyze_set(tasks, options, nullptr));
      }
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (rep == 0 || ms < mode.wall_ms) mode.wall_ms = ms;
    mode.verdicts = std::move(verdicts);
  }
  return mode;
}

// --- sweep-wall axis ------------------------------------------------------

/// Deterministic duration-replay sweep: each point has one 40 ms straggler
/// unit among 4 ms units — the heterogeneous mix of a real U sweep, where
/// high-utilization points carry a few MILP-heavy task sets.  Sleeping
/// units parallelize on any core count, so the barrier-vs-queue contrast
/// survives a single-core CI runner.
exp::SweepSpec sweep_wall_spec() {
  exp::SweepSpec spec;
  spec.name = "sweep_wall_replay";
  spec.title = "duration-replay sweep for barrier-vs-queue wall time";
  spec.axis = "U";
  spec.values = {0.1, 0.25, 0.4, 0.55, 0.7, 0.85};
  spec.slots_per_point = 8;
  spec.seed = 7;
  spec.metrics = {{"draw", exp::MetricSpec::kCount}};
  spec.evaluate = [](const exp::SweepUnit& unit, support::Rng& rng) {
    const bool straggler =
        unit.slot == unit.point % 8;  // one per point, position varies
    std::this_thread::sleep_for(
        std::chrono::milliseconds(straggler ? 40 : 4));
    // A per-unit RNG draw as the metric: the barrier/queue aggregate
    // equality below then also checks unit seeding, not just scheduling.
    return std::vector<std::uint64_t>{rng() % 1000};
  };
  return spec;
}

double best_sweep_wall_ms(const exp::SweepSpec& spec, bool barrier,
                          int repetitions,
                          std::vector<exp::SweepRow>* rows_out) {
  exp::RunnerOptions options;
  options.threads = 4;
  options.barrier_per_point = barrier;
  double best_ms = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    const exp::SweepRunResult run = exp::run_sweep(spec, options);
    const double ms = run.total_seconds * 1000.0;
    if (rep == 0 || ms < best_ms) best_ms = ms;
    if (rows_out != nullptr) {
      *rows_out = exp::aggregate_outcomes(spec, run.outcomes);
    }
  }
  return best_ms;
}

bool same_rows(const std::vector<exp::SweepRow>& a,
               const std::vector<exp::SweepRow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].x != b[i].x || a[i].ok_units != b[i].ok_units ||
        a[i].errors != b[i].errors ||
        a[i].metric_sums != b[i].metric_sums) {
      return false;
    }
  }
  return true;
}

}  // namespace

namespace mcs::bench {

int tool_analysis_main() {
  // Fig. 2-style sweep point in the regime where WP frequently fails and
  // the greedy LS-marking loop actually runs — the workload the engine's
  // cross-round state reuse targets.
  constexpr std::size_t kSets = 12;
  constexpr std::size_t kTasks = 5;
  constexpr double kUtilization = 0.70;
  constexpr double kGamma = 0.40;
  constexpr int kReps = 2;

  std::vector<rt::TaskSet> sets;
  support::Rng rng(4242);
  for (std::size_t s = 0; s < kSets; ++s) {
    gen::GeneratorConfig cfg;
    cfg.num_tasks = kTasks;
    cfg.utilization = kUtilization;
    cfg.gamma = kGamma;
    sets.push_back(gen::generate_task_set(cfg, rng));
  }

  analysis::AnalysisOptions options;
  options.milp.relative_gap = 0.0;  // proven optima: mode-independent

  const std::size_t n_threads = analysis::AnalysisEngine(
                                    analysis::EngineConfig{/*threads=*/0})
                                    .workers();

  std::vector<ModeResult> modes;
  modes.push_back(
      run_mode("legacy free functions", false, 1, sets, options, kReps));
  modes.push_back(
      run_mode("engine, threads=1", true, 1, sets, options, kReps));
  modes.push_back(run_mode("engine, threads=" + std::to_string(n_threads),
                           true, n_threads, sets, options, kReps));

  for (std::size_t m = 1; m < modes.size(); ++m) {
    if (modes[m].verdicts != modes[0].verdicts) {
      std::cerr << "FAIL: mode '" << modes[m].name
                << "' disagrees with the legacy verdicts\n";
      return EXIT_FAILURE;
    }
  }

  std::size_t wp_failing = 0;
  std::size_t rounds_total = 0;
  for (const Verdict& v : modes[0].verdicts) {
    if (!v.wp) ++wp_failing;
    rounds_total += v.greedy_rounds;
  }

  const double speedup_1t = modes[0].wall_ms / modes[1].wall_ms;
  const double speedup_nt = modes[0].wall_ms / modes[2].wall_ms;

  std::cout << "Analysis pipeline bench: " << kSets << " task sets (n="
            << kTasks << ", U=" << kUtilization << ", gamma=" << kGamma
            << "), " << wp_failing << " WP-failing, " << rounds_total
            << " greedy rounds total\n\n"
            << std::left << std::setw(26) << "mode" << std::setw(12)
            << "wall ms" << "speedup\n";
  for (const ModeResult& mode : modes) {
    const double speedup = modes[0].wall_ms / mode.wall_ms;
    std::cout << std::left << std::setw(26) << mode.name << std::setw(12)
              << std::fixed << std::setprecision(1) << mode.wall_ms
              << std::setprecision(2) << speedup << "x\n";
  }
  std::cout << "\nengine reuse (threads=1): " << std::setprecision(2)
            << speedup_1t << "x, with fan-out (threads=" << n_threads
            << "): " << speedup_nt << "x\n";

  // Sweep-wall axis: barrier vs global queue over the duration replay.
  const exp::SweepSpec replay = sweep_wall_spec();
  std::vector<exp::SweepRow> barrier_rows;
  std::vector<exp::SweepRow> queue_rows;
  const double barrier_ms =
      best_sweep_wall_ms(replay, /*barrier=*/true, kReps, &barrier_rows);
  const double queue_ms =
      best_sweep_wall_ms(replay, /*barrier=*/false, kReps, &queue_rows);
  if (!same_rows(barrier_rows, queue_rows)) {
    std::cerr << "FAIL: barrier and queue execution produced different "
                 "aggregates — sweep runner is not deterministic\n";
    return EXIT_FAILURE;
  }
  const double sweep_speedup = queue_ms > 0.0 ? barrier_ms / queue_ms : 0.0;
  std::cout << "\nsweep-wall axis (" << replay.values.size() << " points x "
            << replay.slots_per_point << " replayed units, threads=4):\n"
            << "  per-point barrier: " << std::setprecision(1) << barrier_ms
            << " ms\n  global queue:      " << queue_ms << " ms  ("
            << std::setprecision(2) << sweep_speedup << "x)\n";

  std::ofstream json("BENCH_analysis.json");
  json << "{\n  \"schema\": \"mcs-bench-analysis-v1\",\n"
       << "  \"sweep_point\": {\"sets\": " << kSets << ", \"num_tasks\": "
       << kTasks << ", \"utilization\": " << kUtilization
       << ", \"gamma\": " << kGamma << ", \"wp_failing\": " << wp_failing
       << ", \"greedy_rounds_total\": " << rounds_total << "},\n"
       << "  \"modes\": [\n";
  for (std::size_t m = 0; m < modes.size(); ++m) {
    const ModeResult& mode = modes[m];
    json << "    {\"name\": \"" << mode.name << "\", \"engine\": "
         << (mode.engine ? "true" : "false")
         << ", \"threads\": " << mode.threads << ", \"wall_ms\": "
         << std::fixed << std::setprecision(1) << mode.wall_ms << "}"
         << (m + 1 < modes.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"sweep_wall\": {\"points\": " << replay.values.size()
       << ", \"slots_per_point\": " << replay.slots_per_point
       << ", \"threads\": 4, \"barrier_ms\": " << std::setprecision(1)
       << barrier_ms << ", \"queue_ms\": " << queue_ms << "},\n"
       << "  \"summary\": {\"speedup_single_thread\": "
       << std::setprecision(3) << speedup_1t
       << ", \"speedup_threads_n\": " << speedup_nt
       << ", \"threads_n\": " << n_threads
       << ", \"sweep_queue_speedup\": " << sweep_speedup << "}\n}\n";
  json.close();
  std::cout << "wrote BENCH_analysis.json\n";

  write_bench_telemetry("analysis");
  return 0;
}

}  // namespace mcs::bench
