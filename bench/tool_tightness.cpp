// Analysis tightness study: how far above the worst *observed* response
// time do the analytical bounds sit?  For random schedulable task sets the
// bench simulates many release patterns per set (synchronous periodic plus
// randomized sporadic) and reports, per protocol, the mean and maximum
// ratio bound / observed, split by task priority position (the interval
// analyses are structurally more pessimistic toward the bottom of the
// priority order — DESIGN.md §2).
#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

#include "analysis/schedulability.hpp"
#include "gen/generator.hpp"
#include "sim/engine.hpp"
#include "sim/job_source.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

#include "bench_common.hpp"

using namespace mcs;

namespace {

sim::Protocol protocol_of(analysis::Approach approach) {
  switch (approach) {
    case analysis::Approach::kProposed:
      return sim::Protocol::kProposed;
    case analysis::Approach::kWasilyPellizzoni:
      return sim::Protocol::kWasilyPellizzoni;
    case analysis::Approach::kNonPreemptive:
      return sim::Protocol::kNonPreemptive;
  }
  return sim::Protocol::kNonPreemptive;
}

}  // namespace

namespace mcs::bench {

int tool_tightness_main() {
  std::size_t tasksets = 20;
  if (const char* env = std::getenv("MCS_TASKSETS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) tasksets = static_cast<std::size_t>(parsed);
  }

  constexpr analysis::Approach kApproaches[] = {
      analysis::Approach::kProposed,
      analysis::Approach::kWasilyPellizzoni,
      analysis::Approach::kNonPreemptive,
  };

  std::cout << "Bound tightness: bound / worst-observed response "
            << "(n=4, U=0.3, gamma=0.25, " << tasksets << " sets, "
            << "4 release patterns each):\n\n"
            << std::left << std::setw(12) << "approach" << std::setw(12)
            << "position" << std::setw(10) << "mean" << std::setw(10)
            << "max" << "samples\n";

  for (const auto approach : kApproaches) {
    // One accumulator per priority position (0 = highest).
    std::vector<support::RunningStats> by_position(4);
    for (std::size_t s = 0; s < tasksets; ++s) {
      support::Rng rng(613 * s + 41);
      gen::GeneratorConfig cfg;
      cfg.num_tasks = 4;
      cfg.utilization = 0.3;
      cfg.gamma = 0.25;
      cfg.beta = 0.5;
      rt::TaskSet tasks = gen::generate_task_set(cfg, rng);

      analysis::AnalysisOptions options;
      options.milp.relative_gap = 0.02;
      options.milp.max_nodes = 4000;
      const auto result = analysis::analyze(tasks, approach, options);
      if (!result.schedulable) continue;
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        tasks[i].latency_sensitive = result.ls_flags[i];
      }

      // Worst observed response per task across several release patterns.
      std::vector<rt::Time> observed(tasks.size(), 0);
      const rt::Time horizon = 600 * rt::kTicksPerUnit;
      for (int pattern = 0; pattern < 4; ++pattern) {
        const auto releases =
            pattern == 0
                ? sim::synchronous_periodic_releases(tasks, horizon)
                : sim::random_sporadic_releases(tasks, horizon, 0.5, rng);
        const auto trace =
            sim::simulate(tasks, protocol_of(approach), releases);
        for (std::size_t i = 0; i < tasks.size(); ++i) {
          observed[i] = std::max(observed[i], trace.worst_response(i));
        }
      }

      const auto order = tasks.by_priority();
      for (std::size_t pos = 0; pos < order.size(); ++pos) {
        const std::size_t i = order[pos];
        if (observed[i] == 0 || observed[i] == rt::kTimeMax) continue;
        by_position[pos].add(static_cast<double>(result.wcrt[i]) /
                             static_cast<double>(observed[i]));
      }
    }

    for (std::size_t pos = 0; pos < by_position.size(); ++pos) {
      const auto& stats = by_position[pos];
      std::cout << std::left << std::setw(12) << to_string(approach)
                << std::setw(12) << pos;
      if (stats.count() > 0) {
        std::cout << std::fixed << std::setprecision(2) << std::setw(10)
                  << stats.mean() << std::setw(10) << stats.max()
                  << stats.count();
      } else {
        std::cout << std::setw(10) << "-" << std::setw(10) << "-" << 0;
      }
      std::cout << "\n";
    }
  }
  std::cout << "\n(ratios are upper bounds on true pessimism: the simulated\n"
               "patterns rarely hit the adversarial worst case)\n";
  write_bench_telemetry("tightness");
  return 0;
}

}  // namespace mcs::bench
