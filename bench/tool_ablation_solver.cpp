// Solver ablation: quantifies what each ingredient of the MILP strategy
// contributes on real analysis instances (DESIGN.md §5.5 "Solver
// strategy").  For a batch of delay MILPs from generated task sets it
// compares:
//   * alpha-first branch priority        vs. plain most-fractional,
//   * the relative-gap termination (2%)  vs. proving optimality,
//   * warm-started node relaxations      vs. cold per-node solves,
//   * presolve + node propagation        vs. solving the model as built,
//   * the sparse revised-simplex kernel  vs. the dense tableau reference,
// reporting nodes, LP iterations, simplex pivots, pivot throughput,
// refactorization stats, wall time, and bound quality.  Besides the human-readable table the bench writes
// BENCH_solver.json, which tools/perf_check.py compares against the
// committed baseline in CI.
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/milp_formulation.hpp"
#include "gen/generator.hpp"
#include "lp/milp.hpp"
#include "rt/task.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"

#include "bench_common.hpp"

using namespace mcs;

namespace {

struct Strategy {
  const char* name;
  bool alpha_priority;
  double relative_gap;
  bool warm_start;
  bool presolve;
  lp::SimplexKernel kernel = lp::SimplexKernel::kSparse;
};

struct Tally {
  std::size_t nodes = 0;
  std::size_t lp_iters = 0;
  double seconds = 0.0;
  double bound_sum = 0.0;
  std::size_t solved = 0;
  std::uint64_t warm_pivots = 0;
  std::uint64_t cold_pivots = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t warm_fallbacks = 0;
  std::uint64_t presolve_rows_removed = 0;
  std::uint64_t presolve_cols_removed = 0;
  std::uint64_t presolve_node_fixings = 0;
  std::uint64_t presolve_node_prunes = 0;
  std::uint64_t refactorizations = 0;
  std::uint64_t eta_nnz = 0;
  std::uint64_t bound_flips = 0;
  std::uint64_t devex_resets = 0;
  std::uint64_t fixed_cols_skipped = 0;
};

std::uint64_t counter(const support::telemetry::Snapshot& snap,
                      const char* name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

}  // namespace

namespace mcs::bench {

int tool_ablation_solver_main() {
  // The first six strategies isolate branching/gap/warm-start with
  // presolve off (comparable across baselines predating it); the next two
  // measure what the reduction pipeline adds on top of the warm paths.
  // The "plain, 2%gap" pair is the headline presolve axis perf_check.py
  // gates on.  The two [dense] twins form the kernel axis: the heaviest
  // strategy pair gates the sparse kernel's same-run wall speedup, and the
  // prove pair pins bound identity (both kernels must prove the same
  // optimum; the 2%-gap strategies hit node limits at different trees, so
  // their bounds legitimately differ).
  constexpr Strategy kStrategies[] = {
      {"alpha+2%gap, warm", true, 0.02, true, false},
      {"alpha+2%gap, cold", true, 0.02, false, false},
      {"alpha, prove, warm", true, 0.0, true, false},
      {"alpha, prove, cold", true, 0.0, false, false},
      {"plain, 2%gap, warm", false, 0.02, true, false},
      {"plain, 2%gap, cold", false, 0.02, false, false},
      {"plain, 2%gap, warm+pre", false, 0.02, true, true},
      {"alpha+2%gap, warm+pre", true, 0.02, true, true},
      {"plain, 2%gap, warm [dense]", false, 0.02, true, false,
       lp::SimplexKernel::kDense},
      {"alpha, prove, warm [dense]", true, 0.0, true, false,
       lp::SimplexKernel::kDense},
  };

  // Pivot counters come from telemetry; the bench insists on it so the
  // JSON is complete regardless of the environment.
  support::telemetry::set_enabled(true);

  // Batch of representative delay MILPs: lowest-priority task of generated
  // sets, deadline-sized window (the hardest instance of each set).
  std::vector<analysis::DelayMilp> instances;
  support::Rng rng(99);
  for (int s = 0; s < 10; ++s) {
    gen::GeneratorConfig cfg;
    cfg.num_tasks = 5;
    cfg.utilization = 0.45;
    cfg.gamma = 0.3;
    auto tasks = gen::generate_task_set(cfg, rng);
    const auto lowest = tasks.by_priority().back();
    const rt::Time window =
        tasks[lowest].deadline - tasks[lowest].exec - tasks[lowest].copy_out;
    instances.push_back(analysis::build_delay_milp(
        tasks, lowest, std::max<rt::Time>(window, 0),
        analysis::FormulationCase::kNls));
  }

  std::cout << "Solver strategy ablation over " << instances.size()
            << " deadline-window delay MILPs (n=5, U=0.45, gamma=0.3):\n\n"
            << std::left << std::setw(22) << "strategy" << std::setw(8)
            << "solved" << std::setw(10) << "nodes" << std::setw(12)
            << "lp iters" << std::setw(12) << "pivots" << std::setw(8)
            << "sec" << "mean bound\n";

  std::vector<Tally> tallies;
  for (const Strategy& strategy : kStrategies) {
    support::telemetry::reset();
    Tally tally;
    for (const auto& inst : instances) {
      lp::MilpOptions options;
      options.max_nodes = 30000;
      options.relative_gap = strategy.relative_gap;
      options.use_warm_start = strategy.warm_start;
      options.use_presolve = strategy.presolve;
      options.lp.kernel = strategy.kernel;
      if (strategy.alpha_priority) {
        options.branch_priority.assign(inst.model.num_variables(), 0);
        for (const auto a : inst.alpha_vars) {
          options.branch_priority[a.index] = 1;
        }
      }
      const auto t0 = std::chrono::steady_clock::now();
      const auto result = lp::solve_milp(inst.model, options);
      tally.seconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      tally.nodes += result.nodes;
      tally.lp_iters += result.lp_iterations;
      if (result.status == lp::SolveStatus::kOptimal ||
          result.status == lp::SolveStatus::kNodeLimit) {
        tally.bound_sum += result.best_bound;
        ++tally.solved;
      }
    }
    const auto snap = support::telemetry::snapshot();
    tally.warm_pivots = counter(snap, "simplex.warm_pivots");
    tally.cold_pivots = counter(snap, "simplex.cold_pivots");
    tally.warm_hits = counter(snap, "milp.warm_start_hits");
    tally.warm_fallbacks = counter(snap, "milp.warm_start_fallbacks");
    tally.presolve_rows_removed = counter(snap, "lp.presolve.rows_removed");
    tally.presolve_cols_removed = counter(snap, "lp.presolve.cols_removed");
    tally.presolve_node_fixings = counter(snap, "lp.presolve.node_fixings");
    tally.presolve_node_prunes = counter(snap, "lp.presolve.node_prunes");
    tally.refactorizations = counter(snap, "simplex.refactorizations");
    tally.eta_nnz = counter(snap, "simplex.eta_nnz");
    tally.bound_flips = counter(snap, "simplex.bound_flips");
    tally.devex_resets = counter(snap, "simplex.devex_resets");
    tally.fixed_cols_skipped = counter(snap, "simplex.fixed_cols_skipped");
    tallies.push_back(tally);

    std::cout << std::left << std::setw(22) << strategy.name << std::setw(8)
              << tally.solved << std::setw(10) << tally.nodes << std::setw(12)
              << tally.lp_iters << std::setw(12)
              << tally.warm_pivots + tally.cold_pivots << std::setw(8)
              << std::fixed << std::setprecision(2) << tally.seconds
              << std::setprecision(0)
              << tally.bound_sum / static_cast<double>(tally.solved) << "\n";
  }

  // Warm-vs-cold summary over the strategy pairs (each warm strategy is
  // immediately followed by its cold twin above).  Presolve strategies and
  // the dense kernel twins sit outside the pairing and are summarized
  // separately below.
  std::uint64_t warm_total = 0;
  std::uint64_t cold_total = 0;
  double warm_sec = 0.0;
  double cold_sec = 0.0;
  for (std::size_t k = 0; k < tallies.size(); ++k) {
    if (kStrategies[k].presolve ||
        kStrategies[k].kernel != lp::SimplexKernel::kSparse) {
      continue;
    }
    const auto pivots = tallies[k].warm_pivots + tallies[k].cold_pivots;
    if (kStrategies[k].warm_start) {
      warm_total += pivots;
      warm_sec += tallies[k].seconds;
    } else {
      cold_total += pivots;
      cold_sec += tallies[k].seconds;
    }
  }
  const double pivot_ratio =
      warm_total > 0 ? static_cast<double>(cold_total) /
                           static_cast<double>(warm_total)
                     : 0.0;
  std::cout << "\nwarm vs cold: " << warm_total << " vs " << cold_total
            << " pivots (" << std::setprecision(2) << pivot_ratio
            << "x reduction), " << warm_sec << "s vs " << cold_sec
            << "s wall\n"
            << "(equal mean bounds across strategies = same answer)\n";

  // Presolve axis: same strategy ("plain, 2%gap, warm") with and without
  // the reduction pipeline, from the same run on the same machine, so the
  // wall-time ratio is meaningful (unlike cross-run absolute times).
  double pre_off_sec = 0.0;
  double pre_on_sec = 0.0;
  std::uint64_t pre_rows_removed = 0;
  std::uint64_t pre_cols_removed = 0;
  for (std::size_t k = 0; k < tallies.size(); ++k) {
    const std::string name = kStrategies[k].name;
    if (name == "plain, 2%gap, warm") {
      pre_off_sec = tallies[k].seconds;
    } else if (name == "plain, 2%gap, warm+pre") {
      pre_on_sec = tallies[k].seconds;
      pre_rows_removed = tallies[k].presolve_rows_removed;
      pre_cols_removed = tallies[k].presolve_cols_removed;
    }
  }
  const double presolve_speedup =
      pre_on_sec > 0.0 ? pre_off_sec / pre_on_sec : 0.0;
  std::cout << "presolve axis (plain, 2%gap, warm): " << std::setprecision(2)
            << pre_off_sec << "s without vs " << pre_on_sec << "s with ("
            << presolve_speedup << "x), removed " << pre_rows_removed
            << " rows / " << pre_cols_removed << " cols\n";

  // Kernel axis: the same heaviest strategy through both kernels, from the
  // same run on the same machine.  The prove pair must land on identical
  // mean bounds (both prove the true optimum); the 2%-gap pair carries the
  // wall-time speedup perf_check.py gates on.
  double sparse_sec = 0.0;
  double dense_sec = 0.0;
  double prove_bound_sparse = 0.0;
  double prove_bound_dense = 0.0;
  for (std::size_t k = 0; k < tallies.size(); ++k) {
    const std::string name = kStrategies[k].name;
    const double mean_bound =
        tallies[k].bound_sum / static_cast<double>(tallies[k].solved);
    if (name == "plain, 2%gap, warm") {
      sparse_sec = tallies[k].seconds;
    } else if (name == "plain, 2%gap, warm [dense]") {
      dense_sec = tallies[k].seconds;
    } else if (name == "alpha, prove, warm") {
      prove_bound_sparse = mean_bound;
    } else if (name == "alpha, prove, warm [dense]") {
      prove_bound_dense = mean_bound;
    }
  }
  const double kernel_speedup =
      sparse_sec > 0.0 ? dense_sec / sparse_sec : 0.0;
  std::cout << "kernel axis (plain, 2%gap, warm): sparse "
            << std::setprecision(2) << sparse_sec << "s vs dense "
            << dense_sec << "s (" << kernel_speedup << "x)\n"
            << "kernel bound identity (alpha, prove, warm): sparse "
            << std::setprecision(6) << prove_bound_sparse << " vs dense "
            << prove_bound_dense << "\n";

  std::ofstream json("BENCH_solver.json");
  json << "{\n  \"schema\": \"mcs-bench-solver-v1\",\n"
       << "  \"instances\": " << instances.size() << ",\n"
       << "  \"strategies\": [\n";
  for (std::size_t k = 0; k < tallies.size(); ++k) {
    const Tally& t = tallies[k];
    const std::uint64_t pivots = t.warm_pivots + t.cold_pivots;
    const double pivot_rate =
        t.seconds > 0.0 ? static_cast<double>(pivots) / t.seconds : 0.0;
    json << "    {\"name\": \"" << kStrategies[k].name << "\", "
         << "\"kernel\": \""
         << (kStrategies[k].kernel == lp::SimplexKernel::kSparse ? "sparse"
                                                                 : "dense")
         << "\", \"warm_start\": "
         << (kStrategies[k].warm_start ? "true" : "false")
         << ", \"presolve\": " << (kStrategies[k].presolve ? "true" : "false")
         << ", \"solved\": " << t.solved << ", \"nodes\": " << t.nodes
         << ", \"lp_iterations\": " << t.lp_iters
         << ", \"pivots\": " << pivots
         << ", \"warm_pivots\": " << t.warm_pivots
         << ", \"cold_pivots\": " << t.cold_pivots
         << ", \"pivot_rate\": " << std::fixed << std::setprecision(0)
         << pivot_rate
         << ", \"warm_start_hits\": " << t.warm_hits
         << ", \"warm_start_fallbacks\": " << t.warm_fallbacks
         << ", \"refactorizations\": " << t.refactorizations
         << ", \"eta_nnz\": " << t.eta_nnz
         << ", \"bound_flips\": " << t.bound_flips
         << ", \"devex_resets\": " << t.devex_resets
         << ", \"fixed_cols_skipped\": " << t.fixed_cols_skipped
         << ", \"presolve_rows_removed\": " << t.presolve_rows_removed
         << ", \"presolve_cols_removed\": " << t.presolve_cols_removed
         << ", \"presolve_node_fixings\": " << t.presolve_node_fixings
         << ", \"presolve_node_prunes\": " << t.presolve_node_prunes
         << ", \"wall_ms\": " << std::setprecision(1)
         << t.seconds * 1000.0 << ", \"mean_bound\": "
         << std::setprecision(6)
         << t.bound_sum / static_cast<double>(t.solved) << "}"
         << (k + 1 < tallies.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"summary\": {\"warm_pivots_total\": " << warm_total
       << ", \"cold_pivots_total\": " << cold_total
       << ", \"pivot_reduction\": " << std::setprecision(3) << pivot_ratio
       << ", \"warm_wall_ms\": " << std::setprecision(1) << warm_sec * 1000.0
       << ", \"cold_wall_ms\": " << cold_sec * 1000.0
       << ", \"presolve_speedup\": " << std::setprecision(3)
       << presolve_speedup
       << ", \"presolve_rows_removed\": " << pre_rows_removed
       << ", \"presolve_cols_removed\": " << pre_cols_removed
       << ", \"sparse_kernel_speedup\": " << kernel_speedup << "}\n}\n";
  json.close();
  std::cout << "wrote BENCH_solver.json\n";

  write_bench_telemetry("ablation_solver");
  return 0;
}

}  // namespace mcs::bench
