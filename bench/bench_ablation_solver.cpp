// Solver ablation: quantifies what each ingredient of the MILP strategy
// contributes on real analysis instances (DESIGN.md §5.5 "Solver
// strategy").  For a batch of delay MILPs from generated task sets it
// compares:
//   * alpha-first branch priority        vs. plain most-fractional,
//   * the relative-gap termination (2%)  vs. proving optimality,
// reporting nodes, LP iterations, wall time, and bound quality.
#include <chrono>
#include <iomanip>
#include <iostream>
#include <vector>

#include "analysis/milp_formulation.hpp"
#include "gen/generator.hpp"
#include "lp/milp.hpp"
#include "rt/task.hpp"
#include "support/rng.hpp"

#include "fig2_common.hpp"

using namespace mcs;

namespace {

struct Strategy {
  const char* name;
  bool alpha_priority;
  double relative_gap;
};

struct Tally {
  std::size_t nodes = 0;
  std::size_t lp_iters = 0;
  double seconds = 0.0;
  double bound_sum = 0.0;
  std::size_t solved = 0;
};

}  // namespace

int main() {
  constexpr Strategy kStrategies[] = {
      {"alpha-first + 2% gap", true, 0.02},
      {"alpha-first, prove", true, 0.0},
      {"plain, 2% gap", false, 0.02},
      {"plain, prove", false, 0.0},
  };

  // Batch of representative delay MILPs: lowest-priority task of generated
  // sets, deadline-sized window (the hardest instance of each set).
  std::vector<analysis::DelayMilp> instances;
  support::Rng rng(99);
  for (int s = 0; s < 10; ++s) {
    gen::GeneratorConfig cfg;
    cfg.num_tasks = 5;
    cfg.utilization = 0.45;
    cfg.gamma = 0.3;
    auto tasks = gen::generate_task_set(cfg, rng);
    const auto lowest = tasks.by_priority().back();
    const rt::Time window =
        tasks[lowest].deadline - tasks[lowest].exec - tasks[lowest].copy_out;
    instances.push_back(analysis::build_delay_milp(
        tasks, lowest, std::max<rt::Time>(window, 0),
        analysis::FormulationCase::kNls));
  }

  std::cout << "Solver strategy ablation over " << instances.size()
            << " deadline-window delay MILPs (n=5, U=0.45, gamma=0.3):\n\n"
            << std::left << std::setw(24) << "strategy" << std::setw(10)
            << "solved" << std::setw(12) << "nodes" << std::setw(14)
            << "lp iters" << std::setw(10) << "sec" << "mean bound\n";

  for (const Strategy& strategy : kStrategies) {
    Tally tally;
    for (const auto& inst : instances) {
      lp::MilpOptions options;
      options.max_nodes = 30000;
      options.relative_gap = strategy.relative_gap;
      if (strategy.alpha_priority) {
        options.branch_priority.assign(inst.model.num_variables(), 0);
        for (const auto a : inst.alpha_vars) {
          options.branch_priority[a.index] = 1;
        }
      }
      const auto t0 = std::chrono::steady_clock::now();
      const auto result = lp::solve_milp(inst.model, options);
      tally.seconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      tally.nodes += result.nodes;
      tally.lp_iters += result.lp_iterations;
      if (result.status == lp::SolveStatus::kOptimal ||
          result.status == lp::SolveStatus::kNodeLimit) {
        tally.bound_sum += result.best_bound;
        ++tally.solved;
      }
    }
    std::cout << std::left << std::setw(24) << strategy.name << std::setw(10)
              << tally.solved << std::setw(12) << tally.nodes << std::setw(14)
              << tally.lp_iters << std::setw(10) << std::fixed
              << std::setprecision(2) << tally.seconds
              << std::setprecision(0)
              << tally.bound_sum / static_cast<double>(tally.solved) << "\n";
  }
  std::cout << "\n(equal mean bounds across strategies = same answer; the\n"
               "node/time columns show what each ingredient saves)\n";
  mcs::bench::write_bench_telemetry("ablation_solver");
  return 0;
}
