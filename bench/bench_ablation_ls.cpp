// LS-marking ablation (paper §VI): the greedy algorithm marks tasks
// latency-sensitive one deadline-miss at a time.  This bench compares, as
// deadline tightness beta varies:
//   * none   — no LS tasks at all (the analysis of [3]),
//   * greedy — the paper's algorithm,
//   * all    — every task marked LS.
// The paper's discussion predicts: greedy >= none everywhere, and
// marking *everything* LS backfires (urgent executions serialize copy-ins
// on the CPU and every cancellation re-issues a load), so all <= greedy.
#include <filesystem>
#include <iomanip>
#include <iostream>

#include "analysis/greedy.hpp"
#include "analysis/response_time.hpp"
#include "gen/generator.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"

#include "fig2_common.hpp"

using namespace mcs;

namespace {

/// Schedulability with a fixed all-LS marking (no greedy).
bool all_ls_schedulable(rt::TaskSet tasks,
                        const analysis::AnalysisOptions& options) {
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].latency_sensitive = true;
  }
  for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
    if (!analysis::bound_response_time(tasks, i, options).schedulable) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  std::size_t tasksets = 25;
  if (const char* env = std::getenv("MCS_TASKSETS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) tasksets = static_cast<std::size_t>(parsed);
  }

  analysis::AnalysisOptions options;
  options.milp.relative_gap = 0.02;
  options.milp.max_nodes = 4000;

  std::cout << "LS-marking ablation (n=4, U=0.35, gamma=0.25, " << tasksets
            << " sets/point):\n\n"
            << std::left << std::setw(8) << "beta" << std::setw(10) << "none"
            << std::setw(10) << "greedy" << std::setw(10) << "all" << "\n";

  support::CsvWriter csv(std::filesystem::current_path() /
                         "ablation_ls.csv");
  csv.write_row({"beta", "none", "greedy", "all"});

  for (double beta = 0.05; beta <= 0.96; beta += 0.15) {
    std::size_t ok_none = 0, ok_greedy = 0, ok_all = 0;
    for (std::size_t s = 0; s < tasksets; ++s) {
      support::Rng rng(811 * s + 5);
      gen::GeneratorConfig cfg;
      cfg.num_tasks = 4;
      cfg.utilization = 0.35;
      cfg.gamma = 0.25;
      cfg.beta = beta;
      const rt::TaskSet tasks = gen::generate_task_set(cfg, rng);

      analysis::AnalysisOptions wp = options;
      wp.ignore_ls = true;
      bool none_ok = true;
      for (rt::TaskIndex i = 0; i < tasks.size() && none_ok; ++i) {
        none_ok = analysis::bound_response_time(tasks, i, wp).schedulable;
      }
      ok_none += none_ok ? std::size_t{1} : std::size_t{0};
      ok_greedy +=
          (none_ok || analysis::analyze_proposed(tasks, options).schedulable)
              ? std::size_t{1}
              : std::size_t{0};
      ok_all += all_ls_schedulable(tasks, options) ? std::size_t{1} : std::size_t{0};
    }
    const auto ratio = [&](std::size_t okay) {
      return static_cast<double>(okay) / static_cast<double>(tasksets);
    };
    std::cout << std::left << std::fixed << std::setprecision(2)
              << std::setw(8) << beta << std::setprecision(3)
              << std::setw(10) << ratio(ok_none) << std::setw(10)
              << ratio(ok_greedy) << std::setw(10) << ratio(ok_all) << "\n";
    csv.cell(beta).cell(ratio(ok_none)).cell(ratio(ok_greedy)).cell(
        ratio(ok_all));
    csv.end_row();
  }
  std::cout << "\nwrote ablation_ls.csv\n";
  mcs::bench::write_bench_telemetry("ablation_ls");
  return 0;
}
