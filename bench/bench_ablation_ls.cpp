// Thin wrapper: historical binary name for `mcs_bench ablation_ls`.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return mcs::bench::run_as_tool("ablation_ls", argc, argv);
}
