#include "sim/checker.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

namespace mcs::sim {

namespace {

using rt::Time;

std::string job_name(const rt::TaskSet& tasks, const JobId& id) {
  std::ostringstream out;
  out << tasks[id.task].name << "#" << id.seq;
  return out.str();
}

/// Index of the interval record holding a predicate, or npos.
constexpr std::size_t npos = static_cast<std::size_t>(-1);

template <typename Pred>
std::size_t find_interval(const Trace& trace, Pred pred) {
  for (std::size_t k = 0; k < trace.intervals.size(); ++k) {
    if (pred(trace.intervals[k])) {
      return k;
    }
  }
  return npos;
}

}  // namespace

std::size_t count_blocking_intervals(const rt::TaskSet& tasks,
                                     const Trace& trace,
                                     const JobRecord& job) {
  if (job.exec_start == rt::kTimeMax) {
    return 0;  // never started; blocking undefined
  }
  const auto my_priority = tasks[job.id.task].priority;
  std::size_t blocked = 0;
  for (const IntervalRecord& rec : trace.intervals) {
    if (!rec.cpu_job) continue;
    if (tasks[rec.cpu_job->task].priority <= my_priority) continue;
    // Lower-priority execution; does it overlap the job's waiting window?
    const Time cpu_start = rec.start;
    const Time cpu_end = rec.start + rec.cpu_busy;
    if (cpu_end > job.ready_time && cpu_start < job.exec_start) {
      ++blocked;
    }
  }
  return blocked;
}

CheckResult check_trace(const rt::TaskSet& tasks, Protocol protocol,
                        const Trace& trace) {
  CheckResult result;
  auto fail = [&result](const std::string& msg) {
    result.violations.push_back(msg);
  };

  const bool interval_protocol = protocol != Protocol::kNonPreemptive;

  // --- Engine-level sanity ------------------------------------------------
  for (std::size_t k = 0; k < trace.intervals.size(); ++k) {
    const IntervalRecord& rec = trace.intervals[k];
    if (rec.end < rec.start) {
      fail("interval " + std::to_string(k) + " ends before it starts");
    }
    if (k > 0 && rec.start < trace.intervals[k - 1].end) {
      fail("interval " + std::to_string(k) + " overlaps its predecessor");
    }
    if (interval_protocol) {
      if (rec.end - rec.start != std::max(rec.cpu_busy, rec.dma_busy)) {
        fail("interval " + std::to_string(k) +
             " length differs from max(cpu, dma) work (R6)");
      }
      if (rec.dma_busy != rec.copy_out_duration + rec.copy_in_duration) {
        fail("interval " + std::to_string(k) + " DMA accounting mismatch");
      }
      if (rec.cpu_action == CpuAction::kIdle && rec.cpu_busy != 0) {
        fail("interval " + std::to_string(k) + " idle CPU with busy time");
      }
      if (rec.copy_in_outcome == CopyInOutcome::kNone &&
          rec.copy_in_duration != 0) {
        fail("interval " + std::to_string(k) + " phantom copy-in time");
      }
      if (protocol == Protocol::kWasilyPellizzoni &&
          (rec.copy_in_outcome == CopyInOutcome::kCancelled ||
           rec.copy_in_outcome == CopyInOutcome::kDiscarded)) {
        fail("interval " + std::to_string(k) +
             " cancellation under the WP protocol (R3 must not apply)");
      }
      if (rec.cpu_action == CpuAction::kUrgentExecute &&
          protocol != Protocol::kProposed) {
        fail("interval " + std::to_string(k) +
             " urgent execution outside the proposed protocol");
      }
    }
  }

  // --- Per-job lifecycle ----------------------------------------------------
  for (const JobRecord& job : trace.jobs) {
    if (trace.aborted) break;
    if (!job.completed()) {
      fail("job " + job_name(tasks, job.id) + " never completed");
      continue;
    }
    if (job.exec_start == rt::kTimeMax) {
      fail("job " + job_name(tasks, job.id) + " completed without executing");
      continue;
    }
    if (job.exec_start < job.ready_time) {
      fail("job " + job_name(tasks, job.id) + " executed before ready");
    }
    if (job.completion <= job.exec_start) {
      fail("job " + job_name(tasks, job.id) + " completed before executing");
    }

    if (!interval_protocol) continue;

    const auto exec_k = find_interval(trace, [&](const IntervalRecord& r) {
      return r.cpu_job == job.id &&
             (r.cpu_action == CpuAction::kExecute ||
              r.cpu_action == CpuAction::kUrgentExecute);
    });
    if (exec_k == npos) {
      fail("job " + job_name(tasks, job.id) + " has no execution interval");
      continue;
    }
    const IntervalRecord& exec_rec = trace.intervals[exec_k];

    // Property 1: DMA-loaded executions have their copy-in in I_{k-1}.
    if (exec_rec.cpu_action == CpuAction::kExecute) {
      if (exec_k == 0) {
        fail("job " + job_name(tasks, job.id) +
             " executes in the first interval without a copy-in");
      } else {
        const IntervalRecord& prev = trace.intervals[exec_k - 1];
        if (!(prev.copy_in_job == job.id &&
              prev.copy_in_outcome == CopyInOutcome::kCompleted)) {
          fail("Property 1 violated: job " + job_name(tasks, job.id) +
               " executes in interval " + std::to_string(exec_k) +
               " without a completed copy-in in the previous interval");
        }
        if (prev.end != exec_rec.start) {
          fail("job " + job_name(tasks, job.id) +
               " copy-in interval not adjacent to execution interval");
        }
      }
    }

    // Properties 1 & 2: copy-out is performed in I_{k+1}.
    {
      if (exec_k + 1 >= trace.intervals.size()) {
        fail("job " + job_name(tasks, job.id) +
             " has no interval after its execution for the copy-out");
      } else {
        const IntervalRecord& next = trace.intervals[exec_k + 1];
        if (!(next.copy_out_job == job.id)) {
          fail("Property 1/2 violated: job " + job_name(tasks, job.id) +
               " copy-out not in the interval following its execution");
        }
        if (next.start != exec_rec.end) {
          fail("job " + job_name(tasks, job.id) +
               " copy-out interval not adjacent to execution interval");
        }
        if (job.completion != next.start + next.copy_out_duration) {
          fail("job " + job_name(tasks, job.id) +
               " completion time inconsistent with its copy-out record");
        }
      }
    }

    // Urgent bookkeeping (R4/R5 apply only to LS tasks).
    if (job.became_urgent && !tasks[job.id.task].latency_sensitive) {
      fail("NLS job " + job_name(tasks, job.id) + " became urgent (R4)");
    }
    if (exec_rec.cpu_action == CpuAction::kUrgentExecute &&
        !job.became_urgent) {
      fail("job " + job_name(tasks, job.id) +
           " executed urgently without promotion record");
    }

    // Properties 3 & 4: blocking interval bounds.  Only meaningful when the
    // job was ready at its release (no precedence deferral).
    if (job.ready_time == job.release) {
      const std::size_t blocked =
          count_blocking_intervals(tasks, trace, job);
      const bool ls = tasks[job.id.task].latency_sensitive &&
                      protocol == Protocol::kProposed;
      const std::size_t limit = ls ? 1 : 2;
      if (interval_protocol && blocked > limit) {
        fail("Property " + std::string(ls ? "4" : "3") + " violated: job " +
             job_name(tasks, job.id) + " blocked in " +
             std::to_string(blocked) + " intervals (limit " +
             std::to_string(limit) + ")");
      }
    }
  }

  // --- Cross-interval exclusivity ------------------------------------------
  if (interval_protocol) {
    // Each job executes in exactly one interval and is copied out once.
    for (const JobRecord& job : trace.jobs) {
      std::size_t execs = 0;
      std::size_t copyouts = 0;
      for (const IntervalRecord& rec : trace.intervals) {
        if (rec.cpu_job == job.id &&
            rec.cpu_action != CpuAction::kIdle) {
          ++execs;
        }
        if (rec.copy_out_job == job.id) {
          ++copyouts;
        }
      }
      if (job.completed() && execs != 1) {
        fail("job " + job_name(tasks, job.id) + " executed " +
             std::to_string(execs) + " times");
      }
      if (job.completed() && copyouts != 1) {
        fail("job " + job_name(tasks, job.id) + " copied out " +
             std::to_string(copyouts) + " times");
      }
    }
  }

  return result;
}

}  // namespace mcs::sim
