// System-level simulation driver: the partitioned-multicore entry point
// (paper §II).  Each core runs its own interval protocol with its own DMA
// engine; cross-core coupling happens only through the shared global
// memory, which is accounted for by inflating the copy-phase durations
// with a contention model (rt/contention.hpp) before simulating each core
// in isolation — mirroring exactly how the analysis treats multicore.
#pragma once

#include <vector>

#include "rt/contention.hpp"
#include "rt/task.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "support/rng.hpp"

namespace mcs::sim {

struct SystemSimOptions {
  Protocol protocol = Protocol::kProposed;
  rt::ContentionPolicy contention = rt::ContentionPolicy::kDemandAware;
  /// Synchronous periodic releases when false; randomized sporadic (with
  /// the given slack) when true.
  bool sporadic = false;
  double sporadic_slack = 0.5;
  rt::Time horizon = 0;  ///< 0 = twenty times the largest period
  SimOptions per_core;
};

struct SystemSimResult {
  /// The per-core task sets actually simulated (memory phases inflated).
  std::vector<rt::TaskSet> inflated_cores;
  std::vector<Trace> traces;           ///< one per core
  std::vector<TraceMetrics> metrics;   ///< one per core
  bool all_deadlines_met = false;
};

/// Simulates every core of a partitioned system.  `rng` drives sporadic
/// release patterns (unused for synchronous ones).
SystemSimResult simulate_system(const std::vector<rt::TaskSet>& cores,
                                const SystemSimOptions& options,
                                support::Rng& rng);

}  // namespace mcs::sim
