#include "sim/gantt.hpp"

#include <algorithm>
#include <sstream>

#include "support/contracts.hpp"

namespace mcs::sim {

namespace {

using rt::Time;

/// Paints `label` over columns [from, to) of `row`, extending it on demand.
void paint(std::string& row, std::size_t from, std::size_t to,
           const std::string& label, std::size_t max_width) {
  from = std::min(from, max_width);
  to = std::min(to, max_width);
  if (to <= from) return;
  if (row.size() < to) {
    row.resize(to, ' ');
  }
  for (std::size_t c = from; c < to; ++c) {
    // First cells carry the label, the rest the fill character.
    const std::size_t offset = c - from;
    row[c] = offset < label.size() ? label[offset] : '=';
  }
}

std::size_t col_of(Time t, Time ticks_per_char) {
  return static_cast<std::size_t>(t / ticks_per_char);
}

}  // namespace

std::string render_gantt(const rt::TaskSet& tasks, Protocol protocol,
                         const Trace& trace, const GanttOptions& options) {
  MCS_REQUIRE(options.ticks_per_char >= 1, "ticks_per_char must be >= 1");
  const Time tpc = options.ticks_per_char;
  std::string cpu_row, dma_row, ruler;

  for (const IntervalRecord& rec : trace.intervals) {
    // Interval boundary markers on the ruler.
    const std::size_t b = col_of(rec.start, tpc);
    if (b < options.max_width) {
      if (ruler.size() <= b) ruler.resize(b + 1, '.');
      ruler[b] = '|';
    }

    if (rec.cpu_job) {
      const std::string& name = tasks[rec.cpu_job->task].name;
      const std::string label =
          rec.cpu_action == CpuAction::kUrgentExecute ? name + "!" : name;
      const Time cpu_start =
          rec.cpu_action == CpuAction::kUrgentExecute ? rec.start : rec.start;
      paint(cpu_row, col_of(cpu_start, tpc),
            col_of(cpu_start + rec.cpu_busy, tpc), label, options.max_width);
    }
    Time dma_cursor = rec.start;
    if (rec.copy_out_job) {
      paint(dma_row, col_of(dma_cursor, tpc),
            col_of(dma_cursor + rec.copy_out_duration, tpc),
            "^" + tasks[rec.copy_out_job->task].name, options.max_width);
      dma_cursor += rec.copy_out_duration;
    }
    if (rec.copy_in_job && rec.copy_in_outcome != CopyInOutcome::kNone) {
      const char* marker =
          rec.copy_in_outcome == CopyInOutcome::kCancelled   ? "x"
          : rec.copy_in_outcome == CopyInOutcome::kDiscarded ? "~"
                                                             : "v";
      paint(dma_row, col_of(dma_cursor, tpc),
            col_of(dma_cursor + rec.copy_in_duration, tpc),
            marker + tasks[rec.copy_in_job->task].name, options.max_width);
    }
  }
  if (!trace.intervals.empty()) {
    const std::size_t last = col_of(trace.intervals.back().end, tpc);
    if (last < options.max_width) {
      if (ruler.size() <= last) ruler.resize(last + 1, '.');
      ruler[last] = '|';
    }
  }

  std::ostringstream out;
  out << "protocol: " << to_string(protocol) << "\n";
  out << "CPU | " << cpu_row << "\n";
  if (protocol != Protocol::kNonPreemptive) {
    out << "DMA | " << dma_row << "\n";
  }
  out << "    | " << ruler << "\n";
  out << "      (v=copy-in  ^=copy-out  x=cancelled  ~=discarded  "
         "!=urgent; one char = "
      << tpc << " tick" << (tpc == 1 ? "" : "s") << ")\n";

  if (options.job_summary) {
    for (const JobRecord& job : trace.jobs) {
      out << "  " << tasks[job.id.task].name << "#" << job.id.seq
          << ": release=" << job.release;
      if (job.completed()) {
        out << " completion=" << job.completion
            << " response=" << job.response_time()
            << (job.missed_deadline() ? "  ** DEADLINE MISS **" : "");
      } else {
        out << " (incomplete)";
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace mcs::sim
