// Release-pattern generation for the simulator.
//
// A simulation run takes an explicit, time-sorted list of job releases.
// These helpers build the standard patterns: the synchronous periodic
// pattern (critical-instant-like, all tasks released together at t=0 and
// strictly periodically after), and randomized sporadic patterns where
// inter-arrival times are stretched beyond the minimum by random slack —
// used by the property tests to explore many release interleavings.
#pragma once

#include <cstdint>
#include <vector>

#include "rt/task.hpp"
#include "sim/trace.hpp"
#include "support/rng.hpp"

namespace mcs::sim {

/// One release event handed to the simulator.
struct Release {
  JobId job;
  rt::Time time = 0;
};

/// All tasks released at t = 0 and then strictly every T_i, up to
/// `horizon` (releases strictly before the horizon).
std::vector<Release> synchronous_periodic_releases(const rt::TaskSet& tasks,
                                                   rt::Time horizon);

/// Sporadic pattern: first release uniform in [0, T_i], subsequent gaps
/// T_i * (1 + slack) with slack uniform in [0, max_slack].
std::vector<Release> random_sporadic_releases(const rt::TaskSet& tasks,
                                              rt::Time horizon,
                                              double max_slack,
                                              support::Rng& rng);

/// Sorts releases by time (stable on ties: lower task index first) —
/// required by the simulator.  The pattern builders above already sort.
void sort_releases(std::vector<Release>& releases);

}  // namespace mcs::sim
