#include "sim/metrics.hpp"

#include <algorithm>

namespace mcs::sim {

TraceMetrics compute_metrics(const rt::TaskSet& tasks, const Trace& trace) {
  TraceMetrics metrics;
  if (!trace.intervals.empty()) {
    metrics.span = trace.intervals.back().end - trace.intervals.front().start;
  }
  for (const IntervalRecord& rec : trace.intervals) {
    metrics.cpu_busy += rec.cpu_busy;
    metrics.dma_busy += rec.dma_busy;
    // DMA work that fits under the CPU work of the same interval is hidden;
    // the excess extends the interval (R6) and is exposed.
    metrics.dma_hidden += std::min(rec.dma_busy, rec.cpu_busy);
    metrics.dma_exposed += std::max<rt::Time>(0, rec.dma_busy - rec.cpu_busy);
    if (rec.cpu_action == CpuAction::kUrgentExecute && rec.cpu_job) {
      metrics.cpu_copy_in += tasks[rec.cpu_job->task].copy_in;
    }
    if (rec.copy_in_outcome == CopyInOutcome::kCancelled ||
        rec.copy_in_outcome == CopyInOutcome::kDiscarded) {
      ++metrics.cancellations;
    }
  }
  for (const JobRecord& job : trace.jobs) {
    if (job.completed()) {
      ++metrics.jobs_completed;
    }
    if (job.missed_deadline()) {
      ++metrics.deadline_misses;
    }
    if (job.became_urgent) {
      ++metrics.urgent_promotions;
    }
  }
  return metrics;
}

}  // namespace mcs::sim
