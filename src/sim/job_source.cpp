#include "sim/job_source.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace mcs::sim {

void sort_releases(std::vector<Release>& releases) {
  std::stable_sort(releases.begin(), releases.end(),
                   [](const Release& a, const Release& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.job.task < b.job.task;
                   });
}

std::vector<Release> synchronous_periodic_releases(const rt::TaskSet& tasks,
                                                   rt::Time horizon) {
  MCS_REQUIRE(horizon > 0, "horizon must be positive");
  std::vector<Release> releases;
  for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
    std::uint64_t seq = 0;
    for (rt::Time t = 0; t < horizon; t += tasks[i].period) {
      releases.push_back({JobId{i, seq++}, t});
    }
  }
  sort_releases(releases);
  return releases;
}

std::vector<Release> random_sporadic_releases(const rt::TaskSet& tasks,
                                              rt::Time horizon,
                                              double max_slack,
                                              support::Rng& rng) {
  MCS_REQUIRE(horizon > 0, "horizon must be positive");
  MCS_REQUIRE(max_slack >= 0.0, "negative slack");
  std::vector<Release> releases;
  for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
    std::uint64_t seq = 0;
    rt::Time t = rng.uniform_int(0, tasks[i].period);
    while (t < horizon) {
      releases.push_back({JobId{i, seq++}, t});
      const double stretch = 1.0 + rng.uniform(0.0, max_slack);
      t += static_cast<rt::Time>(
          static_cast<double>(tasks[i].period) * stretch);
    }
  }
  sort_releases(releases);
  return releases;
}

}  // namespace mcs::sim
