#include "sim/engine.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "support/contracts.hpp"
#include "support/telemetry.hpp"

namespace mcs::sim {

const char* to_string(Protocol protocol) noexcept {
  switch (protocol) {
    case Protocol::kProposed:
      return "proposed";
    case Protocol::kWasilyPellizzoni:
      return "wp2016";
    case Protocol::kNonPreemptive:
      return "nps";
  }
  return "unknown";
}

namespace {

using rt::TaskIndex;
using rt::Time;

/// Index into Trace::jobs.
using JobRef = std::size_t;
constexpr JobRef kNoJob = static_cast<JobRef>(-1);

/// Shared release / precedence bookkeeping for both engine flavours.
class JobAdmission {
 public:
  JobAdmission(const rt::TaskSet& tasks, std::vector<Release> releases,
               Trace& trace)
      : tasks_(tasks), trace_(trace) {
    sort_releases(releases);
    trace_.jobs.reserve(releases.size());
    for (const Release& r : releases) {
      JobRecord job;
      job.id = r.job;
      job.release = r.time;
      job.absolute_deadline = r.time + tasks_[r.job.task].deadline;
      trace_.jobs.push_back(job);
    }
    // Per-task FIFO of job refs in release order.
    per_task_.resize(tasks_.size());
    for (JobRef j = 0; j < trace_.jobs.size(); ++j) {
      per_task_[trace_.jobs[j].id.task].push_back(j);
    }
    next_in_task_.assign(tasks_.size(), 0);
    task_busy_.assign(tasks_.size(), false);
    last_completion_.assign(tasks_.size(), 0);
  }

  /// Moves every job whose ready time is <= `now` into the ready queue.
  void admit_up_to(Time now) {
    for (TaskIndex task = 0; task < tasks_.size(); ++task) {
      if (task_busy_[task]) continue;  // precedence: predecessor in flight
      const std::size_t pos = next_in_task_[task];
      if (pos >= per_task_[task].size()) continue;
      const JobRef j = per_task_[task][pos];
      if (trace_.jobs[j].release <= now) {
        trace_.jobs[j].ready_time =
            std::max(trace_.jobs[j].release, last_completion_[task]);
        ready_.push_back(j);
        task_busy_[task] = true;
        ++next_in_task_[task];
      }
    }
    sort_ready();
  }

  /// Earliest time a not-yet-admitted job can become ready, or kTimeMax.
  Time next_admission_time() const {
    Time best = rt::kTimeMax;
    for (TaskIndex task = 0; task < tasks_.size(); ++task) {
      if (task_busy_[task]) continue;
      const std::size_t pos = next_in_task_[task];
      if (pos >= per_task_[task].size()) continue;
      best = std::min(best, trace_.jobs[per_task_[task][pos]].release);
    }
    return best;
  }

  /// Marks `job` complete at `when`; its successor (if already past its
  /// release time) immediately becomes admissible.
  void complete(JobRef job, Time when) {
    trace_.jobs[job].completion = when;
    task_busy_[trace_.jobs[job].id.task] = false;
    last_completion_[trace_.jobs[job].id.task] = when;
  }

  bool all_done() const {
    for (TaskIndex task = 0; task < tasks_.size(); ++task) {
      if (task_busy_[task] || next_in_task_[task] < per_task_[task].size()) {
        return false;
      }
    }
    return true;
  }

  bool ready_empty() const { return ready_.empty(); }

  /// Highest-priority ready job (smallest priority value).
  JobRef pop_highest() {
    MCS_ASSERT(!ready_.empty(), "pop from empty ready queue");
    const JobRef j = ready_.front();
    ready_.erase(ready_.begin());
    return j;
  }

  void push_back_ready(JobRef job) {
    ready_.push_back(job);
    sort_ready();
  }

  /// Removes and returns the job ref, if present.
  bool remove_ready(JobRef job) {
    const auto it = std::find(ready_.begin(), ready_.end(), job);
    if (it == ready_.end()) return false;
    ready_.erase(it);
    return true;
  }

  const std::vector<JobRef>& ready() const { return ready_; }

 private:
  void sort_ready() {
    std::sort(ready_.begin(), ready_.end(), [this](JobRef a, JobRef b) {
      const auto pa = tasks_[trace_.jobs[a].id.task].priority;
      const auto pb = tasks_[trace_.jobs[b].id.task].priority;
      if (pa != pb) return pa < pb;
      return trace_.jobs[a].id.seq < trace_.jobs[b].id.seq;
    });
  }

  const rt::TaskSet& tasks_;
  Trace& trace_;
  std::vector<std::vector<JobRef>> per_task_;
  std::vector<std::size_t> next_in_task_;
  std::vector<bool> task_busy_;
  std::vector<Time> last_completion_;
  std::vector<JobRef> ready_;  // sorted by priority
};

/// Interval-based engine implementing rules R1-R6 (kProposed) and the [3]
/// baseline (kWasilyPellizzoni == kProposed with LS ignored).
Trace run_interval_protocol(const rt::TaskSet& tasks, Protocol protocol,
                            std::vector<Release> releases,
                            const SimOptions& options) {
  const bool ls_rules = protocol == Protocol::kProposed;
  Trace trace;
  JobAdmission admission(tasks, std::move(releases), trace);

  std::optional<JobRef> loaded;           // copy-in finished last interval
  std::optional<JobRef> pending_copyout;  // executed last interval
  std::optional<JobRef> urgent;           // promoted by R4 last interval
  Time now = 0;

  const auto task_of = [&](JobRef j) -> const rt::Task& {
    return tasks[trace.jobs[j].id.task];
  };

  while (true) {
    admission.admit_up_to(now);
    const bool has_work = !admission.ready_empty() || loaded.has_value() ||
                          pending_copyout.has_value() || urgent.has_value();
    if (!has_work) {
      const Time next = admission.next_admission_time();
      if (next == rt::kTimeMax) {
        break;  // everything processed
      }
      now = std::max(now, next);
      admission.admit_up_to(now);
    }
    if (trace.intervals.size() >= options.max_intervals) {
      trace.aborted = true;
      break;
    }

    IntervalRecord rec;
    rec.index = trace.intervals.size();
    rec.start = now;

    // --- DMA side (R2): copy-out first, then one copy-in -----------------
    Time dma_time = 0;
    if (pending_copyout) {
      const JobRef j = *pending_copyout;
      rec.copy_out_job = trace.jobs[j].id;
      rec.copy_out_duration = task_of(j).copy_out;
      dma_time += rec.copy_out_duration;
      admission.complete(j, now + dma_time);
      pending_copyout.reset();
    }
    std::optional<JobRef> copying;
    Time copy_in_start = now + dma_time;
    Time copy_in_full = 0;
    if (!admission.ready_empty()) {
      copying = admission.pop_highest();
      copy_in_full = task_of(*copying).copy_in;
      rec.copy_in_job = trace.jobs[*copying].id;
      rec.copy_in_outcome = CopyInOutcome::kCompleted;
      rec.copy_in_duration = copy_in_full;
      trace.jobs[*copying].copy_in_start = copy_in_start;
      dma_time += copy_in_full;
    }

    // --- CPU side (R5) ----------------------------------------------------
    std::optional<JobRef> executing;
    if (urgent) {
      executing = urgent;
      urgent.reset();
      const rt::Task& t = task_of(*executing);
      rec.cpu_action = CpuAction::kUrgentExecute;
      rec.cpu_busy = t.copy_in + t.exec;
      trace.jobs[*executing].copy_in_start = now;
      trace.jobs[*executing].exec_start = now + t.copy_in;
      trace.jobs[*executing].became_urgent = true;
    } else if (loaded) {
      executing = loaded;
      loaded.reset();
      rec.cpu_action = CpuAction::kExecute;
      rec.cpu_busy = task_of(*executing).exec;
      trace.jobs[*executing].exec_start = now;
    }
    if (executing) {
      rec.cpu_job = trace.jobs[*executing].id;
    }

    // --- R3: LS release cancels / invalidates a lower-priority copy-in ----
    Time tentative_end = now + std::max(rec.cpu_busy, dma_time);
    if (ls_rules && copying) {
      const auto copy_prio = task_of(*copying).priority;
      // Find the earliest LS release within the interval from a task with
      // higher priority than the copy-in's task.
      Time trigger = rt::kTimeMax;
      for (const JobRecord& job : trace.jobs) {
        const rt::Task& t = tasks[job.id.task];
        if (!t.latency_sensitive || t.priority >= copy_prio) continue;
        // Strictly inside the interval: a release exactly at the interval
        // start took part in the R2 selection instead (and would have been
        // chosen over the lower-priority copy-in task).
        if (job.release > now && job.release < tentative_end) {
          trigger = std::min(trigger, job.release);
        }
      }
      if (trigger != rt::kTimeMax) {
        const Time copy_in_end = copy_in_start + copy_in_full;
        if (trigger < copy_in_end) {
          // Cancelled mid-transfer (or before it started): partial DMA time.
          const Time spent = std::max<Time>(0, trigger - copy_in_start);
          rec.copy_in_outcome = CopyInOutcome::kCancelled;
          rec.copy_in_duration = spent;
          dma_time = rec.copy_out_duration + spent;
        } else {
          // Completed within the interval but invalidated (DESIGN.md §5.8).
          rec.copy_in_outcome = CopyInOutcome::kDiscarded;
        }
        trace.jobs[*copying].copy_in_cancellations += 1;
        admission.push_back_ready(*copying);
        copying.reset();
        tentative_end = now + std::max(rec.cpu_busy, dma_time);
      }
    }

    rec.dma_busy = dma_time;
    rec.end = tentative_end;

    // --- Interval end bookkeeping -----------------------------------------
    if (executing) {
      pending_copyout = executing;
    }
    if (copying) {
      loaded = copying;
    }

    // R4: urgent promotion of the highest-priority LS task released inside
    // this interval, when no copy-in completed.  The window is (start, end]:
    // a release exactly at the interval start already took part in the R2
    // selection, while a release at the interval end may be the very event
    // that cancelled the copy-in (R3) and must count as "released in I_k".
    if (ls_rules && rec.copy_in_outcome != CopyInOutcome::kCompleted) {
      admission.admit_up_to(rec.end);
      JobRef candidate = kNoJob;
      for (const JobRef j : admission.ready()) {
        const rt::Task& t = tasks[trace.jobs[j].id.task];
        if (!t.latency_sensitive) continue;
        if (trace.jobs[j].release <= rec.start ||
            trace.jobs[j].release > rec.end) {
          continue;  // must be released within I_k
        }
        candidate = j;  // ready() is priority sorted; first hit is highest
        break;
      }
      if (candidate != kNoJob) {
        admission.remove_ready(candidate);
        urgent = candidate;
      }
    }

    trace.intervals.push_back(rec);
    now = rec.end;

    if (admission.all_done() && !loaded && !pending_copyout && !urgent) {
      break;
    }
  }
  return trace;
}

/// Classical non-preemptive fixed-priority scheduling: the CPU performs
/// copy-in, execution, and copy-out back-to-back; no DMA overlap.
Trace run_non_preemptive(const rt::TaskSet& tasks,
                         std::vector<Release> releases,
                         const SimOptions& options) {
  Trace trace;
  JobAdmission admission(tasks, std::move(releases), trace);
  Time now = 0;

  while (true) {
    admission.admit_up_to(now);
    if (admission.ready_empty()) {
      const Time next = admission.next_admission_time();
      if (next == rt::kTimeMax) {
        break;
      }
      now = std::max(now, next);
      continue;
    }
    if (trace.intervals.size() >= options.max_intervals) {
      trace.aborted = true;
      break;
    }
    const JobRef j = admission.pop_highest();
    const rt::Task& t = tasks[trace.jobs[j].id.task];

    IntervalRecord rec;
    rec.index = trace.intervals.size();
    rec.start = now;
    rec.cpu_action = CpuAction::kExecute;
    rec.cpu_job = trace.jobs[j].id;
    rec.cpu_busy = t.total_demand();
    rec.end = now + t.total_demand();
    trace.jobs[j].copy_in_start = now;
    trace.jobs[j].exec_start = now + t.copy_in;
    admission.complete(j, rec.end);
    trace.intervals.push_back(rec);
    now = rec.end;
  }
  return trace;
}

}  // namespace

Trace simulate(const rt::TaskSet& tasks, Protocol protocol,
               std::vector<Release> releases, const SimOptions& options) {
  MCS_REQUIRE(!tasks.empty(), "simulate: empty task set");
  for (const Release& r : releases) {
    MCS_REQUIRE(r.job.task < tasks.size(), "simulate: release of unknown task");
    MCS_REQUIRE(r.time >= 0, "simulate: negative release time");
  }
  namespace telemetry = support::telemetry;
  const telemetry::ScopedTimer timer("sim.simulate");
  Trace trace =
      protocol == Protocol::kNonPreemptive
          ? run_non_preemptive(tasks, std::move(releases), options)
          : run_interval_protocol(tasks, protocol, std::move(releases),
                                  options);
  if (telemetry::enabled()) {
    telemetry::count("sim.runs");
    telemetry::count("sim.intervals", trace.intervals.size());
    telemetry::count("sim.jobs", trace.jobs.size());
    std::size_t cancellations = 0, urgent = 0;
    for (const JobRecord& job : trace.jobs) {
      cancellations += job.copy_in_cancellations;
      if (job.became_urgent) ++urgent;
    }
    telemetry::count("sim.copy_in_cancellations", cancellations);
    telemetry::count("sim.urgent_promotions", urgent);
    if (trace.aborted) {
      telemetry::count("sim.aborted_runs");
    }
  }
  return trace;
}

}  // namespace mcs::sim
