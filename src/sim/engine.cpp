#include "sim/engine.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "sim/step.hpp"
#include "support/contracts.hpp"
#include "support/telemetry.hpp"

namespace mcs::sim {

const char* to_string(Protocol protocol) noexcept {
  switch (protocol) {
    case Protocol::kProposed:
      return "proposed";
    case Protocol::kWasilyPellizzoni:
      return "wp2016";
    case Protocol::kNonPreemptive:
      return "nps";
  }
  return "unknown";
}

namespace {

using rt::TaskIndex;
using rt::Time;

/// Index into Trace::jobs.
using JobRef = std::size_t;

/// Release / precedence bookkeeping for the non-preemptive engine.  The
/// interval protocols run on IntervalStepper (step.hpp), which keeps the
/// same bookkeeping inside its explicit StepState.
class JobAdmission {
 public:
  JobAdmission(const rt::TaskSet& tasks, std::vector<Release> releases,
               Trace& trace)
      : tasks_(tasks), trace_(trace) {
    sort_releases(releases);
    trace_.jobs.reserve(releases.size());
    for (const Release& r : releases) {
      JobRecord job;
      job.id = r.job;
      job.release = r.time;
      job.absolute_deadline = r.time + tasks_[r.job.task].deadline;
      trace_.jobs.push_back(job);
    }
    // Per-task FIFO of job refs in release order.
    per_task_.resize(tasks_.size());
    for (JobRef j = 0; j < trace_.jobs.size(); ++j) {
      per_task_[trace_.jobs[j].id.task].push_back(j);
    }
    next_in_task_.assign(tasks_.size(), 0);
    task_busy_.assign(tasks_.size(), false);
    last_completion_.assign(tasks_.size(), 0);
  }

  /// Moves every job whose ready time is <= `now` into the ready queue.
  void admit_up_to(Time now) {
    for (TaskIndex task = 0; task < tasks_.size(); ++task) {
      if (task_busy_[task]) continue;  // precedence: predecessor in flight
      const std::size_t pos = next_in_task_[task];
      if (pos >= per_task_[task].size()) continue;
      const JobRef j = per_task_[task][pos];
      if (trace_.jobs[j].release <= now) {
        trace_.jobs[j].ready_time =
            std::max(trace_.jobs[j].release, last_completion_[task]);
        ready_.push_back(j);
        task_busy_[task] = true;
        ++next_in_task_[task];
      }
    }
    sort_ready();
  }

  /// Earliest time a not-yet-admitted job can become ready, or kTimeMax.
  Time next_admission_time() const {
    Time best = rt::kTimeMax;
    for (TaskIndex task = 0; task < tasks_.size(); ++task) {
      if (task_busy_[task]) continue;
      const std::size_t pos = next_in_task_[task];
      if (pos >= per_task_[task].size()) continue;
      best = std::min(best, trace_.jobs[per_task_[task][pos]].release);
    }
    return best;
  }

  /// Marks `job` complete at `when`; its successor (if already past its
  /// release time) immediately becomes admissible.
  void complete(JobRef job, Time when) {
    trace_.jobs[job].completion = when;
    task_busy_[trace_.jobs[job].id.task] = false;
    last_completion_[trace_.jobs[job].id.task] = when;
  }

  bool ready_empty() const { return ready_.empty(); }

  /// Highest-priority ready job (smallest priority value).
  JobRef pop_highest() {
    MCS_ASSERT(!ready_.empty(), "pop from empty ready queue");
    const JobRef j = ready_.front();
    ready_.erase(ready_.begin());
    return j;
  }

 private:
  void sort_ready() {
    std::sort(ready_.begin(), ready_.end(), [this](JobRef a, JobRef b) {
      const auto pa = tasks_[trace_.jobs[a].id.task].priority;
      const auto pb = tasks_[trace_.jobs[b].id.task].priority;
      if (pa != pb) return pa < pb;
      return trace_.jobs[a].id.seq < trace_.jobs[b].id.seq;
    });
  }

  const rt::TaskSet& tasks_;
  Trace& trace_;
  std::vector<std::vector<JobRef>> per_task_;
  std::vector<std::size_t> next_in_task_;
  std::vector<bool> task_busy_;
  std::vector<Time> last_completion_;
  std::vector<JobRef> ready_;  // sorted by priority
};

/// Interval-based engine implementing rules R1-R6 (kProposed) and the [3]
/// baseline (kWasilyPellizzoni == kProposed with LS ignored).  The actual
/// dynamics live in IntervalStepper (step.hpp) so the model checker and the
/// simulator share one implementation; this is just the batch-driving loop.
Trace run_interval_protocol(const rt::TaskSet& tasks, Protocol protocol,
                            std::vector<Release> releases,
                            const SimOptions& options) {
  Trace trace;
  sort_releases(releases);
  IntervalStepper stepper(tasks, protocol);
  for (const Release& r : releases) {
    stepper.add_release(r.job, r.time);
  }
  while (true) {
    if (trace.intervals.size() >= options.max_intervals) {
      if (stepper.has_pending_work()) {
        trace.aborted = true;
      }
      break;
    }
    const std::optional<StepOutcome> out = stepper.step();
    if (!out) {
      break;  // everything processed
    }
    trace.intervals.push_back(out->record);
  }
  trace.jobs = stepper.state().jobs;
  return trace;
}

/// Classical non-preemptive fixed-priority scheduling: the CPU performs
/// copy-in, execution, and copy-out back-to-back; no DMA overlap.
Trace run_non_preemptive(const rt::TaskSet& tasks,
                         std::vector<Release> releases,
                         const SimOptions& options) {
  Trace trace;
  JobAdmission admission(tasks, std::move(releases), trace);
  Time now = 0;

  while (true) {
    admission.admit_up_to(now);
    if (admission.ready_empty()) {
      const Time next = admission.next_admission_time();
      if (next == rt::kTimeMax) {
        break;
      }
      now = std::max(now, next);
      continue;
    }
    if (trace.intervals.size() >= options.max_intervals) {
      trace.aborted = true;
      break;
    }
    const JobRef j = admission.pop_highest();
    const rt::Task& t = tasks[trace.jobs[j].id.task];

    IntervalRecord rec;
    rec.index = trace.intervals.size();
    rec.start = now;
    rec.cpu_action = CpuAction::kExecute;
    rec.cpu_job = trace.jobs[j].id;
    rec.cpu_busy = t.total_demand();
    rec.end = now + t.total_demand();
    trace.jobs[j].copy_in_start = now;
    trace.jobs[j].exec_start = now + t.copy_in;
    admission.complete(j, rec.end);
    trace.intervals.push_back(rec);
    now = rec.end;
  }
  return trace;
}

}  // namespace

Trace simulate(const rt::TaskSet& tasks, Protocol protocol,
               std::vector<Release> releases, const SimOptions& options) {
  MCS_REQUIRE(!tasks.empty(), "simulate: empty task set");
  for (const Release& r : releases) {
    MCS_REQUIRE(r.job.task < tasks.size(), "simulate: release of unknown task");
    MCS_REQUIRE(r.time >= 0, "simulate: negative release time");
  }
  namespace telemetry = support::telemetry;
  const telemetry::ScopedTimer timer("sim.simulate");
  Trace trace =
      protocol == Protocol::kNonPreemptive
          ? run_non_preemptive(tasks, std::move(releases), options)
          : run_interval_protocol(tasks, protocol, std::move(releases),
                                  options);
  if (telemetry::enabled()) {
    telemetry::count("sim.runs");
    telemetry::count("sim.intervals", trace.intervals.size());
    telemetry::count("sim.jobs", trace.jobs.size());
    std::size_t cancellations = 0, urgent = 0;
    for (const JobRecord& job : trace.jobs) {
      cancellations += job.copy_in_cancellations;
      if (job.became_urgent) ++urgent;
    }
    telemetry::count("sim.copy_in_cancellations", cancellations);
    telemetry::count("sim.urgent_promotions", urgent);
    if (trace.aborted) {
      telemetry::count("sim.aborted_runs");
    }
  }
  return trace;
}

}  // namespace mcs::sim
