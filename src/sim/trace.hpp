// Simulation trace records.
//
// The simulator (engine.hpp) produces a Trace: per-interval records of what
// the CPU and the DMA engine did, plus per-job lifecycle data.  Traces feed
// the invariant checkers (checker.hpp — Properties 1-4 of the paper), the
// ASCII Gantt renderer (gantt.hpp), and the soundness tests that compare
// simulated response times against analysis bounds.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rt/types.hpp"

namespace mcs::sim {

/// Identifies one job: `task` index within the TaskSet plus a per-task
/// sequence number.
struct JobId {
  rt::TaskIndex task = 0;
  std::uint64_t seq = 0;
  friend bool operator==(const JobId&, const JobId&) = default;
};

/// How the CPU spent a scheduling interval.
enum class CpuAction : unsigned char {
  kIdle,
  kExecute,        ///< execution phase of a DMA-loaded job (R5, normal path)
  kUrgentExecute,  ///< copy-in + execution performed by the CPU (R5, urgent)
};

/// How the DMA copy-in slot of an interval ended.
enum class CopyInOutcome : unsigned char {
  kNone,       ///< no copy-in scheduled this interval
  kCompleted,  ///< data loaded; the job executes next interval
  kCancelled,  ///< cancelled mid-transfer by an LS release (R3)
  kDiscarded,  ///< completed within the interval but invalidated by an LS
               ///< release in the same interval (R3/R4; DESIGN.md §5.8)
};

/// One scheduling interval I_k on a core (Definition 1), or one
/// non-preemptive execution block under NPS.
struct IntervalRecord {
  std::size_t index = 0;
  rt::Time start = 0;
  rt::Time end = 0;

  CpuAction cpu_action = CpuAction::kIdle;
  std::optional<JobId> cpu_job;       ///< job executing on the CPU
  rt::Time cpu_busy = 0;              ///< CPU busy time within the interval

  std::optional<JobId> copy_out_job;  ///< DMA copy-out at interval start (R2)
  rt::Time copy_out_duration = 0;
  std::optional<JobId> copy_in_job;   ///< DMA copy-in after the copy-out (R2)
  CopyInOutcome copy_in_outcome = CopyInOutcome::kNone;
  rt::Time copy_in_duration = 0;      ///< actual DMA time spent (partial if
                                      ///< cancelled)
  rt::Time dma_busy = 0;              ///< copy_out + copy_in time
};

/// Lifecycle of one job.
struct JobRecord {
  JobId id;
  rt::Time release = 0;
  /// max(release, completion of the previous job of the same task) —
  /// inter-job precedence (§II) can defer readiness past the release.
  rt::Time ready_time = 0;
  rt::Time absolute_deadline = 0;
  /// Time the (successful) copy-in phase began — DMA transfer start, or
  /// the CPU-side copy-in start for urgent jobs; kTimeMax if never loaded.
  /// Under NPS this is the start of the job's serial copy-in.
  rt::Time copy_in_start = rt::kTimeMax;
  /// Time the execution phase started (CPU), kTimeMax if never started.
  rt::Time exec_start = rt::kTimeMax;
  /// Completion = end of the copy-out phase, kTimeMax if incomplete.
  rt::Time completion = rt::kTimeMax;
  bool became_urgent = false;
  /// Number of times this job's copy-in was cancelled or discarded.
  std::uint32_t copy_in_cancellations = 0;

  bool completed() const noexcept { return completion != rt::kTimeMax; }
  rt::Time response_time() const noexcept {
    return completed() ? completion - release : rt::kTimeMax;
  }
  bool missed_deadline() const noexcept {
    return !completed() || completion > absolute_deadline;
  }
};

/// Full result of one simulation run.
struct Trace {
  std::vector<IntervalRecord> intervals;
  std::vector<JobRecord> jobs;
  bool aborted = false;  ///< interval budget exhausted before completion

  /// Worst observed response time of `task` (kTimeMax when a job of the
  /// task never completed).
  rt::Time worst_response(rt::TaskIndex task) const;
  /// True iff all jobs completed within their deadlines.
  bool all_deadlines_met() const;
  std::size_t deadline_misses() const;
};

}  // namespace mcs::sim
