// Reads traces back from the CSV pair written by trace_export.hpp.
//
// Inverse of export_intervals_csv / export_jobs_csv: given the task set
// the trace was recorded against, reconstructs a sim::Trace suitable for
// the invariant checkers (sim/checker.hpp, check/trace_audit.hpp) and the
// metrics/gantt passes.  Absolute deadlines are rebuilt as release + D_i;
// the derived response/deadline-miss columns are ignored.  Fields are
// comma-separated without quoting, exactly as the exporter writes them.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "rt/task.hpp"
#include "sim/trace.hpp"

namespace mcs::sim {

/// Thrown on malformed input; the message carries the file kind and the
/// 1-based line number.
class TraceParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses the exporter's intervals.csv + jobs.csv pair.  Job references
/// ("<task-name>#<seq>") are resolved against `tasks`; unknown task names
/// or malformed rows throw TraceParseError.
Trace import_trace_csv(const rt::TaskSet& tasks, std::istream& intervals_csv,
                       std::istream& jobs_csv);

/// File-path convenience wrapper.
Trace import_trace_csv_files(const rt::TaskSet& tasks,
                             const std::string& intervals_path,
                             const std::string& jobs_path);

}  // namespace mcs::sim
