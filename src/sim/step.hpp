// Incremental, snapshot-able stepping core of the interval protocol.
//
// The batch simulator (engine.hpp) consumes a full release list and produces
// a Trace in one call.  The model checker (verify/) instead needs to drive
// the very same R1-R6 dynamics one scheduling interval at a time, inject
// releases incrementally as it commits nondeterministic choices, and
// snapshot/restore or reconstruct the scheduler state between branches.
// IntervalStepper factors the interval engine into that shape: all mutable
// scheduler state lives in one explicit, copyable StepState value — there
// are no hidden locals, statics, or ordering dependences — so
//
//   stepper.restore(stepper.snapshot())
//
// is a guaranteed no-op and two steppers with equal state produce equal
// futures.  run_interval_protocol() in engine.cpp is a thin loop over this
// class, which keeps the simulator and the verifier on one implementation
// of the protocol by construction.
//
// ProtocolMutation deliberately breaks exactly one protocol rule.  It
// exists only so the verifier's mutation tests (tests/test_verify_rules.cpp)
// can prove each MCS-V rule fires on the implementation bug it targets;
// production callers always use kNone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "rt/task.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace mcs::sim {

/// Index into StepState::jobs.
using JobRef = std::size_t;

/// Test-only protocol defects, each targeting one MCS-V verifier rule.
/// Exactly one mutation is active per stepper; they are not composable.
enum class ProtocolMutation : unsigned char {
  kNone,
  kExecuteWithoutLoad,    ///< R5 break: execute the job being copied in this
                          ///< same interval (no load-execute adjacency)
  kSkipCopyOut,           ///< R2 break: complete at execution end, never
                          ///< schedule the copy-out phase
  kInvertCopyInPriority,  ///< R2 break: copy in the *lowest*-priority ready
                          ///< job instead of the highest
  kIgnoreLsCancellation,  ///< R3 break: never cancel a copy-in for an LS
                          ///< release
  kFreezeScheduler,       ///< progress break: refuse to schedule anything
                          ///< after the first interval
  kZeroLengthSpin,        ///< progress break: emit zero-length idle intervals
                          ///< forever instead of doing work
  kSpuriousCancellation,  ///< R3 break: cancel each job's first copy-in with
                          ///< no justifying LS release
  kInflateExecution,      ///< R5/R6 break: execution intervals run one tick
                          ///< longer than the task's WCET
  kUrgentNonLs,           ///< R4 break: promote non-latency-sensitive jobs
                          ///< to urgent execution
};

const char* to_string(ProtocolMutation mutation) noexcept;

/// Per-task release / precedence bookkeeping (explicit-state version of the
/// engine's JobAdmission).
struct TaskProgress {
  /// Refs of released jobs of this task in release order; positions before
  /// `next` were already admitted.
  std::vector<JobRef> queue;
  std::size_t next = 0;
  /// True while a job of this task is in flight (admitted, not completed) —
  /// inter-job precedence (§II) admits at most one job per task at a time.
  bool busy = false;
  rt::Time last_completion = 0;
};

/// Complete scheduler state between two interval boundaries.  A plain value:
/// copying it is a snapshot, assigning it back is a restore.
struct StepState {
  rt::Time now = 0;
  std::size_t intervals = 0;  ///< intervals emitted so far (IntervalRecord::index)
  /// Lifecycle records of every job fed via add_release(), in feed order.
  std::vector<JobRecord> jobs;
  std::vector<TaskProgress> tasks;
  std::vector<JobRef> ready;  ///< admitted jobs, sorted by (priority, seq)
  std::optional<JobRef> loaded;           ///< copy-in finished last interval
  std::optional<JobRef> pending_copyout;  ///< executed last interval
  std::optional<JobRef> urgent;           ///< promoted by R4 last interval
};

/// Result of one step(): the interval that was scheduled plus the jobs whose
/// completion event (end of copy-out) landed inside this interval.
struct StepOutcome {
  IntervalRecord record;
  std::vector<JobRef> completed;
};

/// Read-only preview of the next interval, used by the model checker to
/// decide which release choice-points must be resolved before stepping.
struct StepPreview {
  bool has_event = false;       ///< false: no work and no committed release
  rt::Time start = 0;           ///< start of the next interval
  rt::Time end_upper_bound = 0; ///< the interval is guaranteed to end <= this
};

/// Drives rules R1-R6 (kProposed) or the [3] baseline (kWasilyPellizzoni)
/// one scheduling interval at a time.  kNonPreemptive is not an interval
/// protocol and is rejected.
class IntervalStepper {
 public:
  IntervalStepper(const rt::TaskSet& tasks, Protocol protocol,
                  ProtocolMutation mutation = ProtocolMutation::kNone);

  /// Feeds one release.  Releases of the same task must arrive in
  /// nondecreasing time order with increasing seq; releases of different
  /// tasks may interleave arbitrarily.  Returns the job's ref.
  JobRef add_release(JobId id, rt::Time time);

  /// Schedules the next interval and advances time to its end.  Returns
  /// std::nullopt when nothing remains to schedule (no in-flight work and
  /// no committed release) — or, under kFreezeScheduler, when the mutation
  /// refuses to make progress.
  std::optional<StepOutcome> step();

  /// Admits every committed release that is ready at the current time.
  /// step() does this implicitly; the verifier calls it explicitly so that
  /// states are canonical (admission never lags) before encoding.
  void admit_now();

  /// Previews the next interval without mutating state beyond admit_now().
  /// The bound is conservative: the interval may end earlier, never later.
  StepPreview preview() const;

  /// True while any committed job is unfinished (queued, admitted, loaded,
  /// executing, or awaiting copy-out).
  bool has_pending_work() const;

  const StepState& state() const noexcept { return state_; }
  StepState snapshot() const { return state_; }
  /// Replaces the whole scheduler state.  The state must come from a
  /// stepper over the same task set (refs index into state.jobs).
  void restore(StepState state) { state_ = std::move(state); }

  const rt::TaskSet& tasks() const noexcept { return tasks_; }
  Protocol protocol() const noexcept { return protocol_; }
  ProtocolMutation mutation() const noexcept { return mutation_; }

 private:
  void admit_up_to(rt::Time now);
  rt::Time next_admission_time() const;
  void sort_ready();
  void complete(JobRef job, rt::Time when);
  const rt::Task& task_of(JobRef job) const;

  const rt::TaskSet& tasks_;
  Protocol protocol_;
  ProtocolMutation mutation_;
  StepState state_;
};

}  // namespace mcs::sim
