// ASCII Gantt rendering of simulation traces, in the style of the paper's
// Figure 1: one timeline row for the CPU and one for the DMA engine, with
// interval boundaries marked.  Used by the trace-explorer example and the
// Figure 1 reproduction bench.
#pragma once

#include <string>

#include "rt/task.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace mcs::sim {

struct GanttOptions {
  /// Ticks represented by one output character (>= 1).
  rt::Time ticks_per_char = 1;
  /// Truncate rendering after this many characters per row.
  std::size_t max_width = 160;
  /// Also print per-job release / completion / response lines.
  bool job_summary = true;
};

/// Renders `trace` as a multi-line string.  For interval protocols two
/// timeline rows (CPU / DMA) are drawn; under NPS a single CPU row.
std::string render_gantt(const rt::TaskSet& tasks, Protocol protocol,
                         const Trace& trace, const GanttOptions& options = {});

}  // namespace mcs::sim
