#include "sim/trace_export.hpp"

#include <ostream>

namespace mcs::sim {

namespace {

const char* action_name(CpuAction action) {
  switch (action) {
    case CpuAction::kIdle:
      return "idle";
    case CpuAction::kExecute:
      return "execute";
    case CpuAction::kUrgentExecute:
      return "urgent";
  }
  return "?";
}

const char* outcome_name(CopyInOutcome outcome) {
  switch (outcome) {
    case CopyInOutcome::kNone:
      return "none";
    case CopyInOutcome::kCompleted:
      return "completed";
    case CopyInOutcome::kCancelled:
      return "cancelled";
    case CopyInOutcome::kDiscarded:
      return "discarded";
  }
  return "?";
}

void put_job(const rt::TaskSet& tasks, const std::optional<JobId>& job,
             std::ostream& out) {
  if (job) {
    out << tasks[job->task].name << '#' << job->seq;
  }
}

void put_time(rt::Time t, std::ostream& out) {
  if (t != rt::kTimeMax) {
    out << t;
  }
}

}  // namespace

void export_intervals_csv(const rt::TaskSet& tasks, const Trace& trace,
                          std::ostream& out) {
  out << "index,start,end,cpu_action,cpu_task,cpu_busy,copy_out_task,"
         "copy_out,copy_in_task,copy_in_outcome,copy_in,dma_busy\n";
  for (const IntervalRecord& rec : trace.intervals) {
    out << rec.index << ',' << rec.start << ',' << rec.end << ','
        << action_name(rec.cpu_action) << ',';
    put_job(tasks, rec.cpu_job, out);
    out << ',' << rec.cpu_busy << ',';
    put_job(tasks, rec.copy_out_job, out);
    out << ',' << rec.copy_out_duration << ',';
    put_job(tasks, rec.copy_in_job, out);
    out << ',' << outcome_name(rec.copy_in_outcome) << ','
        << rec.copy_in_duration << ',' << rec.dma_busy << '\n';
  }
}

void export_jobs_csv(const rt::TaskSet& tasks, const Trace& trace,
                     std::ostream& out) {
  out << "task,seq,release,ready,copy_in_start,exec_start,completion,"
         "response,deadline_miss,urgent,cancellations\n";
  for (const JobRecord& job : trace.jobs) {
    out << tasks[job.id.task].name << ',' << job.id.seq << ','
        << job.release << ',' << job.ready_time << ',';
    put_time(job.copy_in_start, out);
    out << ',';
    put_time(job.exec_start, out);
    out << ',';
    put_time(job.completion, out);
    out << ',';
    if (job.completed()) {
      out << job.response_time();
    }
    out << ',' << (job.missed_deadline() ? 1 : 0) << ','
        << (job.became_urgent ? 1 : 0) << ',' << job.copy_in_cancellations
        << '\n';
  }
}

}  // namespace mcs::sim
