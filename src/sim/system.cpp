#include "sim/system.hpp"

#include <algorithm>

#include "sim/job_source.hpp"
#include "support/contracts.hpp"

namespace mcs::sim {

SystemSimResult simulate_system(const std::vector<rt::TaskSet>& cores,
                                const SystemSimOptions& options,
                                support::Rng& rng) {
  MCS_REQUIRE(!cores.empty(), "simulate_system: no cores");

  SystemSimResult result;
  result.inflated_cores =
      rt::apply_memory_contention(cores, options.contention);
  result.all_deadlines_met = true;

  for (const rt::TaskSet& core : result.inflated_cores) {
    if (core.empty()) {
      result.traces.emplace_back();
      result.metrics.emplace_back();
      continue;
    }
    rt::Time horizon = options.horizon;
    if (horizon == 0) {
      for (const auto& task : core) {
        horizon = std::max(horizon, 20 * task.period);
      }
    }
    const auto releases =
        options.sporadic
            ? random_sporadic_releases(core, horizon,
                                       options.sporadic_slack, rng)
            : synchronous_periodic_releases(core, horizon);
    Trace trace =
        simulate(core, options.protocol, releases, options.per_core);
    result.all_deadlines_met =
        result.all_deadlines_met && trace.all_deadlines_met();
    result.metrics.push_back(compute_metrics(core, trace));
    result.traces.push_back(std::move(trace));
  }
  return result;
}

}  // namespace mcs::sim
