// CSV export of simulation traces, for plotting and offline analysis with
// external tooling (pandas, gnuplot, ...).  Two tables:
//
//   intervals.csv: index,start,end,cpu_action,cpu_task,cpu_busy,
//                  copy_out_task,copy_out,copy_in_task,copy_in_outcome,
//                  copy_in,dma_busy
//   jobs.csv:      task,seq,release,ready,copy_in_start,exec_start,
//                  completion,response,deadline_miss,urgent,cancellations
#pragma once

#include <iosfwd>

#include "rt/task.hpp"
#include "sim/trace.hpp"

namespace mcs::sim {

/// Writes the per-interval table (header included).
void export_intervals_csv(const rt::TaskSet& tasks, const Trace& trace,
                          std::ostream& out);

/// Writes the per-job table (header included).  Incomplete jobs get empty
/// cells for the missing timestamps.
void export_jobs_csv(const rt::TaskSet& tasks, const Trace& trace,
                     std::ostream& out);

}  // namespace mcs::sim
