#include "sim/step.hpp"

#include <algorithm>
#include <limits>

#include "support/contracts.hpp"

namespace mcs::sim {

using rt::TaskIndex;
using rt::Time;

namespace {
constexpr JobRef kNoJob = static_cast<JobRef>(-1);
}  // namespace

const char* to_string(ProtocolMutation mutation) noexcept {
  switch (mutation) {
    case ProtocolMutation::kNone:
      return "none";
    case ProtocolMutation::kExecuteWithoutLoad:
      return "execute-without-load";
    case ProtocolMutation::kSkipCopyOut:
      return "skip-copy-out";
    case ProtocolMutation::kInvertCopyInPriority:
      return "invert-copy-in-priority";
    case ProtocolMutation::kIgnoreLsCancellation:
      return "ignore-ls-cancellation";
    case ProtocolMutation::kFreezeScheduler:
      return "freeze-scheduler";
    case ProtocolMutation::kZeroLengthSpin:
      return "zero-length-spin";
    case ProtocolMutation::kSpuriousCancellation:
      return "spurious-cancellation";
    case ProtocolMutation::kInflateExecution:
      return "inflate-execution";
    case ProtocolMutation::kUrgentNonLs:
      return "urgent-non-ls";
  }
  return "unknown";
}

IntervalStepper::IntervalStepper(const rt::TaskSet& tasks, Protocol protocol,
                                 ProtocolMutation mutation)
    : tasks_(tasks), protocol_(protocol), mutation_(mutation) {
  MCS_REQUIRE(protocol != Protocol::kNonPreemptive,
              "IntervalStepper drives interval protocols only");
  MCS_REQUIRE(!tasks.empty(), "IntervalStepper: empty task set");
  state_.tasks.resize(tasks_.size());
}

const rt::Task& IntervalStepper::task_of(JobRef job) const {
  return tasks_[state_.jobs[job].id.task];
}

JobRef IntervalStepper::add_release(JobId id, Time time) {
  MCS_REQUIRE(id.task < tasks_.size(), "add_release: unknown task");
  MCS_REQUIRE(time >= 0, "add_release: negative release time");
  TaskProgress& progress = state_.tasks[id.task];
  MCS_REQUIRE(progress.queue.empty() ||
                  state_.jobs[progress.queue.back()].release <= time,
              "add_release: per-task releases must be nondecreasing");
  JobRecord job;
  job.id = id;
  job.release = time;
  job.absolute_deadline = time + tasks_[id.task].deadline;
  const JobRef ref = state_.jobs.size();
  state_.jobs.push_back(job);
  progress.queue.push_back(ref);
  return ref;
}

void IntervalStepper::sort_ready() {
  std::sort(state_.ready.begin(), state_.ready.end(),
            [this](JobRef a, JobRef b) {
              const auto pa = task_of(a).priority;
              const auto pb = task_of(b).priority;
              if (pa != pb) return pa < pb;
              return state_.jobs[a].id.seq < state_.jobs[b].id.seq;
            });
}

void IntervalStepper::admit_up_to(Time now) {
  for (TaskIndex task = 0; task < tasks_.size(); ++task) {
    TaskProgress& progress = state_.tasks[task];
    if (progress.busy) continue;  // precedence: predecessor in flight
    if (progress.next >= progress.queue.size()) continue;
    const JobRef j = progress.queue[progress.next];
    if (state_.jobs[j].release <= now) {
      state_.jobs[j].ready_time =
          std::max(state_.jobs[j].release, progress.last_completion);
      state_.ready.push_back(j);
      progress.busy = true;
      ++progress.next;
    }
  }
  sort_ready();
}

void IntervalStepper::admit_now() { admit_up_to(state_.now); }

Time IntervalStepper::next_admission_time() const {
  Time best = rt::kTimeMax;
  for (TaskIndex task = 0; task < tasks_.size(); ++task) {
    const TaskProgress& progress = state_.tasks[task];
    if (progress.busy) continue;
    if (progress.next >= progress.queue.size()) continue;
    best = std::min(best, state_.jobs[progress.queue[progress.next]].release);
  }
  return best;
}

void IntervalStepper::complete(JobRef job, Time when) {
  state_.jobs[job].completion = when;
  TaskProgress& progress = state_.tasks[state_.jobs[job].id.task];
  progress.busy = false;
  progress.last_completion = when;
}

bool IntervalStepper::has_pending_work() const {
  if (!state_.ready.empty() || state_.loaded || state_.pending_copyout ||
      state_.urgent) {
    return true;
  }
  for (const TaskProgress& progress : state_.tasks) {
    if (progress.busy || progress.next < progress.queue.size()) {
      return true;
    }
  }
  return false;
}

StepPreview IntervalStepper::preview() const {
  StepPreview preview;
  const bool has_work = !state_.ready.empty() || state_.loaded ||
                        state_.pending_copyout || state_.urgent;
  Time start = state_.now;
  if (!has_work) {
    const Time next = next_admission_time();
    if (next == rt::kTimeMax) {
      return preview;  // nothing committed to schedule
    }
    start = std::max(start, next);
  }
  preview.has_event = true;
  preview.start = start;
  if (mutation_ == ProtocolMutation::kZeroLengthSpin) {
    preview.end_upper_bound = start;
    return preview;
  }

  // CPU-side upper bound.
  Time cpu = 0;
  if (state_.urgent) {
    const rt::Task& t = task_of(*state_.urgent);
    cpu = t.copy_in + t.exec;
  } else if (state_.loaded) {
    cpu = task_of(*state_.loaded).exec;
    if (mutation_ == ProtocolMutation::kInflateExecution) cpu += 1;
  }

  // DMA-side upper bound: the pending copy-out plus the longest copy-in any
  // admission candidate could start.  The actual interval picks exactly one
  // candidate (and R3 can only shorten it), so this never underestimates.
  const Time copy_out =
      state_.pending_copyout ? task_of(*state_.pending_copyout).copy_out : 0;
  Time copy_in = 0;
  Time exec_candidate = 0;
  for (const JobRef j : state_.ready) {
    copy_in = std::max(copy_in, task_of(j).copy_in);
    exec_candidate = std::max(exec_candidate, task_of(j).exec);
  }
  // Committed-but-unadmitted jobs due by the interval start are admitted by
  // step() before the R2 selection; they are candidates too.
  for (TaskIndex task = 0; task < tasks_.size(); ++task) {
    const TaskProgress& progress = state_.tasks[task];
    if (progress.busy || progress.next >= progress.queue.size()) continue;
    const JobRef j = progress.queue[progress.next];
    if (state_.jobs[j].release > start) continue;
    copy_in = std::max(copy_in, task_of(j).copy_in);
    exec_candidate = std::max(exec_candidate, task_of(j).exec);
  }
  if (mutation_ == ProtocolMutation::kExecuteWithoutLoad && !state_.urgent &&
      !state_.loaded) {
    cpu = std::max(cpu, exec_candidate);
  }
  preview.end_upper_bound = start + std::max(cpu, copy_out + copy_in);
  return preview;
}

std::optional<StepOutcome> IntervalStepper::step() {
  const bool ls_rules = protocol_ == Protocol::kProposed;
  admit_up_to(state_.now);
  if (mutation_ == ProtocolMutation::kFreezeScheduler && state_.intervals >= 1) {
    return std::nullopt;  // mutation: refuse all further progress
  }
  const bool has_work = !state_.ready.empty() || state_.loaded ||
                        state_.pending_copyout || state_.urgent;
  if (!has_work) {
    const Time next = next_admission_time();
    if (next == rt::kTimeMax) {
      return std::nullopt;  // everything processed
    }
    state_.now = std::max(state_.now, next);
    admit_up_to(state_.now);
  }

  StepOutcome out;
  IntervalRecord& rec = out.record;
  rec.index = state_.intervals;
  rec.start = state_.now;

  if (mutation_ == ProtocolMutation::kZeroLengthSpin) {
    // Mutation: spin on zero-length idle intervals instead of doing work.
    rec.end = state_.now;
    ++state_.intervals;
    return out;
  }

  // --- DMA side (R2): copy-out first, then one copy-in -----------------
  Time dma_time = 0;
  if (state_.pending_copyout) {
    const JobRef j = *state_.pending_copyout;
    rec.copy_out_job = state_.jobs[j].id;
    rec.copy_out_duration = task_of(j).copy_out;
    dma_time += rec.copy_out_duration;
    complete(j, state_.now + dma_time);
    out.completed.push_back(j);
    state_.pending_copyout.reset();
  }
  std::optional<JobRef> copying;
  const Time copy_in_start = state_.now + dma_time;
  Time copy_in_full = 0;
  if (!state_.ready.empty()) {
    if (mutation_ == ProtocolMutation::kInvertCopyInPriority) {
      copying = state_.ready.back();
      state_.ready.pop_back();
    } else {
      copying = state_.ready.front();
      state_.ready.erase(state_.ready.begin());
    }
    copy_in_full = task_of(*copying).copy_in;
    rec.copy_in_job = state_.jobs[*copying].id;
    rec.copy_in_outcome = CopyInOutcome::kCompleted;
    rec.copy_in_duration = copy_in_full;
    state_.jobs[*copying].copy_in_start = copy_in_start;
    dma_time += copy_in_full;
  }

  // --- CPU side (R5) ----------------------------------------------------
  std::optional<JobRef> executing;
  if (state_.urgent) {
    executing = state_.urgent;
    state_.urgent.reset();
    const rt::Task& t = task_of(*executing);
    rec.cpu_action = CpuAction::kUrgentExecute;
    rec.cpu_busy = t.copy_in + t.exec;
    state_.jobs[*executing].copy_in_start = state_.now;
    state_.jobs[*executing].exec_start = state_.now + t.copy_in;
    state_.jobs[*executing].became_urgent = true;
  } else if (state_.loaded) {
    executing = state_.loaded;
    state_.loaded.reset();
    rec.cpu_action = CpuAction::kExecute;
    rec.cpu_busy = task_of(*executing).exec;
    if (mutation_ == ProtocolMutation::kInflateExecution) {
      rec.cpu_busy += 1;  // mutation: overrun the declared WCET
    }
    state_.jobs[*executing].exec_start = state_.now;
  } else if (mutation_ == ProtocolMutation::kExecuteWithoutLoad && copying) {
    // Mutation: execute the job whose copy-in runs this very interval,
    // breaking the load-execute adjacency of Property 1.
    executing = copying;
    rec.cpu_action = CpuAction::kExecute;
    rec.cpu_busy = task_of(*executing).exec;
    state_.jobs[*executing].exec_start = state_.now;
  }
  if (executing) {
    rec.cpu_job = state_.jobs[*executing].id;
  }

  // --- R3: LS release cancels / invalidates a lower-priority copy-in ----
  Time tentative_end = state_.now + std::max(rec.cpu_busy, dma_time);
  if (mutation_ == ProtocolMutation::kSpuriousCancellation && copying &&
      state_.jobs[*copying].copy_in_cancellations == 0) {
    // Mutation: cancel each job's first copy-in attempt at transfer start
    // with no justifying release at all.
    rec.copy_in_outcome = CopyInOutcome::kCancelled;
    rec.copy_in_duration = 0;
    dma_time = rec.copy_out_duration;
    state_.jobs[*copying].copy_in_cancellations += 1;
    state_.ready.push_back(*copying);
    sort_ready();
    copying.reset();
    tentative_end = state_.now + std::max(rec.cpu_busy, dma_time);
  } else if (ls_rules && mutation_ != ProtocolMutation::kIgnoreLsCancellation &&
             copying) {
    const auto copy_prio = task_of(*copying).priority;
    // Find the earliest LS release within the interval from a task with
    // higher priority than the copy-in's task.
    Time trigger = rt::kTimeMax;
    for (const JobRecord& job : state_.jobs) {
      const rt::Task& t = tasks_[job.id.task];
      if (!t.latency_sensitive || t.priority >= copy_prio) continue;
      // Strictly inside the interval: a release exactly at the interval
      // start took part in the R2 selection instead (and would have been
      // chosen over the lower-priority copy-in task).
      if (job.release > state_.now && job.release < tentative_end) {
        trigger = std::min(trigger, job.release);
      }
    }
    if (trigger != rt::kTimeMax) {
      const Time copy_in_end = copy_in_start + copy_in_full;
      if (trigger < copy_in_end) {
        // Cancelled mid-transfer (or before it started): partial DMA time.
        const Time spent = std::max<Time>(0, trigger - copy_in_start);
        rec.copy_in_outcome = CopyInOutcome::kCancelled;
        rec.copy_in_duration = spent;
        dma_time = rec.copy_out_duration + spent;
      } else {
        // Completed within the interval but invalidated (DESIGN.md §5.8).
        rec.copy_in_outcome = CopyInOutcome::kDiscarded;
      }
      state_.jobs[*copying].copy_in_cancellations += 1;
      state_.ready.push_back(*copying);
      sort_ready();
      copying.reset();
      tentative_end = state_.now + std::max(rec.cpu_busy, dma_time);
    }
  }

  rec.dma_busy = dma_time;
  rec.end = tentative_end;

  // --- Interval end bookkeeping -----------------------------------------
  if (executing) {
    if (mutation_ == ProtocolMutation::kSkipCopyOut) {
      // Mutation: declare the job done at execution end; the copy-out
      // phase R2 requires never happens.
      complete(*executing, rec.end);
      out.completed.push_back(*executing);
    } else {
      state_.pending_copyout = executing;
    }
  }
  if (copying && (!executing || *copying != *executing)) {
    state_.loaded = copying;
  }

  // R4: urgent promotion of the highest-priority LS task released inside
  // this interval, when no copy-in completed.  The window is (start, end]:
  // a release exactly at the interval start already took part in the R2
  // selection, while a release at the interval end may be the very event
  // that cancelled the copy-in (R3) and must count as "released in I_k".
  if (ls_rules && rec.copy_in_outcome != CopyInOutcome::kCompleted) {
    admit_up_to(rec.end);
    JobRef candidate = kNoJob;
    for (const JobRef j : state_.ready) {
      const rt::Task& t = task_of(j);
      if (!t.latency_sensitive &&
          mutation_ != ProtocolMutation::kUrgentNonLs) {
        continue;
      }
      if (state_.jobs[j].release <= rec.start ||
          state_.jobs[j].release > rec.end) {
        continue;  // must be released within I_k
      }
      candidate = j;  // ready is priority sorted; first hit is highest
      break;
    }
    if (candidate != kNoJob) {
      state_.ready.erase(
          std::find(state_.ready.begin(), state_.ready.end(), candidate));
      state_.urgent = candidate;
    }
  }

  ++state_.intervals;
  state_.now = rec.end;
  return out;
}

}  // namespace mcs::sim
