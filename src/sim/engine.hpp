// Discrete-event simulator for memory-CPU co-scheduling protocols.
//
// Simulates one core with its DMA engine and dual-ported local memory split
// in two partitions (paper §II / §IV).  Three protocols are supported:
//
//  * kProposed         — the paper's protocol, rules R1-R6 (§IV-A),
//                        including copy-in cancellation (R3) and urgent
//                        promotion of latency-sensitive tasks (R4/R5);
//  * kWasilyPellizzoni — the protocol of [3] (§III-A), realized as the
//                        proposed protocol with an empty LS set (the paper's
//                        Conclusions note this degeneration; DESIGN.md §5.3);
//  * kNonPreemptive    — classical non-preemptive fixed-priority scheduling
//                        with no DMA overlap: the CPU serially performs
//                        copy-in, execution and copy-out (§VII's NPS).
//
// The simulator is exact in integer ticks and is used to replay Figure 1,
// property-test Properties 1-4, and cross-check analysis soundness.
#pragma once

#include <vector>

#include "rt/task.hpp"
#include "sim/job_source.hpp"
#include "sim/trace.hpp"

namespace mcs::sim {

enum class Protocol {
  kProposed,
  kWasilyPellizzoni,
  kNonPreemptive,
};

const char* to_string(Protocol protocol) noexcept;

struct SimOptions {
  /// Abort (Trace::aborted) after this many scheduling intervals — guards
  /// against overload scenarios that never drain.
  std::size_t max_intervals = 1'000'000;
};

/// Runs one simulation of `tasks` under `protocol` with the given release
/// list (will be sorted by time).  Inter-job precedence is enforced: a job
/// becomes ready at max(its release time, completion of the previous job of
/// the same task); response times are measured from the nominal release.
Trace simulate(const rt::TaskSet& tasks, Protocol protocol,
               std::vector<Release> releases, const SimOptions& options = {});

}  // namespace mcs::sim
