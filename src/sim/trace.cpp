#include "sim/trace.hpp"

#include <algorithm>

namespace mcs::sim {

rt::Time Trace::worst_response(rt::TaskIndex task) const {
  rt::Time worst = 0;
  bool any = false;
  for (const JobRecord& job : jobs) {
    if (job.id.task != task) continue;
    any = true;
    if (!job.completed()) {
      return rt::kTimeMax;
    }
    worst = std::max(worst, job.response_time());
  }
  return any ? worst : 0;
}

bool Trace::all_deadlines_met() const {
  return !aborted &&
         std::none_of(jobs.begin(), jobs.end(),
                      [](const JobRecord& j) { return j.missed_deadline(); });
}

std::size_t Trace::deadline_misses() const {
  return static_cast<std::size_t>(
      std::count_if(jobs.begin(), jobs.end(),
                    [](const JobRecord& j) { return j.missed_deadline(); }));
}

}  // namespace mcs::sim
