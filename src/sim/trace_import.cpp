#include "sim/trace_import.hpp"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

namespace mcs::sim {

namespace {

[[noreturn]] void fail(const char* kind, std::size_t line,
                       const std::string& message) {
  throw TraceParseError(std::string(kind) + " line " + std::to_string(line) +
                        ": " + message);
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> cells;
  std::string current;
  for (const char c : line) {
    if (c == ',') {
      cells.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  cells.push_back(current);
  return cells;
}

class NameTable {
 public:
  explicit NameTable(const rt::TaskSet& tasks) {
    for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
      index_.emplace(tasks[i].name, i);
    }
  }

  rt::TaskIndex resolve(const std::string& name, const char* kind,
                        std::size_t line) const {
    const auto it = index_.find(name);
    if (it == index_.end()) {
      fail(kind, line, "unknown task '" + name + "'");
    }
    return it->second;
  }

 private:
  std::unordered_map<std::string, rt::TaskIndex> index_;
};

rt::Time parse_time(const std::string& cell, const char* kind,
                    std::size_t line) {
  if (cell.empty()) {
    return rt::kTimeMax;  // exporter omits kTimeMax fields
  }
  char* end = nullptr;
  const long long value = std::strtoll(cell.c_str(), &end, 10);
  if (end != cell.c_str() + cell.size()) {
    fail(kind, line, "malformed time value '" + cell + "'");
  }
  return static_cast<rt::Time>(value);
}

std::uint64_t parse_count(const std::string& cell, const char* kind,
                          std::size_t line) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(cell.c_str(), &end, 10);
  if (cell.empty() || end != cell.c_str() + cell.size()) {
    fail(kind, line, "malformed count '" + cell + "'");
  }
  return value;
}

std::optional<JobId> parse_job(const NameTable& names,
                               const std::string& cell, const char* kind,
                               std::size_t line) {
  if (cell.empty()) {
    return std::nullopt;
  }
  const std::size_t hash = cell.rfind('#');
  if (hash == std::string::npos || hash + 1 == cell.size()) {
    fail(kind, line, "malformed job reference '" + cell + "'");
  }
  JobId id;
  id.task = names.resolve(cell.substr(0, hash), kind, line);
  id.seq = parse_count(cell.substr(hash + 1), kind, line);
  return id;
}

CpuAction parse_action(const std::string& cell, std::size_t line) {
  if (cell == "idle") return CpuAction::kIdle;
  if (cell == "execute") return CpuAction::kExecute;
  if (cell == "urgent") return CpuAction::kUrgentExecute;
  fail("intervals.csv", line, "unknown cpu action '" + cell + "'");
}

CopyInOutcome parse_outcome(const std::string& cell, std::size_t line) {
  if (cell == "none") return CopyInOutcome::kNone;
  if (cell == "completed") return CopyInOutcome::kCompleted;
  if (cell == "cancelled") return CopyInOutcome::kCancelled;
  if (cell == "discarded") return CopyInOutcome::kDiscarded;
  fail("intervals.csv", line, "unknown copy-in outcome '" + cell + "'");
}

}  // namespace

Trace import_trace_csv(const rt::TaskSet& tasks, std::istream& intervals_csv,
                       std::istream& jobs_csv) {
  const NameTable names(tasks);
  Trace trace;

  std::string line;
  std::size_t line_no = 0;
  bool header = true;
  while (std::getline(intervals_csv, line)) {
    ++line_no;
    if (header) {
      header = false;  // column layout is fixed; skip the header row
      continue;
    }
    if (line.empty()) {
      continue;
    }
    const std::vector<std::string> cells = split_csv(line);
    if (cells.size() != 12) {
      fail("intervals.csv", line_no,
           "expected 12 columns, got " + std::to_string(cells.size()));
    }
    IntervalRecord rec;
    rec.index = static_cast<std::size_t>(
        parse_count(cells[0], "intervals.csv", line_no));
    rec.start = parse_time(cells[1], "intervals.csv", line_no);
    rec.end = parse_time(cells[2], "intervals.csv", line_no);
    rec.cpu_action = parse_action(cells[3], line_no);
    rec.cpu_job = parse_job(names, cells[4], "intervals.csv", line_no);
    rec.cpu_busy = parse_time(cells[5], "intervals.csv", line_no);
    rec.copy_out_job = parse_job(names, cells[6], "intervals.csv", line_no);
    rec.copy_out_duration = parse_time(cells[7], "intervals.csv", line_no);
    rec.copy_in_job = parse_job(names, cells[8], "intervals.csv", line_no);
    rec.copy_in_outcome = parse_outcome(cells[9], line_no);
    rec.copy_in_duration = parse_time(cells[10], "intervals.csv", line_no);
    rec.dma_busy = parse_time(cells[11], "intervals.csv", line_no);
    trace.intervals.push_back(rec);
  }

  line_no = 0;
  header = true;
  while (std::getline(jobs_csv, line)) {
    ++line_no;
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) {
      continue;
    }
    const std::vector<std::string> cells = split_csv(line);
    if (cells.size() != 11) {
      fail("jobs.csv", line_no,
           "expected 11 columns, got " + std::to_string(cells.size()));
    }
    JobRecord job;
    job.id.task = names.resolve(cells[0], "jobs.csv", line_no);
    job.id.seq = parse_count(cells[1], "jobs.csv", line_no);
    job.release = parse_time(cells[2], "jobs.csv", line_no);
    job.ready_time = parse_time(cells[3], "jobs.csv", line_no);
    job.absolute_deadline = job.release + tasks[job.id.task].deadline;
    job.copy_in_start = parse_time(cells[4], "jobs.csv", line_no);
    job.exec_start = parse_time(cells[5], "jobs.csv", line_no);
    job.completion = parse_time(cells[6], "jobs.csv", line_no);
    // cells[7] (response) and cells[8] (deadline_miss) are derived.
    job.became_urgent = cells[9] == "1";
    job.copy_in_cancellations = static_cast<std::uint32_t>(
        parse_count(cells[10], "jobs.csv", line_no));
    trace.jobs.push_back(job);
  }

  return trace;
}

Trace import_trace_csv_files(const rt::TaskSet& tasks,
                             const std::string& intervals_path,
                             const std::string& jobs_path) {
  std::ifstream intervals(intervals_path);
  if (!intervals) {
    throw TraceParseError("cannot open " + intervals_path);
  }
  std::ifstream jobs(jobs_path);
  if (!jobs) {
    throw TraceParseError("cannot open " + jobs_path);
  }
  return import_trace_csv(tasks, intervals, jobs);
}

}  // namespace mcs::sim
