#include "sim/chain_age.hpp"

#include <algorithm>
#include <vector>

#include "support/contracts.hpp"

namespace mcs::sim {

namespace {

using rt::Time;

/// Completed jobs of one task, sorted by completion time.
struct StageJobs {
  std::vector<const JobRecord*> jobs;

  /// Latest job whose completion is <= `instant`, or nullptr.
  const JobRecord* latest_before(Time instant) const {
    const JobRecord* best = nullptr;
    for (const JobRecord* job : jobs) {
      if (job->completion <= instant) {
        best = job;
      } else {
        break;
      }
    }
    return best;
  }
};

}  // namespace

ChainAgeMeasurement measure_chain_age(const rt::TaskSet& tasks,
                                      const rt::Chain& chain,
                                      const Trace& trace) {
  rt::validate_chain(tasks, chain);

  std::vector<StageJobs> stages(chain.tasks.size());
  for (const JobRecord& job : trace.jobs) {
    if (!job.completed()) continue;
    for (std::size_t s = 0; s < chain.tasks.size(); ++s) {
      if (job.id.task == chain.tasks[s]) {
        stages[s].jobs.push_back(&job);
      }
    }
  }
  for (StageJobs& stage : stages) {
    std::sort(stage.jobs.begin(), stage.jobs.end(),
              [](const JobRecord* a, const JobRecord* b) {
                return a->completion < b->completion;
              });
  }

  ChainAgeMeasurement result;
  Time worst = 0;
  for (const JobRecord* out : stages.back().jobs) {
    // Walk provenance from the last stage back to the first.
    const JobRecord* current = out;
    bool complete = true;
    for (std::size_t s = chain.tasks.size() - 1; s > 0; --s) {
      if (current->copy_in_start == rt::kTimeMax) {
        complete = false;
        break;
      }
      const JobRecord* producer =
          stages[s - 1].latest_before(current->copy_in_start);
      if (producer == nullptr) {
        complete = false;  // initial transient: no data version yet
        break;
      }
      current = producer;
    }
    if (!complete) continue;
    ++result.samples;
    worst = std::max(worst, out->completion - current->release);
  }
  if (result.samples > 0) {
    result.max_age = worst;
  }
  return result;
}

}  // namespace mcs::sim
