// Aggregate metrics over simulation traces: how well did the protocol hide
// memory transfers, how busy were the CPU and the DMA engine, and how much
// priority-inversion blocking did jobs actually experience.  Used by the
// trace-explorer example and the tightness bench; handy for any user
// studying protocol behaviour quantitatively.
#pragma once

#include <cstddef>

#include "rt/task.hpp"
#include "sim/trace.hpp"

namespace mcs::sim {

struct TraceMetrics {
  rt::Time span = 0;            ///< first interval start .. last interval end
  rt::Time cpu_busy = 0;        ///< total CPU execution time
  rt::Time dma_busy = 0;        ///< total DMA transfer time
  /// Memory-phase time that overlapped CPU execution: DMA work performed in
  /// intervals whose CPU was busy at least as long.  The protocol's whole
  /// point is to push this toward dma_busy.
  rt::Time dma_hidden = 0;
  /// Memory-phase time that extended intervals beyond the CPU work
  /// (dma_busy - dma_hidden): the "junction cost" the analysis charges.
  rt::Time dma_exposed = 0;
  /// Copy-in time spent by the CPU itself (urgent executions, R5).
  rt::Time cpu_copy_in = 0;
  std::size_t jobs_completed = 0;
  std::size_t deadline_misses = 0;
  std::size_t cancellations = 0;  ///< cancelled + discarded copy-ins
  std::size_t urgent_promotions = 0;

  double cpu_utilization() const noexcept {
    return span > 0 ? static_cast<double>(cpu_busy) /
                          static_cast<double>(span)
                    : 0.0;
  }
  double dma_utilization() const noexcept {
    return span > 0 ? static_cast<double>(dma_busy) /
                          static_cast<double>(span)
                    : 0.0;
  }
  /// Fraction of DMA transfer time hidden behind execution (0 when the
  /// trace had no DMA work at all).
  double hiding_ratio() const noexcept {
    return dma_busy > 0 ? static_cast<double>(dma_hidden) /
                              static_cast<double>(dma_busy)
                        : 0.0;
  }
};

/// Computes metrics over an interval-protocol or NPS trace.
TraceMetrics compute_metrics(const rt::TaskSet& tasks, const Trace& trace);

}  // namespace mcs::sim
