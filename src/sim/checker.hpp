// Trace invariant checkers.
//
// Validates simulator traces against the structural properties proved in
// the paper (§IV-B):
//   Property 1 — an NLS execution in I_k has its copy-in in I_{k-1} and its
//                copy-out in I_{k+1};
//   Property 2 — an LS execution in I_k has its copy-out in I_{k+1};
//   Property 3 — an NLS job is blocked by lower-priority executions in at
//                most two intervals;
//   Property 4 — an LS job is blocked in at most one interval;
// plus engine-level sanity invariants (contiguous intervals, interval
// length = max(CPU, DMA) work, single execution / copy-in / copy-out per
// interval, completion bookkeeping).
//
// The property tests run these checkers over thousands of random traces —
// they are the executable form of the paper's proofs.
#pragma once

#include <string>
#include <vector>

#include "rt/task.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace mcs::sim {

struct CheckResult {
  std::vector<std::string> violations;
  bool ok() const noexcept { return violations.empty(); }
};

/// Runs every applicable invariant on `trace` (produced by `protocol` over
/// `tasks`).  Returns all violations found, empty when the trace is clean.
CheckResult check_trace(const rt::TaskSet& tasks, Protocol protocol,
                        const Trace& trace);

/// Number of distinct intervals in which a lower-priority task occupies the
/// CPU while `job` is ready-but-not-yet-executing (the paper's notion of
/// priority-inversion blocking).  Exposed for tests.
std::size_t count_blocking_intervals(const rt::TaskSet& tasks,
                                     const Trace& trace,
                                     const JobRecord& job);

}  // namespace mcs::sim
