// Trace-level measurement of end-to-end data age for task chains —
// the executable counterpart of analysis/chains.hpp.
//
// For every completed job of the last chain task, walk the data flow
// backwards: stage i's job sampled the latest stage-(i-1) job whose
// completion (copy-out end, when the data became visible in global memory)
// is no later than the sampler's copy-in start.  The age of the output is
// its completion time minus the release of the originating first-stage job.
#pragma once

#include "rt/chain.hpp"
#include "rt/task.hpp"
#include "sim/trace.hpp"

namespace mcs::sim {

struct ChainAgeMeasurement {
  /// Largest observed end-to-end data age (kTimeMax when no output ever
  /// traced back to a first-stage sample).
  rt::Time max_age = rt::kTimeMax;
  /// Number of last-stage outputs with a complete provenance.
  std::size_t samples = 0;
};

/// Measures the maximum data age of `chain` over `trace`.
ChainAgeMeasurement measure_chain_age(const rt::TaskSet& tasks,
                                      const rt::Chain& chain,
                                      const Trace& trace);

}  // namespace mcs::sim
