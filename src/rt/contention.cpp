#include "rt/contention.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace mcs::rt {

const char* to_string(ContentionPolicy policy) noexcept {
  switch (policy) {
    case ContentionPolicy::kFullyBacklogged:
      return "fully-backlogged";
    case ContentionPolicy::kDemandAware:
      return "demand-aware";
  }
  return "unknown";
}

double dma_utilization(const TaskSet& tasks) {
  double total = 0.0;
  for (const Task& t : tasks) {
    total += static_cast<double>(t.copy_in + t.copy_out) /
             static_cast<double>(t.period);
  }
  return total;
}

double contention_factor(const std::vector<TaskSet>& cores, std::size_t core,
                         ContentionPolicy policy) {
  MCS_REQUIRE(core < cores.size(), "contention_factor: bad core index");
  switch (policy) {
    case ContentionPolicy::kFullyBacklogged:
      return static_cast<double>(cores.size());
    case ContentionPolicy::kDemandAware: {
      double factor = 1.0;
      for (std::size_t j = 0; j < cores.size(); ++j) {
        if (j == core) continue;
        factor += std::min(1.0, dma_utilization(cores[j]));
      }
      return factor;
    }
  }
  return 1.0;
}

std::vector<TaskSet> apply_memory_contention(const std::vector<TaskSet>& cores,
                                             ContentionPolicy policy) {
  std::vector<TaskSet> inflated;
  inflated.reserve(cores.size());
  for (std::size_t m = 0; m < cores.size(); ++m) {
    const double factor = contention_factor(cores, m, policy);
    MCS_ASSERT(factor >= 1.0, "contention factor below one");
    TaskSet scaled = cores[m];
    for (std::size_t i = 0; i < scaled.size(); ++i) {
      scaled[i].copy_in = static_cast<Time>(
          std::ceil(static_cast<double>(scaled[i].copy_in) * factor));
      scaled[i].copy_out = static_cast<Time>(
          std::ceil(static_cast<double>(scaled[i].copy_out) * factor));
    }
    inflated.push_back(std::move(scaled));
  }
  return inflated;
}

}  // namespace mcs::rt
