// Plain-text workload format: load and save task sets (and cause-effect
// chains) so workloads can live in version-controlled files and feed the
// CLI tool (tools/mcs_cli.cpp).
//
// Format — line oriented, '#' starts a comment:
//
//   task <name> C=<ticks> l=<ticks> u=<ticks> T=<ticks> D=<ticks>
//        [prio=<n>] [ls]            (one line per task)
//   chain <name> [age=<ticks>] tasks=<name1,name2,...>
//
// Either every task carries an explicit prio= or none does; in the latter
// case deadline-monotonic priorities are assigned on load.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rt/chain.hpp"
#include "rt/task.hpp"

namespace mcs::rt {

struct Workload {
  TaskSet tasks;
  std::vector<Chain> chains;
};

/// Parses the workload format.  Throws std::runtime_error with a
/// line-numbered message on malformed input; the returned workload is
/// validated (TaskSet invariants + chain references).
Workload load_workload(std::istream& in);
Workload load_workload_file(const std::string& path);

/// Writes `workload` in the same format (always with explicit prio=).
void save_workload(const Workload& workload, std::ostream& out);

}  // namespace mcs::rt
