// Global-memory contention inflation (paper §II: "Both delays may account
// for the possible contention in global memory, computed using the
// analysis techniques in [7, 8]").
//
// The platform model shares one global memory among P per-core DMA
// engines through a fair (round-robin, beat-level) arbiter.  A transfer
// that takes d time units in isolation can be delayed by interleaved beats
// of the other cores' DMAs; this module computes safe inflation factors
// for the copy-in/copy-out bounds (l_i, u_i) of each core's task set:
//
//  * kFullyBacklogged — every other DMA is assumed continuously busy:
//        d' = d * P            (the classic safe round-robin bound);
//  * kDemandAware — core j can only steal beats while it has DMA work:
//        d' = d * (1 + sum_{j != m} min(1, U_dma_j))
//    where U_dma_j = sum_i (l_i + u_i) / T_i over core j's tasks is the
//    long-run DMA utilization of core j; a core with U_dma_j < 1 cannot
//    keep the arbiter busy in every round in the long run.
//
// The inflated task sets feed the ordinary per-core analysis (§II's
// partitioned scheme: each core analyzed in isolation once its memory
// phases account for cross-core interference).
#pragma once

#include <vector>

#include "rt/task.hpp"

namespace mcs::rt {

enum class ContentionPolicy {
  kFullyBacklogged,
  kDemandAware,
};

const char* to_string(ContentionPolicy policy) noexcept;

/// Long-run DMA utilization of one core's task set:
/// sum (l_i + u_i) / T_i.
double dma_utilization(const TaskSet& tasks);

/// Inflation factor applied to core `core`'s memory phases when the other
/// task sets in `cores` share the global memory.
double contention_factor(const std::vector<TaskSet>& cores, std::size_t core,
                         ContentionPolicy policy);

/// Returns a copy of `cores` with every task's copy_in / copy_out scaled by
/// the per-core contention factor (rounded up — safe).
std::vector<TaskSet> apply_memory_contention(const std::vector<TaskSet>& cores,
                                             ContentionPolicy policy);

}  // namespace mcs::rt
