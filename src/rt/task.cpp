#include "rt/task.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "support/contracts.hpp"

namespace mcs::rt {

TaskSet::TaskSet(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
  validate();
}

void TaskSet::push_back(Task task) { tasks_.push_back(std::move(task)); }

void TaskSet::validate() {
  std::unordered_set<Priority> seen;
  for (Task& t : tasks_) {
    MCS_REQUIRE(t.exec > 0, "task '" + t.name + "': C must be positive");
    MCS_REQUIRE(t.copy_in >= 0 && t.copy_out >= 0,
                "task '" + t.name + "': negative memory phase");
    MCS_REQUIRE(t.period > 0, "task '" + t.name + "': T must be positive");
    MCS_REQUIRE(t.deadline > 0, "task '" + t.name + "': D must be positive");
    MCS_REQUIRE(seen.insert(t.priority).second,
                "task '" + t.name + "': duplicate priority");
    if (!t.arrival) {
      t.arrival = make_sporadic(t.period);
    }
  }
}

std::vector<TaskIndex> TaskSet::higher_priority(TaskIndex i) const {
  MCS_REQUIRE(i < tasks_.size(), "higher_priority: index out of range");
  std::vector<TaskIndex> result;
  for (TaskIndex j = 0; j < tasks_.size(); ++j) {
    if (tasks_[j].priority < tasks_[i].priority) {
      result.push_back(j);
    }
  }
  return result;
}

std::vector<TaskIndex> TaskSet::lower_priority(TaskIndex i) const {
  MCS_REQUIRE(i < tasks_.size(), "lower_priority: index out of range");
  std::vector<TaskIndex> result;
  for (TaskIndex j = 0; j < tasks_.size(); ++j) {
    if (tasks_[j].priority > tasks_[i].priority) {
      result.push_back(j);
    }
  }
  return result;
}

std::vector<TaskIndex> TaskSet::by_priority() const {
  std::vector<TaskIndex> order(tasks_.size());
  std::iota(order.begin(), order.end(), TaskIndex{0});
  std::sort(order.begin(), order.end(), [this](TaskIndex a, TaskIndex b) {
    return tasks_[a].priority < tasks_[b].priority;
  });
  return order;
}

double TaskSet::utilization() const noexcept {
  double total = 0.0;
  for (const Task& t : tasks_) {
    total += t.utilization();
  }
  return total;
}

double TaskSet::total_utilization() const noexcept {
  double total = 0.0;
  for (const Task& t : tasks_) {
    total += static_cast<double>(t.total_demand()) /
             static_cast<double>(t.period);
  }
  return total;
}

std::vector<TaskIndex> TaskSet::latency_sensitive_tasks() const {
  std::vector<TaskIndex> result;
  for (TaskIndex i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].latency_sensitive) {
      result.push_back(i);
    }
  }
  return result;
}

Time TaskSet::max_copy_in() const noexcept {
  Time best = 0;
  for (const Task& t : tasks_) {
    best = std::max(best, t.copy_in);
  }
  return best;
}

Time TaskSet::max_copy_out() const noexcept {
  Time best = 0;
  for (const Task& t : tasks_) {
    best = std::max(best, t.copy_out);
  }
  return best;
}

void TaskSet::assign_deadline_monotonic_priorities() {
  std::vector<TaskIndex> order(tasks_.size());
  std::iota(order.begin(), order.end(), TaskIndex{0});
  std::sort(order.begin(), order.end(), [this](TaskIndex a, TaskIndex b) {
    if (tasks_[a].deadline != tasks_[b].deadline) {
      return tasks_[a].deadline < tasks_[b].deadline;
    }
    return a < b;
  });
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    tasks_[order[rank]].priority = static_cast<Priority>(rank);
  }
}

}  // namespace mcs::rt
