// Arrival-curve estimation from observed release times.
//
// The paper's analysis consumes arrival curves eta(delta) (§II, [17] —
// SymTA/S-style event models).  In practice curves are often *measured*:
// given a recorded sequence of release instants, the tightest staircase
// curve consistent with the observation is
//
//   eta(delta) = max over i of |{ r_j : r_i <= r_j < r_i + delta }|,
//
// the classic sliding-window maximum.  The result is a StaircaseArrival
// usable anywhere the analysis takes a curve; it is an *estimate* — a
// lower bound on the true worst case — so treat it as such (e.g. add
// margin) when the trace may not contain the densest burst.
#pragma once

#include <vector>

#include "rt/arrival.hpp"
#include "rt/types.hpp"

namespace mcs::rt {

/// Builds the tightest staircase curve consistent with `releases`
/// (unsorted input is fine; duplicates allowed).  Requires at least one
/// release.  The curve's breakpoints are the distinct pairwise distances
/// observed, so eta() is exact for the given trace at every delta.
ArrivalCurvePtr estimate_arrival_curve(std::vector<Time> releases);

}  // namespace mcs::rt
