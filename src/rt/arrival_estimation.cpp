#include "rt/arrival_estimation.hpp"

#include <algorithm>
#include <map>

#include "support/contracts.hpp"

namespace mcs::rt {

ArrivalCurvePtr estimate_arrival_curve(std::vector<Time> releases) {
  MCS_REQUIRE(!releases.empty(), "estimate_arrival_curve: no releases");
  std::sort(releases.begin(), releases.end());
  const std::size_t n = releases.size();

  // For each count k (2..n), the smallest window that contains k releases
  // is min over i of (r_{i+k-1} - r_i); eta(delta) >= k exactly when
  // delta > that distance (open-window convention: a window of length
  // exactly d starting at r_i covers [r_i, r_i + d), so the k-th release
  // at distance d is *excluded* — matching eta(T) = 1 for a periodic
  // task).
  std::map<Time, std::uint64_t> count_at;  // window length -> releases
  for (std::size_t k = 2; k <= n; ++k) {
    Time best = kTimeMax;
    for (std::size_t i = 0; i + k - 1 < n; ++i) {
      best = std::min(best, releases[i + k - 1] - releases[i]);
    }
    // k releases fit in any window strictly longer than `best`.
    count_at[best + 1] =
        std::max(count_at[best + 1], static_cast<std::uint64_t>(k));
  }

  std::vector<std::pair<Time, std::uint64_t>> steps;
  steps.emplace_back(1, 1);  // any non-empty window can hold one release
  std::uint64_t running = 1;
  for (const auto& [length, count] : count_at) {
    if (count <= running) continue;
    running = count;
    if (!steps.empty() && steps.back().first == length) {
      steps.back().second = count;
    } else {
      steps.emplace_back(length, count);
    }
  }
  return std::make_shared<StaircaseArrival>(std::move(steps));
}

}  // namespace mcs::rt
