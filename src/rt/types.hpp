// Fundamental types of the real-time task model (paper §II).
//
// Time is kept in integer ticks so the simulator is exact and response-time
// comparisons are free of floating-point surprises; the generator scales
// real-valued parameters into ticks (DESIGN.md §5.1).
#pragma once

#include <cstdint>
#include <limits>

namespace mcs::rt {

/// Discrete time in ticks. One paper time-unit = kTicksPerUnit ticks.
using Time = std::int64_t;

/// Scaling applied by the task-set generator when converting the paper's
/// real-valued parameters (periods in [10,100] units, UUniFast utilizations)
/// into ticks.
inline constexpr Time kTicksPerUnit = 1'000'000;

/// Sentinel for "no deadline / unbounded".
inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

/// Index of a task inside its TaskSet.
using TaskIndex = std::size_t;

/// Unique task priority; *smaller value means higher priority*.
using Priority = std::uint32_t;

/// Ceiling division for non-negative integers; ceil(a / b) with b > 0.
constexpr Time ceil_div(Time a, Time b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace mcs::rt
