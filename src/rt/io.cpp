#include "rt/io.hpp"

#include <charconv>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "support/contracts.hpp"

namespace mcs::rt {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error("workload line " + std::to_string(line) + ": " +
                           message);
}

Time parse_ticks(std::size_t line, const std::string& text) {
  Time value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    fail(line, "invalid number '" + text + "'");
  }
  return value;
}

/// Splits "key=value" tokens; bare tokens get an empty value.
std::pair<std::string, std::string> split_kv(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) {
    return {token, ""};
  }
  return {token.substr(0, eq), token.substr(eq + 1)};
}

}  // namespace

Workload load_workload(std::istream& in) {
  std::vector<Task> tasks;
  std::map<std::string, TaskIndex> by_name;
  struct PendingChain {
    std::size_t line;
    Chain chain;
    std::vector<std::string> member_names;
  };
  std::vector<PendingChain> pending_chains;
  std::size_t with_priority = 0;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) {
      raw.resize(hash);
    }
    std::istringstream line(raw);
    std::string kind;
    if (!(line >> kind)) {
      continue;  // blank / comment-only line
    }

    if (kind == "task") {
      Task task;
      if (!(line >> task.name)) {
        fail(line_no, "task without a name");
      }
      if (by_name.count(task.name) != 0) {
        fail(line_no, "duplicate task '" + task.name + "'");
      }
      bool has_c = false, has_t = false, has_d = false, has_prio = false;
      task.copy_in = 0;
      task.copy_out = 0;
      std::string token;
      while (line >> token) {
        const auto [key, value] = split_kv(token);
        if (key == "C") {
          task.exec = parse_ticks(line_no, value);
          has_c = true;
        } else if (key == "l") {
          task.copy_in = parse_ticks(line_no, value);
        } else if (key == "u") {
          task.copy_out = parse_ticks(line_no, value);
        } else if (key == "T") {
          task.period = parse_ticks(line_no, value);
          has_t = true;
        } else if (key == "D") {
          task.deadline = parse_ticks(line_no, value);
          has_d = true;
        } else if (key == "prio") {
          task.priority =
              static_cast<Priority>(parse_ticks(line_no, value));
          has_prio = true;
        } else if (key == "ls") {
          task.latency_sensitive = true;
        } else {
          fail(line_no, "unknown attribute '" + key + "'");
        }
      }
      if (!has_c || !has_t) {
        fail(line_no, "task needs at least C= and T=");
      }
      if (!has_d) {
        task.deadline = task.period;  // implicit deadline
      }
      if (has_prio) {
        ++with_priority;
      }
      by_name[task.name] = tasks.size();
      tasks.push_back(std::move(task));
    } else if (kind == "chain") {
      PendingChain pc;
      pc.line = line_no;
      if (!(line >> pc.chain.name)) {
        fail(line_no, "chain without a name");
      }
      std::string token;
      while (line >> token) {
        const auto [key, value] = split_kv(token);
        if (key == "age") {
          pc.chain.max_data_age = parse_ticks(line_no, value);
        } else if (key == "tasks") {
          std::istringstream list(value);
          std::string member;
          while (std::getline(list, member, ',')) {
            if (!member.empty()) {
              pc.member_names.push_back(member);
            }
          }
        } else {
          fail(line_no, "unknown attribute '" + key + "'");
        }
      }
      if (pc.member_names.empty()) {
        fail(line_no, "chain needs tasks=<a,b,...>");
      }
      pending_chains.push_back(std::move(pc));
    } else {
      fail(line_no, "unknown directive '" + kind + "'");
    }
  }

  if (tasks.empty()) {
    throw std::runtime_error("workload: no tasks defined");
  }
  if (with_priority != 0 && with_priority != tasks.size()) {
    throw std::runtime_error(
        "workload: either every task needs prio= or none");
  }

  Workload workload;
  // Defer validation until priorities are final: without explicit prio=
  // every parsed task still carries the default priority 0.
  for (Task& task : tasks) {
    workload.tasks.push_back(std::move(task));
  }
  if (with_priority == 0) {
    workload.tasks.assign_deadline_monotonic_priorities();
  }
  workload.tasks.validate();

  for (PendingChain& pc : pending_chains) {
    for (const std::string& member : pc.member_names) {
      const auto it = by_name.find(member);
      if (it == by_name.end()) {
        fail(pc.line, "chain references unknown task '" + member + "'");
      }
      pc.chain.tasks.push_back(it->second);
    }
    validate_chain(workload.tasks, pc.chain);
    workload.chains.push_back(std::move(pc.chain));
  }
  return workload;
}

Workload load_workload_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("workload: cannot open '" + path + "'");
  }
  return load_workload(in);
}

void save_workload(const Workload& workload, std::ostream& out) {
  out << "# mcs-cosched workload (task <name> C= l= u= T= D= prio= [ls])\n";
  for (const Task& t : workload.tasks) {
    out << "task " << t.name << " C=" << t.exec << " l=" << t.copy_in
        << " u=" << t.copy_out << " T=" << t.period << " D=" << t.deadline
        << " prio=" << t.priority;
    if (t.latency_sensitive) {
      out << " ls";
    }
    out << "\n";
  }
  for (const Chain& chain : workload.chains) {
    out << "chain " << chain.name;
    if (chain.max_data_age > 0) {
      out << " age=" << chain.max_data_age;
    }
    out << " tasks=";
    for (std::size_t i = 0; i < chain.tasks.size(); ++i) {
      if (i != 0) out << ',';
      out << workload.tasks[chain.tasks[i]].name;
    }
    out << "\n";
  }
}

}  // namespace mcs::rt
