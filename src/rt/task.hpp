// Task and task-set model (paper §II).
//
// Each task follows the three-phase PREM-style execution model: a copy-in
// phase of worst-case length `l` (global -> local memory), an execution
// phase of WCET `C` touching only local memory, and a copy-out phase of
// worst-case length `u` (local -> global).  Tasks are partitioned to cores
// and execute non-preemptively; a TaskSet models one core's partition.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rt/arrival.hpp"
#include "rt/types.hpp"

namespace mcs::rt {

/// One sporadic real-time task.
///
/// Plain data with validation performed by TaskSet; smaller `priority`
/// value means higher priority, and priorities are unique within a set.
struct Task {
  std::string name;
  Time exec = 0;      ///< C_i: WCET of the execution phase (ticks)
  Time copy_in = 0;   ///< l_i: worst-case copy-in (load) duration
  Time copy_out = 0;  ///< u_i: worst-case copy-out (unload) duration
  Time period = 0;    ///< T_i: minimum inter-arrival time
  Time deadline = 0;  ///< D_i: relative deadline
  Priority priority = 0;
  bool latency_sensitive = false;  ///< member of Gamma_LS (paper §IV)
  ArrivalCurvePtr arrival;  ///< defaults to sporadic(period) when null

  /// Total non-overlapped demand l + C + u (the NPS execution cost).
  Time total_demand() const noexcept { return copy_in + exec + copy_out; }
  /// Utilization C / T of the execution phase, as in the paper's generator.
  double utilization() const noexcept {
    return static_cast<double>(exec) / static_cast<double>(period);
  }
};

/// The set of tasks partitioned to one core, ordered arbitrarily.
///
/// Invariants (established by validate(), required by analysis/simulator):
/// positive periods; non-negative phase durations with exec > 0; positive
/// deadlines; unique priorities; every task has an arrival curve.
class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::vector<Task> tasks);

  /// Throws ContractViolation when an invariant fails; fills in default
  /// sporadic arrival curves.  Called by the constructor.
  void validate();

  std::size_t size() const noexcept { return tasks_.size(); }
  bool empty() const noexcept { return tasks_.empty(); }
  const Task& operator[](TaskIndex i) const { return tasks_[i]; }
  Task& operator[](TaskIndex i) { return tasks_[i]; }
  const std::vector<Task>& tasks() const noexcept { return tasks_; }

  auto begin() const noexcept { return tasks_.begin(); }
  auto end() const noexcept { return tasks_.end(); }

  void push_back(Task task);

  /// Indices of tasks with strictly higher priority than task `i`
  /// (hp(tau_i) in the paper).
  std::vector<TaskIndex> higher_priority(TaskIndex i) const;
  /// Indices of tasks with strictly lower priority than task `i`.
  std::vector<TaskIndex> lower_priority(TaskIndex i) const;
  /// All indices sorted from highest priority (smallest value) down.
  std::vector<TaskIndex> by_priority() const;

  /// Sum of C_i / T_i (the paper's task-set utilization U).
  double utilization() const noexcept;
  /// Sum of (l_i + C_i + u_i) / T_i — total demand including memory phases.
  double total_utilization() const noexcept;

  /// Indices of latency-sensitive tasks (Gamma_LS).
  std::vector<TaskIndex> latency_sensitive_tasks() const;

  /// Largest copy-in / copy-out durations over the whole set (used by the
  /// analysis boundary constraints, paper Constraint 12).
  Time max_copy_in() const noexcept;
  Time max_copy_out() const noexcept;

  /// Reassigns priorities deadline-monotonically (ties by index), keeping
  /// task order stable.  See DESIGN.md §5.2.
  void assign_deadline_monotonic_priorities();

 private:
  std::vector<Task> tasks_;
};

}  // namespace mcs::rt
