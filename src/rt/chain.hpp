// Data-driven task chains (cause-effect chains) — the extension the paper
// flags as future work (§IV-A / §VIII: "the copy-out phase is performed as
// soon as possible ... This also allows extending the protocol to the case
// of communicating tasks (e.g., for data-driven task chains)").
//
// Tasks communicate through global memory: a producer's result becomes
// visible when its copy-out completes; a consumer samples the latest
// visible version when its own copy-in starts.  Chains are sequences of
// tasks on the same core with independent (sporadic/periodic) activations —
// the classic "sampling" chain model, for which end-to-end latency bounds
// compose from per-task periods and response times (analysis/chains.hpp).
#pragma once

#include <string>
#include <vector>

#include "rt/task.hpp"
#include "rt/types.hpp"

namespace mcs::rt {

/// A cause-effect chain tau_{c_1} -> tau_{c_2} -> ... -> tau_{c_m}.
struct Chain {
  std::string name;
  /// Task indices in data-flow order; at least two, all distinct.
  std::vector<TaskIndex> tasks;
  /// Optional end-to-end constraint on the maximum data age (0 = none).
  Time max_data_age = 0;
};

/// Validates `chain` against `tasks`: existing indices, length >= 2, no
/// repetition.  Throws ContractViolation on failure.
void validate_chain(const TaskSet& tasks, const Chain& chain);

}  // namespace mcs::rt
