// Arrival curves (paper §II): eta_i(delta) upper-bounds the number of
// release events of task i in any time interval of length delta.
//
// The paper's experiments use the sporadic event model eta(delta) =
// ceil(delta / T); periodic-with-jitter and explicit staircase curves are
// provided for generality and for tests.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "rt/types.hpp"

namespace mcs::rt {

/// Upper arrival curve: maximum number of releases in any window of length
/// `delta` (the paper's open-interval convention: a sporadic task with
/// minimum inter-arrival T has eta(kT) = k).
class ArrivalCurve {
 public:
  virtual ~ArrivalCurve() = default;

  /// Number of releases in any window of length `delta` >= 0.
  /// Must be monotone non-decreasing in `delta`, with eta(0) == 0.
  virtual std::uint64_t releases_in(Time delta) const = 0;

  /// Maximum releases in any *closed* window [a, a + delta] (both endpoints
  /// included) — what classical busy-period analyses count.  The default
  /// eta(delta) + 1 is always safe; subclasses tighten it.
  virtual std::uint64_t releases_in_closed(Time delta) const {
    return releases_in(delta) + 1;
  }

  /// Smallest separation between consecutive releases this curve allows;
  /// used for simulator release-pattern generation. 1 if unknown.
  virtual Time min_separation() const = 0;
};

using ArrivalCurvePtr = std::shared_ptr<const ArrivalCurve>;

/// Sporadic / periodic model: eta(delta) = ceil(delta / T).
class SporadicArrival final : public ArrivalCurve {
 public:
  explicit SporadicArrival(Time min_inter_arrival);
  std::uint64_t releases_in(Time delta) const override;
  std::uint64_t releases_in_closed(Time delta) const override;
  Time min_separation() const override { return period_; }
  Time period() const noexcept { return period_; }

 private:
  Time period_;
};

/// Periodic task with release jitter: eta(delta) = ceil((delta + J) / T).
class PeriodicJitterArrival final : public ArrivalCurve {
 public:
  PeriodicJitterArrival(Time period, Time jitter);
  std::uint64_t releases_in(Time delta) const override;
  std::uint64_t releases_in_closed(Time delta) const override;
  Time min_separation() const override;
  Time period() const noexcept { return period_; }
  Time jitter() const noexcept { return jitter_; }

 private:
  Time period_;
  Time jitter_;
};

/// Explicit staircase curve given as (window length, releases) breakpoints;
/// releases_in(delta) = count of the last breakpoint with length <= delta.
/// Useful for table-driven tests and measured event models.
class StaircaseArrival final : public ArrivalCurve {
 public:
  /// `steps` must be sorted by window length, strictly increasing, with
  /// non-decreasing release counts; an implicit (0, 0) step is prepended.
  explicit StaircaseArrival(std::vector<std::pair<Time, std::uint64_t>> steps);
  std::uint64_t releases_in(Time delta) const override;
  Time min_separation() const override;

 private:
  std::vector<std::pair<Time, std::uint64_t>> steps_;
};

/// Convenience factory for the paper's sporadic model.
ArrivalCurvePtr make_sporadic(Time min_inter_arrival);

}  // namespace mcs::rt
