#include "rt/chain.hpp"

#include <unordered_set>

#include "support/contracts.hpp"

namespace mcs::rt {

void validate_chain(const TaskSet& tasks, const Chain& chain) {
  MCS_REQUIRE(chain.tasks.size() >= 2,
              "chain '" + chain.name + "': needs at least two tasks");
  std::unordered_set<TaskIndex> seen;
  for (const TaskIndex idx : chain.tasks) {
    MCS_REQUIRE(idx < tasks.size(),
                "chain '" + chain.name + "': unknown task index");
    MCS_REQUIRE(seen.insert(idx).second,
                "chain '" + chain.name + "': repeated task");
  }
  MCS_REQUIRE(chain.max_data_age >= 0,
              "chain '" + chain.name + "': negative age constraint");
}

}  // namespace mcs::rt
