#include "rt/arrival.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace mcs::rt {

SporadicArrival::SporadicArrival(Time min_inter_arrival)
    : period_(min_inter_arrival) {
  MCS_REQUIRE(period_ > 0, "sporadic arrival needs positive inter-arrival");
}

std::uint64_t SporadicArrival::releases_in(Time delta) const {
  MCS_REQUIRE(delta >= 0, "releases_in: negative window");
  if (delta == 0) {
    return 0;
  }
  return static_cast<std::uint64_t>(ceil_div(delta, period_));
}

std::uint64_t SporadicArrival::releases_in_closed(Time delta) const {
  MCS_REQUIRE(delta >= 0, "releases_in_closed: negative window");
  // Releases at 0, T, 2T, ... within [0, delta]: floor(delta / T) + 1.
  return static_cast<std::uint64_t>(delta / period_) + 1;
}

PeriodicJitterArrival::PeriodicJitterArrival(Time period, Time jitter)
    : period_(period), jitter_(jitter) {
  MCS_REQUIRE(period_ > 0, "periodic arrival needs positive period");
  MCS_REQUIRE(jitter_ >= 0, "negative jitter");
}

std::uint64_t PeriodicJitterArrival::releases_in(Time delta) const {
  MCS_REQUIRE(delta >= 0, "releases_in: negative window");
  if (delta == 0) {
    return 0;
  }
  return static_cast<std::uint64_t>(ceil_div(delta + jitter_, period_));
}

std::uint64_t PeriodicJitterArrival::releases_in_closed(Time delta) const {
  MCS_REQUIRE(delta >= 0, "releases_in_closed: negative window");
  return static_cast<std::uint64_t>((delta + jitter_) / period_) + 1;
}

Time PeriodicJitterArrival::min_separation() const {
  // Two jittered releases can be as close as max(1, T - J).
  return std::max<Time>(1, period_ - jitter_);
}

StaircaseArrival::StaircaseArrival(
    std::vector<std::pair<Time, std::uint64_t>> steps)
    : steps_(std::move(steps)) {
  Time prev_len = 0;
  std::uint64_t prev_count = 0;
  for (const auto& [len, count] : steps_) {
    MCS_REQUIRE(len > prev_len || (prev_len == 0 && len == 0),
                "staircase steps must be strictly increasing in length");
    MCS_REQUIRE(count >= prev_count,
                "staircase release counts must be non-decreasing");
    prev_len = len;
    prev_count = count;
  }
}

std::uint64_t StaircaseArrival::releases_in(Time delta) const {
  MCS_REQUIRE(delta >= 0, "releases_in: negative window");
  std::uint64_t count = 0;
  for (const auto& [len, step_count] : steps_) {
    if (len <= delta) {
      count = step_count;
    } else {
      break;
    }
  }
  return count;
}

Time StaircaseArrival::min_separation() const {
  // Conservative: the smallest window that admits two releases.
  for (const auto& [len, count] : steps_) {
    if (count >= 2) {
      return std::max<Time>(1, len);
    }
  }
  return 1;
}

ArrivalCurvePtr make_sporadic(Time min_inter_arrival) {
  return std::make_shared<SporadicArrival>(min_inter_arrival);
}

}  // namespace mcs::rt
