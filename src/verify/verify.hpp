// mcs::verify — bounded exhaustive model checking of the R1-R6 protocol.
//
// The simulator samples executions; the per-trace auditor (check/) judges
// one execution at a time.  This layer closes the remaining gap: it
// explores *every* execution a bounded nondeterministic release model
// admits — all initial offsets and per-job jitters on a tick lattice, and
// with them every DMA-vs-CPU phase interleaving and R3/R4 tie-break the
// rules leave open — and checks each reachable transition against the
// protocol invariants (Properties 1-4, deadlock/livelock freedom, R3
// cancellation bookkeeping) plus the cross-layer headline property:
//
//   analysis soundness — the exact worst-case response time obtained by
//   exhaustion must never exceed the AnalysisEngine's MILP bound.
//
// The release model is a *legal subset* of the sporadic task model (every
// explored arrival sequence respects minimum inter-arrival times), so the
// exhaustive WCRT is a lower bound on the true sporadic WCRT and the
// comparison direction above is the sound one: if even the explored subset
// beats the analysis bound, the analysis is broken.
//
// Violations are reported in the mcs::check vocabulary (rules MCS-V001..
// MCS-V010, see docs/LINTING.md) and carry a counterexample that replays
// through sim::IntervalStepper into a sim::Trace and its
// check::audit_trace report — every finding is a runnable, auditable
// execution, not an abstract state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/response_time.hpp"
#include "check/diagnostics.hpp"
#include "rt/task.hpp"
#include "sim/engine.hpp"
#include "sim/step.hpp"
#include "sim/trace.hpp"

namespace mcs::verify {

struct VerifyOptions {
  /// Exploration horizon in ticks; releases happen strictly before it.
  /// 0 = twice the task-set hyperperiod, clamped to `max_horizon`.
  rt::Time horizon = 0;
  /// Release-time quantum: offsets and jitters are multiples of this.
  /// 0 = the gcd of all periods (at least 1).
  rt::Time lattice = 0;
  /// A task's first release is offset by {0..offset_steps} lattice ticks.
  std::uint32_t offset_steps = 2;
  /// Each subsequent inter-arrival is T + {0..jitter_steps} lattice ticks.
  std::uint32_t jitter_steps = 1;
  /// Clamp for the automatic horizon (huge hyperperiods stay bounded).
  rt::Time max_horizon = 4096;
  /// State budget; exploration past it reports complete=false (exit 2 in
  /// mcs_lint verify) rather than an unsound verdict.
  std::size_t max_states = 1u << 18;
  /// Consecutive zero-length intervals tolerated before MCS-V006 calls the
  /// path a livelock.
  std::uint32_t max_zero_length_run = 16;
  /// Worker threads for frontier expansion (0 = hardware concurrency).
  /// Verdicts and counterexamples are byte-identical for every value.
  std::size_t threads = 1;
  /// Check exhaustive response times against the MILP analysis bounds
  /// (MCS-V008) and report the tightness gap as telemetry.
  bool check_analysis_soundness = true;
  /// Per-task response-time bounds to check against instead of running the
  /// analysis engine; empty = compute via AnalysisEngine::analyze_marked.
  /// Used by the negative tests to inject deliberately tightened bounds.
  std::vector<rt::Time> analysis_bounds;
  /// Options for the analysis run when `analysis_bounds` is empty.
  analysis::AnalysisOptions analysis;
  /// Test-only protocol defect to inject (mutation matrix).
  sim::ProtocolMutation mutation = sim::ProtocolMutation::kNone;
};

/// A violation, made concrete: the committed releases along the offending
/// path, the trace of the replayed path (a prefix — it stops at the
/// violating transition), and the independent per-trace audit of that
/// replay.
struct Counterexample {
  std::vector<sim::Release> releases;
  sim::Trace trace;
  check::CheckReport trace_audit;
};

struct VerifyResult {
  /// Diagnostics of the first violating transition in deterministic BFS
  /// order; clean when every explored transition satisfied every rule.
  check::CheckReport report;
  /// True when the whole bounded state space was exhausted (no violation,
  /// no budget cut): the properties are *proved* for this model.
  bool complete = false;
  /// True when max_states cut exploration short.
  bool truncated = false;

  std::size_t states = 0;            ///< distinct canonical states explored
  std::size_t dedup_hits = 0;        ///< transitions into already-seen states
  std::size_t steps = 0;             ///< scheduling-interval transitions
  std::size_t release_branches = 0;  ///< release commit/defer transitions
  std::size_t depth = 0;             ///< BFS levels completed
  rt::Time horizon = 0;              ///< resolved horizon
  rt::Time lattice = 0;              ///< resolved lattice

  /// Per-task maximum response time over every explored completion; 0 when
  /// no job of the task completed.  Exact (the model's true WCRT) iff
  /// `complete`.
  std::vector<rt::Time> exact_wcrt;
  /// Per-task analysis bound the exhaustion was checked against;
  /// rt::kTimeMax where no bound was available or soundness checking was
  /// off.
  std::vector<rt::Time> analysis_wcrt;

  std::optional<Counterexample> counterexample;
};

/// Least common multiple of the task periods, clamped to `clamp` (the
/// automatic-horizon guard for task sets with astronomic hyperperiods).
rt::Time hyperperiod(const rt::TaskSet& tasks, rt::Time clamp);

/// Exhaustively explores `tasks` under `protocol` (kProposed or
/// kWasilyPellizzoni; NPS is not an interval protocol) within the bounded
/// release model of `options` and checks every reachable transition.
VerifyResult verify(const rt::TaskSet& tasks, sim::Protocol protocol,
                    const VerifyOptions& options = {});

}  // namespace mcs::verify
