#include "verify/verify.hpp"

#include <numeric>
#include <utility>

#include "analysis/engine.hpp"
#include "check/trace_audit.hpp"
#include "support/contracts.hpp"
#include "support/telemetry.hpp"
#include "verify/explorer.hpp"

namespace mcs::verify {

namespace {

using rt::Time;

Time gcd_lattice(const rt::TaskSet& tasks) {
  Time g = 0;
  for (const rt::Task& task : tasks) {
    g = std::gcd(g, task.period);
  }
  return g > 0 ? g : 1;
}

/// Per-task MILP bounds under the current marking; kTimeMax where the
/// analysis established no bound below the deadline (soundness then has
/// nothing to say about that task, and MCS-V008 skips it).
std::vector<Time> analysis_bounds(const rt::TaskSet& tasks,
                                  sim::Protocol protocol,
                                  const VerifyOptions& options) {
  analysis::AnalysisOptions opts = options.analysis;
  opts.ignore_ls = protocol == sim::Protocol::kWasilyPellizzoni;
  analysis::AnalysisEngine engine;
  const analysis::WpResult result = engine.analyze_marked(tasks, opts);
  std::vector<Time> bounds(tasks.size(), rt::kTimeMax);
  MCS_ASSERT(result.per_task.size() == tasks.size(),
             "analyze_marked: per-task size mismatch");
  for (std::size_t i = 0; i < result.per_task.size(); ++i) {
    bounds[i] = result.per_task[i].wcrt;
  }
  return bounds;
}

/// Replays a counterexample path through a fresh stepper, reconstructing
/// the committed releases and the full trace prefix up to (and including)
/// the violating transition.
Counterexample replay(const rt::TaskSet& tasks, sim::Protocol protocol,
                      const VerifyOptions& options,
                      const std::vector<Edge>& path) {
  Counterexample cex;
  sim::IntervalStepper stepper(tasks, protocol, options.mutation);
  std::vector<std::uint64_t> seq(tasks.size(), 0);
  for (const Edge& edge : path) {
    switch (edge.kind) {
      case Edge::Kind::kRelease: {
        const sim::JobId id{edge.task, seq[edge.task]++};
        stepper.add_release(id, edge.time);
        cex.releases.push_back(sim::Release{id, edge.time});
        break;
      }
      case Edge::Kind::kDefer:
        break;  // constraint bookkeeping only; no scheduler effect
      case Edge::Kind::kStep: {
        const std::optional<sim::StepOutcome> out = stepper.step();
        // nullopt here is the MCS-V005 deadlock transition itself.
        if (out) {
          cex.trace.intervals.push_back(out->record);
        }
        break;
      }
    }
  }
  cex.trace.jobs = stepper.state().jobs;
  // The replay is a prefix of a longer execution, not a finished run.
  cex.trace.aborted = stepper.has_pending_work();
  cex.trace_audit = check::audit_trace(tasks, protocol, cex.trace);
  return cex;
}

}  // namespace

Time hyperperiod(const rt::TaskSet& tasks, Time clamp) {
  MCS_REQUIRE(clamp > 0, "hyperperiod: clamp must be positive");
  Time lcm = 1;
  for (const rt::Task& task : tasks) {
    const Time g = std::gcd(lcm, task.period);
    const Time factor = task.period / g;
    if (factor != 0 && lcm > clamp / factor) {
      return clamp;  // would overflow the clamp (or Time itself)
    }
    lcm *= factor;
  }
  return std::min(lcm, clamp);
}

VerifyResult verify(const rt::TaskSet& tasks, sim::Protocol protocol,
                    const VerifyOptions& options) {
  MCS_REQUIRE(!tasks.empty(), "verify: empty task set");
  MCS_REQUIRE(options.analysis_bounds.empty() ||
                  options.analysis_bounds.size() == tasks.size(),
              "verify: analysis_bounds size mismatch");

  VerifyResult result;
  result.horizon = options.horizon > 0
                       ? options.horizon
                       : 2 * hyperperiod(tasks, options.max_horizon / 2);
  result.lattice = options.lattice > 0 ? options.lattice : gcd_lattice(tasks);

  result.analysis_wcrt.assign(tasks.size(), rt::kTimeMax);
  if (!options.analysis_bounds.empty()) {
    result.analysis_wcrt = options.analysis_bounds;
  } else if (options.check_analysis_soundness &&
             options.mutation == sim::ProtocolMutation::kNone) {
    // Mutated dynamics deliberately break the protocol; comparing them
    // against the analysis would judge the analysis with a broken ruler,
    // so the automatic soundness check only runs unmutated.
    result.analysis_wcrt = analysis_bounds(tasks, protocol, options);
  }

  ExploreOptions explore_options;
  explore_options.model.horizon = result.horizon;
  explore_options.model.lattice = result.lattice;
  explore_options.model.offset_steps = options.offset_steps;
  explore_options.model.jitter_steps = options.jitter_steps;
  explore_options.max_states = options.max_states;
  explore_options.max_zero_length_run = options.max_zero_length_run;
  explore_options.threads = options.threads;
  explore_options.mutation = options.mutation;
  explore_options.bounds = result.analysis_wcrt;

  ExploreResult explored = explore(tasks, protocol, explore_options);
  result.report = std::move(explored.report);
  result.complete = explored.complete;
  result.truncated = explored.truncated;
  result.states = explored.states;
  result.dedup_hits = explored.dedup_hits;
  result.steps = explored.steps;
  result.release_branches = explored.release_branches;
  result.depth = explored.depth;
  result.exact_wcrt = std::move(explored.exact_wcrt);

  if (!explored.counterexample_path.empty()) {
    result.counterexample =
        replay(tasks, protocol, options, explored.counterexample_path);
  }

  namespace telemetry = support::telemetry;
  telemetry::count("verify.runs");
  telemetry::count("verify.states", result.states);
  telemetry::count("verify.dedup_hits", result.dedup_hits);
  telemetry::count("verify.steps", result.steps);
  telemetry::count("verify.release_branches", result.release_branches);
  telemetry::count("verify.violations", result.report.error_count());
  if (result.complete && result.report.clean()) {
    // Tightness of the MILP bound against the model's exact WCRT: only
    // meaningful when exhaustion finished, the bound exists, and at least
    // one job of the task completed.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (result.analysis_wcrt[i] == rt::kTimeMax) continue;
      if (result.exact_wcrt[i] == 0) continue;
      telemetry::record(
          "verify.tightness_gap_ticks",
          static_cast<double>(result.analysis_wcrt[i] - result.exact_wcrt[i]));
    }
  }
  return result;
}

}  // namespace mcs::verify
