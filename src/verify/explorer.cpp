#include "verify/explorer.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "support/contracts.hpp"
#include "support/hash.hpp"
#include "support/thread_pool.hpp"

namespace mcs::verify {

namespace {

using rt::TaskIndex;
using rt::Time;
using sim::CopyInOutcome;
using sim::CpuAction;
using sim::IntervalStepper;
using sim::JobRef;
using check::Severity;

constexpr std::uint32_t kNoParent = ~std::uint32_t{0};

/// Where a task's in-flight job sits between two intervals.
enum Slot : std::int64_t {
  kSlotNone = 0,
  kSlotReady = 1,
  kSlotLoaded = 2,
  kSlotPendingCopyOut = 3,
  kSlotUrgent = 4,
};

/// Release choice point of one task: the next release is base + k*L for
/// some k in [k_min, K], K = offset_steps for the first release and
/// jitter_steps afterwards; a point at/after the horizon closes the task.
struct TaskChoice {
  bool closed = false;
  bool first = true;
  Time base = 0;
  std::uint32_t k_min = 0;
};

/// Check bookkeeping that must survive across transitions (and therefore
/// belongs to the canonical state).
struct CheckerState {
  /// Per task: blocking intervals suffered by the task's current front job
  /// (the in-flight job, or the next committed job if none is in flight).
  std::vector<std::uint32_t> blocked;
  std::uint32_t zero_run = 0;  ///< consecutive zero-length intervals
};

/// One successor produced by expanding a node.
struct Succ {
  std::string enc;  ///< canonical encoding (empty on violation)
  Edge edge;
  check::CheckReport report;  ///< non-clean marks a violating transition
  /// (task, response) of completions on this transition, for WCRT folding.
  std::vector<std::pair<TaskIndex, Time>> completions;
};

struct Node {
  std::uint32_t parent = kNoParent;
  Edge edge;
};

void append_i64(std::string& out, std::int64_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

std::int64_t read_i64(const std::string& in, std::size_t& pos) {
  MCS_ASSERT(pos + sizeof(std::int64_t) <= in.size(),
             "state decode: truncated encoding");
  std::int64_t v = 0;
  std::memcpy(&v, in.data() + pos, sizeof v);
  pos += sizeof v;
  return v;
}

std::uint32_t jitter_span(const ChoiceModel& model, const TaskChoice& choice) {
  return choice.first ? model.offset_steps : model.jitter_steps;
}

Time window_min(const ChoiceModel& model, const TaskChoice& choice) {
  return choice.base + static_cast<Time>(choice.k_min) * model.lattice;
}

/// Folds "all remaining choices fall at/after the horizon" into `closed`.
void normalize(const ChoiceModel& model, TaskChoice& choice) {
  if (choice.closed) {
    choice.first = false;
    choice.base = 0;
    choice.k_min = 0;
    return;
  }
  if (window_min(model, choice) >= model.horizon) {
    choice.closed = true;
    choice.first = false;
    choice.base = 0;
    choice.k_min = 0;
  }
}

/// Canonical encoding of (stepper state, choice fronts, checker state).
/// The stepper must be admitted up to `now` (IntervalStepper::admit_now)
/// so that logically identical states cannot differ in queued-vs-ready
/// classification.  Sequence numbers and completed-job history are
/// intentionally dropped: priorities are unique per task, so they can
/// never influence future scheduling decisions.
std::string encode(const rt::TaskSet& tasks, const IntervalStepper& stepper,
                   const std::vector<TaskChoice>& choices,
                   const CheckerState& checker) {
  const sim::StepState& st = stepper.state();
  const std::size_t n = tasks.size();

  std::vector<std::int64_t> slot(n, kSlotNone);
  std::vector<JobRef> inflight(n, 0);
  const auto place = [&](JobRef j, Slot s) {
    const TaskIndex t = st.jobs[j].id.task;
    MCS_ASSERT(slot[t] == kSlotNone, "state encode: two in-flight jobs");
    slot[t] = s;
    inflight[t] = j;
  };
  for (const JobRef j : st.ready) place(j, kSlotReady);
  if (st.loaded) place(*st.loaded, kSlotLoaded);
  if (st.pending_copyout) place(*st.pending_copyout, kSlotPendingCopyOut);
  if (st.urgent) place(*st.urgent, kSlotUrgent);

  std::string out;
  out.reserve((3 + n * 10) * sizeof(std::int64_t));
  append_i64(out, st.now);
  append_i64(out, st.intervals > 0 ? 1 : 0);
  append_i64(out, checker.zero_run);
  for (TaskIndex t = 0; t < n; ++t) {
    const TaskChoice& c = choices[t];
    append_i64(out, c.closed ? 1 : 0);
    append_i64(out, c.first ? 1 : 0);
    append_i64(out, c.base);
    append_i64(out, c.k_min);
    const sim::TaskProgress& progress = st.tasks[t];
    append_i64(out, progress.last_completion);
    append_i64(out, slot[t]);
    if (slot[t] != kSlotNone) {
      const sim::JobRecord& job = st.jobs[inflight[t]];
      append_i64(out, job.release);
      append_i64(out, job.copy_in_cancellations);
    } else {
      append_i64(out, 0);
      append_i64(out, 0);
    }
    append_i64(out, checker.blocked[t]);
    MCS_ASSERT(progress.next <= progress.queue.size(),
               "state encode: admission cursor out of range");
    append_i64(out,
               static_cast<std::int64_t>(progress.queue.size() - progress.next));
    for (std::size_t q = progress.next; q < progress.queue.size(); ++q) {
      append_i64(out, st.jobs[progress.queue[q]].release);
    }
  }
  return out;
}

/// Rebuilds a stepper state (plus choices and checker state) from its
/// canonical encoding.  Synthetic sequence numbers are assigned; they are
/// future-irrelevant (see encode).
void decode(const rt::TaskSet& tasks, const std::string& enc,
            IntervalStepper& stepper, std::vector<TaskChoice>& choices,
            CheckerState& checker) {
  const std::size_t n = tasks.size();
  choices.assign(n, TaskChoice{});
  checker.blocked.assign(n, 0);

  sim::StepState st;
  st.tasks.resize(n);

  std::size_t pos = 0;
  st.now = read_i64(enc, pos);
  st.intervals = static_cast<std::size_t>(read_i64(enc, pos));
  checker.zero_run = static_cast<std::uint32_t>(read_i64(enc, pos));
  for (TaskIndex t = 0; t < n; ++t) {
    TaskChoice& c = choices[t];
    c.closed = read_i64(enc, pos) != 0;
    c.first = read_i64(enc, pos) != 0;
    c.base = read_i64(enc, pos);
    c.k_min = static_cast<std::uint32_t>(read_i64(enc, pos));
    sim::TaskProgress& progress = st.tasks[t];
    progress.last_completion = read_i64(enc, pos);
    const auto slot = static_cast<Slot>(read_i64(enc, pos));
    const Time inflight_release = read_i64(enc, pos);
    const auto inflight_cancels =
        static_cast<std::uint32_t>(read_i64(enc, pos));
    checker.blocked[t] = static_cast<std::uint32_t>(read_i64(enc, pos));
    if (slot != kSlotNone) {
      sim::JobRecord job;
      job.id = sim::JobId{t, 0};
      job.release = inflight_release;
      job.ready_time = std::max(inflight_release, progress.last_completion);
      job.absolute_deadline = inflight_release + tasks[t].deadline;
      job.copy_in_cancellations = inflight_cancels;
      const JobRef ref = st.jobs.size();
      st.jobs.push_back(job);
      progress.queue.push_back(ref);
      progress.busy = true;
      switch (slot) {
        case kSlotReady:
          st.ready.push_back(ref);
          break;
        case kSlotLoaded:
          MCS_ASSERT(!st.loaded, "state decode: two loaded jobs");
          st.loaded = ref;
          break;
        case kSlotPendingCopyOut:
          MCS_ASSERT(!st.pending_copyout, "state decode: two copy-outs");
          st.pending_copyout = ref;
          break;
        case kSlotUrgent:
          MCS_ASSERT(!st.urgent, "state decode: two urgent jobs");
          st.urgent = ref;
          break;
        case kSlotNone:
          break;
      }
    }
    const auto queued = static_cast<std::size_t>(read_i64(enc, pos));
    for (std::size_t q = 0; q < queued; ++q) {
      sim::JobRecord job;
      // Seqs are contiguous from 0, so a later add_release can use
      // queue.size() as the next seq.
      job.id = sim::JobId{t, progress.queue.size()};
      job.release = read_i64(enc, pos);
      job.absolute_deadline = job.release + tasks[t].deadline;
      const JobRef ref = st.jobs.size();
      st.jobs.push_back(job);
      progress.queue.push_back(ref);
    }
    progress.next = progress.busy ? 1 : 0;
  }
  MCS_ASSERT(pos == enc.size(), "state decode: trailing bytes");

  // Ready order: priorities are unique, so sorting by priority reproduces
  // the stepper's (priority, seq) order.
  std::sort(st.ready.begin(), st.ready.end(), [&](JobRef a, JobRef b) {
    return tasks[st.jobs[a].id.task].priority <
           tasks[st.jobs[b].id.task].priority;
  });
  stepper.restore(std::move(st));
}

/// Everything expand() needs; shared read-only across worker threads.
struct ExpandContext {
  const rt::TaskSet& tasks;
  sim::Protocol protocol;
  const ExploreOptions& options;
};

std::string interval_object(const sim::IntervalRecord& rec) {
  return "interval [" + std::to_string(rec.start) + ", " +
         std::to_string(rec.end) + ")";
}

std::string job_object(const rt::TaskSet& tasks, const sim::JobId& id) {
  return "job " + tasks[id.task].name + "#" + std::to_string(id.seq);
}

/// Pre-step facts the transition checks compare the step record against.
struct PreStep {
  Time now = 0;
  std::optional<sim::JobId> loaded;
  std::optional<sim::JobId> pending_copyout;
  std::optional<sim::JobId> urgent;
};

/// Checks one interval transition against rules MCS-V001..V010 (except the
/// stuck/deadlock rule V005, which is a property of refusing transitions).
/// Updates the per-task blocking counters and the zero-run counter.
void check_step(const ExpandContext& ctx, const PreStep& pre,
                const sim::StepOutcome& out, const IntervalStepper& post,
                CheckerState& checker, Succ& succ) {
  const rt::TaskSet& tasks = ctx.tasks;
  const sim::IntervalRecord& rec = out.record;
  const sim::StepState& st = post.state();
  check::CheckReport& report = succ.report;
  const std::string where = interval_object(rec);
  const bool ls_rules = ctx.protocol == sim::Protocol::kProposed;

  // MCS-V001 / V010: the CPU may only run what the previous interval
  // loaded (R5) or what R4 promoted, back to back.
  if (rec.cpu_action == CpuAction::kExecute) {
    if (!pre.loaded || !(*pre.loaded == *rec.cpu_job)) {
      report.add("MCS-V001", Severity::kError, where,
                 "CPU executes " + job_object(tasks, *rec.cpu_job) +
                     " without a completed copy-in in the adjacent "
                     "previous interval");
    }
  } else if (rec.cpu_action == CpuAction::kUrgentExecute) {
    if (!pre.urgent || !(*pre.urgent == *rec.cpu_job)) {
      report.add("MCS-V010", Severity::kError, where,
                 "urgent execution of " + job_object(tasks, *rec.cpu_job) +
                     " without an R4 promotion in the previous interval");
    }
  }
  if ((pre.loaded || pre.pending_copyout || pre.urgent) &&
      rec.start != pre.now) {
    report.add("MCS-V001", Severity::kError, where,
               "interval is not adjacent to its predecessor despite "
               "carried-over work");
  }

  // MCS-V009: R2/R5/R6 busy-time accounting against the task parameters.
  const auto structural = [&](const std::string& message) {
    report.add("MCS-V009", Severity::kError, where, message);
  };
  if (rec.end - rec.start != std::max(rec.cpu_busy, rec.dma_busy)) {
    structural("interval length != max(cpu busy, dma busy) (R6)");
  }
  if (rec.dma_busy != rec.copy_out_duration + rec.copy_in_duration) {
    structural("DMA busy time != copy-out + copy-in durations (R2)");
  }
  if (rec.copy_out_job) {
    if (rec.copy_out_duration != tasks[rec.copy_out_job->task].copy_out) {
      structural("copy-out duration differs from the task's u parameter");
    }
  } else if (rec.copy_out_duration != 0) {
    structural("copy-out time without a copy-out job");
  }
  if (rec.copy_in_job) {
    const Time full = tasks[rec.copy_in_job->task].copy_in;
    switch (rec.copy_in_outcome) {
      case CopyInOutcome::kNone:
        structural("copy-in job recorded with outcome `none`");
        break;
      case CopyInOutcome::kCompleted:
      case CopyInOutcome::kDiscarded:
        if (rec.copy_in_duration != full) {
          structural("completed copy-in duration differs from the task's "
                     "l parameter");
        }
        break;
      case CopyInOutcome::kCancelled:
        if (rec.copy_in_duration >= full) {
          structural("cancelled copy-in spent the full transfer time");
        }
        break;
    }
  } else if (rec.copy_in_outcome != CopyInOutcome::kNone ||
             rec.copy_in_duration != 0) {
    structural("copy-in time or outcome without a copy-in job");
  }
  switch (rec.cpu_action) {
    case CpuAction::kIdle:
      if (rec.cpu_busy != 0 || rec.cpu_job) {
        structural("idle CPU with busy time or a job");
      }
      break;
    case CpuAction::kExecute:
      if (!rec.cpu_job || rec.cpu_busy != tasks[rec.cpu_job->task].exec) {
        structural("execution busy time differs from the task's C "
                   "parameter (R5)");
      }
      break;
    case CpuAction::kUrgentExecute:
      if (!rec.cpu_job ||
          rec.cpu_busy != tasks[rec.cpu_job->task].copy_in +
                              tasks[rec.cpu_job->task].exec) {
        structural("urgent busy time differs from the task's l + C (R5)");
      }
      break;
  }

  // MCS-V002 / MCS-V008: completion events.  A completion must be the end
  // of this interval's copy-out, adjacent to the execution interval; its
  // response time must stay within the analysis bound.
  for (const JobRef j : out.completed) {
    const sim::JobRecord& job = st.jobs[j];
    const std::string object = job_object(tasks, job.id);
    if (!rec.copy_out_job || !(*rec.copy_out_job == job.id)) {
      report.add("MCS-V002", Severity::kError, object,
                 "completion without a copy-out phase in the interval "
                 "adjacent to its execution");
    } else if (job.completion != rec.start + rec.copy_out_duration) {
      report.add("MCS-V002", Severity::kError, object,
                 "completion time is not the end of the copy-out phase");
    }
    const Time response = job.completion - job.release;
    const TaskIndex t = job.id.task;
    if (t < ctx.options.bounds.size() &&
        ctx.options.bounds[t] != rt::kTimeMax &&
        response > ctx.options.bounds[t]) {
      report.add("MCS-V008", Severity::kError, object,
                 "exhaustive response time " + std::to_string(response) +
                     " exceeds the analysis bound " +
                     std::to_string(ctx.options.bounds[t]));
    }
    succ.completions.emplace_back(t, response);
    checker.blocked[t] = 0;  // the task's front job changed
  }

  // MCS-V007: R3 bookkeeping — a cancellation must answer to a
  // higher-priority LS release inside the interval (window semantics as in
  // check::audit_trace MCS-P004), and only the proposed protocol cancels.
  if (rec.copy_in_outcome == CopyInOutcome::kCancelled ||
      rec.copy_in_outcome == CopyInOutcome::kDiscarded) {
    const std::string object =
        rec.copy_in_job ? job_object(tasks, *rec.copy_in_job) : where;
    if (!ls_rules) {
      report.add("MCS-V007", Severity::kError, object,
                 "copy-in cancellation under a protocol without R3");
    } else if (rec.copy_in_job) {
      const auto cancelled_prio = tasks[rec.copy_in_job->task].priority;
      const Time upto =
          rec.copy_in_outcome == CopyInOutcome::kCancelled
              ? rec.start + rec.copy_out_duration + rec.copy_in_duration
              : rec.end - 1;
      bool justified = false;
      for (const sim::JobRecord& job : st.jobs) {
        const rt::Task& t = tasks[job.id.task];
        if (!t.latency_sensitive || t.priority >= cancelled_prio) continue;
        if (job.release > rec.start && job.release <= upto) {
          justified = true;
          break;
        }
      }
      if (!justified) {
        report.add("MCS-V007", Severity::kError, object,
                   "copy-in cancellation has no justifying "
                   "higher-priority LS release inside the interval");
      }
    }
  }

  // MCS-V010: R4 — a promotion performed by this interval must pick an LS
  // job released within (start, end], and only under the proposed rules.
  if (st.urgent) {
    const sim::JobRecord& job = st.jobs[*st.urgent];
    const std::string object = job_object(tasks, job.id);
    if (!ls_rules) {
      report.add("MCS-V010", Severity::kError, object,
                 "urgent promotion under a protocol without R4");
    } else if (!tasks[job.id.task].latency_sensitive) {
      report.add("MCS-V010", Severity::kError, object,
                 "urgent promotion of a non-latency-sensitive job");
    } else if (job.release <= rec.start || job.release > rec.end) {
      report.add("MCS-V010", Severity::kError, object,
                 "urgent promotion of a job not released within the "
                 "promoting interval");
    }
  }

  // MCS-V003 / MCS-V004: blocking accounting (Properties 3-4).  For every
  // task whose front job is released but has not started executing, this
  // interval counts as blocking iff a strictly lower-priority job occupied
  // the CPU past the front job's ready time.  The window semantics mirror
  // check::audit_trace MCS-P009/P010; counting the not-yet-admitted front
  // job too (ready time = its release when the predecessor has completed)
  // keeps the count identical to the post-hoc audit.
  if (rec.cpu_job && rec.cpu_busy > 0) {
    const auto cpu_prio = tasks[rec.cpu_job->task].priority;
    const Time cpu_end = rec.start + rec.cpu_busy;
    std::vector<std::int64_t> slot(tasks.size(), kSlotNone);
    std::vector<JobRef> front(tasks.size(), 0);
    for (const JobRef j : st.ready) {
      slot[st.jobs[j].id.task] = kSlotReady;
      front[st.jobs[j].id.task] = j;
    }
    if (st.loaded) {
      slot[st.jobs[*st.loaded].id.task] = kSlotLoaded;
      front[st.jobs[*st.loaded].id.task] = *st.loaded;
    }
    if (st.urgent) {
      slot[st.jobs[*st.urgent].id.task] = kSlotUrgent;
      front[st.jobs[*st.urgent].id.task] = *st.urgent;
    }
    for (TaskIndex t = 0; t < tasks.size(); ++t) {
      if (tasks[t].priority >= cpu_prio) continue;  // not higher priority
      Time ready_time = rt::kTimeMax;
      if (slot[t] != kSlotNone) {
        const sim::JobRecord& job = st.jobs[front[t]];
        if (job.ready_time != job.release) continue;  // deferred readiness
        ready_time = job.ready_time;
      } else {
        // Next committed-but-unadmitted job, if its readiness will not be
        // deferred by a predecessor still in flight.
        const sim::TaskProgress& progress = st.tasks[t];
        if (progress.busy || progress.next >= progress.queue.size()) {
          continue;
        }
        const sim::JobRecord& job = st.jobs[progress.queue[progress.next]];
        if (progress.last_completion > job.release) continue;
        ready_time = job.release;
      }
      if (cpu_end <= ready_time) continue;
      checker.blocked[t] += 1;
      const bool ls = ls_rules && tasks[t].latency_sensitive;
      const std::uint32_t limit = ls ? 1 : 2;
      if (checker.blocked[t] > limit) {
        report.add(ls ? "MCS-V004" : "MCS-V003", Severity::kError,
                   "task " + tasks[t].name,
                   (ls ? std::string("latency-sensitive job blocked in ")
                       : std::string("job blocked in ")) +
                       std::to_string(checker.blocked[t]) +
                       " intervals (limit " + std::to_string(limit) + ")");
      }
    }
  }

  // MCS-V006: livelock — zero-length intervals must not repeat unboundedly.
  if (rec.end == rec.start) {
    checker.zero_run += 1;
    if (checker.zero_run > ctx.options.max_zero_length_run) {
      report.add("MCS-V006", Severity::kError, where,
                 "no time progress within " +
                     std::to_string(checker.zero_run) +
                     " consecutive zero-length intervals");
    }
  } else {
    checker.zero_run = 0;
  }
}

/// Expands one canonical state into its successor transitions.
std::vector<Succ> expand(const ExpandContext& ctx, const std::string& enc) {
  const rt::TaskSet& tasks = ctx.tasks;
  const ChoiceModel& model = ctx.options.model;
  std::vector<Succ> succs;

  IntervalStepper stepper(tasks, ctx.protocol, ctx.options.mutation);
  std::vector<TaskChoice> choices;
  CheckerState checker;
  decode(tasks, enc, stepper, choices, checker);

  const sim::StepPreview preview = stepper.preview();

  // Earliest open release window.
  TaskIndex branch_task = tasks.size();
  Time earliest = rt::kTimeMax;
  for (TaskIndex t = 0; t < tasks.size(); ++t) {
    if (choices[t].closed) continue;
    const Time wmin = window_min(model, choices[t]);
    if (wmin < earliest) {
      earliest = wmin;
      branch_task = t;
    }
  }

  const bool must_branch =
      branch_task < tasks.size() &&
      (!preview.has_event || earliest <= preview.end_upper_bound);

  if (must_branch) {
    // Resolve one release choice point.  Branches: commit at each lattice
    // point up to the decision horizon H, or constrain the release past H
    // (which may close the task when nothing remains before the horizon).
    // The union of the branches covers every choice the model admits.
    const Time H = preview.has_event ? preview.end_upper_bound : earliest;
    const TaskChoice& c = choices[branch_task];
    const std::uint32_t span = jitter_span(model, c);
    const sim::StepState base_state = stepper.snapshot();

    std::uint32_t defer_k = span + 1;  // first point past H, if any
    for (std::uint32_t k = c.k_min; k <= span; ++k) {
      const Time p = c.base + static_cast<Time>(k) * model.lattice;
      if (p > H) {
        defer_k = std::min(defer_k, k);
        continue;
      }
      if (p >= model.horizon) continue;  // covered by the closing branch
      Succ succ;
      succ.edge = Edge{Edge::Kind::kRelease, branch_task, p};
      stepper.restore(base_state);
      const std::uint64_t seq =
          stepper.state().tasks[branch_task].queue.size();
      stepper.add_release(sim::JobId{branch_task, seq}, p);
      stepper.admit_now();
      std::vector<TaskChoice> next = choices;
      next[branch_task].closed = false;
      next[branch_task].first = false;
      next[branch_task].base = p + tasks[branch_task].period;
      next[branch_task].k_min = 0;
      normalize(model, next[branch_task]);
      succ.enc = encode(tasks, stepper, next, checker);
      succs.push_back(std::move(succ));
    }
    const Time last_point =
        c.base + static_cast<Time>(span) * model.lattice;
    if (defer_k <= span &&
        c.base + static_cast<Time>(defer_k) * model.lattice < model.horizon) {
      // Some choices land strictly after H but before the horizon: keep
      // them open with a raised floor.
      Succ succ;
      succ.edge = Edge{Edge::Kind::kDefer, branch_task, H};
      stepper.restore(base_state);
      std::vector<TaskChoice> next = choices;
      next[branch_task].k_min = defer_k;
      normalize(model, next[branch_task]);
      succ.enc = encode(tasks, stepper, next, checker);
      succs.push_back(std::move(succ));
    }
    if (last_point >= model.horizon) {
      // Some choices land at/after the horizon: the task may stop
      // releasing within the explored window.
      Succ succ;
      succ.edge = Edge{Edge::Kind::kDefer, branch_task, model.horizon};
      stepper.restore(base_state);
      std::vector<TaskChoice> next = choices;
      next[branch_task].closed = true;
      normalize(model, next[branch_task]);
      succ.enc = encode(tasks, stepper, next, checker);
      succs.push_back(std::move(succ));
    }
    MCS_ASSERT(!succs.empty(), "release branching produced no successor");
    return succs;
  }

  if (!preview.has_event) {
    return succs;  // leaf: nothing committed, nothing open — path done
  }

  // Step one scheduling interval.  Every open window now provably starts
  // after this interval's end bound, so its R2-R5 decisions cannot depend
  // on an uncommitted release.
  PreStep pre;
  pre.now = stepper.state().now;
  const auto id_of = [&](const std::optional<JobRef>& j) {
    return j ? std::optional<sim::JobId>(stepper.state().jobs[*j].id)
             : std::nullopt;
  };
  pre.loaded = id_of(stepper.state().loaded);
  pre.pending_copyout = id_of(stepper.state().pending_copyout);
  pre.urgent = id_of(stepper.state().urgent);

  Succ succ;
  succ.edge = Edge{Edge::Kind::kStep, 0, 0};
  const std::optional<sim::StepOutcome> out = stepper.step();
  if (!out) {
    // Refusing to schedule with committed work pending is a deadlock.
    if (stepper.has_pending_work()) {
      succ.report.add("MCS-V005", Severity::kError,
                      "t=" + std::to_string(stepper.state().now),
                      "stuck reachable state: committed work pending but "
                      "no transition enabled");
      succs.push_back(std::move(succ));
    }
    return succs;
  }
  stepper.admit_now();
  check_step(ctx, pre, *out, stepper, checker, succ);
  if (succ.report.clean()) {
    succ.enc = encode(tasks, stepper, choices, checker);
  }
  succs.push_back(std::move(succ));
  return succs;
}

}  // namespace

ExploreResult explore(const rt::TaskSet& tasks, sim::Protocol protocol,
                      const ExploreOptions& options) {
  MCS_REQUIRE(protocol != sim::Protocol::kNonPreemptive,
              "explore: interval protocols only");
  MCS_REQUIRE(!tasks.empty(), "explore: empty task set");
  MCS_REQUIRE(options.model.horizon > 0, "explore: horizon must be positive");
  MCS_REQUIRE(options.model.lattice > 0, "explore: lattice must be positive");
  MCS_REQUIRE(options.bounds.empty() || options.bounds.size() == tasks.size(),
              "explore: bounds size mismatch");

  ExploreResult result;
  result.exact_wcrt.assign(tasks.size(), 0);

  ExpandContext ctx{tasks, protocol, options};

  // Node table: canonical encoding -> id.  The map owns the encodings;
  // unordered_map nodes are address-stable, so by_id can point into them.
  std::unordered_map<std::string, std::uint32_t, support::BytesHash> seen;
  std::vector<const std::string*> by_id;
  std::vector<Node> nodes;

  {
    IntervalStepper root_stepper(tasks, protocol, options.mutation);
    std::vector<TaskChoice> root_choices(tasks.size());
    for (TaskChoice& c : root_choices) normalize(options.model, c);
    CheckerState root_checker;
    root_checker.blocked.assign(tasks.size(), 0);
    std::string root_enc =
        encode(tasks, root_stepper, root_choices, root_checker);
    const auto [it, inserted] = seen.emplace(std::move(root_enc), 0u);
    MCS_ASSERT(inserted, "root state duplicated");
    by_id.push_back(&it->first);
    nodes.push_back(Node{});
  }
  result.states = 1;

  std::vector<std::uint32_t> frontier{0};
  std::vector<std::vector<Succ>> expansions;

  // One pool reused across every BFS level (not one per level): worker
  // start-up would otherwise dominate the many small frontiers.
  support::ThreadPool pool(options.threads == 0 ? 0 : options.threads);

  bool violated = false;
  std::uint32_t violation_parent = kNoParent;
  Edge violation_edge;

  while (!frontier.empty() && !violated) {
    expansions.assign(frontier.size(), {});
    support::parallel_for(pool, frontier.size(), [&](std::size_t i) {
      expansions[i] = expand(ctx, *by_id[frontier[i]]);
    });

    // Serial merge in frontier index order: verdict, counterexample and
    // statistics are independent of how the pool interleaved the work.
    std::vector<std::uint32_t> next_frontier;
    for (std::size_t i = 0; i < frontier.size() && !violated; ++i) {
      for (Succ& succ : expansions[i]) {
        if (!succ.report.clean()) {
          violated = true;
          violation_parent = frontier[i];
          violation_edge = succ.edge;
          result.report = std::move(succ.report);
          break;
        }
        if (succ.edge.kind == Edge::Kind::kStep) {
          ++result.steps;
        } else {
          ++result.release_branches;
        }
        for (const auto& [task, response] : succ.completions) {
          result.exact_wcrt[task] =
              std::max(result.exact_wcrt[task], response);
        }
        const auto it = seen.find(succ.enc);
        if (it != seen.end()) {
          ++result.dedup_hits;
          continue;
        }
        if (nodes.size() >= options.max_states) {
          result.truncated = true;
          continue;
        }
        const auto id = static_cast<std::uint32_t>(nodes.size());
        const auto [ins, inserted] = seen.emplace(std::move(succ.enc), id);
        MCS_ASSERT(inserted, "state inserted twice");
        by_id.push_back(&ins->first);
        nodes.push_back(Node{frontier[i], succ.edge});
        next_frontier.push_back(id);
      }
    }
    result.states = nodes.size();
    ++result.depth;
    frontier = std::move(next_frontier);
  }

  if (violated) {
    std::vector<Edge> path;
    path.push_back(violation_edge);
    for (std::uint32_t id = violation_parent; id != kNoParent && id != 0;
         id = nodes[id].parent) {
      path.push_back(nodes[id].edge);
    }
    std::reverse(path.begin(), path.end());
    result.counterexample_path = std::move(path);
    result.complete = false;
  } else {
    result.complete = !result.truncated;
  }
  return result;
}

}  // namespace mcs::verify
