// Explicit-state frontier-parallel BFS over the bounded choice model.
//
// Internal to mcs::verify (verify.cpp drives it; tests exercise it
// directly).  The exploration alternates two transition kinds:
//
//  * release transitions — resolving one task's next release choice point:
//    commit it at a concrete lattice tick, defer it past the next
//    interval's end bound, or close the task when every remaining choice
//    falls at/after the horizon;
//  * step transitions — one sim::IntervalStepper scheduling interval, taken
//    only once every open release window provably starts after the next
//    interval's conservative end bound (IntervalStepper::preview), so the
//    interval's R2-R5 decisions can never depend on a still-uncommitted
//    release.
//
// States are canonicalized into a flat byte encoding (sequence numbers,
// completed-job history and other future-irrelevant data are dropped),
// deduplicated by exact encoding compare (support::hash_bytes only buckets
// them), and expanded level by level: expansion runs on a
// support::ThreadPool, but successors are merged serially in frontier
// index order, which makes verdict, counterexample, and every statistic
// independent of the thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "check/diagnostics.hpp"
#include "rt/task.hpp"
#include "sim/step.hpp"

namespace mcs::verify {

/// Bounded nondeterministic release model.  Task i's releases are
///   r_0 = o·L        with o in {0..offset_steps},
///   r_k = r_{k-1} + T_i + j·L  with j in {0..jitter_steps},
/// all strictly before `horizon` (a choice at/after it ends the task's
/// release sequence).  Every such sequence respects the sporadic minimum
/// inter-arrival time, so the model is a legal subset of the sporadic
/// task model.
struct ChoiceModel {
  rt::Time horizon = 0;
  rt::Time lattice = 1;
  std::uint32_t offset_steps = 0;
  std::uint32_t jitter_steps = 0;
};

struct ExploreOptions {
  ChoiceModel model;
  std::size_t max_states = 1u << 18;
  std::uint32_t max_zero_length_run = 16;
  std::size_t threads = 1;
  sim::ProtocolMutation mutation = sim::ProtocolMutation::kNone;
  /// Per-task response bounds for MCS-V008 (rt::kTimeMax = unchecked).
  std::vector<rt::Time> bounds;
};

/// One transition along a path; the counterexample path is a list of these.
struct Edge {
  enum class Kind : std::uint8_t {
    kRelease,  ///< commit a release of `task` at `time`
    kDefer,    ///< constrain `task`'s next release to fall after `time`
               ///< (or close the task when nothing remains before the
               ///< horizon) — bookkeeping only, no stepper effect
    kStep,     ///< one scheduling interval
  };
  Kind kind = Kind::kStep;
  rt::TaskIndex task = 0;
  rt::Time time = 0;
};

struct ExploreResult {
  /// Diagnostics of the first violating transition in BFS merge order;
  /// clean if none.
  check::CheckReport report;
  /// Path from the initial state to (and including) the violating
  /// transition; empty when report is clean.
  std::vector<Edge> counterexample_path;

  bool complete = false;   ///< frontier drained: state space exhausted
  bool truncated = false;  ///< max_states budget cut exploration short
  std::size_t states = 0;
  std::size_t dedup_hits = 0;
  std::size_t steps = 0;
  std::size_t release_branches = 0;
  std::size_t depth = 0;
  /// Per-task max response over every explored completion (0 = none seen).
  std::vector<rt::Time> exact_wcrt;
};

/// Runs the exhaustive exploration.  `protocol` must be an interval
/// protocol (kProposed or kWasilyPellizzoni).
ExploreResult explore(const rt::TaskSet& tasks, sim::Protocol protocol,
                      const ExploreOptions& options);

}  // namespace mcs::verify
