// AdmissionService: the long-running admission-control core
// (docs/SERVICE.md).
//
// Serves analyze / admit / remove / mark_ls / status / shutdown requests
// over a newline-delimited JSON protocol.  State is partitioned per named
// core: each core carries the currently-admitted rt::TaskSet and a
// persistent analysis::AnalysisEngine, so repeated queries against the same
// membership reuse cached MILP formulations and solver sessions instead of
// rebuilding them (the engine fingerprint excludes LS flags; see
// analysis/engine.hpp).  On top of that sits a global bounded LRU verdict
// cache keyed by canonical task-set fingerprint, giving O(1) answers for
// any membership state the service has fully analyzed before.
//
// Deadline budgets: each request may carry `budget_ms`; once the budget
// expires mid-analysis, remaining delay-MILP solves degrade to the safe LP
// dual bound and the verdict is tagged `degraded` (never an unsound
// "schedulable" — degraded bounds only over-estimate response times, see
// analysis/budget.hpp).  Degraded verdicts are never cached.
//
// Overload: submit() sheds requests once the queue exceeds
// `queue_high_water`, answering with a structured `overloaded` error and an
// exponential retry-after hint instead of queueing unboundedly.
//
// Thread safety: handle_line is safe from any number of threads.  Requests
// for the same core serialize on that core's mutex; different cores run
// concurrently.  For a fixed per-core request order the final state and
// every non-degraded verdict are independent of thread count.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace mcs::svc {

struct ServiceConfig {
  /// Worker threads for submit(); handle_line itself never spawns.
  std::size_t threads = 1;
  /// Verdict-cache capacity in entries (0 disables caching).
  std::size_t cache_capacity = 256;
  /// submit() sheds once this many requests are queued or in flight.
  std::size_t queue_high_water = 64;
  /// Retry-after hint growth: base * 2^(overshoot), clamped to max.
  std::uint64_t base_retry_ms = 25;
  std::uint64_t max_retry_ms = 2000;
  /// Default per-request budget when the request has none; 0 = unlimited.
  double default_budget_ms = 0.0;
  /// Requests longer than this are rejected before parsing.
  std::size_t max_request_bytes = 1 << 20;
  /// Admission limit per core (admit answers `task_limit` beyond it).
  std::size_t max_tasks_per_core = 64;
  /// JSONL request log path; empty disables logging (svc/request_log.hpp).
  std::string log_path;
  bool log_truncate = false;
  /// Test seam: runs at the start of every submitted request's pool task
  /// (before handle_line).  Lets tests stall workers deterministically to
  /// exercise shedding.  Never set in production.
  std::function<void()> test_request_hook;
};

/// Monotonic counters snapshot (see also the svc.* telemetry keys,
/// docs/TELEMETRY.md).
struct ServiceStats {
  std::uint64_t requests = 0;        ///< lines fully processed
  std::uint64_t failed = 0;          ///< responses with ok:false (incl. shed)
  std::uint64_t shed = 0;            ///< rejected by overload protection
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;    ///< analyzed fresh (cacheable modes)
  std::uint64_t cache_evictions = 0;
  std::uint64_t degraded_verdicts = 0;
  std::uint64_t admitted = 0;        ///< admit/mark_ls commits
  std::uint64_t rejected = 0;        ///< admit/mark_ls refusals
  std::size_t cores = 0;             ///< distinct cores seen
  std::size_t cache_entries = 0;
  std::size_t queue_depth = 0;       ///< submit() backlog right now
};

class AdmissionService {
 public:
  explicit AdmissionService(ServiceConfig config = {});
  ~AdmissionService();

  AdmissionService(const AdmissionService&) = delete;
  AdmissionService& operator=(const AdmissionService&) = delete;

  /// Processes one request line synchronously and returns the response
  /// line (no trailing newline).  Never throws: every failure — malformed
  /// JSON, protocol violations, analysis contract errors — becomes a
  /// structured `{"ok":false,"error":{...}}` response.
  std::string handle_line(const std::string& line);

  /// Queues `line` for processing on the worker pool; `done` receives the
  /// response line exactly once (possibly on a worker thread, possibly
  /// inline when the request is shed).
  void submit(std::string line, std::function<void(std::string)> done);

  /// Blocks until every submitted request has been answered.
  void drain();

  /// True once a `shutdown` request has been accepted.
  bool shutdown_requested() const noexcept;

  ServiceStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mcs::svc
