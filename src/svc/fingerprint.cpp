#include "svc/fingerprint.hpp"

#include <string>

#include "support/hash.hpp"

namespace mcs::svc {

namespace {

void put_u64(std::string& buf, std::uint64_t value) {
  for (int k = 0; k < 8; ++k) {
    buf.push_back(static_cast<char>(value & 0xFF));
    value >>= 8;
  }
}

}  // namespace

const char* to_string(AnalysisMode mode) noexcept {
  switch (mode) {
    case AnalysisMode::kGreedy:
      return "greedy";
    case AnalysisMode::kMarked:
      return "marked";
    case AnalysisMode::kWp:
      return "wp";
  }
  return "unknown";
}

std::optional<AnalysisMode> parse_mode(std::string_view name) noexcept {
  if (name == "greedy") return AnalysisMode::kGreedy;
  if (name == "marked") return AnalysisMode::kMarked;
  if (name == "wp") return AnalysisMode::kWp;
  return std::nullopt;
}

std::vector<rt::TaskIndex> canonical_order(const rt::TaskSet& tasks) {
  // Priority values are unique within a validated TaskSet, so sorting by
  // them yields a total, reordering-invariant order.
  return tasks.by_priority();
}

std::uint64_t fingerprint(const rt::TaskSet& tasks, AnalysisMode mode) {
  // LS marks only affect the kMarked analysis; normalize them away otherwise.
  const bool marks_matter = mode == AnalysisMode::kMarked;
  std::string buf;
  buf.reserve(tasks.size() * 64 + 16);
  for (const rt::TaskIndex i : canonical_order(tasks)) {
    const rt::Task& t = tasks[i];
    buf += t.name;
    buf.push_back('\0');
    put_u64(buf, static_cast<std::uint64_t>(t.exec));
    put_u64(buf, static_cast<std::uint64_t>(t.copy_in));
    put_u64(buf, static_cast<std::uint64_t>(t.copy_out));
    put_u64(buf, static_cast<std::uint64_t>(t.period));
    put_u64(buf, static_cast<std::uint64_t>(t.deadline));
    put_u64(buf, static_cast<std::uint64_t>(t.priority));
    buf.push_back(marks_matter && t.latency_sensitive ? '\1' : '\0');
  }
  buf.push_back(static_cast<char>(mode));
  return support::hash_bytes(buf.data(), buf.size());
}

}  // namespace mcs::svc
