#include "svc/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace mcs::svc {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& message) {
  throw JsonError("json offset " + std::to_string(offset) + ": " + message);
}

/// Recursive-descent parser over a string_view with explicit depth budget.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      fail(pos_, "trailing garbage after value");
    }
    return value;
  }

 private:
  char peek() const { return text_[pos_]; }
  bool at_end() const { return pos_ >= text_.size(); }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c, const char* what) {
    if (at_end() || peek() != c) {
      fail(pos_, std::string("expected ") + what);
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value(std::size_t depth) {
    // `depth` counts enclosing containers, so the value opening container
    // number kMaxDepth (0-based depth kMaxDepth) is the first to reject.
    if (depth >= Json::kMaxDepth) {
      fail(pos_, "nesting deeper than " + std::to_string(Json::kMaxDepth));
    }
    if (at_end()) {
      fail(pos_, "truncated input: expected a value");
    }
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail(pos_, "invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail(pos_, "invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail(pos_, "invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object(std::size_t depth) {
    expect('{', "'{'");
    Json::Object members;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') {
        fail(pos_, "expected a quoted object key");
      }
      std::string key = parse_string();
      for (const auto& [existing, unused] : members) {
        (void)unused;
        if (existing == key) {
          fail(pos_, "duplicate object key '" + key + "'");
        }
      }
      skip_ws();
      expect(':', "':'");
      skip_ws();
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (at_end()) {
        fail(pos_, "truncated object");
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}', "',' or '}'");
      return Json(std::move(members));
    }
  }

  Json parse_array(std::size_t depth) {
    expect('[', "'['");
    Json::Array items;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (at_end()) {
        fail(pos_, "truncated array");
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']', "',' or ']'");
      return Json(std::move(items));
    }
  }

  /// Parses one \uXXXX escape (after the "\u"), returning the code unit.
  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail(pos_, "truncated \\u escape");
    }
    unsigned value = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = text_[pos_ + static_cast<std::size_t>(k)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail(pos_, "bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    while (true) {
      if (at_end()) {
        fail(pos_, "unterminated string");
      }
      const char c = peek();
      ++pos_;
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) {
        fail(pos_, "truncated escape");
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!consume_literal("\\u")) {
              fail(pos_, "lone high surrogate");
            }
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail(pos_, "invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail(pos_, "lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail(pos_ - 1, "invalid escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    // JSON allows no leading '+', no leading zeros, and requires at least
    // one digit; from_chars below enforces digits, we enforce the shape.
    const std::size_t digits_start = pos_;
    while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    if (pos_ == digits_start) {
      fail(start, "invalid number");
    }
    if (pos_ - digits_start > 1 && text_[digits_start] == '0') {
      fail(start, "leading zeros are not allowed");
    }
    bool integral = true;
    if (!at_end() && peek() == '.') {
      integral = false;
      ++pos_;
      const std::size_t frac_start = pos_;
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
      if (pos_ == frac_start) {
        fail(start, "digits required after decimal point");
      }
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      const std::size_t exp_start = pos_;
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
      if (pos_ == exp_start) {
        fail(start, "digits required in exponent");
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        return Json(value);
      }
      // Integral but out of int64 range: reject rather than silently round
      // through a double — tick fields must stay exact.
      fail(start, "integer overflow");
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size() ||
        !std::isfinite(value)) {
      fail(start, "numeric overflow");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_value(const Json& value, std::string& out);

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  out += json_escape(s);
  out.push_back('"');
}

void dump_value(const Json& value, std::string& out) {
  switch (value.kind()) {
    case Json::Kind::kNull:
      out += "null";
      break;
    case Json::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      break;
    case Json::Kind::kNumber: {
      // Exact integers must not round-trip through a double: above 2^53
      // that would silently corrupt tick values on output.
      if (value.is_exact_int()) {
        out += std::to_string(value.as_int64());
        break;
      }
      const double d = value.as_number();
      if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
          std::abs(d) < 9.0e18) {
        out += std::to_string(static_cast<std::int64_t>(d));
      } else {
        char buf[32];
        const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
        out.append(buf, ec == std::errc{} ? ptr : buf);
      }
      break;
    }
    case Json::Kind::kString:
      dump_string(value.as_string(), out);
      break;
    case Json::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& item : value.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(item, out);
      }
      out.push_back(']');
      break;
    }
    case Json::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(key, out);
        out.push_back(':');
        dump_value(member, out);
      }
      out.push_back('}');
      break;
    }
  }
}

[[noreturn]] void kind_mismatch(const char* wanted) {
  throw JsonError(std::string("value is not ") + wanted);
}

}  // namespace

Json::Json(double value) : kind_(Kind::kNumber), num_(value) {
  if (!std::isfinite(value)) {
    throw JsonError("NaN / infinite numbers are not representable in JSON");
  }
}

const Json* Json::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : obj_) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) kind_mismatch("a boolean");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) kind_mismatch("a number");
  return is_int_ ? static_cast<double>(int_) : num_;
}

std::int64_t Json::as_int64() const {
  if (kind_ != Kind::kNumber) kind_mismatch("a number");
  if (is_int_) return int_;
  // A double is acceptable only when it is exactly integral and in range
  // (|v| < 2^53 keeps the double-to-int64 round trip exact).
  if (num_ == std::floor(num_) && std::abs(num_) <= 9007199254740992.0) {
    return static_cast<std::int64_t>(num_);
  }
  throw JsonError("number is not an exact integer");
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) kind_mismatch("a string");
  return str_;
}

const Json::Array& Json::as_array() const {
  if (kind_ != Kind::kArray) kind_mismatch("an array");
  return arr_;
}

const Json::Object& Json::as_object() const {
  if (kind_ != Kind::kObject) kind_mismatch("an object");
  return obj_;
}

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

Json parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace mcs::svc
