#include "svc/request_log.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "svc/json.hpp"

namespace mcs::svc {

namespace {

constexpr const char* kSchema = "mcs-svc-log-v1";

}  // namespace

RequestLogContents read_request_log(const std::filesystem::path& path) {
  RequestLogContents out;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return out;

  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  bool first = true;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) {
      // No terminating newline: the writer was killed mid-write.
      out.truncated_tail = true;
      break;
    }
    const std::string line = content.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;

    Json value;
    try {
      value = parse_json(line);
    } catch (const JsonError& e) {
      throw std::runtime_error("request log " + path.string() +
                               ": malformed line: " + e.what());
    }
    if (first && value.find("schema") != nullptr) {
      first = false;
      const Json* schema = value.find("schema");
      if (!schema->is_string() || schema->as_string() != kSchema) {
        throw std::runtime_error("request log " + path.string() +
                                 ": unexpected schema");
      }
      out.has_header = true;
      continue;
    }
    first = false;
    RequestLogRecord rec;
    const Json* seq = value.find("seq");
    const Json* request = value.find("request");
    const Json* response = value.find("response");
    if (seq == nullptr || request == nullptr || response == nullptr) {
      throw std::runtime_error("request log " + path.string() +
                               ": record missing seq/request/response");
    }
    rec.seq = static_cast<std::uint64_t>(seq->as_int64());
    rec.request = request->as_string();
    rec.response = response->as_string();
    out.records.push_back(std::move(rec));
  }
  return out;
}

RequestLogWriter::RequestLogWriter(const std::filesystem::path& path,
                                   bool truncate)
    : path_(path) {
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("request log: cannot open " + path.string() +
                             ": " + std::strerror(errno));
  }
  struct stat st{};
  const bool fresh = ::fstat(fd_, &st) == 0 && st.st_size == 0;
  if (fresh) {
    write_line(std::string("{\"schema\":\"") + kSchema + "\"}\n");
  }
}

RequestLogWriter::~RequestLogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void RequestLogWriter::write_line(const std::string& line) {
  // One write() per line: O_APPEND makes concurrent appends land whole.
  // Retried on EINTR / short writes (a kill mid-retry leaves a partial
  // trailing line, which the reader drops).
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("request log: write failed for " +
                               path_.string() + ": " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

std::uint64_t RequestLogWriter::append(const std::string& request,
                                       const std::string& response) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t seq = next_seq_++;
  std::string line = "{\"seq\":" + std::to_string(seq) + ",\"request\":\"" +
                     json_escape(request) + "\",\"response\":\"" +
                     json_escape(response) + "\"}\n";
  write_line(line);
  return seq;
}

}  // namespace mcs::svc
