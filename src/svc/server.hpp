// Transport front end for AdmissionService (docs/SERVICE.md §Transports).
//
// Speaks the newline-delimited JSON protocol over two transports, both
// optional and both feeding the same AdmissionService instance:
//
//  * stdio — one request per line on stdin, one response per line on
//    stdout; EOF ends the session (the mcs_cli scripting mode);
//  * a Unix-domain stream socket — each accepted connection is its own
//    line-delimited session, served by a per-connection reader thread.
//
// Every request is dispatched through AdmissionService::submit, so actual
// analysis work runs (and is shed under overload) on the service's
// support::ThreadPool regardless of transport.  Responses may be written
// out of arrival order; clients correlate via the echoed `id`.
//
// run() blocks until stdin reaches EOF (when stdio is enabled) or a
// `shutdown` request is accepted on any transport.
#pragma once

#include <cstddef>
#include <string>

#include "svc/service.hpp"

namespace mcs::svc {

struct ServerConfig {
  bool serve_stdio = true;
  /// Unix-domain socket path; empty disables the socket listener.  A stale
  /// file at the path is unlinked before binding.
  std::string socket_path;
  /// Reader-side line cap: a client that streams more than this without a
  /// newline gets one `request_too_large` error and the rest of the line
  /// is discarded (the frame boundary resynchronizes at the next newline).
  std::size_t max_line_bytes = 1 << 20;
};

/// Runs the transports over `service`; returns 0 on clean shutdown.
/// Blocks; call from the tool's main thread (tools/mcs_serve.cpp).
int run_server(AdmissionService& service, const ServerConfig& config);

}  // namespace mcs::svc
