// Minimal JSON value model for the admission-control wire protocol
// (docs/SERVICE.md).
//
// The repo deliberately has no external JSON dependency (the sweep log's
// flat parser in exp/sweep_log.cpp covers only its own schema); the service
// needs full objects/arrays from untrusted clients, so this is a small,
// strict RFC 8259 subset implementation hardened for adversarial input:
//
//  * rejects NaN / Infinity (not JSON) and numeric overflow — a malformed
//    tick count surfaces as a JsonError, never as a silent wrap or a
//    garbage double;
//  * bounds nesting depth (kMaxDepth) so a pathological frame cannot
//    overflow the stack;
//  * integers that fit std::int64_t are kept exact (tick values never pass
//    through a double), everything else is a finite double;
//  * duplicate object keys are rejected (the admission protocol has no
//    use for them, and accepting either value silently would make request
//    semantics ambiguous).
//
// Accessors throw JsonError on kind mismatch; `find` returns nullptr for
// absent keys so callers can distinguish optional from malformed fields.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcs::svc {

/// Malformed text given to parse_json, or a type-mismatched accessor.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// Insertion-ordered key/value pairs (objects are tiny; linear lookup).
  using Object = std::vector<std::pair<std::string, Json>>;

  /// Nesting depth accepted by parse_json.
  static constexpr std::size_t kMaxDepth = 64;

  Json() = default;  ///< null
  explicit Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  explicit Json(std::int64_t value)
      : kind_(Kind::kNumber), int_(value), is_int_(true) {}
  /// Throws JsonError when `value` is NaN or infinite.
  explicit Json(double value);
  explicit Json(std::string value)
      : kind_(Kind::kString), str_(std::move(value)) {}
  explicit Json(Array value) : kind_(Kind::kArray), arr_(std::move(value)) {}
  explicit Json(Object value) : kind_(Kind::kObject), obj_(std::move(value)) {}

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  /// True for numbers carried as exact int64 (never round-tripped through
  /// a double; dump() prints these via the integer path).
  bool is_exact_int() const noexcept {
    return kind_ == Kind::kNumber && is_int_;
  }

  /// Object member lookup; nullptr when absent (or when not an object).
  const Json* find(std::string_view key) const noexcept;

  bool as_bool() const;
  /// The numeric value as a double (exact integers convert losslessly
  /// within the double range used by the protocol).
  double as_number() const;
  /// The numeric value as an exact signed 64-bit integer.  Throws
  /// JsonError when the value is not a number, not integral, or does not
  /// fit (tick fields go through this, so overflow and NaN inputs are
  /// structural errors, never silent truncation).
  std::int64_t as_int64() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Serializes to compact JSON (no whitespace).  Inverse of parse_json
  /// for every value this model can hold.
  std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double num_ = 0.0;
  bool is_int_ = false;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parses exactly one JSON value spanning all of `text` (surrounding
/// whitespace allowed).  Throws JsonError with an offset-tagged message on
/// malformed input — truncated frames, bad escapes, NaN/Infinity literals,
/// numeric overflow, trailing garbage, or nesting beyond Json::kMaxDepth.
Json parse_json(std::string_view text);

/// Escapes `text` for inclusion in a JSON string literal (no quotes added).
std::string json_escape(std::string_view text);

}  // namespace mcs::svc
