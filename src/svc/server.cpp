#include "svc/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace mcs::svc {

namespace {

/// Serialized line writer over one fd, with a drain barrier so a session
/// can wait for every in-flight response before closing the fd (responses
/// arrive from pool workers after the reader saw EOF).
class OutputChannel {
 public:
  explicit OutputChannel(int fd) : fd_(fd) {}

  void write_line(const std::string& line) {
    const std::lock_guard<std::mutex> lock(write_mutex_);
    std::string buf;
    buf.reserve(line.size() + 1);
    buf = line;
    buf.push_back('\n');
    std::size_t written = 0;
    while (written < buf.size()) {
      const ssize_t n =
          ::write(fd_, buf.data() + written, buf.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;  // client gone (EPIPE etc.): drop the response
      }
      written += static_cast<std::size_t>(n);
    }
  }

  void begin_request() { outstanding_.fetch_add(1); }

  void complete_request() {
    if (outstanding_.fetch_sub(1) == 1) {
      const std::lock_guard<std::mutex> lock(drain_mutex_);
      drained_.notify_all();
    }
  }

  void wait_drained() {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drained_.wait(lock, [this] { return outstanding_.load() == 0; });
  }

 private:
  int fd_;
  std::mutex write_mutex_;
  std::atomic<std::size_t> outstanding_{0};
  std::mutex drain_mutex_;
  std::condition_variable drained_;
};

constexpr int kPollMillis = 100;

/// Reads newline-delimited lines from `fd` until EOF, a read error, or
/// `should_stop()`.  Calls on_line for each complete line and once for a
/// non-empty unterminated tail at EOF (the service then reports the
/// truncated frame as a parse error — it is still one request attempt).
/// A line exceeding `max_line` triggers one on_oversize() call; the rest
/// of that line is discarded and framing resynchronizes at the newline.
void read_lines(int fd, const std::function<bool()>& should_stop,
                std::size_t max_line,
                const std::function<void(std::string)>& on_line,
                const std::function<void()>& on_oversize) {
  std::string partial;
  bool discarding = false;
  char buf[65536];
  for (;;) {
    if (should_stop()) return;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, kPollMillis);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (pr == 0) continue;  // timeout: re-check should_stop
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (n == 0) {  // EOF
      if (!partial.empty() && !discarding) on_line(std::move(partial));
      return;
    }
    std::size_t begin = 0;
    for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
      if (buf[i] != '\n') continue;
      if (!discarding) {
        partial.append(buf + begin, i - begin);
        if (!partial.empty()) on_line(std::move(partial));
      }
      partial.clear();
      discarding = false;
      begin = i + 1;
    }
    if (!discarding) {
      partial.append(buf + begin, static_cast<std::size_t>(n) - begin);
      if (partial.size() > max_line) {
        partial.clear();
        partial.shrink_to_fit();
        discarding = true;
        on_oversize();
      }
    }
  }
}

/// One line-delimited protocol session: reads requests from `in_fd`,
/// dispatches through AdmissionService::submit (pool-served, sheddable),
/// writes responses to `out`.  Returns once the input side ended *and*
/// every dispatched response has been written.
void serve_session(AdmissionService& service, int in_fd,
                   const std::shared_ptr<OutputChannel>& out,
                   const std::function<bool()>& should_stop,
                   std::size_t max_line) {
  read_lines(
      in_fd, should_stop, max_line,
      [&service, &out](std::string line) {
        out->begin_request();
        service.submit(std::move(line), [out](std::string response) {
          out->write_line(response);
          out->complete_request();
        });
      },
      [&out] {
        out->write_line(
            "{\"ok\":false,\"error\":{\"code\":\"request_too_large\","
            "\"message\":\"line exceeds the server frame limit\"}}");
      });
  out->wait_drained();
}

/// Binds a listening Unix-domain stream socket at `path` (unlinking any
/// stale file first).  Returns -1 with `error` set on failure.
int open_unix_listener(const std::string& path, std::string& error) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) {
    error = "socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    error = "bind " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 16) < 0) {
    error = "listen " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int run_server(AdmissionService& service, const ServerConfig& config) {
  // A client that disconnects mid-response must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);

  std::atomic<bool> stop{false};
  const auto should_stop = [&stop, &service] {
    return stop.load() || service.shutdown_requested();
  };

  int listen_fd = -1;
  std::thread acceptor;
  std::mutex conns_mutex;
  std::vector<std::thread> conns;

  if (!config.socket_path.empty()) {
    std::string error;
    listen_fd = open_unix_listener(config.socket_path, error);
    if (listen_fd < 0) {
      std::cerr << "mcs_serve: " << error << "\n";
      return 1;
    }
    acceptor = std::thread([&, listen_fd] {
      for (;;) {
        if (should_stop()) return;
        pollfd pfd{};
        pfd.fd = listen_fd;
        pfd.events = POLLIN;
        const int pr = ::poll(&pfd, 1, kPollMillis);
        if (pr < 0) {
          if (errno == EINTR) continue;
          return;
        }
        if (pr == 0) continue;
        const int cfd = ::accept(listen_fd, nullptr, nullptr);
        if (cfd < 0) {
          if (errno == EINTR) continue;
          return;  // listener closed
        }
        const std::lock_guard<std::mutex> lock(conns_mutex);
        conns.emplace_back([&service, &should_stop, cfd, &config] {
          const auto out = std::make_shared<OutputChannel>(cfd);
          serve_session(service, cfd, out, should_stop,
                        config.max_line_bytes);
          ::close(cfd);
        });
      }
    });
  }

  if (config.serve_stdio) {
    const auto out = std::make_shared<OutputChannel>(STDOUT_FILENO);
    serve_session(service, STDIN_FILENO, out, should_stop,
                  config.max_line_bytes);
  } else {
    while (!should_stop()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kPollMillis));
    }
  }

  stop.store(true);
  if (listen_fd >= 0) ::close(listen_fd);
  if (acceptor.joinable()) acceptor.join();
  {
    const std::lock_guard<std::mutex> lock(conns_mutex);
    for (std::thread& t : conns) {
      if (t.joinable()) t.join();
    }
  }
  service.drain();
  if (!config.socket_path.empty()) ::unlink(config.socket_path.c_str());
  return 0;
}

}  // namespace mcs::svc
