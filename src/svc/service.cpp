#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/budget.hpp"
#include "analysis/engine.hpp"
#include "check/check.hpp"
#include "rt/task.hpp"
#include "rt/types.hpp"
#include "support/contracts.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"
#include "svc/cache.hpp"
#include "svc/fingerprint.hpp"
#include "svc/json.hpp"
#include "svc/request_log.hpp"

namespace mcs::svc {

namespace telemetry = support::telemetry;

namespace {

/// Protocol-level failure: rendered as {"ok":false,"error":{code,message}}.
struct ProtocolError {
  std::string code;
  std::string message;
};

constexpr std::size_t kMaxTaskNameBytes = 256;

Json jstr(std::string text) { return Json(std::move(text)); }
Json jint(std::int64_t value) { return Json(value); }

std::string hex64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

std::string ok_response(const Json& id, Json::Object body) {
  Json::Object top;
  top.emplace_back("ok", Json(true));
  if (!id.is_null()) top.emplace_back("id", id);
  for (auto& kv : body) top.push_back(std::move(kv));
  return Json(std::move(top)).dump();
}

std::string error_response(const Json& id, const std::string& code,
                           const std::string& message,
                           Json::Object extra = {}) {
  Json::Object err;
  err.emplace_back("code", jstr(code));
  err.emplace_back("message", jstr(message));
  for (auto& kv : extra) err.push_back(std::move(kv));
  Json::Object top;
  top.emplace_back("ok", Json(false));
  if (!id.is_null()) top.emplace_back("id", id);
  top.emplace_back("error", Json(std::move(err)));
  return Json(std::move(top)).dump();
}

const Json& require_field(const Json& obj, const char* key) {
  const Json* j = obj.find(key);
  if (j == nullptr) {
    throw ProtocolError{"bad_request", std::string("missing field: ") + key};
  }
  return *j;
}

std::string require_string(const Json& obj, const char* key) {
  const Json& j = require_field(obj, key);
  if (!j.is_string()) {
    throw ProtocolError{"bad_request", std::string(key) + " must be a string"};
  }
  return j.as_string();
}

rt::Time require_tick(const Json& obj, const char* key) {
  const Json& j = require_field(obj, key);
  try {
    return j.as_int64();
  } catch (const JsonError& e) {
    throw ProtocolError{"bad_request", std::string(key) + ": " + e.what()};
  }
}

/// Parses a task object: {"name","exec","copy_in","copy_out","period",
/// "deadline","prio"[,"ls"]}.  Priorities are explicit and validated by
/// TaskSet (duplicates rejected by the caller); tick fields go through the
/// exact-int64 path, so NaN / overflow / fractional inputs are structured
/// errors, never silent truncation.
rt::Task parse_task(const Json& obj) {
  if (!obj.is_object()) {
    throw ProtocolError{"bad_request", "task must be a JSON object"};
  }
  rt::Task t;
  t.name = require_string(obj, "name");
  if (t.name.empty() || t.name.size() > kMaxTaskNameBytes) {
    throw ProtocolError{"bad_request",
                        "task name must be 1..256 bytes"};
  }
  t.exec = require_tick(obj, "exec");
  t.copy_in = require_tick(obj, "copy_in");
  t.copy_out = require_tick(obj, "copy_out");
  t.period = require_tick(obj, "period");
  t.deadline = require_tick(obj, "deadline");
  const rt::Time prio = require_tick(obj, "prio");
  if (prio < 0 ||
      prio > static_cast<rt::Time>(std::numeric_limits<rt::Priority>::max())) {
    throw ProtocolError{"bad_request", "prio out of range"};
  }
  t.priority = static_cast<rt::Priority>(prio);
  if (const Json* ls = obj.find("ls")) {
    if (!ls->is_bool()) {
      throw ProtocolError{"bad_request", "ls must be a boolean"};
    }
    t.latency_sensitive = ls->as_bool();
  }
  return t;
}

/// Runs one full analysis of `tasks` under `mode` on `engine` and shapes
/// the outcome into the canonical-order Verdict the cache stores.
Verdict run_analysis(analysis::AnalysisEngine& engine, const rt::TaskSet& tasks,
                     AnalysisMode mode, const analysis::SolveBudget& budget) {
  analysis::AnalysisOptions options;
  options.budget = &budget;
  Verdict v;
  const std::vector<rt::TaskIndex> order = canonical_order(tasks);
  v.names.reserve(order.size());
  v.wcrt.reserve(order.size());
  v.ls.reserve(order.size());
  switch (mode) {
    case AnalysisMode::kGreedy: {
      const analysis::ProposedResult r = engine.analyze_proposed(tasks, options);
      v.schedulable = r.schedulable;
      v.degraded = r.degraded;
      v.relaxation = r.any_relaxation_fallback;
      v.rounds = static_cast<int>(r.rounds);
      for (const rt::TaskIndex i : order) {
        v.names.push_back(tasks[i].name);
        v.wcrt.push_back(r.per_task[i].wcrt);
        v.ls.push_back(r.ls_flags[i]);
      }
      break;
    }
    case AnalysisMode::kMarked: {
      const analysis::WpResult r = engine.analyze_marked(tasks, options);
      v.schedulable = r.schedulable;
      v.degraded = r.degraded;
      v.relaxation = r.any_relaxation_fallback;
      for (const rt::TaskIndex i : order) {
        v.names.push_back(tasks[i].name);
        v.wcrt.push_back(r.per_task[i].wcrt);
        v.ls.push_back(tasks[i].latency_sensitive);
      }
      break;
    }
    case AnalysisMode::kWp: {
      const analysis::WpResult r = engine.analyze_wp(tasks, options);
      v.schedulable = r.schedulable;
      v.degraded = r.degraded;
      v.relaxation = r.any_relaxation_fallback;
      for (const rt::TaskIndex i : order) {
        v.names.push_back(tasks[i].name);
        v.wcrt.push_back(r.per_task[i].wcrt);
        v.ls.push_back(false);
      }
      break;
    }
  }
  return v;
}

bool verdicts_equal(const Verdict& a, const Verdict& b) {
  return a.schedulable == b.schedulable && a.degraded == b.degraded &&
         a.relaxation == b.relaxation && a.rounds == b.rounds &&
         a.names == b.names && a.wcrt == b.wcrt && a.ls == b.ls;
}

/// MCS_CHECK_LEVEL >= 1 audit: a cache hit must byte-match a fresh
/// single-shot engine run.  Cached entries are never degraded and a budget
/// that never fires cannot change results, so the fresh run uses an
/// unlimited budget and the comparison is exact.
void audit_cache_hit(const rt::TaskSet& tasks, AnalysisMode mode,
                     const Verdict& cached, std::uint64_t fp) {
  analysis::AnalysisEngine fresh;
  const analysis::SolveBudget unlimited;
  const Verdict recomputed = run_analysis(fresh, tasks, mode, unlimited);
  telemetry::count("svc.check.cache_audits");
  if (!verdicts_equal(recomputed, cached)) {
    support::contract_fail(
        "invariant", "cached verdict == fresh verdict", __FILE__, __LINE__,
        "svc verdict-cache audit mismatch for fingerprint " + hex64(fp) +
            " (mode " + to_string(mode) + ")");
  }
}

Json verdict_json(const Verdict& v, std::uint64_t fp, bool cached) {
  Json::Object o;
  o.emplace_back("schedulable", Json(v.schedulable));
  o.emplace_back("degraded", Json(v.degraded));
  o.emplace_back("relaxation", Json(v.relaxation));
  o.emplace_back("rounds", jint(v.rounds));
  o.emplace_back("fingerprint", jstr(hex64(fp)));
  o.emplace_back("cached", Json(cached));
  Json::Array tasks;
  tasks.reserve(v.names.size());
  for (std::size_t i = 0; i < v.names.size(); ++i) {
    Json::Object t;
    t.emplace_back("name", jstr(v.names[i]));
    t.emplace_back("wcrt", v.wcrt[i] == rt::kTimeMax
                               ? Json()
                               : jint(v.wcrt[i]));
    t.emplace_back("ls", Json(static_cast<bool>(v.ls[i])));
    tasks.emplace_back(Json(std::move(t)));
  }
  o.emplace_back("tasks", Json(std::move(tasks)));
  return Json(std::move(o));
}

}  // namespace

struct CoreState {
  std::mutex mutex;  ///< serializes requests targeting this core
  /// Currently-admitted tasks, insertion order (canonicalized on analysis).
  std::vector<rt::Task> tasks;
  /// Persistent session: repeated analyses of the same membership reuse
  /// cached MILP formulations and solver state across requests.
  analysis::AnalysisEngine engine;
};

struct AdmissionService::Impl {
  explicit Impl(ServiceConfig cfg)
      : config(std::move(cfg)), cache(config.cache_capacity) {
    if (!config.log_path.empty()) {
      log = std::make_unique<RequestLogWriter>(config.log_path,
                                               config.log_truncate);
    }
    pool = std::make_unique<support::ThreadPool>(config.threads);
  }

  CoreState& core(const std::string& name) {
    const std::lock_guard<std::mutex> lock(cores_mutex);
    std::unique_ptr<CoreState>& slot = cores[name];
    if (slot == nullptr) slot = std::make_unique<CoreState>();
    return *slot;
  }

  analysis::SolveBudget make_budget(const Json& req) const {
    const Json* j = req.find("budget_ms");
    double ms = config.default_budget_ms;
    bool explicit_budget = false;
    if (j != nullptr) {
      try {
        ms = j->as_number();
      } catch (const JsonError& e) {
        throw ProtocolError{"bad_request",
                            std::string("budget_ms: ") + e.what()};
      }
      if (ms < 0) {
        throw ProtocolError{"bad_request", "budget_ms must be >= 0"};
      }
      explicit_budget = true;
    }
    // Config default 0 means "no budget"; an *explicit* budget_ms of 0 is
    // the deterministic pure-relaxation fast path (docs/SERVICE.md).
    if (!explicit_budget && ms <= 0) return analysis::SolveBudget{};
    if (ms == 0) return analysis::SolveBudget::exhausted();
    return analysis::SolveBudget::after(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double, std::milli>(ms)));
  }

  std::string render_status(const Json& id, const ServiceStats& s) {
    Json::Object st;
    st.emplace_back("requests", jint(static_cast<std::int64_t>(s.requests)));
    st.emplace_back("failed", jint(static_cast<std::int64_t>(s.failed)));
    st.emplace_back("shed", jint(static_cast<std::int64_t>(s.shed)));
    st.emplace_back("cache_hits",
                    jint(static_cast<std::int64_t>(s.cache_hits)));
    st.emplace_back("cache_misses",
                    jint(static_cast<std::int64_t>(s.cache_misses)));
    st.emplace_back("cache_evictions",
                    jint(static_cast<std::int64_t>(s.cache_evictions)));
    st.emplace_back("cache_entries",
                    jint(static_cast<std::int64_t>(s.cache_entries)));
    st.emplace_back("degraded_verdicts",
                    jint(static_cast<std::int64_t>(s.degraded_verdicts)));
    st.emplace_back("admitted", jint(static_cast<std::int64_t>(s.admitted)));
    st.emplace_back("rejected", jint(static_cast<std::int64_t>(s.rejected)));
    st.emplace_back("cores", jint(static_cast<std::int64_t>(s.cores)));
    st.emplace_back("queue_depth",
                    jint(static_cast<std::int64_t>(s.queue_depth)));
    Json::Object body;
    body.emplace_back("op", jstr("status"));
    body.emplace_back("stats", Json(std::move(st)));
    return ok_response(id, std::move(body));
  }

  ServiceStats snapshot_stats() {
    ServiceStats s;
    s.requests = requests.load(std::memory_order_relaxed);
    s.failed = failed.load(std::memory_order_relaxed);
    s.shed = shed.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits.load(std::memory_order_relaxed);
    s.cache_misses = cache_misses.load(std::memory_order_relaxed);
    s.cache_evictions = cache_evictions.load(std::memory_order_relaxed);
    s.degraded_verdicts = degraded_verdicts.load(std::memory_order_relaxed);
    s.admitted = admitted.load(std::memory_order_relaxed);
    s.rejected = rejected.load(std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(cores_mutex);
      s.cores = cores.size();
    }
    {
      const std::lock_guard<std::mutex> lock(cache_mutex);
      s.cache_entries = cache.size();
    }
    s.queue_depth = pending.load(std::memory_order_relaxed);
    return s;
  }

  /// Looks up / computes the verdict for `tasks` under `mode`.  Assumes the
  /// targeted core's mutex is held (the engine is not reentrant).
  Verdict verdict_for(CoreState& cs, const rt::TaskSet& tasks,
                      AnalysisMode mode, const analysis::SolveBudget& budget,
                      std::uint64_t fp, bool& cached) {
    cached = false;
    // Empty sets deliberately take the normal path: the engine answers them
    // trivially, and keeping one path means every response — including this
    // one — equals a fresh single-shot engine run (the differential-fuzz
    // contract and the MCS_CHECK_LEVEL>=1 cache audit both rely on it).
    {
      const std::lock_guard<std::mutex> lock(cache_mutex);
      if (std::optional<Verdict> hit = cache.lookup(fp)) {
        cached = true;
        cache_hits.fetch_add(1, std::memory_order_relaxed);
        telemetry::count("svc.cache.hits");
        Verdict v = std::move(*hit);
        return v;
      }
    }
    cache_misses.fetch_add(1, std::memory_order_relaxed);
    telemetry::count("svc.cache.misses");
    Verdict v = run_analysis(cs.engine, tasks, mode, budget);
    if (v.degraded) {
      // Budget-truncated: wall-clock dependent and pessimistic — serving
      // it later would shortchange a caller who asked for a full solve.
      degraded_verdicts.fetch_add(1, std::memory_order_relaxed);
      telemetry::count("svc.degraded_verdicts");
      telemetry::count("svc.cache.bypass");
    } else {
      const std::lock_guard<std::mutex> lock(cache_mutex);
      if (cache.insert(fp, v)) {
        cache_evictions.fetch_add(1, std::memory_order_relaxed);
        telemetry::count("svc.cache.evictions");
      }
    }
    return v;
  }

  std::string process(const std::string& line);

  ServiceConfig config;
  std::mutex cores_mutex;
  std::map<std::string, std::unique_ptr<CoreState>> cores;
  std::mutex cache_mutex;
  VerdictCache cache;
  std::unique_ptr<RequestLogWriter> log;
  std::unique_ptr<support::ThreadPool> pool;
  std::atomic<std::size_t> pending{0};
  std::atomic<bool> shutdown{false};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> cache_evictions{0};
  std::atomic<std::uint64_t> degraded_verdicts{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> rejected{0};
};

std::string AdmissionService::Impl::process(const std::string& line) {
  Json id;
  try {
    if (line.size() > config.max_request_bytes) {
      throw ProtocolError{"request_too_large",
                          "request exceeds " +
                              std::to_string(config.max_request_bytes) +
                              " bytes"};
    }
    Json req;
    try {
      req = parse_json(line);
    } catch (const JsonError& e) {
      throw ProtocolError{"parse_error", e.what()};
    }
    if (!req.is_object()) {
      throw ProtocolError{"bad_request", "request must be a JSON object"};
    }
    if (const Json* j = req.find("id")) id = *j;
    const Json* opj = req.find("op");
    if (opj == nullptr || !opj->is_string()) {
      throw ProtocolError{"bad_request", "missing string field: op"};
    }
    const std::string op = opj->as_string();

    if (op == "status") return render_status(id, snapshot_stats());
    if (op == "shutdown") {
      shutdown.store(true);
      Json::Object body;
      body.emplace_back("op", jstr("shutdown"));
      return ok_response(id, std::move(body));
    }
    if (op != "analyze" && op != "admit" && op != "remove" &&
        op != "mark_ls") {
      throw ProtocolError{"unknown_op", "unknown op: " + op};
    }

    std::string core_name = "default";
    if (const Json* j = req.find("core")) {
      if (!j->is_string() || j->as_string().empty()) {
        throw ProtocolError{"bad_request", "core must be a non-empty string"};
      }
      core_name = j->as_string();
    }

    AnalysisMode mode = AnalysisMode::kGreedy;
    if (const Json* j = req.find("mode")) {
      if (!j->is_string()) {
        throw ProtocolError{"bad_request", "mode must be a string"};
      }
      const std::optional<AnalysisMode> parsed = parse_mode(j->as_string());
      if (!parsed) {
        throw ProtocolError{"bad_request", "unknown mode: " + j->as_string()};
      }
      mode = *parsed;
    }

    const analysis::SolveBudget budget = make_budget(req);

    CoreState& cs = core(core_name);
    const std::lock_guard<std::mutex> core_lock(cs.mutex);

    if (op == "remove") {
      const std::string name = require_string(req, "name");
      const auto it =
          std::find_if(cs.tasks.begin(), cs.tasks.end(),
                       [&name](const rt::Task& t) { return t.name == name; });
      if (it == cs.tasks.end()) {
        throw ProtocolError{"unknown_task", "no such task: " + name};
      }
      cs.tasks.erase(it);
      Json::Object body;
      body.emplace_back("op", jstr("remove"));
      body.emplace_back("core", jstr(core_name));
      body.emplace_back("removed", jstr(name));
      body.emplace_back("tasks",
                        jint(static_cast<std::int64_t>(cs.tasks.size())));
      return ok_response(id, std::move(body));
    }

    std::vector<rt::Task> candidate = cs.tasks;
    bool commit_on_schedulable = false;
    if (op == "analyze" || op == "admit") {
      const Json* tj = req.find("task");
      if (op == "admit" && tj == nullptr) {
        throw ProtocolError{"bad_request", "admit requires a task object"};
      }
      if (tj != nullptr) {
        const rt::Task t = parse_task(*tj);
        for (const rt::Task& existing : candidate) {
          if (existing.name == t.name) {
            throw ProtocolError{"duplicate_task",
                                "task already present: " + t.name};
          }
          if (existing.priority == t.priority) {
            throw ProtocolError{"duplicate_priority",
                                "priority " + std::to_string(t.priority) +
                                    " already taken by " + existing.name};
          }
        }
        if (op == "admit" && candidate.size() >= config.max_tasks_per_core) {
          throw ProtocolError{"task_limit",
                              "core holds the maximum of " +
                                  std::to_string(config.max_tasks_per_core) +
                                  " tasks"};
        }
        candidate.push_back(t);
      }
      commit_on_schedulable = op == "admit";
    } else {  // mark_ls
      const std::string name = require_string(req, "name");
      const Json& lsj = require_field(req, "ls");
      if (!lsj.is_bool()) {
        throw ProtocolError{"bad_request", "ls must be a boolean"};
      }
      const auto it =
          std::find_if(candidate.begin(), candidate.end(),
                       [&name](const rt::Task& t) { return t.name == name; });
      if (it == candidate.end()) {
        throw ProtocolError{"unknown_task", "no such task: " + name};
      }
      it->latency_sensitive = lsj.as_bool();
      // mark_ls validates the *explicit* marking it creates; the greedy
      // re-marking modes would ignore the flag being toggled.
      mode = AnalysisMode::kMarked;
      commit_on_schedulable = true;
    }

    rt::TaskSet tasks;
    try {
      tasks = rt::TaskSet(candidate);
    } catch (const support::ContractViolation& e) {
      throw ProtocolError{"invalid_task", e.what()};
    }

    const std::uint64_t fp = fingerprint(tasks, mode);
    bool cached = false;
    const Verdict verdict = verdict_for(cs, tasks, mode, budget, fp, cached);
    if (cached && check::enabled(check::kLevelLint)) {
      audit_cache_hit(tasks, mode, verdict, fp);
    }

    bool committed = false;
    if (commit_on_schedulable) {
      if (verdict.schedulable) {
        // Safe even when degraded: degraded bounds only over-estimate, so
        // a schedulable verdict under them is a fortiori sound.
        cs.tasks = std::move(candidate);
        committed = true;
        admitted.fetch_add(1, std::memory_order_relaxed);
      } else {
        rejected.fetch_add(1, std::memory_order_relaxed);
      }
    }

    Json::Object body;
    body.emplace_back("op", jstr(op));
    body.emplace_back("core", jstr(core_name));
    body.emplace_back("mode", jstr(to_string(mode)));
    if (commit_on_schedulable) {
      body.emplace_back("committed", Json(committed));
    }
    body.emplace_back("verdict", verdict_json(verdict, fp, cached));
    return ok_response(id, std::move(body));
  } catch (const ProtocolError& e) {
    failed.fetch_add(1, std::memory_order_relaxed);
    telemetry::count("svc.requests_failed");
    return error_response(id, e.code, e.message);
  } catch (const std::exception& e) {
    failed.fetch_add(1, std::memory_order_relaxed);
    telemetry::count("svc.requests_failed");
    return error_response(id, "internal", e.what());
  }
}

AdmissionService::AdmissionService(ServiceConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

AdmissionService::~AdmissionService() = default;

std::string AdmissionService::handle_line(const std::string& line) {
  const auto start = std::chrono::steady_clock::now();
  std::string response = impl_->process(line);
  impl_->requests.fetch_add(1, std::memory_order_relaxed);
  telemetry::count("svc.requests");
  telemetry::record(
      "svc.request_seconds",
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  if (impl_->log != nullptr) impl_->log->append(line, response);
  return response;
}

void AdmissionService::submit(std::string line,
                              std::function<void(std::string)> done) {
  Impl& impl = *impl_;
  const std::size_t depth =
      impl.pending.fetch_add(1, std::memory_order_relaxed) + 1;
  telemetry::record("svc.queue_depth", static_cast<double>(depth));
  if (depth > impl.config.queue_high_water) {
    impl.pending.fetch_sub(1, std::memory_order_relaxed);
    impl.shed.fetch_add(1, std::memory_order_relaxed);
    impl.failed.fetch_add(1, std::memory_order_relaxed);
    telemetry::count("svc.shed_requests");
    telemetry::count("svc.requests_failed");
    // Exponential retry-after in the overshoot: the deeper past the
    // high-water mark, the longer clients are asked to back off.
    const std::size_t overshoot = depth - impl.config.queue_high_water;
    std::uint64_t retry = impl.config.base_retry_ms;
    for (std::size_t i = 1;
         i < overshoot && retry < impl.config.max_retry_ms; ++i) {
      retry *= 2;
    }
    retry = std::min(retry, impl.config.max_retry_ms);
    Json::Object extra;
    extra.emplace_back("retry_after_ms",
                       jint(static_cast<std::int64_t>(retry)));
    std::string response =
        error_response(Json{}, "overloaded",
                       "service overloaded; retry later", std::move(extra));
    if (impl.log != nullptr) impl.log->append(line, response);
    done(std::move(response));
    return;
  }
  impl.pool->submit(
      [this, line = std::move(line), done = std::move(done)]() mutable {
        if (impl_->config.test_request_hook) impl_->config.test_request_hook();
        std::string response = handle_line(line);
        impl_->pending.fetch_sub(1, std::memory_order_relaxed);
        done(std::move(response));
      });
}

void AdmissionService::drain() { impl_->pool->wait_idle(); }

bool AdmissionService::shutdown_requested() const noexcept {
  return impl_->shutdown.load(std::memory_order_relaxed);
}

ServiceStats AdmissionService::stats() const { return impl_->snapshot_stats(); }

}  // namespace mcs::svc
