// Crash-safe JSONL request log for the admission-control service
// (schema "mcs-svc-log-v1", docs/SERVICE.md §Request log).
//
// One line per entry, written with a single O_APPEND write, mirroring
// exp/sweep_log: a SIGKILL can at worst leave one partial trailing line,
// which the reader detects and drops.  The first line of a fresh log is a
// header; every later line records one request/response exchange with the
// *raw* wire text of both sides, so an offline tool can re-derive any
// verdict by replaying the request against a fresh service:
//
//   {"schema":"mcs-svc-log-v1"}
//   {"seq":0,"request":"{\"op\":\"analyze\",...}","response":"{\"ok\":true,...}"}
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

namespace mcs::svc {

/// One request/response exchange, raw wire text of both lines.
struct RequestLogRecord {
  std::uint64_t seq = 0;  ///< per-process ordering; restarts reset to 0
  std::string request;
  std::string response;
};

/// Order-preserving content of one log file.
struct RequestLogContents {
  bool has_header = false;
  std::vector<RequestLogRecord> records;
  /// True when the file ended in a partial line (crash artifact, dropped).
  bool truncated_tail = false;
};

/// Reads a request log.  A missing file yields empty contents; a partial
/// trailing line is dropped (see truncated_tail); a malformed *complete*
/// line throws std::runtime_error.
RequestLogContents read_request_log(const std::filesystem::path& path);

/// Append-only log writer.  Thread-safe: concurrent appends interleave at
/// line granularity.
class RequestLogWriter {
 public:
  /// Opens (creating if needed) `path` for appending; writes the schema
  /// header when the file is fresh (empty or truncated).  Throws
  /// std::runtime_error when the file cannot be opened.
  RequestLogWriter(const std::filesystem::path& path, bool truncate);
  ~RequestLogWriter();

  RequestLogWriter(const RequestLogWriter&) = delete;
  RequestLogWriter& operator=(const RequestLogWriter&) = delete;

  /// Appends one exchange; returns the sequence number it was assigned.
  std::uint64_t append(const std::string& request, const std::string& response);

 private:
  void write_line(const std::string& line);

  int fd_ = -1;
  std::uint64_t next_seq_ = 0;
  std::filesystem::path path_;
  std::mutex mutex_;
};

}  // namespace mcs::svc
