// Bounded LRU verdict cache for the admission-control service
// (docs/SERVICE.md §Caching).
//
// Keys are canonical task-set fingerprints (svc/fingerprint.hpp); values
// are complete verdicts — schedulability, per-task WCRT bounds, and the
// greedy LS marking — so a cache hit answers a request without touching
// the analysis engines at all.  Degraded (budget-truncated) verdicts are
// never inserted: they depend on wall-clock luck, and serving one from
// cache would hand a stale pessimistic answer to a caller who paid for a
// full solve.
//
// The cache is not internally synchronized; AdmissionService guards it
// with its state mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rt/types.hpp"

namespace mcs::svc {

/// A complete analysis outcome, sufficient to render a response and to
/// audit against a fresh engine run (check::kLevelLint).
///
/// `names`, `wcrt`, and `ls` are aligned and in canonical (priority-
/// ascending) order.  `wcrt[i] == rt::kTimeMax` means the bound diverged
/// (rendered as JSON null).
struct Verdict {
  bool schedulable = false;
  bool degraded = false;    ///< some bound fell back to the LP dual bound
                            ///< because a request budget expired
  bool relaxation = false;  ///< some solve used the LP relaxation path
  int rounds = 0;           ///< greedy promotion rounds (0 for marked/wp)
  std::vector<std::string> names;
  std::vector<rt::Time> wcrt;
  std::vector<bool> ls;  ///< final LS marking
};

/// Fixed-capacity LRU map from fingerprint to Verdict.
class VerdictCache {
 public:
  /// `capacity` == 0 disables the cache (every lookup misses).
  explicit VerdictCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached verdict and refreshes its recency, or nullopt.
  std::optional<Verdict> lookup(std::uint64_t key);

  /// Inserts (or refreshes) `key`; evicts the least-recently-used entry
  /// when full.  Returns true when an eviction happened.
  bool insert(std::uint64_t key, Verdict verdict);

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  void clear();

 private:
  struct Entry {
    std::uint64_t key = 0;
    Verdict verdict;
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> entries_;
};

}  // namespace mcs::svc
