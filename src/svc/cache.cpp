#include "svc/cache.hpp"

#include <utility>

namespace mcs::svc {

std::optional<Verdict> VerdictCache::lookup(std::uint64_t key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->verdict;
}

bool VerdictCache::insert(std::uint64_t key, Verdict verdict) {
  if (capacity_ == 0) return false;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->verdict = std::move(verdict);
    lru_.splice(lru_.begin(), lru_, it->second);
    return false;
  }
  bool evicted = false;
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
    evicted = true;
  }
  lru_.push_front(Entry{key, std::move(verdict)});
  entries_.emplace(key, lru_.begin());
  return evicted;
}

void VerdictCache::clear() {
  entries_.clear();
  lru_.clear();
}

}  // namespace mcs::svc
