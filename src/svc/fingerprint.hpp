// Canonical task-set fingerprinting for the admission-control verdict
// cache (docs/SERVICE.md).
//
// Two task sets that are equal up to task *ordering* must hit the same
// cache entry, so the fingerprint hashes a normalized encoding: tasks
// sorted by priority (unique within a set, hence a total order), each
// contributing its name, ticks, priority, and LS mark.  Analysis modes
// that do not consult the stored LS marks — greedy re-derives the marking
// from scratch, and the WP baseline disables LS semantics — zero the marks
// before hashing, so a mark-LS request never spuriously misses for them.
//
// The hash is support::hash_bytes (FNV-1a/64 with a splitmix64 avalanche
// finisher): platform-stable, so fingerprints in request logs compare
// across machines and runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "rt/task.hpp"

namespace mcs::svc {

/// How the service analyzes a task set (docs/SERVICE.md "mode").
enum class AnalysisMode {
  kGreedy,  ///< proposed protocol + greedy LS marking (paper §VI); stored
            ///< LS marks are ignored
  kMarked,  ///< proposed protocol under the *current* LS marks, no
            ///< reassignment
  kWp,      ///< the protocol of [3]: all-NLS baseline
};

const char* to_string(AnalysisMode mode) noexcept;
std::optional<AnalysisMode> parse_mode(std::string_view name) noexcept;

/// Task indices of `tasks` in canonical (priority-ascending) order.
/// Priorities are unique by TaskSet invariant, so the order is total.
std::vector<rt::TaskIndex> canonical_order(const rt::TaskSet& tasks);

/// Canonical fingerprint of `tasks` under `mode`.  Invariant under task
/// reordering; sensitive to every parameter the analysis consumes (names
/// excluded from the verdict itself but included here so same-shape sets
/// with different names do not alias in responses rendered from cache).
std::uint64_t fingerprint(const rt::TaskSet& tasks, AnalysisMode mode);

}  // namespace mcs::svc
