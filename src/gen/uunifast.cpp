#include "gen/uunifast.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace mcs::gen {

std::vector<double> uunifast(std::size_t n, double total_utilization,
                             support::Rng& rng) {
  MCS_REQUIRE(n >= 1, "uunifast: need at least one task");
  MCS_REQUIRE(total_utilization >= 0.0, "uunifast: negative utilization");
  std::vector<double> result;
  result.reserve(n);
  double remaining = total_utilization;
  for (std::size_t i = 1; i < n; ++i) {
    const double exponent = 1.0 / static_cast<double>(n - i);
    const double next = remaining * std::pow(rng.uniform01(), exponent);
    result.push_back(remaining - next);
    remaining = next;
  }
  result.push_back(remaining);
  return result;
}

}  // namespace mcs::gen
