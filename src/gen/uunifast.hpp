// UUniFast utilization generation (Bini & Buttazzo, 2005), used by the
// paper's experimental setup (§VII) to draw n per-task utilizations that
// sum to a target U with an unbiased uniform distribution over the simplex.
#pragma once

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace mcs::gen {

/// Returns `n` non-negative utilizations summing to `total_utilization`.
/// Requires n >= 1 and total_utilization >= 0.
std::vector<double> uunifast(std::size_t n, double total_utilization,
                             support::Rng& rng);

}  // namespace mcs::gen
