#include "gen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "gen/uunifast.hpp"
#include "support/contracts.hpp"

namespace mcs::gen {

using rt::Task;
using rt::TaskSet;
using rt::Time;

TaskSet generate_task_set(const GeneratorConfig& config, support::Rng& rng) {
  MCS_REQUIRE(config.num_tasks >= 1, "generator: need at least one task");
  MCS_REQUIRE(config.utilization > 0.0, "generator: utilization must be > 0");
  MCS_REQUIRE(config.gamma >= 0.0, "generator: negative gamma");
  MCS_REQUIRE(config.beta >= 0.0 && config.beta <= 1.0,
              "generator: beta outside [0,1]");
  MCS_REQUIRE(config.period_min > 0.0 &&
                  config.period_min <= config.period_max,
              "generator: bad period range");

  const std::vector<double> utils =
      uunifast(config.num_tasks, config.utilization, rng);

  std::vector<Task> tasks;
  tasks.reserve(config.num_tasks);
  for (std::size_t i = 0; i < config.num_tasks; ++i) {
    const double period_units =
        rng.log_uniform(config.period_min, config.period_max);
    const auto period = static_cast<Time>(
        std::llround(period_units * static_cast<double>(rt::kTicksPerUnit)));
    const auto exec = std::max<Time>(
        1, static_cast<Time>(
               std::llround(static_cast<double>(period) * utils[i])));
    const auto mem = static_cast<Time>(
        std::llround(config.gamma * static_cast<double>(exec)));
    const double d_lo = static_cast<double>(exec) +
                        config.beta * static_cast<double>(period - exec);
    const auto deadline_lo =
        std::min<Time>(period, std::max<Time>(exec, static_cast<Time>(
                                                        std::llround(d_lo))));
    const Time deadline = rng.uniform_int(deadline_lo, period);

    Task t;
    t.name = "tau" + std::to_string(i);
    t.exec = exec;
    t.copy_in = mem;
    t.copy_out = mem;
    t.period = period;
    t.deadline = deadline;
    t.priority = static_cast<rt::Priority>(i);  // provisional, DM below
    t.latency_sensitive = false;
    tasks.push_back(std::move(t));
  }

  TaskSet set(std::move(tasks));
  set.assign_deadline_monotonic_priorities();
  return set;
}

std::vector<TaskSet> partition_worst_fit(const std::vector<Task>& tasks,
                                         std::size_t cores) {
  MCS_REQUIRE(cores >= 1, "partition: need at least one core");
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&tasks](std::size_t a, std::size_t b) {
    return tasks[a].utilization() > tasks[b].utilization();
  });

  std::vector<std::vector<Task>> bins(cores);
  std::vector<double> load(cores, 0.0);
  for (const std::size_t idx : order) {
    const auto target = static_cast<std::size_t>(std::distance(
        load.begin(), std::min_element(load.begin(), load.end())));
    bins[target].push_back(tasks[idx]);
    load[target] += tasks[idx].utilization();
  }

  std::vector<TaskSet> result;
  result.reserve(cores);
  for (auto& bin : bins) {
    TaskSet set(std::move(bin));
    set.assign_deadline_monotonic_priorities();
    result.push_back(std::move(set));
  }
  return result;
}

}  // namespace mcs::gen
