// Synthetic task-set generation following the paper's experimental setup
// (§VII):
//   * minimum inter-arrival times T_i log-uniform in [10, 100] time units;
//   * per-task utilizations U_i from UUniFast for a target sum U;
//   * execution WCET C_i = T_i * U_i;
//   * memory phases u_i = l_i = gamma * C_i (gamma in [0.1, 0.5]);
//   * deadline D_i uniform in [C_i + beta * (T_i - C_i), T_i].
// Priorities are assigned deadline-monotonically (DESIGN.md §5.2); all
// tasks start as non-latency-sensitive (the greedy algorithm of §VI marks
// LS tasks during analysis).
#pragma once

#include <cstdint>
#include <vector>

#include "rt/task.hpp"
#include "support/rng.hpp"

namespace mcs::gen {

struct GeneratorConfig {
  std::size_t num_tasks = 4;
  double utilization = 0.5;  ///< target U = sum C_i / T_i
  double gamma = 0.1;        ///< memory-intensity: l = u = gamma * C
  double beta = 0.3;         ///< deadline tightness (0 tight .. 1 = [C..T])
  double period_min = 10.0;  ///< paper time units (scaled to ticks)
  double period_max = 100.0;
};

/// Draws one task set per the paper's recipe.  All parameters are rounded
/// to integer ticks; C is clamped to >= 1 tick and D to >= C so that every
/// generated set satisfies the TaskSet invariants (a set may still be
/// trivially unschedulable when D < l + C + u — that is intended, see
/// Figure 2(f)'s small-beta regime).
rt::TaskSet generate_task_set(const GeneratorConfig& config,
                              support::Rng& rng);

/// Worst-fit decreasing partitioning of `tasks` onto `cores` task sets by
/// execution utilization; used for multicore scenarios (extension — the
/// paper analyzes each core in isolation).
std::vector<rt::TaskSet> partition_worst_fit(const std::vector<rt::Task>& tasks,
                                             std::size_t cores);

}  // namespace mcs::gen
