// Deterministic pseudo-random number generation for experiments and tests.
//
// All stochastic components of the library (task-set generation, release
// jitter in the simulator, property-test instance sampling) draw from
// mcs::support::Rng so that every experiment is reproducible from a single
// 64-bit seed.  The generator is xoshiro256** (Blackman & Vigna), seeded via
// splitmix64 — fast, high quality, and stable across platforms, unlike
// std::default_random_engine whose algorithm is implementation-defined.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mcs::support {

/// splitmix64 step; used for seed expansion and as a tiny standalone PRNG.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// splitmix64-style hash of the tuple (seed, a, b): a pure function whose
/// output seeds an independent Rng stream per tuple.  Unlike additive
/// schemes (`seed + K * index`), nearby seeds and indices cannot collide
/// into the same stream — every component passes through a full avalanche
/// mix before being combined.  Used by the sweep runner to derive one RNG
/// per (sweep seed, point, slot) work unit, which is what makes experiment
/// output independent of thread count, shard layout, and resume boundaries.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t a,
                          std::uint64_t b = 0) noexcept;

/// xoshiro256** pseudo-random generator with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator, so it can also be plugged into
/// <random> distributions, but the member helpers below are used throughout
/// the library because their results are platform-stable (the std
/// distributions are not).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Log-uniform double in [lo, hi): exp(U(log lo, log hi)).
  /// Requires 0 < lo <= hi.  Used for task periods per the paper (§VII).
  double log_uniform(double lo, double hi);

  /// Uniform integer in the closed range [lo, hi].  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with probability `p` of returning true.
  bool bernoulli(double p);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Requires at least one strictly positive weight, none negative.
  std::size_t discrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Derives an independent child generator; child streams for distinct
  /// indices are decorrelated from the parent and from each other.
  Rng split(std::uint64_t stream_index) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mcs::support
