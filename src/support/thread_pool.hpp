// Fixed-size thread pool used to parallelize per-task-set analysis in the
// experiment sweeps (each sweep point analyzes many independent task sets).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace mcs::support {

/// A minimal work-queue thread pool.
///
/// Tasks are std::function<void()>.  An exception escaping a task is
/// captured (the *first* one wins; later ones are dropped) and rethrown
/// from the next wait_idle() call once the queue has drained, so one bad
/// task set aborts a sweep cleanly instead of std::terminate-ing the whole
/// process.  Destruction waits for all queued work (RAII: the pool owns its
/// threads); an error never surfaced through wait_idle() is discarded.
class ThreadPool {
 public:
  /// Spawns `worker_count` threads (0 means hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t worker_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Must not be called after wait_idle began returning
  /// concurrently with destruction.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task raised since the last wait_idle() (clearing
  /// it).  The pool remains usable after the rethrow.
  void wait_idle();

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Tasks queued or currently executing.  A snapshot — by the time the
  /// caller looks at it the pool may have drained further; useful for
  /// progress reporting, not for synchronization.
  std::size_t pending();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_worker_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::exception_ptr first_error_;  ///< first task exception, guarded by mutex_
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Exception surfaced by parallel_for / parallel_for_chunked when a body
/// invocation throws: wraps the original exception and remembers *which*
/// index failed, so a sweep over thousands of task sets can report the
/// culprit instead of a bare what().  Derives from std::runtime_error: the
/// what() text embeds the index and the original message, so callers that
/// only catch std::runtime_error keep working.
class ParallelForError : public std::runtime_error {
 public:
  ParallelForError(std::size_t index, const std::string& message,
                   std::exception_ptr cause)
      : std::runtime_error(message), index_(index), cause_(std::move(cause)) {}

  /// The loop index whose body threw.
  std::size_t index() const noexcept { return index_; }
  /// The original exception (never null); rethrow to inspect its type.
  std::exception_ptr cause() const noexcept { return cause_; }

 private:
  std::size_t index_;
  std::exception_ptr cause_;
};

/// Runs `fn(i)` for i in [0, count) across the pool and waits for all.
/// A throwing body surfaces as ParallelForError carrying the index.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Like parallel_for, but submits `chunks` pool tasks instead of `count`
/// (0 means the pool's worker count; clamped to [1, count]).  Chunk c runs
/// the indices congruent to c modulo the chunk count — i = c, c + chunks,
/// c + 2*chunks, ... — *sequentially*.  Callers may therefore keep one
/// exclusive mutable context per chunk and pick it as `context[i % chunks]`
/// inside the body: the same context is never touched by two chunks, and
/// index i always lands on the same context regardless of how the pool
/// interleaves the chunks (this is what makes the analysis engine's
/// per-worker solver caches thread-count independent).
void parallel_for_chunked(ThreadPool& pool, std::size_t count,
                          std::size_t chunks,
                          const std::function<void(std::size_t)>& fn);

}  // namespace mcs::support
