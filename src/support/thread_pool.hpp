// Fixed-size thread pool used to parallelize per-task-set analysis in the
// experiment sweeps (each sweep point analyzes many independent task sets).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcs::support {

/// A minimal work-queue thread pool.
///
/// Tasks are std::function<void()>.  An exception escaping a task is
/// captured (the *first* one wins; later ones are dropped) and rethrown
/// from the next wait_idle() call once the queue has drained, so one bad
/// task set aborts a sweep cleanly instead of std::terminate-ing the whole
/// process.  Destruction waits for all queued work (RAII: the pool owns its
/// threads); an error never surfaced through wait_idle() is discarded.
class ThreadPool {
 public:
  /// Spawns `worker_count` threads (0 means hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t worker_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Must not be called after wait_idle began returning
  /// concurrently with destruction.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task raised since the last wait_idle() (clearing
  /// it).  The pool remains usable after the rethrow.
  void wait_idle();

  std::size_t worker_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_worker_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::exception_ptr first_error_;  ///< first task exception, guarded by mutex_
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for i in [0, count) across the pool and waits for all.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace mcs::support
