// Fixed-size thread pool used to parallelize per-task-set analysis in the
// experiment sweeps (each sweep point analyzes many independent task sets).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcs::support {

/// A minimal work-queue thread pool.
///
/// Tasks are std::function<void()>; exceptions escaping a task terminate
/// the process by design (tasks are expected to capture-and-store their own
/// errors — the experiment runner does).  Destruction waits for all queued
/// work (RAII: the pool owns its threads).
class ThreadPool {
 public:
  /// Spawns `worker_count` threads (0 means hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t worker_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Must not be called after wait_idle began returning
  /// concurrently with destruction.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t worker_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_worker_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for i in [0, count) across the pool and waits for all.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace mcs::support
