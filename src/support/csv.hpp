// Minimal CSV writer for experiment outputs.
//
// RFC-4180-style quoting: fields containing commas, quotes, or newlines are
// quoted, embedded quotes doubled.  Numeric overloads format with enough
// precision to round-trip.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace mcs::support {

/// Streams rows to a CSV file; the file is flushed and closed on
/// destruction (RAII).  Throws std::runtime_error when the file cannot be
/// opened.
class CsvWriter {
 public:
  explicit CsvWriter(const std::filesystem::path& path);

  /// Writes a header / arbitrary row of raw (to-be-escaped) cells.
  void write_row(const std::vector<std::string>& cells);

  /// Row-building interface: cell() appends, end_row() terminates.
  CsvWriter& cell(std::string_view text);
  CsvWriter& cell(double value);
  CsvWriter& cell(std::int64_t value);
  CsvWriter& cell(std::size_t value);
  void end_row();

  /// Escapes one CSV field (exposed for tests).
  static std::string escape(std::string_view field);

 private:
  std::ofstream out_;
  bool row_open_ = false;
};

}  // namespace mcs::support
