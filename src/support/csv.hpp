// Minimal CSV writer/reader for experiment outputs.
//
// RFC-4180-style quoting: fields containing commas, quotes, or newlines are
// quoted, embedded quotes doubled.  Numeric overloads format with enough
// precision to round-trip.
//
// Writes are crash-atomic: the writer streams into `<path>.tmp` and renames
// it over the final path on close(), so an interrupted bench never leaves a
// truncated CSV where a complete one is expected.  If the writer is
// destroyed while an exception is unwinding, the temporary is removed and
// the previous file (if any) is left untouched.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace mcs::support {

/// Streams rows to a CSV file via a `<path>.tmp` sidecar that is renamed
/// into place by close() — or by the destructor on clean scope exit.
/// Throws std::runtime_error when the file cannot be opened or the final
/// rename fails.
class CsvWriter {
 public:
  explicit CsvWriter(const std::filesystem::path& path);

  /// Commits on clean scope exit; discards the temporary when unwinding.
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes a header / arbitrary row of raw (to-be-escaped) cells.
  void write_row(const std::vector<std::string>& cells);

  /// Row-building interface: cell() appends, end_row() terminates.
  CsvWriter& cell(std::string_view text);
  CsvWriter& cell(double value);
  CsvWriter& cell(std::int64_t value);
  CsvWriter& cell(std::size_t value);
  void end_row();

  /// Flushes and atomically renames the temporary over the final path.
  /// Idempotent; throws on I/O failure (the temporary is then removed).
  void close();

  /// Escapes one CSV field (exposed for tests).
  static std::string escape(std::string_view field);

 private:
  void discard() noexcept;

  std::filesystem::path path_;
  std::filesystem::path tmp_path_;
  std::ofstream out_;
  bool row_open_ = false;
  bool closed_ = false;
  int uncaught_on_entry_ = 0;
};

/// Parses RFC-4180 CSV text into rows of unescaped fields.  Accepts both
/// LF and CRLF row terminators and quoted fields containing commas,
/// doubled quotes, and embedded newlines.  A trailing newline does not
/// produce an empty final row.  Throws std::runtime_error on a stray
/// quote inside an unquoted field or an unterminated quoted field.
std::vector<std::vector<std::string>> parse_csv(std::string_view text);

/// Reads and parses a CSV file (see parse_csv).  Throws std::runtime_error
/// when the file cannot be opened.
std::vector<std::vector<std::string>> read_csv_file(
    const std::filesystem::path& path);

}  // namespace mcs::support
