// Small summary-statistics helpers used by the experiment harness and the
// benchmark reporters.
#pragma once

#include <cstddef>
#include <vector>

namespace mcs::support {

/// Incremental mean / variance / extrema accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return count_; }
  /// Requires at least one sample.
  double mean() const;
  /// Sample variance (n-1 denominator). Requires at least two samples.
  double variance() const;
  /// Sample standard deviation. Requires at least two samples.
  double stddev() const;
  /// Requires at least one sample.
  double min() const;
  /// Requires at least one sample.
  double max() const;
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile with linear interpolation between order statistics.
/// `q` in [0, 1]; requires non-empty data. Copies & sorts internally.
double percentile(std::vector<double> data, double q);

/// Arithmetic mean; requires non-empty data.
double mean_of(const std::vector<double>& data);

}  // namespace mcs::support
