#include "support/rng.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace mcs::support {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t a,
                          std::uint64_t b) noexcept {
  // Fold one fully-mixed splitmix64 output per tuple component into the
  // result.  Each component is pre-multiplied by a distinct odd constant so
  // the xor into the evolving state is injective per component; the final
  // value is the xor of three avalanche mixes, so no linear relation
  // between (seed, a, b) tuples survives into the output.
  std::uint64_t state = seed;
  std::uint64_t hash = splitmix64(state);
  state ^= a * 0xff51afd7ed558ccdULL;
  hash ^= splitmix64(state);
  state ^= b * 0xc4ceb9fe1a85ec53ULL;
  hash ^= splitmix64(state);
  return hash;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0, 1) with full mantissa resolution.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MCS_REQUIRE(lo <= hi, "uniform: empty range");
  return lo + (hi - lo) * uniform01();
}

double Rng::log_uniform(double lo, double hi) {
  MCS_REQUIRE(lo > 0.0 && lo <= hi, "log_uniform: need 0 < lo <= hi");
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MCS_REQUIRE(lo <= hi, "uniform_int: empty range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0} / span) * span;
  std::uint64_t draw = (*this)();
  while (draw >= limit) {
    draw = (*this)();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::bernoulli(double p) {
  MCS_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p outside [0,1]");
  return uniform01() < p;
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
  MCS_REQUIRE(!weights.empty(), "discrete: no weights");
  double total = 0.0;
  for (const double w : weights) {
    MCS_REQUIRE(w >= 0.0, "discrete: negative weight");
    total += w;
  }
  MCS_REQUIRE(total > 0.0, "discrete: all weights zero");
  double point = uniform01() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (point < weights[i]) {
      return i;
    }
    point -= weights[i];
  }
  return weights.size() - 1;
}

Rng Rng::split(std::uint64_t stream_index) noexcept {
  // Mix the parent's next output with the stream index through splitmix64
  // so sibling streams differ even for adjacent indices.
  std::uint64_t mix = (*this)() ^ (stream_index * 0xd1342543de82ef95ULL);
  return Rng(splitmix64(mix));
}

}  // namespace mcs::support
