// Deterministic byte-sequence hashing for canonical-state deduplication.
//
// The model checker (verify/) keys millions of canonical state encodings in
// a hash map; std::hash<std::string> is implementation-defined, which would
// make state-count telemetry (and any hash-ordered artifact) vary across
// standard libraries.  This is a fixed FNV-1a/64 core with a splitmix64
// avalanche finisher (same mixing family as support::derive_seed): platform
// stable, no allocation, good diffusion of the low bits the hash map
// actually uses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace mcs::support {

/// FNV-1a/64 over `size` bytes, finished with a splitmix64 avalanche so
/// that short, structurally similar keys (the common case for packed state
/// encodings) still spread over the whole table.
inline std::uint64_t hash_bytes(const void* data, std::size_t size,
                                std::uint64_t seed = 0) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  // splitmix64 finisher.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// Transparent hash functor over strings/string_views, usable as the Hash
/// parameter of unordered containers.
struct BytesHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return static_cast<std::size_t>(hash_bytes(s.data(), s.size()));
  }
  std::size_t operator()(const std::string& s) const noexcept {
    return static_cast<std::size_t>(hash_bytes(s.data(), s.size()));
  }
};

}  // namespace mcs::support
