#include "support/csv.hpp"

#include <charconv>
#include <stdexcept>

#include "support/contracts.hpp"

namespace mcs::support {

CsvWriter::CsvWriter(const std::filesystem::path& path) : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path.string());
  }
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) {
    return std::string(field);
  }
  std::string quoted;
  quoted.reserve(field.size() + 2);
  quoted.push_back('"');
  for (const char c : field) {
    if (c == '"') {
      quoted.push_back('"');
    }
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  MCS_REQUIRE(!row_open_, "write_row while a row is being built");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) {
      out_ << ',';
    }
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

CsvWriter& CsvWriter::cell(std::string_view text) {
  if (row_open_) {
    out_ << ',';
  }
  out_ << escape(text);
  row_open_ = true;
  return *this;
}

CsvWriter& CsvWriter::cell(double value) {
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, value,
                    std::chars_format::general, 17);
  MCS_ASSERT(ec == std::errc{}, "to_chars(double) failed");
  return cell(std::string_view(buf, static_cast<std::size_t>(ptr - buf)));
}

CsvWriter& CsvWriter::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

CsvWriter& CsvWriter::cell(std::size_t value) {
  return cell(std::to_string(value));
}

void CsvWriter::end_row() {
  out_ << '\n';
  row_open_ = false;
}

}  // namespace mcs::support
