#include "support/csv.hpp"

#include <charconv>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "support/contracts.hpp"

namespace mcs::support {

CsvWriter::CsvWriter(const std::filesystem::path& path)
    : path_(path),
      tmp_path_(path.string() + ".tmp"),
      out_(tmp_path_, std::ios::trunc),
      uncaught_on_entry_(std::uncaught_exceptions()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + tmp_path_.string());
  }
}

CsvWriter::~CsvWriter() {
  if (closed_) return;
  if (std::uncaught_exceptions() > uncaught_on_entry_) {
    // Unwinding: the row stream is incomplete — drop the temporary and
    // leave any previous file untouched.
    discard();
    return;
  }
  try {
    close();
  } catch (...) {
    // Destructors must not throw; the temporary was already removed.
  }
}

void CsvWriter::discard() noexcept {
  out_.close();
  std::error_code ec;
  std::filesystem::remove(tmp_path_, ec);
  closed_ = true;
}

void CsvWriter::close() {
  if (closed_) return;
  out_.flush();
  const bool ok = out_.good();
  out_.close();
  if (!ok) {
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
    closed_ = true;
    throw std::runtime_error("CsvWriter: write failed for " +
                             tmp_path_.string());
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path_, path_, ec);
  if (ec) {
    std::error_code rm;
    std::filesystem::remove(tmp_path_, rm);
    closed_ = true;
    throw std::runtime_error("CsvWriter: cannot rename " +
                             tmp_path_.string() + " to " + path_.string() +
                             ": " + ec.message());
  }
  closed_ = true;
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) {
    return std::string(field);
  }
  std::string quoted;
  quoted.reserve(field.size() + 2);
  quoted.push_back('"');
  for (const char c : field) {
    if (c == '"') {
      quoted.push_back('"');
    }
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  MCS_REQUIRE(!row_open_, "write_row while a row is being built");
  MCS_REQUIRE(!closed_, "write_row after close");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) {
      out_ << ',';
    }
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

CsvWriter& CsvWriter::cell(std::string_view text) {
  MCS_REQUIRE(!closed_, "cell after close");
  if (row_open_) {
    out_ << ',';
  }
  out_ << escape(text);
  row_open_ = true;
  return *this;
}

CsvWriter& CsvWriter::cell(double value) {
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, value,
                    std::chars_format::general, 17);
  MCS_ASSERT(ec == std::errc{}, "to_chars(double) failed");
  return cell(std::string_view(buf, static_cast<std::size_t>(ptr - buf)));
}

CsvWriter& CsvWriter::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

CsvWriter& CsvWriter::cell(std::size_t value) {
  return cell(std::to_string(value));
}

void CsvWriter::end_row() {
  MCS_REQUIRE(!closed_, "end_row after close");
  out_ << '\n';
  row_open_ = false;
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  bool row_has_content = false;

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty() || field_was_quoted) {
          throw std::runtime_error(
              "parse_csv: stray quote inside an unquoted field");
        }
        in_quotes = true;
        field_was_quoted = true;
        row_has_content = true;
        break;
      case ',':
        end_field();
        row_has_content = true;
        break;
      case '\r':
        // Only swallow the CR of a CRLF terminator; a bare CR inside an
        // unquoted field would have been quoted by our writer.
        if (i + 1 < text.size() && text[i + 1] == '\n') {
          break;
        }
        field.push_back(c);
        break;
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) {
    throw std::runtime_error("parse_csv: unterminated quoted field");
  }
  // Final row without a trailing newline.
  if (row_has_content || !row.empty() || !field.empty()) {
    end_row();
  }
  return rows;
}

std::vector<std::vector<std::string>> read_csv_file(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_csv_file: cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

}  // namespace mcs::support
