// Lightweight contract / assertion support used across the library.
//
// The library follows the C++ Core Guidelines (I.6/I.8): preconditions are
// expressed with MCS_REQUIRE (always on; violations throw ContractViolation
// so tests can observe them), internal invariants with MCS_ASSERT (compiled
// out in release builds unless MCS_FORCE_ASSERTS is defined).
#pragma once

#include <stdexcept>
#include <string>

namespace mcs::support {

/// Thrown when a precondition or invariant annotated with MCS_REQUIRE /
/// MCS_ASSERT is violated.  Deriving from std::logic_error: a contract
/// violation is a programming error, not a runtime condition to handle.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file,
                    int line, const std::string& msg);
};

[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* file, int line,
                                const std::string& msg);

}  // namespace mcs::support

#define MCS_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::mcs::support::contract_fail("precondition", #cond, __FILE__,        \
                                    __LINE__, (msg));                       \
    }                                                                       \
  } while (false)

#if !defined(NDEBUG) || defined(MCS_FORCE_ASSERTS)
#define MCS_ASSERT(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::mcs::support::contract_fail("invariant", #cond, __FILE__, __LINE__, \
                                    (msg));                                 \
    }                                                                       \
  } while (false)
#else
#define MCS_ASSERT(cond, msg) \
  do {                        \
  } while (false)
#endif
