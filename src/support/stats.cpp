#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace mcs::support {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  MCS_REQUIRE(count_ > 0, "mean of empty sample");
  return mean_;
}

double RunningStats::variance() const {
  MCS_REQUIRE(count_ > 1, "variance needs >= 2 samples");
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  MCS_REQUIRE(count_ > 0, "min of empty sample");
  return min_;
}

double RunningStats::max() const {
  MCS_REQUIRE(count_ > 0, "max of empty sample");
  return max_;
}

double percentile(std::vector<double> data, double q) {
  MCS_REQUIRE(!data.empty(), "percentile of empty sample");
  MCS_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q outside [0,1]");
  std::sort(data.begin(), data.end());
  if (data.size() == 1) {
    return data.front();
  }
  const double pos = q * static_cast<double>(data.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, data.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return data[lo] + frac * (data[hi] - data[lo]);
}

double mean_of(const std::vector<double>& data) {
  MCS_REQUIRE(!data.empty(), "mean of empty sample");
  double total = 0.0;
  for (const double x : data) {
    total += x;
  }
  return total / static_cast<double>(data.size());
}

}  // namespace mcs::support
