#include "support/telemetry.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace mcs::support::telemetry {

namespace {

// Geometric buckets with ratio 2^(1/4) spanning [kHistOrigin, ~5e9 * origin
// * 2^(kHistBuckets/4)].  256 buckets cover ~19 decades starting at 1e-9 —
// ample for both second-scale timers and count-scale samples.
constexpr std::size_t kHistBuckets = 256;
constexpr double kHistOrigin = 1e-9;

std::size_t bucket_index(double value) noexcept {
  if (!(value > kHistOrigin)) return 0;
  const double pos = std::log2(value / kHistOrigin) * 4.0;
  const auto idx = static_cast<long>(pos);  // pos >= 0 here
  return std::min<std::size_t>(static_cast<std::size_t>(idx),
                               kHistBuckets - 1);
}

/// Upper bound of bucket `i` (used as the percentile estimate).
double bucket_upper(std::size_t i) noexcept {
  return kHistOrigin * std::exp2(static_cast<double>(i + 1) / 4.0);
}

struct TimerAcc {
  std::uint64_t count = 0;
  double total = 0.0;
  double min = 0.0;
  double max = 0.0;

  void add(double seconds) noexcept {
    if (count == 0) {
      min = max = seconds;
    } else {
      min = std::min(min, seconds);
      max = std::max(max, seconds);
    }
    ++count;
    total += seconds;
  }
};

struct HistAcc {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kHistBuckets> buckets{};

  void add(double value) noexcept {
    if (count == 0) {
      min = max = value;
    } else {
      min = std::min(min, value);
      max = std::max(max, value);
    }
    ++count;
    sum += value;
    ++buckets[bucket_index(value)];
  }

  void merge(const HistAcc& other) noexcept {
    if (other.count == 0) return;
    if (count == 0) {
      min = other.min;
      max = other.max;
    } else {
      min = std::min(min, other.min);
      max = std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
      buckets[i] += other.buckets[i];
    }
  }

  /// Quantile estimate: upper bound of the bucket holding the q-th sample,
  /// clamped to the exact extrema.
  double quantile(double q) const noexcept {
    if (count == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
      seen += buckets[i];
      if (seen >= std::max<std::uint64_t>(target, 1)) {
        return std::clamp(bucket_upper(i), min, max);
      }
    }
    return max;
  }
};

/// One thread's private slice of the registry.  The shard mutex is
/// uncontended on the hot path (only the owner writes; scrapes are rare).
struct Shard {
  std::mutex mu;
  std::unordered_map<std::string, std::uint64_t> counters;
  std::unordered_map<std::string, TimerAcc> timers;
  std::unordered_map<std::string, HistAcc> hists;
};

class Registry {
 public:
  std::shared_ptr<Shard> make_shard() {
    auto shard = std::make_shared<Shard>();
    std::lock_guard lock(mu_);
    shards_.push_back(shard);
    return shard;
  }

  Snapshot scrape() {
    // Copy the shard list first so shard locks are never held together with
    // the registry lock.
    std::vector<std::shared_ptr<Shard>> shards;
    {
      std::lock_guard lock(mu_);
      shards = shards_;
    }
    Snapshot snap;
    std::unordered_map<std::string, HistAcc> merged_hists;
    for (const auto& shard : shards) {
      std::lock_guard lock(shard->mu);
      for (const auto& [name, value] : shard->counters) {
        snap.counters[name] += value;
      }
      for (const auto& [name, acc] : shard->timers) {
        TimerStat& t = snap.timers[name];
        if (t.count == 0) {
          t.min_seconds = acc.min;
          t.max_seconds = acc.max;
        } else {
          t.min_seconds = std::min(t.min_seconds, acc.min);
          t.max_seconds = std::max(t.max_seconds, acc.max);
        }
        t.count += acc.count;
        t.total_seconds += acc.total;
      }
      for (const auto& [name, acc] : shard->hists) {
        merged_hists[name].merge(acc);
      }
    }
    for (const auto& [name, acc] : merged_hists) {
      HistogramStat h;
      h.count = acc.count;
      h.sum = acc.sum;
      h.min = acc.min;
      h.max = acc.max;
      h.p50 = acc.quantile(0.50);
      h.p90 = acc.quantile(0.90);
      h.p99 = acc.quantile(0.99);
      snap.histograms[name] = h;
    }
    return snap;
  }

  void clear() {
    std::vector<std::shared_ptr<Shard>> shards;
    {
      std::lock_guard lock(mu_);
      shards = shards_;
    }
    for (const auto& shard : shards) {
      std::lock_guard lock(shard->mu);
      shard->counters.clear();
      shard->timers.clear();
      shard->hists.clear();
    }
  }

 private:
  std::mutex mu_;
  /// Shards are kept alive for the process lifetime: data from exited
  /// threads must survive until the final scrape, and the count is bounded
  /// by the number of threads ever created (small: one pool per run).
  std::vector<std::shared_ptr<Shard>> shards_;
};

Registry& registry() {
  // Leaked singleton: scrapes may run during static destruction of other
  // translation units; never destroy the registry.
  static Registry* instance = new Registry;
  return *instance;
}

Shard& local_shard() {
  thread_local std::shared_ptr<Shard> shard = registry().make_shard();
  return *shard;
}

// -1 = not yet read from the environment.
std::atomic<int> g_enabled{-1};

}  // namespace

bool enabled() noexcept {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    const char* env = std::getenv("MCS_TELEMETRY");
    state = (env != nullptr && env[0] == '0' && env[1] == '\0') ? 0 : 1;
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void count(std::string_view name, std::uint64_t delta) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  std::lock_guard lock(shard.mu);
  shard.counters[std::string(name)] += delta;
}

void record(std::string_view name, double value) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  std::lock_guard lock(shard.mu);
  shard.hists[std::string(name)].add(value);
}

void add_time(std::string_view name, double seconds) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  std::lock_guard lock(shard.mu);
  shard.timers[std::string(name)].add(seconds);
}

Snapshot snapshot() { return registry().scrape(); }

void reset() { registry().clear(); }

ScopedTimer::ScopedTimer(const char* name) noexcept
    : name_(name), armed_(enabled()) {
  if (armed_) {
    start_ = std::chrono::steady_clock::now();
  }
}

ScopedTimer::~ScopedTimer() {
  if (!armed_) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  try {
    add_time(name_, std::chrono::duration<double>(elapsed).count());
  } catch (...) {
    // add_time allocates; an OOM during unwinding must not terminate the
    // process over a telemetry sample.
  }
}

}  // namespace mcs::support::telemetry
