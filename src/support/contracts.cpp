#include "support/contracts.hpp"

#include <sstream>

namespace mcs::support {

namespace {
std::string format_message(const char* kind, const char* expr,
                           const char* file, int line,
                           const std::string& msg) {
  std::ostringstream out;
  out << kind << " violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) {
    out << " — " << msg;
  }
  return out.str();
}
}  // namespace

ContractViolation::ContractViolation(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const std::string& msg)
    : std::logic_error(format_message(kind, expr, file, line, msg)) {}

void contract_fail(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  throw ContractViolation(kind, expr, file, line, msg);
}

}  // namespace mcs::support
