// Low-overhead solver/analysis telemetry: named counters, wall-time timers,
// and log-bucketed histograms collected into thread-local shards that are
// merged on scrape.
//
// Design goals (DESIGN.md-style contract):
//  * Hot-path cost is one relaxed atomic load + one uncontended mutex per
//    event when enabled, and a single branch when disabled
//    (`MCS_TELEMETRY=0`, or set_enabled(false)).
//  * Instrumentation sits at *solve / run boundaries* (one call per LP
//    solve, per MILP, per simulated trace), never inside inner pivot loops,
//    so the enabled overhead stays far below measurement noise.
//  * snapshot() merges every thread's shard without stopping writers;
//    values are monotone between reset() calls.
//
// The JSON snapshot schema (telemetry_export.cpp, schema id
// "mcs-telemetry-v1"):
//
//   {
//     "schema": "mcs-telemetry-v1",
//     "counters":   { "<name>": <uint> , ... },
//     "timers":     { "<name>": {"count":n, "total_seconds":x,
//                                "min_seconds":x, "max_seconds":x}, ... },
//     "histograms": { "<name>": {"count":n, "sum":x, "min":x, "max":x,
//                                "p50":x, "p90":x, "p99":x}, ... }
//   }
//
// Percentiles are estimated from geometric buckets (ratio 2^(1/4), i.e.
// <= ~19% relative error per bucket) and clamped to the exact observed
// min/max.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

namespace mcs::support::telemetry {

/// True unless collection is switched off (MCS_TELEMETRY=0 in the
/// environment, or a prior set_enabled(false)).  The environment is read
/// once on first use.
bool enabled() noexcept;

/// Programmatic override of MCS_TELEMETRY (used by tests and by front ends
/// that force collection on behalf of a --telemetry flag).
void set_enabled(bool on) noexcept;

/// Adds `delta` to the counter `name`.  No-op when disabled.
void count(std::string_view name, std::uint64_t delta = 1);

/// Records one sample into the histogram `name`.  No-op when disabled.
void record(std::string_view name, double value);

/// Adds one timed span to the timer `name`.  No-op when disabled.
void add_time(std::string_view name, double seconds);

/// Merged view of one timer across all shards.
struct TimerStat {
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Merged view of one histogram across all shards.
struct HistogramStat {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Point-in-time merge of every shard (ordered maps: deterministic output).
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, TimerStat> timers;
  std::map<std::string, HistogramStat> histograms;

  bool empty() const noexcept {
    return counters.empty() && timers.empty() && histograms.empty();
  }
};

/// Merges all thread shards into a snapshot.  Safe to call concurrently
/// with writers (each shard is locked briefly).
Snapshot snapshot();

/// Clears every counter / timer / histogram in every shard.  Intended for
/// tests and for separating phases of a long-running process.
void reset();

/// RAII wall-clock timer: measures construction-to-destruction and feeds
/// add_time(name).  When telemetry is disabled at construction the
/// destructor does nothing (no clock reads at all).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) noexcept;
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  bool armed_;
};

/// Writes `snap` as JSON (schema "mcs-telemetry-v1") to `out`.
void write_json(const Snapshot& snap, std::ostream& out);

/// snapshot() + write_json to `path`.  Throws std::runtime_error when the
/// file cannot be opened.
void write_json_file(const std::filesystem::path& path);

}  // namespace mcs::support::telemetry
