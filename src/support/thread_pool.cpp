#include "support/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "support/contracts.hpp"

namespace mcs::support {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    worker_count = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  wake_worker_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  MCS_REQUIRE(task != nullptr, "submit: empty task");
  {
    std::unique_lock lock(mutex_);
    MCS_REQUIRE(!stopping_, "submit after shutdown began");
    queue_.push_back(std::move(task));
  }
  wake_worker_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    // Hand the first captured task exception to exactly one waiter; the
    // pool stays usable for further submissions.
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::pending() {
  std::unique_lock lock(mutex_);
  return queue_.size() + in_flight_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_worker_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    bool drained = false;
    {
      std::unique_lock lock(mutex_);
      if (error && !first_error_) {
        first_error_ = std::move(error);
      }
      --in_flight_;
      drained = queue_.empty() && in_flight_ == 0;
    }
    if (drained) {
      // Notify after unlocking so waiters don't wake straight into a held
      // mutex.
      idle_.notify_all();
    }
  }
}

namespace {

/// Runs fn(i), converting any escaping exception into a ParallelForError
/// that records i.  An already-wrapped error passes through untouched (a
/// body may itself run a nested parallel loop).
void run_indexed(const std::function<void(std::size_t)>& fn, std::size_t i) {
  auto message = [i](const char* detail) {
    std::string text = "parallel_for: index ";
    text += std::to_string(i);
    text += ": ";
    text += detail;
    return text;
  };
  try {
    fn(i);
  } catch (const ParallelForError&) {
    throw;
  } catch (const std::exception& e) {
    throw ParallelForError(i, message(e.what()), std::current_exception());
  } catch (...) {
    throw ParallelForError(i, message("unknown exception"),
                           std::current_exception());
  }
}

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { run_indexed(fn, i); });
  }
  pool.wait_idle();
}

void parallel_for_chunked(ThreadPool& pool, std::size_t count,
                          std::size_t chunks,
                          const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    pool.wait_idle();  // surface any pending error, like parallel_for would
    return;
  }
  if (chunks == 0) {
    chunks = pool.worker_count();
  }
  chunks = std::min(std::max<std::size_t>(1, chunks), count);
  for (std::size_t c = 0; c < chunks; ++c) {
    pool.submit([&fn, c, count, chunks] {
      // The chunk's stripe runs in ascending order; if one index throws
      // the rest of the stripe is skipped (other stripes still complete —
      // wait_idle drains the queue before rethrowing the first error).
      for (std::size_t i = c; i < count; i += chunks) {
        run_indexed(fn, i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace mcs::support
