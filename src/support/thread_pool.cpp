#include "support/thread_pool.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace mcs::support {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    worker_count = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  wake_worker_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  MCS_REQUIRE(task != nullptr, "submit: empty task");
  {
    std::unique_lock lock(mutex_);
    MCS_REQUIRE(!stopping_, "submit after shutdown began");
    queue_.push_back(std::move(task));
  }
  wake_worker_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_worker_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace mcs::support
