// JSON export of telemetry snapshots (schema "mcs-telemetry-v1", see
// telemetry.hpp for the layout).  Hand-rolled writer: the schema is flat
// and fixed, and the repo deliberately has no JSON dependency.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "support/telemetry.hpp"

namespace mcs::support::telemetry {

namespace {

/// Escapes a JSON string body (quotes, backslashes, control characters).
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Round-trippable double formatting; JSON has no Infinity/NaN literals, so
/// non-finite values (which the registry never produces from sane inputs)
/// degrade to 0.
std::string number(double value) {
  if (!std::isfinite(value)) return "0";
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << value;
  return os.str();
}

}  // namespace

void write_json(const Snapshot& snap, std::ostream& out) {
  out << "{\n  \"schema\": \"mcs-telemetry-v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << escape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"timers\": {";
  first = true;
  for (const auto& [name, t] : snap.timers) {
    out << (first ? "\n" : ",\n") << "    \"" << escape(name)
        << "\": {\"count\": " << t.count
        << ", \"total_seconds\": " << number(t.total_seconds)
        << ", \"min_seconds\": " << number(t.min_seconds)
        << ", \"max_seconds\": " << number(t.max_seconds) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out << (first ? "\n" : ",\n") << "    \"" << escape(name)
        << "\": {\"count\": " << h.count << ", \"sum\": " << number(h.sum)
        << ", \"min\": " << number(h.min) << ", \"max\": " << number(h.max)
        << ", \"p50\": " << number(h.p50) << ", \"p90\": " << number(h.p90)
        << ", \"p99\": " << number(h.p99) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void write_json_file(const std::filesystem::path& path) {
  // Temp-file + rename: a reader (or a crash) never sees a half-written
  // snapshot where a complete one is expected.
  const std::filesystem::path tmp(path.string() + ".tmp");
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("telemetry: cannot open " + tmp.string());
    }
    write_json(snapshot(), out);
    out.flush();
    if (!out.good()) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error("telemetry: write failed for " +
                               tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code rm;
    std::filesystem::remove(tmp, rm);
    throw std::runtime_error("telemetry: cannot rename " + tmp.string() +
                             " to " + path.string() + ": " + ec.message());
  }
}

}  // namespace mcs::support::telemetry
