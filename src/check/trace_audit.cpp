#include "check/trace_audit.hpp"

#include <algorithm>
#include <string>
#include <vector>

namespace mcs::check {

namespace {

using rt::Time;
using sim::CopyInOutcome;
using sim::CpuAction;
using sim::IntervalRecord;
using sim::JobId;
using sim::JobRecord;
using sim::Protocol;
using sim::Trace;

constexpr std::size_t npos = static_cast<std::size_t>(-1);

std::string interval_label(std::size_t k) {
  return "interval " + std::to_string(k);
}

std::string job_label(const rt::TaskSet& tasks, const JobId& id) {
  return "job " + tasks[id.task].name + "#" + std::to_string(id.seq);
}

bool cancellation_outcome(CopyInOutcome outcome) {
  return outcome == CopyInOutcome::kCancelled ||
         outcome == CopyInOutcome::kDiscarded;
}

/// True when some latency-sensitive release of a task with strictly
/// higher priority than `cancelled_prio` lands in (after, upto] — the R3
/// trigger the cancellation must answer to.
bool justifying_ls_release(const rt::TaskSet& tasks, const Trace& trace,
                           rt::Priority cancelled_prio, Time after,
                           Time upto) {
  for (const JobRecord& job : trace.jobs) {
    const rt::Task& task = tasks[job.id.task];
    if (!task.latency_sensitive || task.priority >= cancelled_prio) {
      continue;
    }
    if (job.release > after && job.release <= upto) {
      return true;
    }
  }
  return false;
}

}  // namespace

CheckReport audit_trace(const rt::TaskSet& tasks, Protocol protocol,
                        const Trace& trace) {
  CheckReport report;
  const bool interval_protocol = protocol != Protocol::kNonPreemptive;

  // --- MCS-P001: interval sequencing (Definition 1) -------------------------
  for (std::size_t k = 0; k < trace.intervals.size(); ++k) {
    const IntervalRecord& rec = trace.intervals[k];
    if (rec.end < rec.start) {
      report.add("MCS-P001", Severity::kError, interval_label(k),
                 "ends before it starts");
    }
    if (k > 0 && rec.start < trace.intervals[k - 1].end) {
      report.add("MCS-P001", Severity::kError, interval_label(k),
                 "overlaps its predecessor");
    }
  }

  // --- Interval-level rules R2/R3/R6 ----------------------------------------
  for (std::size_t k = 0; interval_protocol && k < trace.intervals.size();
       ++k) {
    const IntervalRecord& rec = trace.intervals[k];

    // MCS-P002: R6 — the interval spans exactly the longer of the two
    // engines' work.
    if (rec.end - rec.start != std::max(rec.cpu_busy, rec.dma_busy)) {
      report.add("MCS-P002", Severity::kError, interval_label(k),
                 "length " + std::to_string(rec.end - rec.start) +
                     " != max(cpu " + std::to_string(rec.cpu_busy) +
                     ", dma " + std::to_string(rec.dma_busy) + ")");
    }

    // MCS-P003: R2 — DMA time decomposes into copy-out then copy-in, and
    // each transfer matches the owning task's tick parameters.
    if (rec.dma_busy != rec.copy_out_duration + rec.copy_in_duration) {
      report.add("MCS-P003", Severity::kError, interval_label(k),
                 "DMA busy time != copy-out + copy-in durations");
    }
    if (rec.copy_out_job &&
        rec.copy_out_duration != tasks[rec.copy_out_job->task].copy_out) {
      report.add("MCS-P003", Severity::kError, interval_label(k),
                 "copy-out duration differs from " +
                     job_label(tasks, *rec.copy_out_job) +
                     "'s copy-out parameter");
    }
    if (!rec.copy_out_job && rec.copy_out_duration != 0) {
      report.add("MCS-P003", Severity::kError, interval_label(k),
                 "copy-out time without a copy-out job");
    }
    if (rec.copy_in_job) {
      const Time full = tasks[rec.copy_in_job->task].copy_in;
      switch (rec.copy_in_outcome) {
        case CopyInOutcome::kNone:
          report.add("MCS-P012", Severity::kError, interval_label(k),
                     "copy-in job recorded with outcome `none`");
          break;
        case CopyInOutcome::kCompleted:
        case CopyInOutcome::kDiscarded:
          if (rec.copy_in_duration != full) {
            report.add("MCS-P003", Severity::kError, interval_label(k),
                       "completed copy-in duration differs from " +
                           job_label(tasks, *rec.copy_in_job) +
                           "'s copy-in parameter");
          }
          break;
        case CopyInOutcome::kCancelled:
          if (rec.copy_in_duration >= full) {
            report.add("MCS-P003", Severity::kError, interval_label(k),
                       "cancelled copy-in spent the full transfer time");
          }
          break;
      }
    } else if (rec.copy_in_outcome != CopyInOutcome::kNone ||
               rec.copy_in_duration != 0) {
      report.add("MCS-P012", Severity::kError, interval_label(k),
                 "copy-in time or outcome without a copy-in job");
    }
    if (rec.cpu_action == CpuAction::kIdle && rec.cpu_busy != 0) {
      report.add("MCS-P012", Severity::kError, interval_label(k),
                 "idle CPU with non-zero busy time");
    }

    // MCS-P004: R3 — every cancellation must answer to a higher-priority
    // latency-sensitive release, and only the proposed protocol cancels.
    if (cancellation_outcome(rec.copy_in_outcome)) {
      if (protocol != Protocol::kProposed) {
        report.add("MCS-P004", Severity::kError, interval_label(k),
                   "copy-in cancellation under a protocol without R3");
      } else if (rec.copy_in_job) {
        // A cancelled transfer stops at the trigger, so the release lies
        // within the DMA work performed; a discarded transfer completed
        // first, so the trigger lies anywhere strictly inside the
        // interval (R3/R4; DESIGN.md §5.8).
        const Time upto =
            rec.copy_in_outcome == CopyInOutcome::kCancelled
                ? rec.start + rec.copy_out_duration + rec.copy_in_duration
                : rec.end - 1;
        if (!justifying_ls_release(tasks, trace,
                                   tasks[rec.copy_in_job->task].priority,
                                   rec.start, upto)) {
          report.add("MCS-P004", Severity::kError, interval_label(k),
                     "cancellation of " +
                         job_label(tasks, *rec.copy_in_job) +
                         " has no justifying higher-priority LS release "
                         "inside the interval");
        }
      }
    }

    // MCS-P005 / MCS-P006: R4/R5 — urgent executions.
    if (rec.cpu_action == CpuAction::kUrgentExecute) {
      if (protocol != Protocol::kProposed) {
        report.add("MCS-P005", Severity::kError, interval_label(k),
                   "urgent execution under a protocol without R4");
      }
      if (!rec.cpu_job) {
        report.add("MCS-P012", Severity::kError, interval_label(k),
                   "urgent execution without a CPU job");
      } else {
        const rt::Task& task = tasks[rec.cpu_job->task];
        if (!task.latency_sensitive) {
          report.add("MCS-P005", Severity::kError, interval_label(k),
                     "urgent promotion of non-LS " +
                         job_label(tasks, *rec.cpu_job));
        }
        // R5 urgent path: the CPU performs the copy-in sequentially
        // before the execution, so its busy time covers both phases.
        if (rec.cpu_busy != task.copy_in + task.exec) {
          report.add("MCS-P006", Severity::kError, interval_label(k),
                     "urgent CPU time != copy-in + execution of " +
                         job_label(tasks, *rec.cpu_job));
        }
      }
    } else if (rec.cpu_action == CpuAction::kExecute && rec.cpu_job &&
               rec.cpu_busy != tasks[rec.cpu_job->task].exec) {
      report.add("MCS-P012", Severity::kError, interval_label(k),
                 "execution CPU time differs from " +
                     job_label(tasks, *rec.cpu_job) +
                     "'s execution parameter");
    }
  }

  // --- Per-job rules ---------------------------------------------------------
  for (const JobRecord& job : trace.jobs) {
    const std::string label = job_label(tasks, job.id);

    // MCS-P012: lifecycle ordering holds for every job, finished or not.
    if (job.ready_time < job.release) {
      report.add("MCS-P012", Severity::kError, label,
                 "ready before released");
    }
    if (job.exec_start != rt::kTimeMax && job.exec_start < job.ready_time) {
      report.add("MCS-P012", Severity::kError, label,
                 "execution started before the job was ready");
    }
    if (job.completed()) {
      if (job.exec_start == rt::kTimeMax) {
        report.add("MCS-P012", Severity::kError, label,
                   "completed without an execution start");
        continue;
      }
      if (job.completion <= job.exec_start) {
        report.add("MCS-P012", Severity::kError, label,
                   "completed before executing");
      }
      if (job.copy_in_start != rt::kTimeMax &&
          job.copy_in_start > job.exec_start) {
        report.add("MCS-P012", Severity::kError, label,
                   "copy-in recorded after the execution start");
      }
    }
    if (job.became_urgent && !tasks[job.id.task].latency_sensitive) {
      report.add("MCS-P005", Severity::kError, label,
                 "non-LS job carries an urgent-promotion record (R4)");
    }

    if (!interval_protocol || trace.aborted || !job.completed()) {
      continue;
    }

    // Locate the execution interval and count duplicates (MCS-P011), plus
    // the cancellation records that must explain the job's counter.
    std::size_t exec_k = npos;
    std::size_t execs = 0;
    std::size_t copyouts = 0;
    std::size_t cancellations = 0;
    for (std::size_t k = 0; k < trace.intervals.size(); ++k) {
      const IntervalRecord& rec = trace.intervals[k];
      if (rec.cpu_job == job.id && rec.cpu_action != CpuAction::kIdle) {
        ++execs;
        exec_k = k;
      }
      if (rec.copy_out_job == job.id) {
        ++copyouts;
      }
      if (rec.copy_in_job == job.id &&
          cancellation_outcome(rec.copy_in_outcome)) {
        ++cancellations;
      }
    }
    if (execs != 1) {
      report.add("MCS-P011", Severity::kError, label,
                 "executed " + std::to_string(execs) + " times");
    }
    if (copyouts != 1) {
      report.add("MCS-P011", Severity::kError, label,
                 "copied out " + std::to_string(copyouts) + " times");
    }
    if (cancellations != job.copy_in_cancellations) {
      report.add("MCS-P012", Severity::kError, label,
                 "cancellation counter " +
                     std::to_string(job.copy_in_cancellations) +
                     " != " + std::to_string(cancellations) +
                     " cancelled copy-in records");
    }
    if (exec_k == npos) {
      continue;  // already reported as zero executions
    }
    const IntervalRecord& exec_rec = trace.intervals[exec_k];

    // MCS-P006: an urgent execution must be recorded as a promotion.
    if (exec_rec.cpu_action == CpuAction::kUrgentExecute &&
        !job.became_urgent) {
      report.add("MCS-P006", Severity::kError, label,
                 "urgent execution without a promotion record (R4/R5)");
    }

    // MCS-P007: Property 1 — a DMA-loaded execution was copied in by the
    // DMA engine in the adjacent previous interval.
    if (exec_rec.cpu_action == CpuAction::kExecute) {
      const IntervalRecord* prev =
          exec_k > 0 ? &trace.intervals[exec_k - 1] : nullptr;
      if (prev == nullptr || prev->copy_in_job != job.id ||
          prev->copy_in_outcome != CopyInOutcome::kCompleted) {
        report.add("MCS-P007", Severity::kError, label,
                   "executes in " + interval_label(exec_k) +
                       " without a completed copy-in in the previous "
                       "interval");
      } else if (prev->end != exec_rec.start) {
        report.add("MCS-P007", Severity::kError, label,
                   "copy-in interval is not adjacent to the execution "
                   "interval");
      }
    }

    // MCS-P008: Properties 1-2 — copy-out in the adjacent next interval,
    // and the completion time is the end of that transfer.
    if (exec_k + 1 >= trace.intervals.size()) {
      report.add("MCS-P008", Severity::kError, label,
                 "no interval after the execution for the copy-out");
    } else {
      const IntervalRecord& next = trace.intervals[exec_k + 1];
      if (next.copy_out_job != job.id) {
        report.add("MCS-P008", Severity::kError, label,
                   "copy-out is not in the interval following the "
                   "execution");
      } else {
        if (next.start != exec_rec.end) {
          report.add("MCS-P008", Severity::kError, label,
                     "copy-out interval is not adjacent to the execution "
                     "interval");
        }
        if (job.completion != next.start + next.copy_out_duration) {
          report.add("MCS-P008", Severity::kError, label,
                     "completion time inconsistent with the copy-out "
                     "record");
        }
      }
    }

    // MCS-P009 / MCS-P010: Properties 3-4 — blocking interval bounds.
    // Defined only for jobs that were ready at release (no precedence
    // deferral).  A blocking interval is one whose CPU runs a strictly
    // lower-priority job overlapping the job's waiting window.
    if (job.ready_time == job.release) {
      const auto my_priority = tasks[job.id.task].priority;
      std::size_t blocked = 0;
      for (const IntervalRecord& rec : trace.intervals) {
        if (!rec.cpu_job ||
            tasks[rec.cpu_job->task].priority <= my_priority) {
          continue;
        }
        const Time cpu_end = rec.start + rec.cpu_busy;
        if (cpu_end > job.ready_time && rec.start < job.exec_start) {
          ++blocked;
        }
      }
      const bool ls_bound = tasks[job.id.task].latency_sensitive &&
                            protocol == Protocol::kProposed;
      const std::size_t limit = ls_bound ? 1 : 2;
      if (blocked > limit) {
        report.add(ls_bound ? "MCS-P009" : "MCS-P010", Severity::kError,
                   label,
                   "blocked in " + std::to_string(blocked) +
                       " intervals (Property " +
                       (ls_bound ? std::string("4 limit 1")
                                 : std::string("3 limit 2")) +
                       ")");
      }
    }
  }

  return report;
}

}  // namespace mcs::check
