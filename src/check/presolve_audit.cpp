#include "check/presolve_audit.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>

namespace mcs::check {

namespace {

using lp::Constraint;
using lp::Model;
using lp::Relation;
using lp::Variable;
using lp::VarType;
using lp::presolve::kRemoved;
using lp::presolve::PostsolveMap;
using lp::presolve::Presolved;
using lp::presolve::Reduction;
using lp::presolve::ReductionKind;

std::string column_name(const Model& model, std::size_t index) {
  const std::string& name = model.variables()[index].name;
  std::string label = "column " + std::to_string(index);
  if (!name.empty()) {
    label += " (" + name + ")";
  }
  return label;
}

std::string row_name(const Model& model, std::size_t index) {
  const std::string& name = model.constraints()[index].name;
  std::string label = "row " + std::to_string(index);
  if (!name.empty()) {
    label += " (" + name + ")";
  }
  return label;
}

std::string number(double value) {
  std::string text = std::to_string(value);
  const std::size_t dot = text.find('.');
  if (dot != std::string::npos) {
    std::size_t last = text.find_last_not_of('0');
    if (last == dot) ++last;
    text.erase(last + 1);
  }
  return text;
}

/// Scale-relative comparison tolerance around magnitude `m`.
double tol_at(double base, double m) { return base * (1.0 + std::abs(m)); }

/// Checks that `map` (original index -> reduced index or kRemoved) is a
/// monotone embedding onto exactly [0, reduced_count): surviving entries
/// strictly increase and are dense.  Reports under `rule` on failure.
void check_embedding(const std::vector<std::size_t>& map,
                     std::size_t reduced_count, const char* what,
                     CheckReport* report) {
  std::size_t expected = 0;
  for (std::size_t i = 0; i < map.size(); ++i) {
    if (map[i] == kRemoved) {
      continue;
    }
    if (map[i] != expected) {
      report->add("MCS-F301", Severity::kError,
                  std::string(what) + " map",
                  "entry " + std::to_string(i) + " maps to " +
                      std::to_string(map[i]) + ", expected " +
                      std::to_string(expected) +
                      " (not a monotone dense embedding)");
      return;
    }
    ++expected;
  }
  if (expected != reduced_count) {
    report->add("MCS-F301", Severity::kError, std::string(what) + " map",
                std::to_string(expected) + " surviving entries vs " +
                    std::to_string(reduced_count) + " in the reduced model");
  }
}

}  // namespace

CheckReport audit_presolve(const Model& original, const Presolved& presolved) {
  CheckReport report;
  const PostsolveMap& map = presolved.map;

  // --- F301: map dimensions cover the pristine model -----------------------
  if (map.original_cols != original.num_variables() ||
      map.col_map.size() != original.num_variables() ||
      map.fixed_value.size() != original.num_variables()) {
    report.add("MCS-F301", Severity::kError, "column map",
               "map covers " + std::to_string(map.original_cols) +
                   " columns, model has " +
                   std::to_string(original.num_variables()));
    return report;  // index-based checks below would be meaningless
  }
  if (map.original_rows != original.num_constraints() ||
      map.row_map.size() != original.num_constraints()) {
    report.add("MCS-F301", Severity::kError, "row map",
               "map covers " + std::to_string(map.original_rows) +
                   " rows, model has " +
                   std::to_string(original.num_constraints()));
    return report;
  }

  if (presolved.infeasible) {
    // No reduced model to compare against; the infeasibility verdict itself
    // is cross-checked by the differential tests, not by this audit.
    return report;
  }

  const Model& reduced = presolved.reduced;
  check_embedding(map.col_map, reduced.num_variables(), "column", &report);
  check_embedding(map.row_map, reduced.num_constraints(), "row", &report);

  // --- F301: equilibration scales are well-formed --------------------------
  // Empty vectors mean the identity; non-empty ones must cover the reduced
  // dimensions exactly and hold positive powers of two (the exactness of
  // postsolve rests on that), with integral columns left unscaled.
  const auto power_of_two = [](double v) {
    int exp = 0;
    return std::isfinite(v) && v > 0.0 && std::frexp(v, &exp) == 0.5;
  };
  if (!map.row_scale.empty() &&
      map.row_scale.size() != reduced.num_constraints()) {
    report.add("MCS-F301", Severity::kError, "row scales",
               std::to_string(map.row_scale.size()) + " scales vs " +
                   std::to_string(reduced.num_constraints()) +
                   " reduced rows");
  }
  if (!map.col_scale.empty() &&
      map.col_scale.size() != reduced.num_variables()) {
    report.add("MCS-F301", Severity::kError, "column scales",
               std::to_string(map.col_scale.size()) + " scales vs " +
                   std::to_string(reduced.num_variables()) +
                   " reduced columns");
  }
  for (std::size_t i = 0; i < map.row_scale.size(); ++i) {
    if (!power_of_two(map.row_scale[i])) {
      report.add("MCS-F301", Severity::kError,
                 "row scale " + std::to_string(i),
                 number(map.row_scale[i]) +
                     " is not a positive power of two");
      break;
    }
  }
  for (std::size_t j = 0;
       j < map.col_scale.size() && j < reduced.num_variables(); ++j) {
    if (!power_of_two(map.col_scale[j])) {
      report.add("MCS-F301", Severity::kError,
                 "column scale " + std::to_string(j),
                 number(map.col_scale[j]) +
                     " is not a positive power of two");
      break;
    }
    if (reduced.variables()[j].type != VarType::kContinuous &&
        map.col_scale[j] != 1.0) {
      report.add("MCS-F301", Severity::kError,
                 "column scale " + std::to_string(j),
                 "integral column scaled by " + number(map.col_scale[j]));
      break;
    }
  }

  // --- F301: the log, the stats, and the map agree on what was removed ----
  std::size_t logged_col_fixes = 0;
  std::size_t logged_row_removals = 0;
  std::size_t logged_bounds = 0;
  std::size_t logged_coefs = 0;
  for (const Reduction& entry : presolved.log) {
    switch (entry.kind) {
      case ReductionKind::kFixedColumn:
        ++logged_col_fixes;
        if (entry.index >= map.col_map.size()) {
          report.add("MCS-F301", Severity::kError, "reduction log",
                     "fixed-column entry references column " +
                         std::to_string(entry.index) + " of " +
                         std::to_string(map.col_map.size()));
        } else if (map.col_map[entry.index] != kRemoved) {
          report.add("MCS-F301", Severity::kError,
                     column_name(original, entry.index),
                     "logged as fixed but still present in the map");
        }
        break;
      case ReductionKind::kSingletonRow:
      case ReductionKind::kRedundantRow:
      case ReductionKind::kForcingRow:
      case ReductionKind::kDuplicateRow:
        ++logged_row_removals;
        if (entry.index >= map.row_map.size()) {
          report.add("MCS-F301", Severity::kError, "reduction log",
                     "row-removal entry references row " +
                         std::to_string(entry.index) + " of " +
                         std::to_string(map.row_map.size()));
        } else if (map.row_map[entry.index] != kRemoved) {
          report.add("MCS-F301", Severity::kError,
                     row_name(original, entry.index),
                     "logged as removed but still present in the map");
        }
        break;
      case ReductionKind::kBoundTightened:
        ++logged_bounds;
        break;
      case ReductionKind::kCoefficientTightened:
        ++logged_coefs;
        break;
    }
  }

  std::size_t map_col_removals = 0;
  for (const std::size_t target : map.col_map) {
    if (target == kRemoved) ++map_col_removals;
  }
  std::size_t map_row_removals = 0;
  for (const std::size_t target : map.row_map) {
    if (target == kRemoved) ++map_row_removals;
  }

  if (logged_col_fixes != map_col_removals ||
      logged_col_fixes != presolved.stats.cols_removed) {
    report.add("MCS-F301", Severity::kError, "column removals",
               "log says " + std::to_string(logged_col_fixes) +
                   ", map says " + std::to_string(map_col_removals) +
                   ", stats say " +
                   std::to_string(presolved.stats.cols_removed));
  }
  if (logged_row_removals != map_row_removals ||
      logged_row_removals != presolved.stats.rows_removed) {
    report.add("MCS-F301", Severity::kError, "row removals",
               "log says " + std::to_string(logged_row_removals) +
                   ", map says " + std::to_string(map_row_removals) +
                   ", stats say " +
                   std::to_string(presolved.stats.rows_removed));
  }
  if (logged_bounds != presolved.stats.bounds_tightened) {
    report.add("MCS-F301", Severity::kError, "bound tightenings",
               "log says " + std::to_string(logged_bounds) + ", stats say " +
                   std::to_string(presolved.stats.bounds_tightened));
  }
  if (logged_coefs != presolved.stats.coefficients_tightened) {
    report.add("MCS-F301", Severity::kError, "coefficient tightenings",
               "log says " + std::to_string(logged_coefs) + ", stats say " +
                   std::to_string(presolved.stats.coefficients_tightened));
  }

  // --- F302: surviving domains shrank, fixed values stayed inside ----------
  // The containment tolerance matches the presolve default: reductions on
  // the integral analysis models have true slack >= 1 tick, so anything
  // past summation noise is a real widening.
  constexpr double kTol = 1e-9;
  for (std::size_t i = 0; i < original.num_variables(); ++i) {
    const Variable& ov = original.variables()[i];
    const std::size_t j = map.col_map[i];
    if (j == kRemoved) {
      const double value = map.fixed_value[i];
      if (value < ov.lower - tol_at(kTol, ov.lower) ||
          value > ov.upper + tol_at(kTol, ov.upper)) {
        report.add("MCS-F302", Severity::kError, column_name(original, i),
                   "fixed at " + number(value) + " outside original bounds [" +
                       number(ov.lower) + ", " + number(ov.upper) + "]");
      }
      if (ov.type != VarType::kContinuous &&
          std::abs(value - std::round(value)) > 1e-6) {
        report.add("MCS-F302", Severity::kError, column_name(original, i),
                   "integral column fixed at non-integral " + number(value));
      }
      continue;
    }
    if (j >= reduced.num_variables()) {
      continue;  // already reported by check_embedding
    }
    const Variable& rv = reduced.variables()[j];
    // Reduced bounds live in scaled space; translate back through the
    // (positive, power-of-two) column scale before the containment check.
    const double cs = j < map.col_scale.size() ? map.col_scale[j] : 1.0;
    const double lower = rv.lower * cs;
    const double upper = rv.upper * cs;
    if (lower < ov.lower - tol_at(kTol, ov.lower) ||
        upper > ov.upper + tol_at(kTol, ov.upper)) {
      report.add("MCS-F302", Severity::kError, column_name(original, i),
                 "reduced bounds [" + number(lower) + ", " +
                     number(upper) + "] are not within original [" +
                     number(ov.lower) + ", " + number(ov.upper) + "]");
    }
    if (rv.type != ov.type) {
      report.add("MCS-F302", Severity::kError, column_name(original, i),
                 "variable type changed by presolve");
    }
  }

  return report;
}

CheckReport audit_postsolve(const Model& original,
                            const std::vector<double>& values,
                            double reported_objective,
                            const PostsolveAuditOptions& options) {
  CheckReport report;
  if (values.size() != original.num_variables()) {
    report.add("MCS-F303", Severity::kError, "solution",
               std::to_string(values.size()) + " values vs " +
                   std::to_string(original.num_variables()) +
                   " model columns");
    return report;
  }

  // --- F303: bounds, integrality, rows — all in the pristine model ---------
  for (std::size_t i = 0; i < original.num_variables(); ++i) {
    const Variable& v = original.variables()[i];
    const double x = values[i];
    if (x < v.lower - tol_at(options.feasibility_tol, v.lower) ||
        x > v.upper + tol_at(options.feasibility_tol, v.upper)) {
      report.add("MCS-F303", Severity::kError, column_name(original, i),
                 "value " + number(x) + " violates bounds [" +
                     number(v.lower) + ", " + number(v.upper) + "]");
    }
    if (v.type != VarType::kContinuous &&
        std::abs(x - std::round(x)) > options.feasibility_tol) {
      report.add("MCS-F303", Severity::kError, column_name(original, i),
                 "integral column holds non-integral " + number(x));
    }
  }
  for (std::size_t r = 0; r < original.num_constraints(); ++r) {
    const Constraint& c = original.constraints()[r];
    const double activity = original.evaluate(c.lhs, values);
    const double row_tol =
        options.feasibility_tol *
        (1.0 + std::abs(c.rhs) + std::abs(activity));
    const bool violated = (c.relation == Relation::kLe &&
                           activity > c.rhs + row_tol) ||
                          (c.relation == Relation::kGe &&
                           activity < c.rhs - row_tol) ||
                          (c.relation == Relation::kEq &&
                           std::abs(activity - c.rhs) > row_tol);
    if (violated) {
      report.add("MCS-F303", Severity::kError, row_name(original, r),
                 "activity " + number(activity) +
                     " violates right-hand side " + number(c.rhs));
    }
  }

  // --- F304: objective passes through postsolve unchanged ------------------
  const double objective = original.evaluate(original.objective(), values);
  const double obj_tol =
      options.objective_tol *
      (1.0 + std::max(std::abs(objective), std::abs(reported_objective)));
  if (std::abs(objective - reported_objective) > obj_tol) {
    report.add("MCS-F304", Severity::kError, "objective",
               "pristine-model objective " + number(objective) +
                   " vs reported " + number(reported_objective));
  }
  return report;
}

}  // namespace mcs::check
