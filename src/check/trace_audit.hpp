// Protocol-invariant auditor for simulation traces (paper §IV).
//
// Re-checks rules R1-R6 and Properties 1-4 against a finished sim::Trace,
// independently of the simulator's own checker (sim/checker.hpp): the two
// implementations share no helper code, so a bug in the engine's
// bookkeeping cannot certify itself through a checker built on the same
// assumptions.  Diagnostics use the MCS-P0xx rules catalogued in
// check/diagnostics.hpp and docs/LINTING.md.
#pragma once

#include "check/diagnostics.hpp"
#include "rt/task.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace mcs::check {

/// Audits `trace` as a run of `protocol` over `tasks`.  Interval-level
/// rules (R2/R3/R6) apply to the interval protocols only; job lifecycle
/// and sequencing rules apply to every protocol.  Aborted traces get the
/// interval-level audit but skip per-job completion rules (jobs may be
/// legitimately mid-flight).  Empty report == every protocol invariant
/// holds.
CheckReport audit_trace(const rt::TaskSet& tasks, sim::Protocol protocol,
                        const sim::Trace& trace);

}  // namespace mcs::check
