#include "check/diagnostics.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

namespace mcs::check {

const char* to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
  }
  return "?";
}

std::size_t CheckReport::error_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kError;
                    }));
}

bool CheckReport::has_rule(std::string_view rule) const noexcept {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [rule](const Diagnostic& d) { return d.rule == rule; });
}

void CheckReport::add(std::string rule, Severity severity, std::string object,
                      std::string message) {
  diagnostics.push_back(Diagnostic{std::move(rule), severity,
                                   std::move(object), std::move(message)});
}

void CheckReport::merge(const CheckReport& other) {
  diagnostics.insert(diagnostics.end(), other.diagnostics.begin(),
                     other.diagnostics.end());
}

std::string render(const Diagnostic& diagnostic) {
  std::string line = to_string(diagnostic.severity);
  line += ": ";
  line += diagnostic.rule;
  line += ": ";
  line += diagnostic.object;
  line += ": ";
  line += diagnostic.message;
  return line;
}

void render(const CheckReport& report, std::ostream& out) {
  for (const Diagnostic& diagnostic : report.diagnostics) {
    out << render(diagnostic) << '\n';
  }
}

const std::vector<RuleInfo>& rule_catalog() {
  // docs/LINTING.md mirrors this table entry for entry; tests compare the
  // two so an ID can never drift from its documentation.
  static const std::vector<RuleInfo> catalog = {
      // --- Generic model structure (any lp::Model) -------------------------
      {"MCS-F001", Severity::kError,
       "variable bound inversion or NaN bound (lower > upper)",
       "lp::Model invariant; DESIGN.md §5.5"},
      {"MCS-F002", Severity::kError,
       "non-finite model data (constraint coefficient, right-hand side, or "
       "integral-variable bound)",
       "lp::Model invariant"},
      {"MCS-F003", Severity::kError,
       "binary variable with bounds outside [0, 1]",
       "lp::Model invariant (binaries are placement indicators)"},
      {"MCS-F004", Severity::kWarning,
       "dangling column: variable in no constraint and not in the objective",
       "formulation hygiene"},
      {"MCS-F005", Severity::kWarning,
       "vacuous empty row: constraint with no terms that is trivially true",
       "formulation hygiene"},
      {"MCS-F006", Severity::kError,
       "unsatisfiable empty row: constraint with no terms that can never "
       "hold",
       "formulation hygiene"},
      {"MCS-F007", Severity::kError, "duplicate variable name",
       "LP-format export requires unique names"},
      {"MCS-F008", Severity::kError, "duplicate constraint name",
       "LP-format export requires unique names"},
      {"MCS-F009", Severity::kError,
       "constraint references an out-of-range variable index",
       "lp::Model invariant"},
      // --- Delay-MILP formulation (paper §V) -------------------------------
      {"MCS-F101", Severity::kError,
       "placement-cardinality row malformed: not exactly/at-most one "
       "execution per scheduling interval",
       "paper Constraint 5 (§V-A); DESIGN.md §5.5"},
      {"MCS-F102", Severity::kError,
       "copy-in cardinality row malformed: not exactly/at-most one copy-in "
       "per interval",
       "paper Constraint 6 (§V-A)"},
      {"MCS-F103", Severity::kError,
       "binary column outside the placement families (alpha, E, LE, CL)",
       "paper §V-A variable definitions"},
      {"MCS-F104", Severity::kError,
       "interference-budget row disagrees with eta_j(t) + 1 recomputed from "
       "the arrival curve",
       "paper Constraint 7; Theorem 1 window N_i(t)"},
      {"MCS-F105", Severity::kError,
       "cancellation-budget right-hand side disagrees with the LS release "
       "budget recomputed from the arrival curves",
       "rule R3 (§IV-A); cancellation tightening, DESIGN.md §5.5"},
      {"MCS-F106", Severity::kError,
       "non-integral coefficient or right-hand side: formulation data must "
       "stay in whole ticks",
       "tick model (§II); DESIGN.md §5.1"},
      {"MCS-F107", Severity::kError,
       "LS-marking column bounds inconsistent with the task set's current "
       "latency_sensitive flags",
       "greedy marking (§VI); patchable build, DESIGN.md §5.10"},
      {"MCS-F108", Severity::kError,
       "interval-length variable malformed (not continuous, negative lower "
       "bound, or unbounded)",
       "paper Constraints 9-13 (Delta_k definition)"},
      {"MCS-F109", Severity::kError,
       "objective is not `maximize sum_k Delta_k`",
       "paper Eq. 1 (delay maximization)"},
      {"MCS-F110", Severity::kError,
       "formulation handle invalid: interval/variable bookkeeping does not "
       "match the model",
       "DelayMilp structure; DESIGN.md §5.5"},
      // --- Structural model diff (patched vs fresh, write vs reparse) ------
      {"MCS-F201", Severity::kError, "column count mismatch",
       "cache-patch equivalence; DESIGN.md §5.10"},
      {"MCS-F202", Severity::kError,
       "column attribute mismatch (bounds, type, or name)",
       "cache-patch equivalence"},
      {"MCS-F203", Severity::kError, "row count mismatch",
       "cache-patch equivalence"},
      {"MCS-F204", Severity::kError,
       "row mismatch (relation, right-hand side, or coefficients)",
       "cache-patch equivalence"},
      {"MCS-F205", Severity::kError,
       "objective mismatch (sense, constant, or coefficients)",
       "cache-patch equivalence"},
      // --- Presolve / postsolve audit (lp/presolve.hpp) ---------------------
      {"MCS-F301", Severity::kError,
       "presolve bookkeeping inconsistent: reduction log, postsolve map, "
       "and model deltas disagree",
       "presolve exactness contract; DESIGN.md §5.11"},
      {"MCS-F302", Severity::kError,
       "presolve widened a variable domain, changed a type, or fixed a "
       "column outside its original bounds",
       "presolve exactness contract; DESIGN.md §5.11"},
      {"MCS-F303", Severity::kError,
       "postsolved solution infeasible in the pristine model (bounds, "
       "integrality, or a constraint row)",
       "postsolve exactness (lp/postsolve.hpp)"},
      {"MCS-F304", Severity::kError,
       "postsolved objective disagrees with the reduced-space objective "
       "beyond certificate tolerance",
       "objective pass-through contract (lp/postsolve.hpp)"},
      // --- Protocol trace audit (paper §IV) --------------------------------
      {"MCS-P001", Severity::kError,
       "interval sequencing broken (negative length or overlap)",
       "Definition 1 (scheduling intervals)"},
      {"MCS-P002", Severity::kError,
       "interval length differs from max(CPU, DMA) busy time",
       "rule R6 (§IV-A)"},
      {"MCS-P003", Severity::kError,
       "DMA accounting mismatch (busy time != copy-out + copy-in)",
       "rule R2 (§IV-A)"},
      {"MCS-P004", Severity::kError,
       "copy-in cancellation without a justifying higher-priority LS "
       "release (or under a protocol without cancellations)",
       "rule R3 (§IV-A); docs/PROTOCOL.md"},
      {"MCS-P005", Severity::kError,
       "urgent promotion of a non-latency-sensitive job",
       "rule R4 (§IV-A)"},
      {"MCS-P006", Severity::kError,
       "urgent execution without a CPU-performed sequential copy-in",
       "rule R5 (§IV-A), urgent path"},
      {"MCS-P007", Severity::kError,
       "execution without a completed copy-in in the adjacent previous "
       "interval",
       "rules R2/R5; Property 1 (§IV-B)"},
      {"MCS-P008", Severity::kError,
       "copy-out not in the adjacent next interval, or completion "
       "bookkeeping inconsistent with it",
       "rule R2; Properties 1-2 (§IV-B)"},
      {"MCS-P009", Severity::kError,
       "latency-sensitive job blocked in more than one interval",
       "Property 4 (§IV-B)"},
      {"MCS-P010", Severity::kError,
       "non-latency-sensitive job blocked in more than two intervals",
       "Property 3 (§IV-B)"},
      {"MCS-P011", Severity::kError,
       "job executed or copied out more than once",
       "three-phase model (§II)"},
      {"MCS-P012", Severity::kError,
       "job lifecycle bookkeeping inconsistent (ordering or cancellation "
       "counter)",
       "§II job model; trace record contract"},
      // MCS-V0xx: exhaustive model-checker verdicts (mcs::verify).  Unlike
      // the per-trace MCS-P rules, each of these quantifies over *every*
      // reachable state of the bounded choice model; a finding carries a
      // replayable counterexample path.
      {"MCS-V001", Severity::kError,
       "reachable state executes a job without a completed copy-in in the "
       "adjacent previous interval",
       "Property 1 (§IV-B); rules R2/R5"},
      {"MCS-V002", Severity::kError,
       "reachable completion without an adjacent copy-out following the "
       "execution interval",
       "Properties 1-2 (§IV-B); rule R2"},
      {"MCS-V003", Severity::kError,
       "non-latency-sensitive job blocked in more than two intervals on "
       "some explored path",
       "Property 3 (§IV-B)"},
      {"MCS-V004", Severity::kError,
       "latency-sensitive job blocked in more than one interval on some "
       "explored path",
       "Property 4 (§IV-B); rules R3-R5"},
      {"MCS-V005", Severity::kError,
       "stuck reachable state: committed work pending but no transition "
       "enabled",
       "deadlock freedom; rules R1-R6 progress"},
      {"MCS-V006", Severity::kError,
       "livelock: a path exceeds the zero-length-interval budget without "
       "advancing time",
       "work-conserving progress; rule R6"},
      {"MCS-V007", Severity::kError,
       "copy-in cancellation without a justifying higher-priority "
       "latency-sensitive release in the interval",
       "rule R3 (§IV-A); DESIGN.md §5.8"},
      {"MCS-V008", Severity::kError,
       "exhaustive worst-case response time exceeds the MILP analysis bound",
       "analysis soundness (§V); DESIGN.md §5.1"},
      {"MCS-V009", Severity::kError,
       "interval busy-time accounting disagrees with the task parameters",
       "rules R2/R5/R6 (§IV-A); Definition 1"},
      {"MCS-V010", Severity::kError,
       "urgent promotion of an ineligible job",
       "rule R4 (§IV-A)"},
  };
  return catalog;
}

const RuleInfo* find_rule(std::string_view id) noexcept {
  for (const RuleInfo& rule : rule_catalog()) {
    if (id == rule.id) {
      return &rule;
    }
  }
  return nullptr;
}

}  // namespace mcs::check
