#include "check/formulation_lint.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/model_lint.hpp"

namespace mcs::check {

namespace {

using lp::Model;
using lp::Relation;
using lp::VarId;
using lp::Variable;
using lp::VarType;
using rt::TaskIndex;
using rt::Time;

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool valid(VarId v) { return v.index != npos; }

double td(Time t) { return static_cast<double>(t); }

std::string col(const Model& m, VarId v) {
  const std::string& name = m.variables()[v.index].name;
  return name.empty() ? "column " + std::to_string(v.index) : name;
}

/// Everything the audit re-derives from first principles (paper §V): the
/// structural admission of placement variables per interval, the window
/// interval count, and the per-interval CPU/DMA upper bounds feeding the
/// big-Ms.  Intentionally a from-scratch re-derivation, not a call into
/// analysis/window or the builder.
struct Rederivation {
  std::size_t num_intervals = 0;
  std::vector<std::uint64_t> budgets;          ///< eta_j(t) + 1 for hp tasks
  double ls_release_budget = 0.0;
  std::vector<std::vector<bool>> exec_ok;      ///< [task][interval]
  std::vector<std::vector<bool>> urgent_ok;
  std::vector<std::vector<bool>> cancel_ok;
  std::vector<double> cpu_ub;                  ///< per-interval CPU big-M side
  std::vector<double> dma_ub;                  ///< per-interval DMA big-M side
};

Rederivation rederive(const rt::TaskSet& tasks, TaskIndex i, Time t,
                      FormulationCase fcase, bool ignore_ls,
                      bool patchable_ls) {
  const std::size_t n = tasks.size();
  Rederivation out;

  const auto my_prio = tasks[i].priority;
  const auto is_ls = [&](TaskIndex j) {
    return !ignore_ls && tasks[j].latency_sensitive;
  };
  const bool patch = patchable_ls && !ignore_ls;
  const auto may_be_ls = [&](TaskIndex j) { return patch || is_ls(j); };
  const auto is_lp = [&](TaskIndex j) { return tasks[j].priority > my_prio; };
  const auto cancelable = [&](TaskIndex j) {
    for (TaskIndex s = 0; s < n; ++s) {
      if (s != j && may_be_ls(s) && tasks[s].priority < tasks[j].priority) {
        return true;
      }
    }
    return false;
  };

  // Interference budgets eta_j(t) + 1 straight from the arrival curves
  // (Theorem 1), and the cancellation budget from the LS releases (R3).
  out.budgets.assign(n, 0);
  std::size_t interference = 0;
  std::size_t lower = 0;
  for (TaskIndex j = 0; j < n; ++j) {
    if (j == i) continue;
    if (tasks[j].priority < my_prio) {
      out.budgets[j] = tasks[j].arrival->releases_in(t) + 1;
      interference += static_cast<std::size_t>(out.budgets[j]);
    } else {
      ++lower;
    }
  }
  if (!ignore_ls) {
    for (TaskIndex s = 0; s < n; ++s) {
      if (tasks[s].latency_sensitive) {
        out.ls_release_budget +=
            static_cast<double>(tasks[s].arrival->releases_in(t) + 1);
      }
    }
  }

  // Window interval count: Theorem 1 (NLS, <= 2 blocking intervals) /
  // Corollary 1 (LS, <= 1) with the blocking count clamped to the number
  // of lower-priority tasks; case (b) is a fixed two-interval window.
  switch (fcase) {
    case FormulationCase::kNls:
      out.num_intervals = std::max<std::size_t>(
          interference + std::min<std::size_t>(2, lower) + 1, 2);
      break;
    case FormulationCase::kLsCaseA:
      out.num_intervals = std::max<std::size_t>(
          interference + std::min<std::size_t>(1, lower) + 1, 2);
      break;
    case FormulationCase::kLsCaseB:
      out.num_intervals = 2;
      break;
  }
  const std::size_t N = out.num_intervals;

  // Structural admission per (task, interval) — paper Constraints 3 and 4:
  // lower-priority tasks block only at the window start, urgent columns
  // only for (possibly) latency-sensitive tasks, cancellations only for
  // tasks a higher-priority LS task could cancel.
  out.exec_ok.assign(n, std::vector<bool>(N, false));
  out.urgent_ok.assign(n, std::vector<bool>(N, false));
  out.cancel_ok.assign(n, std::vector<bool>(N, false));
  for (TaskIndex j = 0; j < n; ++j) {
    for (std::size_t k = 0; k + 1 < N; ++k) {
      bool e = false;
      bool le = false;
      if (j != i) {
        if (fcase == FormulationCase::kLsCaseB) {
          e = k == 0;
        } else if (is_lp(j)) {
          e = fcase == FormulationCase::kNls ? k <= 1 : k == 0;
        } else {
          e = true;  // k <= N - 2 by loop bound
        }
        le = e && may_be_ls(j);
      }
      out.exec_ok[j][k] = e;
      out.urgent_ok[j][k] = le;

      bool cl = cancelable(j);
      if (cl) {
        if (fcase == FormulationCase::kLsCaseB) {
          cl = k == 0;
        } else if (N < 3 || k > N - 3) {
          cl = false;
        } else if (is_lp(j)) {
          cl = k == 0;
        }
      }
      out.cancel_ok[j][k] = cl;
    }
  }

  // Per-interval CPU / DMA upper bounds (the tight big-Ms of
  // Constraint 13).  These depend only on the admission structure and the
  // task parameters, never on the window length, so they are identical
  // for a fresh build and any later patch of the same formulation.
  out.cpu_ub.assign(N, 0.0);
  out.dma_ub.assign(N, 0.0);
  for (std::size_t k = 0; k < N; ++k) {
    if (k == N - 1) {
      out.cpu_ub[k] = td(fcase == FormulationCase::kLsCaseB
                             ? tasks[i].copy_in + tasks[i].exec
                             : tasks[i].exec);
    } else {
      for (TaskIndex j = 0; j < n; ++j) {
        if (out.exec_ok[j][k]) {
          out.cpu_ub[k] = std::max(out.cpu_ub[k], td(tasks[j].exec));
        }
        if (out.urgent_ok[j][k]) {
          out.cpu_ub[k] = std::max(out.cpu_ub[k],
                                   td(tasks[j].copy_in + tasks[j].exec));
        }
      }
    }
    double cou = 0.0;
    if (k == 0) {
      cou = td(tasks.max_copy_out());
    } else {
      for (TaskIndex j = 0; j < n; ++j) {
        if (out.exec_ok[j][k - 1] || out.urgent_ok[j][k - 1]) {
          cou = std::max(cou, td(tasks[j].copy_out));
        }
      }
    }
    double cin = 0.0;
    if (k == N - 1) {
      cin = td(tasks.max_copy_in());
    } else if (k == N - 2 && fcase != FormulationCase::kLsCaseB) {
      cin = td(tasks[i].copy_in);
    } else {
      for (TaskIndex j = 0; j < n; ++j) {
        if (k + 1 < N && out.exec_ok[j][k + 1]) {
          cin = std::max(cin, td(tasks[j].copy_in));
        }
        if (out.cancel_ok[j][k]) {
          cin = std::max(cin, td(tasks[j].copy_in));
        }
      }
    }
    out.dma_ub[k] = cou + cin;
  }
  return out;
}

/// Canonical (index, coefficient) list of an expected row for comparison.
using Terms = std::vector<std::pair<std::size_t, double>>;

Terms sorted_terms(Terms terms) {
  std::sort(terms.begin(), terms.end());
  return terms;
}

bool terms_equal(const lp::LinExpr& actual, const Terms& expected,
                 std::string* detail) {
  const Terms got = actual.normalized().terms();
  const Terms want = sorted_terms(expected);
  if (got != want) {
    *detail = "coefficients differ from the re-derived row (" +
              std::to_string(got.size()) + " vs " +
              std::to_string(want.size()) + " terms)";
    // Pin the first differing term for actionable output.
    for (std::size_t k = 0; k < std::min(got.size(), want.size()); ++k) {
      if (got[k] != want[k]) {
        *detail = "term on column " + std::to_string(got[k].first) + " is " +
                  std::to_string(got[k].second) + ", re-derivation expects " +
                  std::to_string(want[k].second) + " on column " +
                  std::to_string(want[k].first);
        break;
      }
    }
    return false;
  }
  return true;
}

bool integral(double v) { return std::isfinite(v) && std::nearbyint(v) == v; }

}  // namespace

CheckReport lint_formulation(const FormulationView& view,
                             const rt::TaskSet& tasks, TaskIndex i,
                             Time t, FormulationCase fcase, bool ignore_ls) {
  CheckReport report;
  if (view.model == nullptr) {
    report.add("MCS-F110", Severity::kError, "formulation", "no model");
    return report;
  }
  const Model& m = *view.model;
  const std::size_t n = tasks.size();
  const std::size_t N = view.num_intervals;

  report.merge(lint_model(m));

  // --- Handle shape ---------------------------------------------------------
  if (i >= n || N < 2 || view.delta_vars.size() != N ||
      view.alpha_vars.size() != N || view.exec_vars.size() != n ||
      view.urgent_vars.size() != n || view.cancel_vars.size() != n ||
      view.budget_constraints.size() != n) {
    report.add("MCS-F110", Severity::kError, "formulation",
               "handle bookkeeping does not match the task set / window");
    return report;  // nothing below can be interpreted safely
  }
  const auto in_range = [&](VarId v) { return v.index < m.num_variables(); };
  for (std::size_t k = 0; k < N; ++k) {
    if (!in_range(view.delta_vars[k]) || !in_range(view.alpha_vars[k])) {
      report.add("MCS-F110", Severity::kError,
                 "interval " + std::to_string(k),
                 "Delta/alpha handle out of range");
      return report;
    }
  }
  for (TaskIndex j = 0; j < n; ++j) {
    if (view.exec_vars[j].size() != N || view.urgent_vars[j].size() != N ||
        view.cancel_vars[j].size() != N) {
      report.add("MCS-F110", Severity::kError, "task " + tasks[j].name,
                 "placement handle rows not sized to the window");
      return report;
    }
    for (std::size_t k = 0; k < N; ++k) {
      for (const VarId v : {view.exec_vars[j][k], view.urgent_vars[j][k],
                            view.cancel_vars[j][k]}) {
        if (valid(v) && !in_range(v)) {
          report.add("MCS-F110", Severity::kError, "task " + tasks[j].name,
                     "placement handle out of range");
          return report;
        }
      }
    }
  }

  const Rederivation expect =
      rederive(tasks, i, t, fcase, ignore_ls, view.patchable_ls);
  if (expect.num_intervals != N) {
    report.add("MCS-F110", Severity::kError, "formulation",
               "window has " + std::to_string(N) + " intervals, N_i(t) "
               "re-derivation gives " +
                   std::to_string(expect.num_intervals));
    return report;
  }

  // --- Interval-length and selector columns ---------------------------------
  for (std::size_t k = 0; k < N; ++k) {
    const Variable& delta = m.variables()[view.delta_vars[k].index];
    const double ub = std::max(expect.cpu_ub[k], expect.dma_ub[k]);
    if (delta.type != VarType::kContinuous || delta.lower != 0.0 ||
        !std::isfinite(delta.upper) || delta.upper < 0.0) {
      report.add("MCS-F108", Severity::kError, col(m, view.delta_vars[k]),
                 "interval-length variable must be continuous with bounds "
                 "[0, finite]");
    } else if (delta.upper != ub) {
      report.add("MCS-F108", Severity::kError, col(m, view.delta_vars[k]),
                 "upper bound " + std::to_string(delta.upper) +
                     " differs from re-derived max(cpu, dma) bound " +
                     std::to_string(ub));
    }
    const Variable& alpha = m.variables()[view.alpha_vars[k].index];
    if (alpha.type != VarType::kBinary || alpha.lower != 0.0 ||
        alpha.upper != 1.0) {
      report.add("MCS-F110", Severity::kError, col(m, view.alpha_vars[k]),
                 "max-selector must be a free binary in [0, 1]");
    }
  }

  // --- Placement columns: admission, types, marking bounds ------------------
  const auto is_ls_now = [&](TaskIndex j) {
    return !ignore_ls && tasks[j].latency_sensitive;
  };
  const auto cancelable_now = [&](TaskIndex j) {
    for (TaskIndex s = 0; s < n; ++s) {
      if (s != j && is_ls_now(s) && tasks[s].priority < tasks[j].priority) {
        return true;
      }
    }
    return false;
  };
  for (TaskIndex j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < N; ++k) {
      const bool expect_e = k + 1 < N && expect.exec_ok[j][k];
      const bool expect_le = k + 1 < N && expect.urgent_ok[j][k];
      const bool expect_cl = k + 1 < N && expect.cancel_ok[j][k];
      const struct {
        const char* what;
        VarId var;
        bool expected;
        double want_ub;
        const char* bound_rule;
      } cols[] = {
          {"execution", view.exec_vars[j][k], expect_e, 1.0, "MCS-F110"},
          {"urgent", view.urgent_vars[j][k], expect_le,
           view.patchable_ls ? (is_ls_now(j) ? 1.0 : 0.0) : 1.0, "MCS-F107"},
          {"cancel", view.cancel_vars[j][k], expect_cl,
           view.patchable_ls ? (cancelable_now(j) ? 1.0 : 0.0) : 1.0,
           "MCS-F107"},
      };
      for (const auto& c : cols) {
        const std::string object = "task " + tasks[j].name + " interval " +
                                   std::to_string(k) + " " + c.what +
                                   " column";
        if (valid(c.var) != c.expected) {
          report.add("MCS-F110", Severity::kError, object,
                     c.expected ? "admissible per §V Constraints 3/4 but "
                                  "absent from the model"
                                : "present but not admissible per §V "
                                  "Constraints 3/4");
          continue;
        }
        if (!c.expected) continue;
        const Variable& v = m.variables()[c.var.index];
        if (v.type != VarType::kBinary) {
          report.add("MCS-F103", Severity::kError, object,
                     "placement variable is not binary");
        }
        if (v.lower != 0.0 || v.upper != c.want_ub) {
          report.add(c.bound_rule, Severity::kError, object,
                     "bounds [" + std::to_string(v.lower) + ", " +
                         std::to_string(v.upper) +
                         "] inconsistent with the current LS marking "
                         "(expected [0, " +
                         std::to_string(c.want_ub) + "])");
        }
      }
    }
  }

  // --- Binary confinement (MCS-F103) ----------------------------------------
  std::vector<bool> placement(m.num_variables(), false);
  for (std::size_t k = 0; k < N; ++k) {
    placement[view.alpha_vars[k].index] = true;
  }
  for (TaskIndex j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < N; ++k) {
      for (const VarId v : {view.exec_vars[j][k], view.urgent_vars[j][k],
                            view.cancel_vars[j][k]}) {
        if (valid(v)) placement[v.index] = true;
      }
    }
  }
  for (std::size_t c = 0; c < m.num_variables(); ++c) {
    if (m.variables()[c].type == VarType::kBinary && !placement[c]) {
      report.add("MCS-F103", Severity::kError, col(m, VarId{c}),
                 "binary column outside the alpha/E/LE/CL placement "
                 "families");
    }
  }

  // --- Objective (MCS-F109): maximize sum of interval lengths ---------------
  {
    Terms want;
    want.reserve(N);
    for (std::size_t k = 0; k < N; ++k) {
      want.emplace_back(view.delta_vars[k].index, 1.0);
    }
    std::string detail;
    if (m.objective_sense() != lp::Sense::kMaximize) {
      report.add("MCS-F109", Severity::kError, "objective",
                 "sense is not maximize");
    } else if (m.objective().normalized().constant() != 0.0) {
      report.add("MCS-F109", Severity::kError, "objective",
                 "unexpected constant term");
    } else if (!terms_equal(m.objective(), want, &detail)) {
      report.add("MCS-F109", Severity::kError, "objective", detail);
    }
  }

  // --- Named-row lookup ------------------------------------------------------
  std::unordered_map<std::string, std::size_t> rows;
  for (std::size_t r = 0; r < m.num_constraints(); ++r) {
    const std::string& name = m.constraints()[r].name;
    if (!name.empty()) rows.emplace(name, r);
  }
  const auto named_row = [&](const std::string& name) -> const
      lp::Constraint* {
    const auto it = rows.find(name);
    return it == rows.end() ? nullptr : &m.constraints()[it->second];
  };

  // --- Cardinality rows (Constraints 5 and 6) --------------------------------
  for (std::size_t k = 0; k + 1 < N; ++k) {
    Terms want;
    for (TaskIndex j = 0; j < n; ++j) {
      if (valid(view.exec_vars[j][k])) {
        want.emplace_back(view.exec_vars[j][k].index, 1.0);
      }
      if (valid(view.urgent_vars[j][k])) {
        want.emplace_back(view.urgent_vars[j][k].index, 1.0);
      }
    }
    const std::string name = "one_exec_" + std::to_string(k);
    const lp::Constraint* row = named_row(name);
    if (want.empty()) {
      if (row != nullptr) {
        report.add("MCS-F101", Severity::kError, name,
                   "cardinality row without admissible placements");
      }
      continue;
    }
    if (row == nullptr) {
      report.add("MCS-F101", Severity::kError, name,
                 "placement-cardinality row missing");
      continue;
    }
    const Relation rel = (k == 0 || fcase == FormulationCase::kLsCaseB)
                             ? Relation::kLe
                             : Relation::kEq;
    std::string detail;
    if (row->relation != rel || row->rhs != 1.0) {
      report.add("MCS-F101", Severity::kError, name,
                 "must read `sum placements " +
                     std::string(rel == Relation::kLe ? "<=" : "=") +
                     " 1` for this interval");
    } else if (!terms_equal(row->lhs, want, &detail)) {
      report.add("MCS-F101", Severity::kError, name, detail);
    }
  }
  for (std::size_t k = 0; k + 2 < N; ++k) {
    Terms want;
    for (TaskIndex j = 0; j < n; ++j) {
      if (valid(view.exec_vars[j][k + 1])) {
        want.emplace_back(view.exec_vars[j][k + 1].index, 1.0);
      }
      if (valid(view.cancel_vars[j][k])) {
        want.emplace_back(view.cancel_vars[j][k].index, 1.0);
      }
    }
    const std::string name = "one_copyin_" + std::to_string(k);
    const lp::Constraint* row = named_row(name);
    if (want.empty()) {
      if (row != nullptr) {
        report.add("MCS-F102", Severity::kError, name,
                   "cardinality row without admissible copy-ins");
      }
      continue;
    }
    if (row == nullptr) {
      report.add("MCS-F102", Severity::kError, name,
                 "copy-in cardinality row missing");
      continue;
    }
    const Relation rel = fcase == FormulationCase::kLsCaseB ? Relation::kLe
                                                            : Relation::kEq;
    std::string detail;
    if (row->relation != rel || row->rhs != 1.0) {
      report.add("MCS-F102", Severity::kError, name,
                 "must read `sum copy-ins " +
                     std::string(rel == Relation::kLe ? "<=" : "=") +
                     " 1` for this interval");
    } else if (!terms_equal(row->lhs, want, &detail)) {
      report.add("MCS-F102", Severity::kError, name, detail);
    }
  }

  // --- Interference budgets (Constraint 7, MCS-F104) -------------------------
  const auto my_prio = tasks[i].priority;
  for (TaskIndex j = 0; j < n; ++j) {
    Terms want;
    for (std::size_t k = 0; k + 1 < N; ++k) {
      if (valid(view.exec_vars[j][k])) {
        want.emplace_back(view.exec_vars[j][k].index, 1.0);
      }
      if (valid(view.urgent_vars[j][k])) {
        want.emplace_back(view.urgent_vars[j][k].index, 1.0);
      }
    }
    const std::size_t row_index = view.budget_constraints[j];
    const std::string object = "budget row of task " + tasks[j].name;
    if (j == i || want.empty()) {
      if (row_index != FormulationView::kNoConstraint) {
        report.add("MCS-F104", Severity::kError, object,
                   "budget row recorded for a task without placement "
                   "columns");
      }
      continue;
    }
    if (row_index == FormulationView::kNoConstraint ||
        row_index >= m.num_constraints()) {
      report.add("MCS-F104", Severity::kError, object,
                 "interference-budget row missing");
      continue;
    }
    const lp::Constraint& row = m.constraints()[row_index];
    const double budget = tasks[j].priority > my_prio
                              ? 1.0
                              : static_cast<double>(expect.budgets[j]);
    std::string detail;
    if (row.relation != Relation::kLe) {
      report.add("MCS-F104", Severity::kError, object,
                 "budget row is not a <= constraint");
    } else if (row.rhs != budget) {
      report.add("MCS-F104", Severity::kError, object,
                 "right-hand side " + std::to_string(row.rhs) +
                     " differs from eta_j(t) + 1 = " +
                     std::to_string(budget) +
                     " re-derived from the arrival curve");
    } else if (!terms_equal(row.lhs, want, &detail)) {
      report.add("MCS-F104", Severity::kError, object, detail);
    }
  }

  // --- Cancellation budget (R3 tightening, MCS-F105) -------------------------
  {
    Terms want;
    for (TaskIndex j = 0; j < n; ++j) {
      for (std::size_t k = 0; k + 1 < N; ++k) {
        if (valid(view.cancel_vars[j][k])) {
          want.emplace_back(view.cancel_vars[j][k].index, 1.0);
        }
      }
    }
    const std::size_t row_index = view.cancellation_budget_constraint;
    if (want.empty()) {
      if (row_index != FormulationView::kNoConstraint) {
        report.add("MCS-F105", Severity::kError, "cancellation_budget",
                   "budget row recorded without cancellation columns");
      }
    } else if (row_index == FormulationView::kNoConstraint ||
               row_index >= m.num_constraints()) {
      report.add("MCS-F105", Severity::kError, "cancellation_budget",
                 "cancellation-budget row missing");
    } else {
      const lp::Constraint& row = m.constraints()[row_index];
      std::string detail;
      if (row.relation != Relation::kLe) {
        report.add("MCS-F105", Severity::kError, "cancellation_budget",
                   "budget row is not a <= constraint");
      } else if (row.rhs != expect.ls_release_budget) {
        report.add("MCS-F105", Severity::kError, "cancellation_budget",
                   "right-hand side " + std::to_string(row.rhs) +
                       " differs from the LS release budget " +
                       std::to_string(expect.ls_release_budget) +
                       " re-derived from the arrival curves");
      } else if (!terms_equal(row.lhs, want, &detail)) {
        report.add("MCS-F105", Severity::kError, "cancellation_budget",
                   detail);
      }
    }
  }

  // --- CPU-side interval-length rows (Constraint 13, tick coefficients) ------
  for (std::size_t k = 0; k < N; ++k) {
    const std::string name = "delta_cpu_" + std::to_string(k);
    const lp::Constraint* row = named_row(name);
    if (row == nullptr) {
      report.add("MCS-F110", Severity::kError, name,
                 "CPU-side interval-length row missing");
      continue;
    }
    Terms want;
    // Model rows are normalized with exact zeros dropped; mirror that here
    // so zero tick parameters or a zero big-M compare equal.
    const auto push = [&want](std::size_t index, double coef) {
      if (coef != 0.0) want.emplace_back(index, coef);
    };
    push(view.delta_vars[k].index, 1.0);
    const double m_k = std::max(expect.cpu_ub[k], expect.dma_ub[k]);
    push(view.alpha_vars[k].index, -m_k);
    double rhs = 0.0;
    if (k == N - 1) {
      rhs = td(fcase == FormulationCase::kLsCaseB
                   ? tasks[i].copy_in + tasks[i].exec
                   : tasks[i].exec);
    } else {
      for (TaskIndex j = 0; j < n; ++j) {
        if (valid(view.exec_vars[j][k])) {
          push(view.exec_vars[j][k].index, -td(tasks[j].exec));
        }
        if (valid(view.urgent_vars[j][k])) {
          push(view.urgent_vars[j][k].index,
               -td(tasks[j].copy_in + tasks[j].exec));
        }
      }
    }
    std::string detail;
    if (row->relation != Relation::kLe || row->rhs != rhs) {
      report.add("MCS-F106", Severity::kError, name,
                 "right-hand side " + std::to_string(row->rhs) +
                     " differs from the tick re-derivation " +
                     std::to_string(rhs));
    } else if (!terms_equal(row->lhs, want, &detail)) {
      report.add("MCS-F106", Severity::kError, name, detail);
    }
  }

  // --- Tick-unit integrality sweep (MCS-F106) --------------------------------
  // All formulation data derives from integer tick parameters and integer
  // release counts, so every finite number in the model must be integral.
  for (std::size_t c = 0; c < m.num_variables(); ++c) {
    const Variable& v = m.variables()[c];
    if ((std::isfinite(v.lower) && !integral(v.lower)) ||
        (std::isfinite(v.upper) && !integral(v.upper))) {
      report.add("MCS-F106", Severity::kError, col(m, VarId{c}),
                 "non-integral bound: formulation data must stay in whole "
                 "ticks");
    }
  }
  for (std::size_t r = 0; r < m.num_constraints(); ++r) {
    const lp::Constraint& row = m.constraints()[r];
    bool bad = !integral(row.rhs);
    for (const auto& [var, coef] : row.lhs.terms()) {
      bad = bad || !integral(coef);
    }
    if (bad) {
      const std::string& name = row.name;
      report.add("MCS-F106", Severity::kError,
                 name.empty() ? "row " + std::to_string(r) : name,
                 "non-integral coefficient or right-hand side: formulation "
                 "data must stay in whole ticks");
    }
  }

  return report;
}

}  // namespace mcs::check
