// Domain linter for the paper's delay-maximization MILP (§V).
//
// Audits an assembled formulation against the Section V invariants,
// *recomputing* every window-dependent quantity (interference budgets
// eta_j(t) + 1, the LS release budget, interval counts) directly from the
// task set's arrival curves — deliberately NOT by calling the analysis
// layer's own window code, so a bug there cannot certify itself.  The
// pass is pure and side-effect-free.
//
// The view struct mirrors analysis::DelayMilp without depending on the
// analysis library (mcs_check sits below mcs_analysis so the engine can
// run these audits from its debug hooks); analysis/lint.hpp provides the
// one-line adapter from a DelayMilp.
#pragma once

#include <cstddef>
#include <vector>

#include "check/diagnostics.hpp"
#include "lp/model.hpp"
#include "rt/task.hpp"
#include "rt/types.hpp"

namespace mcs::check {

/// Mirror of analysis::FormulationCase (kept in sync by the adapter).
enum class FormulationCase { kNls, kLsCaseA, kLsCaseB };

/// Read-only view of an assembled delay MILP: the model plus the handle
/// bookkeeping needed to interpret its columns and rows.  Invalid VarId
/// (index == npos) marks a structurally absent column, as in DelayMilp.
struct FormulationView {
  const lp::Model* model = nullptr;
  std::size_t num_intervals = 0;
  std::vector<lp::VarId> delta_vars;
  std::vector<lp::VarId> alpha_vars;
  std::vector<std::vector<lp::VarId>> exec_vars;
  std::vector<std::vector<lp::VarId>> urgent_vars;
  std::vector<std::vector<lp::VarId>> cancel_vars;
  std::vector<std::size_t> budget_constraints;
  std::size_t cancellation_budget_constraint = kNoConstraint;
  bool patchable_ls = false;

  static constexpr std::size_t kNoConstraint = static_cast<std::size_t>(-1);
};

/// Audits `view` as the formulation for task `i` over a window of length
/// `t` under `fcase` / `ignore_ls` (the same arguments the builder / the
/// patcher were last called with).  Emitted rules: MCS-F101..F110 plus the
/// generic MCS-F0xx structure rules via lint_model.  Empty report == the
/// model is exactly the Section V program for these inputs.
CheckReport lint_formulation(const FormulationView& view,
                             const rt::TaskSet& tasks, rt::TaskIndex i,
                             rt::Time t, FormulationCase fcase,
                             bool ignore_ls = false);

}  // namespace mcs::check
