// Machine-readable diagnostics for the mcs::check static-analysis layer.
//
// Every check in the subsystem reports through this vocabulary: a stable
// rule ID (`MCS-F***` for formulation/model rules, `MCS-P***` for protocol
// trace rules), a severity, the model/trace object the finding anchors to,
// and a human-readable message.  docs/LINTING.md is the catalogue mapping
// each ID to the paper equation/rule it guards and its severity rationale;
// rule_catalog() below is the in-code form the docs and tests check
// against, so an ID can never silently drift from its documentation.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mcs::check {

enum class Severity { kError, kWarning };

const char* to_string(Severity severity) noexcept;

/// One finding.  `rule` is a stable ID from rule_catalog(); `object` names
/// the element the finding anchors to ("column LE_2_1", "row budget_vision",
/// "interval 12", "job vision#3").
struct Diagnostic {
  std::string rule;
  Severity severity = Severity::kError;
  std::string object;
  std::string message;
};

/// Result of one lint/audit pass.  `clean()` is the CI gate: no findings at
/// all (warnings included — a linter that tolerates its own warnings
/// accumulates them until they hide errors).
struct CheckReport {
  std::vector<Diagnostic> diagnostics;

  bool clean() const noexcept { return diagnostics.empty(); }
  std::size_t error_count() const noexcept;
  bool has_rule(std::string_view rule) const noexcept;

  void add(std::string rule, Severity severity, std::string object,
           std::string message);
  /// Appends every diagnostic of `other` (used to combine passes).
  void merge(const CheckReport& other);
};

/// Renders one diagnostic as a single line:
///   `<severity>: <rule>: <object>: <message>`
/// — grep-able, one finding per line, stable field order.
std::string render(const Diagnostic& diagnostic);

/// Renders a whole report, one diagnostic per line, in emission order.
void render(const CheckReport& report, std::ostream& out);

/// Catalogue entry for one rule ID: what it guards and where in the paper
/// the guarded invariant comes from.
struct RuleInfo {
  const char* id;
  Severity severity;
  const char* summary;    ///< one-line description of the invariant
  const char* reference;  ///< paper equation/rule / DESIGN.md anchor
};

/// Every rule the subsystem can emit, ordered by ID.  Tests assert that
/// emitted diagnostics use catalogued IDs and severities, and
/// docs/LINTING.md mirrors this table.
const std::vector<RuleInfo>& rule_catalog();

/// Catalogue lookup; nullptr for an unknown ID.
const RuleInfo* find_rule(std::string_view id) noexcept;

}  // namespace mcs::check
