#include "check/model_lint.hpp"

#include <cmath>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace mcs::check {

namespace {

using lp::Constraint;
using lp::LinExpr;
using lp::Model;
using lp::Relation;
using lp::Variable;
using lp::VarType;

std::string column_name(const Model& model, std::size_t index) {
  const std::string& name = model.variables()[index].name;
  std::string label = "column " + std::to_string(index);
  if (!name.empty()) {
    label += " (" + name + ")";
  }
  return label;
}

std::string row_name(const Model& model, std::size_t index) {
  const std::string& name = model.constraints()[index].name;
  std::string label = "row " + std::to_string(index);
  if (!name.empty()) {
    label += " (" + name + ")";
  }
  return label;
}

const char* relation_symbol(Relation relation) {
  switch (relation) {
    case Relation::kLe:
      return "<=";
    case Relation::kGe:
      return ">=";
    case Relation::kEq:
      return "=";
  }
  return "?";
}

std::string number(double value) {
  std::string text = std::to_string(value);
  // Trim trailing zeros for readability; keep at least one decimal digit.
  const std::size_t dot = text.find('.');
  if (dot != std::string::npos) {
    std::size_t last = text.find_last_not_of('0');
    if (last == dot) ++last;
    text.erase(last + 1);
  }
  return text;
}

/// True when the empty row `relation rhs` (i.e. `0 relation rhs`) holds.
bool empty_row_satisfiable(Relation relation, double rhs) {
  switch (relation) {
    case Relation::kLe:
      return 0.0 <= rhs;
    case Relation::kGe:
      return 0.0 >= rhs;
    case Relation::kEq:
      return rhs == 0.0;
  }
  return true;
}

}  // namespace

CheckReport lint_model(const Model& model) {
  CheckReport report;
  const std::size_t num_vars = model.num_variables();

  // --- Columns: bounds, types, names ---------------------------------------
  std::unordered_map<std::string, std::size_t> var_names;
  for (std::size_t i = 0; i < num_vars; ++i) {
    const Variable& v = model.variables()[i];
    if (std::isnan(v.lower) || std::isnan(v.upper) || v.lower > v.upper) {
      report.add("MCS-F001", Severity::kError, column_name(model, i),
                 "bounds [" + number(v.lower) + ", " + number(v.upper) +
                     "] are inverted or NaN");
    }
    if (v.type != VarType::kContinuous &&
        (std::isinf(v.lower) || std::isinf(v.upper))) {
      report.add("MCS-F002", Severity::kError, column_name(model, i),
                 "integral variable with an unbounded side");
    }
    if (v.type == VarType::kBinary && (v.lower < 0.0 || v.upper > 1.0)) {
      report.add("MCS-F003", Severity::kError, column_name(model, i),
                 "binary bounds [" + number(v.lower) + ", " +
                     number(v.upper) + "] leave [0, 1]");
    }
    if (!v.name.empty()) {
      const auto [it, inserted] = var_names.emplace(v.name, i);
      if (!inserted) {
        report.add("MCS-F007", Severity::kError, column_name(model, i),
                   "name already used by column " +
                       std::to_string(it->second));
      }
    }
  }

  // --- Rows: finiteness, emptiness, names, index validity ------------------
  std::vector<bool> referenced(num_vars, false);
  for (const auto& [var, coef] : model.objective().terms()) {
    if (var < num_vars) {
      referenced[var] = true;
    }
  }
  std::unordered_map<std::string, std::size_t> row_names;
  for (std::size_t r = 0; r < model.num_constraints(); ++r) {
    const Constraint& c = model.constraints()[r];
    if (!std::isfinite(c.rhs)) {
      report.add("MCS-F002", Severity::kError, row_name(model, r),
                 "non-finite right-hand side");
    }
    for (const auto& [var, coef] : c.lhs.terms()) {
      if (var >= num_vars) {
        report.add("MCS-F009", Severity::kError, row_name(model, r),
                   "references variable index " + std::to_string(var) +
                       " of " + std::to_string(num_vars));
        continue;
      }
      referenced[var] = true;
      if (!std::isfinite(coef)) {
        report.add("MCS-F002", Severity::kError, row_name(model, r),
                   "non-finite coefficient on " + column_name(model, var));
      }
    }
    if (c.lhs.normalized().terms().empty()) {
      if (empty_row_satisfiable(c.relation, c.rhs)) {
        report.add("MCS-F005", Severity::kWarning, row_name(model, r),
                   "no terms; `0 " + std::string(relation_symbol(c.relation)) +
                       " " + number(c.rhs) + "` is vacuous");
      } else {
        report.add("MCS-F006", Severity::kError, row_name(model, r),
                   "no terms; `0 " + std::string(relation_symbol(c.relation)) +
                       " " + number(c.rhs) + "` can never hold");
      }
    }
    if (!c.name.empty()) {
      const auto [it, inserted] = row_names.emplace(c.name, r);
      if (!inserted) {
        report.add("MCS-F008", Severity::kError, row_name(model, r),
                   "name already used by row " + std::to_string(it->second));
      }
    }
  }

  for (std::size_t i = 0; i < num_vars; ++i) {
    if (!referenced[i]) {
      report.add("MCS-F004", Severity::kWarning, column_name(model, i),
                 "appears in no constraint and not in the objective");
    }
  }
  return report;
}

namespace {

bool same_value(double a, double b, double tolerance) {
  if (std::isinf(a) || std::isinf(b)) {
    return a == b;
  }
  return std::abs(a - b) <= tolerance;
}

/// Sorted + merged terms for order-insensitive row comparison.
std::vector<std::pair<std::size_t, double>> canonical_terms(
    const LinExpr& expr) {
  return expr.normalized().terms();
}

bool same_terms(const LinExpr& a, const LinExpr& b, double tolerance,
                std::string* detail) {
  const auto ta = canonical_terms(a);
  const auto tb = canonical_terms(b);
  if (ta.size() != tb.size()) {
    *detail = "term count " + std::to_string(ta.size()) + " vs " +
              std::to_string(tb.size());
    return false;
  }
  for (std::size_t k = 0; k < ta.size(); ++k) {
    if (ta[k].first != tb[k].first) {
      *detail = "term " + std::to_string(k) + " on column " +
                std::to_string(ta[k].first) + " vs " +
                std::to_string(tb[k].first);
      return false;
    }
    if (!same_value(ta[k].second, tb[k].second, tolerance)) {
      *detail = "coefficient on column " + std::to_string(ta[k].first) +
                ": " + number(ta[k].second) + " vs " + number(tb[k].second);
      return false;
    }
  }
  return true;
}

}  // namespace

CheckReport diff_models(const Model& a, const Model& b,
                        const DiffOptions& options) {
  CheckReport report;

  if (a.num_variables() != b.num_variables()) {
    report.add("MCS-F201", Severity::kError, "model",
               std::to_string(a.num_variables()) + " vs " +
                   std::to_string(b.num_variables()) + " columns");
    return report;  // positional comparison is meaningless past this point
  }
  for (std::size_t i = 0; i < a.num_variables(); ++i) {
    const Variable& va = a.variables()[i];
    const Variable& vb = b.variables()[i];
    if (!same_value(va.lower, vb.lower, options.tolerance) ||
        !same_value(va.upper, vb.upper, options.tolerance)) {
      report.add("MCS-F202", Severity::kError, column_name(a, i),
                 "bounds [" + number(va.lower) + ", " + number(va.upper) +
                     "] vs [" + number(vb.lower) + ", " + number(vb.upper) +
                     "]");
    }
    if (va.type != vb.type) {
      report.add("MCS-F202", Severity::kError, column_name(a, i),
                 "variable type differs");
    }
    if (options.compare_names && va.name != vb.name) {
      report.add("MCS-F202", Severity::kError, column_name(a, i),
                 "name '" + va.name + "' vs '" + vb.name + "'");
    }
  }

  if (a.num_constraints() != b.num_constraints()) {
    report.add("MCS-F203", Severity::kError, "model",
               std::to_string(a.num_constraints()) + " vs " +
                   std::to_string(b.num_constraints()) + " rows");
    return report;
  }
  for (std::size_t r = 0; r < a.num_constraints(); ++r) {
    const Constraint& ca = a.constraints()[r];
    const Constraint& cb = b.constraints()[r];
    if (ca.relation != cb.relation) {
      report.add("MCS-F204", Severity::kError, row_name(a, r),
                 std::string("relation ") + relation_symbol(ca.relation) +
                     " vs " + relation_symbol(cb.relation));
    }
    if (!same_value(ca.rhs, cb.rhs, options.tolerance)) {
      report.add("MCS-F204", Severity::kError, row_name(a, r),
                 "right-hand side " + number(ca.rhs) + " vs " +
                     number(cb.rhs));
    }
    std::string detail;
    if (!same_terms(ca.lhs, cb.lhs, options.tolerance, &detail)) {
      report.add("MCS-F204", Severity::kError, row_name(a, r), detail);
    }
    if (options.compare_names && ca.name != cb.name) {
      report.add("MCS-F204", Severity::kError, row_name(a, r),
                 "name '" + ca.name + "' vs '" + cb.name + "'");
    }
  }

  if (a.objective_sense() != b.objective_sense()) {
    report.add("MCS-F205", Severity::kError, "objective", "sense differs");
  }
  if (!same_value(a.objective().constant(), b.objective().constant(),
                  options.tolerance)) {
    report.add("MCS-F205", Severity::kError, "objective",
               "constant " + number(a.objective().constant()) + " vs " +
                   number(b.objective().constant()));
  }
  std::string detail;
  if (!same_terms(a.objective(), b.objective(), options.tolerance, &detail)) {
    report.add("MCS-F205", Severity::kError, "objective", detail);
  }
  return report;
}

}  // namespace mcs::check
