#include "check/check.hpp"

#include <algorithm>
#include <cstdlib>

namespace mcs::check {

namespace {

int parse_runtime_level() {
  const char* env = std::getenv("MCS_CHECK_LEVEL");
  if (env == nullptr || *env == '\0') {
    return kCompiledLevel;
  }
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') {
    return kCompiledLevel;  // malformed: keep everything compiled in active
  }
  return std::clamp(static_cast<int>(value), 0, kCompiledLevel);
}

}  // namespace

int runtime_level() noexcept {
  static const int level = parse_runtime_level();
  return level;
}

}  // namespace mcs::check
