// Audit passes for the MILP presolve/postsolve layer (lp/presolve.hpp).
//
// Presolve promises exactness: every reduction preserves the feasible
// integer points (projected onto surviving columns) and their objective
// values, and the postsolve map embeds the reduced space back into the
// original one losslessly.  These passes check that promise from the
// outside — against the pristine model only, never trusting the reducer's
// own arithmetic.  Rule IDs MCS-F301..F304 are catalogued in
// check/diagnostics.hpp and docs/LINTING.md.
#pragma once

#include <vector>

#include "check/diagnostics.hpp"
#include "lp/model.hpp"
#include "lp/presolve.hpp"

namespace mcs::check {

/// Audits a presolve run against the pristine model it reduced:
///
///  * MCS-F301 — bookkeeping: the reduction log, the postsolve map, and
///    the model deltas must tell the same story (every removed row/column
///    logged exactly once, map dimensions and embedding consistent,
///    stats counters matching the log).
///  * MCS-F302 — domain containment: presolve may only shrink variable
///    domains; a reduced bound looser than the original, a changed
///    variable type, or a fixed value outside the original bounds all
///    break exactness.
CheckReport audit_presolve(const lp::Model& original,
                           const lp::presolve::Presolved& presolved);

struct PostsolveAuditOptions {
  /// Base feasibility tolerance; every bound and row check scales it by
  /// the magnitudes involved, so ill-scaled rows are not misflagged.
  double feasibility_tol = 1e-6;
  /// Relative tolerance for the objective transfer check (MCS-F304),
  /// matching the independent primal+dual certificate of the simplex
  /// layer.
  double objective_tol = 1e-6;
};

/// Audits a postsolved (original-variable-space) solution:
///
///  * MCS-F303 — the point must satisfy every original bound, every
///    original row, and integrality in the pristine model.
///  * MCS-F304 — the pristine objective evaluated at the point must match
///    the objective the reduced-space solver reported (objective values
///    pass through postsolve unchanged by contract).
CheckReport audit_postsolve(const lp::Model& original,
                            const std::vector<double>& values,
                            double reported_objective,
                            const PostsolveAuditOptions& options = {});

}  // namespace mcs::check
