// Runtime gate for the audit hooks (docs/LINTING.md).
//
// MCS_CHECK_LEVEL is a *compile-time* ceiling set by the build system
// (CMake cache variable of the same name; AUTO = 2 in Debug, 0 in
// Release).  At level 0 every hook call site folds to `if (false)` and
// the audits cost nothing — the Release solver path is byte-for-byte
// unaffected.  When compiled in, the MCS_CHECK_LEVEL *environment
// variable* can lower the level at run time (it can never exceed the
// compiled ceiling, since higher-level code does not exist in the
// binary).
//
// Levels:
//   0  hooks disabled
//   1  pure lints: every fresh formulation and every cache patch is
//      audited against the Section V invariants (lint_formulation)
//   2  differential: additionally rebuild each patched formulation from
//      scratch and require structural identity (diff_models)
#pragma once

#ifndef MCS_CHECK_LEVEL
#define MCS_CHECK_LEVEL 0
#endif

namespace mcs::check {

inline constexpr int kCompiledLevel = MCS_CHECK_LEVEL;

/// Audit levels accepted by enabled().
inline constexpr int kLevelLint = 1;
inline constexpr int kLevelDifferential = 2;

/// Effective level: min(compiled ceiling, MCS_CHECK_LEVEL environment
/// variable), parsed once.  Returns the compiled ceiling when the
/// variable is unset or malformed.
int runtime_level() noexcept;

/// True when hooks of `level` should run.  Constant false (and fully
/// optimized out) when the build compiled the hooks away.
inline bool enabled(int level) noexcept {
  if constexpr (kCompiledLevel == 0) {
    (void)level;
    return false;
  } else {
    return runtime_level() >= level;
  }
}

}  // namespace mcs::check
