// Generic structural linting and differential comparison of lp::Model.
//
// Pure, side-effect-free audit passes: nothing here mutates a model, takes
// locks, or depends on solver state, so the passes are safe to run from
// debug hooks inside the analysis engine as well as from the standalone
// `mcs_lint` tool.  Rule IDs are catalogued in check/diagnostics.hpp and
// docs/LINTING.md.
#pragma once

#include "check/diagnostics.hpp"
#include "lp/model.hpp"

namespace mcs::check {

/// Structural audit of any model: bound sanity (MCS-F001/F003), finiteness
/// (MCS-F002), dangling columns (MCS-F004), empty rows (MCS-F005/F006),
/// name uniqueness (MCS-F007/F008), and index validity (MCS-F009).
CheckReport lint_model(const lp::Model& model);

struct DiffOptions {
  /// Compare variable / constraint names too.  Off when diffing a written
  /// + reparsed model, whose names went through LP-format sanitization.
  bool compare_names = true;
  /// Absolute tolerance for coefficient / bound / rhs comparison.  The
  /// default 0.0 demands bit-identical data — the contract for cache
  /// patches; the LP round-trip uses it too since the writer prints
  /// losslessly.
  double tolerance = 0.0;
};

/// Structural equivalence check: reports every difference between `a` and
/// `b` (MCS-F201..F205).  Constraints are compared row by row in order with
/// normalized (sorted, merged) coefficient lists, so models built through
/// different code paths compare equal iff they define the same polytope
/// row for row.  An empty report means `a` and `b` are interchangeable for
/// any solver.
CheckReport diff_models(const lp::Model& a, const lp::Model& b,
                        const DiffOptions& options = {});

}  // namespace mcs::check
