// Linear / mixed-integer linear model representation.
//
// This is the CPLEX-replacement substrate: the schedulability analysis of
// the paper (Section V) builds its MILP through this interface and solves it
// with mcs::lp::solve_milp (branch & bound over the bounded-variable simplex
// in simplex.hpp).  The model is solver-agnostic plain data: variables with
// bounds and integrality, linear constraints, one linear objective.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace mcs::lp {

/// Positive/negative infinity used for unbounded variable sides.
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class VarType { kContinuous, kBinary, kInteger };
enum class Sense { kMinimize, kMaximize };
enum class Relation { kLe, kGe, kEq };

/// Opaque variable handle returned by Model::add_*.
struct VarId {
  std::size_t index = static_cast<std::size_t>(-1);
  friend bool operator==(VarId, VarId) = default;
};

/// A linear expression `sum coef_j * x_j + constant`.
///
/// Terms may repeat a variable; they are merged when the expression is
/// normalized (Model does this when a constraint / objective is installed).
class LinExpr {
 public:
  LinExpr() = default;
  /*implicit*/ LinExpr(double constant) : constant_(constant) {}
  /*implicit*/ LinExpr(VarId v) { add_term(v, 1.0); }

  void add_term(VarId v, double coef);

  LinExpr& operator+=(const LinExpr& other);
  LinExpr& operator-=(const LinExpr& other);
  LinExpr& operator*=(double factor);

  friend LinExpr operator+(LinExpr lhs, const LinExpr& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend LinExpr operator-(LinExpr lhs, const LinExpr& rhs) {
    lhs -= rhs;
    return lhs;
  }
  friend LinExpr operator*(LinExpr expr, double factor) {
    expr *= factor;
    return expr;
  }
  friend LinExpr operator*(double factor, LinExpr expr) {
    expr *= factor;
    return expr;
  }

  const std::vector<std::pair<std::size_t, double>>& terms() const noexcept {
    return terms_;
  }
  double constant() const noexcept { return constant_; }

  /// Returns a copy with duplicate variables merged and ~zero terms dropped.
  LinExpr normalized() const;

 private:
  std::vector<std::pair<std::size_t, double>> terms_;
  double constant_ = 0.0;
};

/// Convenience: `coef * var` as an expression.
LinExpr term(VarId v, double coef);

struct Variable {
  double lower = 0.0;
  double upper = kInfinity;
  VarType type = VarType::kContinuous;
  std::string name;
};

struct Constraint {
  LinExpr lhs;  ///< normalized, constant folded into rhs
  Relation relation = Relation::kLe;
  double rhs = 0.0;
  std::string name;
};

/// A mixed-integer linear model.
///
/// Invariants: every constraint references only variables added to this
/// model; binary variables have bounds within [0, 1].
class Model {
 public:
  /// Capacity hints for builders that know their final size (the delay-MILP
  /// builder derives exact counts): one reallocation instead of a
  /// doubling cascade on the hottest build path.
  void reserve_variables(std::size_t count) { variables_.reserve(count); }
  void reserve_constraints(std::size_t count) { constraints_.reserve(count); }

  VarId add_continuous(double lower, double upper, std::string name = "");
  VarId add_binary(std::string name = "");
  VarId add_integer(double lower, double upper, std::string name = "");

  /// Installs `lhs relation rhs`; both sides may be arbitrary expressions,
  /// the stored form is `(lhs - rhs) relation 0` normalized.
  void add_constraint(const LinExpr& lhs, Relation relation,
                      const LinExpr& rhs, std::string name = "");

  void set_objective(Sense sense, const LinExpr& objective);

  /// Tightens the domain of an existing variable.  Used by branch & bound;
  /// also handy to fix variables (lower == upper).
  void set_bounds(VarId v, double lower, double upper);

  /// Replaces the (normalized) right-hand side of an existing constraint.
  /// Used to patch window-dependent budgets when a cached formulation is
  /// reused across fixpoint rounds instead of being rebuilt.
  void set_rhs(std::size_t constraint_index, double rhs);

  std::size_t num_variables() const noexcept { return variables_.size(); }
  std::size_t num_constraints() const noexcept { return constraints_.size(); }
  const Variable& variable(VarId v) const;
  const std::vector<Variable>& variables() const noexcept {
    return variables_;
  }
  const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }
  Sense objective_sense() const noexcept { return sense_; }
  const LinExpr& objective() const noexcept { return objective_; }

  bool has_integer_variables() const noexcept;

  /// Evaluates an expression under an assignment (one value per variable).
  double evaluate(const LinExpr& expr,
                  const std::vector<double>& assignment) const;

  /// True iff `assignment` satisfies all constraints and variable bounds
  /// within tolerance `eps` (integrality is checked for integer variables).
  bool is_feasible(const std::vector<double>& assignment, double eps) const;

 private:
  void check_expr(const LinExpr& expr) const;

  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  LinExpr objective_;
  Sense sense_ = Sense::kMinimize;
};

}  // namespace mcs::lp
