#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/contracts.hpp"
#include "support/telemetry.hpp"

namespace mcs::lp {

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
    case SolveStatus::kNodeLimit:
      return "node-limit";
  }
  return "unknown";
}

namespace {

enum class VarStatus : unsigned char { kBasic, kAtLower, kAtUpper };

/// Internal column: value x = offset + sign * y where y is the simplex
/// variable with bounds [0, upper] (upper possibly +inf).  Free model
/// variables are split into two internal columns (sign +1 and -1).
struct ColumnMap {
  std::size_t model_var = static_cast<std::size_t>(-1);
  double offset = 0.0;
  double sign = 1.0;
};

class SimplexSolver {
 public:
  SimplexSolver(const Model& model, const SimplexOptions& options)
      : model_(model), opt_(options) {
    build();
  }

  LpSolution run();

 private:
  void build();
  void compute_basic_values();
  void recompute_reduced_costs();
  double current_internal_objective() const;
  /// Returns entering column or npos if optimal.
  std::size_t choose_entering(bool bland) const;
  SolveStatus iterate(std::size_t phase_one_rows, bool phase_one,
                      std::size_t& iterations);
  void pivot(std::size_t row, std::size_t col, double entering_value,
             VarStatus leaving_status);
  bool drive_out_artificials();
  LpSolution extract_solution(SolveStatus status,
                              std::size_t iterations) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  const Model& model_;
  SimplexOptions opt_;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;           // structural (+ split) + slack columns
  std::size_t total_cols_ = 0;     // cols_ + artificials
  std::size_t first_artificial_ = 0;

  std::vector<ColumnMap> col_map_;          // size cols_
  std::vector<double> upper_;               // per internal column (y ub)
  std::vector<double> cost_;                // phase-2 internal costs
  std::vector<double> phase1_cost_;         // 1 on artificials
  std::vector<std::vector<double>> tab_;    // rows_ x total_cols_
  std::vector<double> rhs_;                 // original b' (>= 0)
  std::vector<double> xb_;                  // basic variable values
  std::vector<std::size_t> basis_;          // column basic in each row
  std::vector<VarStatus> status_;           // per internal column
  std::vector<double> dj_;                  // reduced costs (current phase)
  const std::vector<double>* active_cost_ = nullptr;
  double cost_scale_ = 1.0;  // +1 minimize, -1 maximize (applied to costs)
};

void SimplexSolver::build() {
  const auto& vars = model_.variables();
  // --- Columns for model variables -------------------------------------
  std::vector<std::vector<std::size_t>> var_cols(vars.size());
  for (std::size_t v = 0; v < vars.size(); ++v) {
    const Variable& mv = vars[v];
    if (std::isfinite(mv.lower)) {
      ColumnMap cm{v, mv.lower, 1.0};
      col_map_.push_back(cm);
      upper_.push_back(std::isfinite(mv.upper) ? mv.upper - mv.lower
                                               : kInfinity);
      var_cols[v].push_back(col_map_.size() - 1);
    } else if (std::isfinite(mv.upper)) {
      // x = ub - y,  y in [0, inf)
      ColumnMap cm{v, mv.upper, -1.0};
      col_map_.push_back(cm);
      upper_.push_back(kInfinity);
      var_cols[v].push_back(col_map_.size() - 1);
    } else {
      // free: x = y1 - y2
      col_map_.push_back({v, 0.0, 1.0});
      upper_.push_back(kInfinity);
      var_cols[v].push_back(col_map_.size() - 1);
      col_map_.push_back({v, 0.0, -1.0});
      upper_.push_back(kInfinity);
      var_cols[v].push_back(col_map_.size() - 1);
    }
  }
  const std::size_t structural = col_map_.size();

  rows_ = model_.num_constraints();
  cols_ = structural + rows_;  // reserve one (possible) slack per row
  // Slack columns may be unused for equality rows; they get upper bound 0.
  upper_.resize(cols_, kInfinity);

  // --- Dense row data ----------------------------------------------------
  tab_.assign(rows_, std::vector<double>(cols_, 0.0));
  rhs_.assign(rows_, 0.0);
  std::vector<bool> row_needs_artificial(rows_, false);

  for (std::size_t r = 0; r < rows_; ++r) {
    const Constraint& c = model_.constraints()[r];
    double b = c.rhs;
    auto& row = tab_[r];
    for (const auto& [var, coef] : c.lhs.terms()) {
      for (const std::size_t col : var_cols[var]) {
        row[col] += coef * col_map_[col].sign;
      }
      b -= coef * col_map_[var_cols[var].front()].offset;
      // For split free vars offset is 0; for single-column vars the front
      // column carries the offset.
    }
    const std::size_t slack = structural + r;
    double slack_coef = 0.0;
    switch (c.relation) {
      case Relation::kLe:
        slack_coef = 1.0;
        break;
      case Relation::kGe:
        slack_coef = -1.0;
        break;
      case Relation::kEq:
        slack_coef = 0.0;
        upper_[slack] = 0.0;  // unused slack, frozen at zero
        break;
    }
    row[slack] = slack_coef;
    if (b < 0.0) {
      for (double& entry : row) {
        entry = -entry;
      }
      b = -b;
    }
    rhs_[r] = b;
    // A row can start with a basic slack only if its slack coefficient is
    // +1 after normalization.
    row_needs_artificial[r] = !(row[slack] > 0.5);
  }

  // --- Artificials -------------------------------------------------------
  first_artificial_ = cols_;
  std::size_t artificial_count = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (row_needs_artificial[r]) {
      ++artificial_count;
    }
  }
  total_cols_ = cols_ + artificial_count;
  for (auto& row : tab_) {
    row.resize(total_cols_, 0.0);
  }
  upper_.resize(total_cols_, kInfinity);

  basis_.assign(rows_, npos);
  status_.assign(total_cols_, VarStatus::kAtLower);
  std::size_t next_artificial = first_artificial_;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (row_needs_artificial[r]) {
      tab_[r][next_artificial] = 1.0;
      basis_[r] = next_artificial;
      ++next_artificial;
    } else {
      basis_[r] = structural + r;  // slack
    }
    status_[basis_[r]] = VarStatus::kBasic;
  }

  // --- Costs --------------------------------------------------------------
  cost_scale_ = model_.objective_sense() == Sense::kMinimize ? 1.0 : -1.0;
  cost_.assign(total_cols_, 0.0);
  for (const auto& [var, coef] : model_.objective().terms()) {
    for (const std::size_t col : var_cols[var]) {
      cost_[col] += cost_scale_ * coef * col_map_[col].sign;
    }
  }
  phase1_cost_.assign(total_cols_, 0.0);
  for (std::size_t c = first_artificial_; c < total_cols_; ++c) {
    phase1_cost_[c] = 1.0;
  }
  // Placeholder until a phase recomputes it; pivot() may run before any
  // phase does (drive_out_artificials when phase 1 is skipped).
  dj_.assign(total_cols_, 0.0);

  compute_basic_values();
}

void SimplexSolver::compute_basic_values() {
  xb_ = rhs_;
  for (std::size_t c = 0; c < total_cols_; ++c) {
    if (status_[c] == VarStatus::kAtUpper) {
      MCS_ASSERT(std::isfinite(upper_[c]), "at-upper with infinite bound");
      for (std::size_t r = 0; r < rows_; ++r) {
        xb_[r] -= tab_[r][c] * upper_[c];
      }
    }
  }
}

void SimplexSolver::recompute_reduced_costs() {
  const std::vector<double>& c = *active_cost_;
  dj_ = c;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double cb = c[basis_[r]];
    if (cb == 0.0) continue;
    const auto& row = tab_[r];
    for (std::size_t j = 0; j < total_cols_; ++j) {
      dj_[j] -= cb * row[j];
    }
  }
}

double SimplexSolver::current_internal_objective() const {
  const std::vector<double>& c = *active_cost_;
  double obj = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    obj += c[basis_[r]] * xb_[r];
  }
  for (std::size_t j = 0; j < total_cols_; ++j) {
    if (status_[j] == VarStatus::kAtUpper) {
      obj += c[j] * upper_[j];
    }
  }
  return obj;
}

std::size_t SimplexSolver::choose_entering(bool bland) const {
  std::size_t best = npos;
  double best_score = opt_.reduced_cost_tol;
  for (std::size_t j = 0; j < total_cols_; ++j) {
    if (status_[j] == VarStatus::kBasic) continue;
    if (upper_[j] <= 0.0) continue;  // fixed (e.g. frozen slack/artificial)
    double violation = 0.0;
    if (status_[j] == VarStatus::kAtLower) {
      violation = -dj_[j];  // want dj < 0 to decrease objective
    } else {
      violation = dj_[j];  // at upper: want dj > 0 (decrease var)
    }
    if (violation > best_score) {
      if (bland) {
        return j;  // smallest index with a violation
      }
      best_score = violation;
      best = j;
    }
  }
  return best;
}

SolveStatus SimplexSolver::iterate(std::size_t /*phase_one_rows*/,
                                   bool phase_one, std::size_t& iterations) {
  recompute_reduced_costs();
  std::size_t since_refactor = 0;
  for (;;) {
    if (iterations >= opt_.max_iterations) {
      return SolveStatus::kIterationLimit;
    }
    const bool bland = iterations >= opt_.bland_threshold;
    if (since_refactor >= opt_.refactor_period) {
      recompute_reduced_costs();
      since_refactor = 0;
    }
    const std::size_t q = choose_entering(bland);
    if (q == npos) {
      return SolveStatus::kOptimal;
    }
    ++iterations;
    ++since_refactor;

    const double dir = status_[q] == VarStatus::kAtLower ? 1.0 : -1.0;
    // Ratio test.
    double best_t = std::isfinite(upper_[q]) ? upper_[q] : kInfinity;
    std::size_t leave_row = npos;
    VarStatus leave_status = VarStatus::kAtLower;
    double best_pivot_mag = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double g = dir * tab_[r][q];
      if (g > opt_.pivot_tol) {
        // basic r decreases toward 0
        const double t = std::max(0.0, xb_[r]) / g;
        const bool better =
            t < best_t - 1e-12 ||
            (t < best_t + 1e-12 && leave_row != npos &&
             (bland ? basis_[r] < basis_[leave_row]
                    : std::abs(tab_[r][q]) > best_pivot_mag));
        if (t < best_t - 1e-12 || better) {
          best_t = std::min(best_t, t);
          leave_row = r;
          leave_status = VarStatus::kAtLower;
          best_pivot_mag = std::abs(tab_[r][q]);
        }
      } else if (g < -opt_.pivot_tol && std::isfinite(upper_[basis_[r]])) {
        // basic r increases toward its upper bound
        const double room = upper_[basis_[r]] - xb_[r];
        const double t = std::max(0.0, room) / (-g);
        const bool better =
            t < best_t - 1e-12 ||
            (t < best_t + 1e-12 && leave_row != npos &&
             (bland ? basis_[r] < basis_[leave_row]
                    : std::abs(tab_[r][q]) > best_pivot_mag));
        if (t < best_t - 1e-12 || better) {
          best_t = std::min(best_t, t);
          leave_row = r;
          leave_status = VarStatus::kAtUpper;
          best_pivot_mag = std::abs(tab_[r][q]);
        }
      }
    }

    if (!std::isfinite(best_t)) {
      return phase_one ? SolveStatus::kIterationLimit  // cannot happen
                       : SolveStatus::kUnbounded;
    }

    if (leave_row == npos) {
      // Bound flip: entering variable traverses to its other bound.
      MCS_ASSERT(std::isfinite(upper_[q]), "bound flip without upper bound");
      for (std::size_t r = 0; r < rows_; ++r) {
        xb_[r] -= dir * best_t * tab_[r][q];
      }
      status_[q] = status_[q] == VarStatus::kAtLower ? VarStatus::kAtUpper
                                                     : VarStatus::kAtLower;
      continue;
    }

    const double entering_start =
        status_[q] == VarStatus::kAtLower ? 0.0 : upper_[q];
    const double entering_value = entering_start + dir * best_t;
    pivot(leave_row, q, entering_value, leave_status);
  }
}

void SimplexSolver::pivot(std::size_t row, std::size_t col,
                          double entering_value, VarStatus leaving_status) {
  const std::size_t leaving = basis_[row];
  const double dir =
      status_[col] == VarStatus::kAtLower ? 1.0 : -1.0;
  const double step = std::abs((entering_value -
                                (status_[col] == VarStatus::kAtLower
                                     ? 0.0
                                     : upper_[col])));
  // Update basic values before changing the tableau.
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r == row) continue;
    xb_[r] -= dir * step * tab_[r][col];
  }
  xb_[row] = entering_value;

  // Row elimination.
  auto& prow = tab_[row];
  const double pivot_elem = prow[col];
  MCS_ASSERT(std::abs(pivot_elem) > 0.0, "zero pivot");
  const double inv = 1.0 / pivot_elem;
  for (double& entry : prow) {
    entry *= inv;
  }
  prow[col] = 1.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r == row) continue;
    auto& orow = tab_[r];
    const double factor = orow[col];
    if (factor == 0.0) continue;
    for (std::size_t j = 0; j < total_cols_; ++j) {
      orow[j] -= factor * prow[j];
    }
    orow[col] = 0.0;
  }
  // Incremental reduced-cost update.
  const double dq = dj_[col];
  if (dq != 0.0) {
    for (std::size_t j = 0; j < total_cols_; ++j) {
      dj_[j] -= dq * prow[j];
    }
  }
  dj_[col] = 0.0;

  basis_[row] = col;
  status_[col] = VarStatus::kBasic;
  status_[leaving] = leaving_status;
  if (leaving_status == VarStatus::kAtUpper &&
      !std::isfinite(upper_[leaving])) {
    // Leaving at "upper" with infinite bound cannot happen (ratio test
    // guards with isfinite); normalize to lower for safety.
    status_[leaving] = VarStatus::kAtLower;
  }
}

bool SimplexSolver::drive_out_artificials() {
  for (std::size_t r = 0; r < rows_; ++r) {
    if (basis_[r] < first_artificial_) continue;
    // Basic artificial (value must be ~0 after a feasible phase 1).
    if (std::abs(xb_[r]) > opt_.feasibility_tol) {
      return false;
    }
    // Try to pivot in any non-artificial column with a usable element.
    std::size_t replacement = npos;
    for (std::size_t j = 0; j < first_artificial_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      if (upper_[j] <= 0.0) continue;
      if (std::abs(tab_[r][j]) > opt_.pivot_tol) {
        replacement = j;
        break;
      }
    }
    if (replacement == npos) {
      continue;  // redundant row; artificial stays basic at zero
    }
    const double entering_value =
        status_[replacement] == VarStatus::kAtLower ? 0.0
                                                    : upper_[replacement];
    // Degenerate pivot: entering keeps its current value (step 0).
    const VarStatus leave_status = VarStatus::kAtLower;
    // Temporarily mark direction based on current status for pivot().
    pivot(r, replacement, entering_value, leave_status);
  }
  // Freeze every artificial at zero so phase 2 cannot reuse them.
  for (std::size_t c = first_artificial_; c < total_cols_; ++c) {
    if (status_[c] != VarStatus::kBasic) {
      status_[c] = VarStatus::kAtLower;
      upper_[c] = 0.0;
    }
  }
  return true;
}

LpSolution SimplexSolver::extract_solution(SolveStatus status,
                                           std::size_t iterations) const {
  LpSolution sol;
  sol.status = status;
  sol.iterations = iterations;
  if (status != SolveStatus::kOptimal) {
    return sol;
  }
  std::vector<double> internal(total_cols_, 0.0);
  for (std::size_t c = 0; c < total_cols_; ++c) {
    if (status_[c] == VarStatus::kAtUpper) {
      internal[c] = upper_[c];
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    internal[basis_[r]] = xb_[r];
  }
  sol.values.assign(model_.num_variables(), 0.0);
  for (std::size_t c = 0; c < col_map_.size(); ++c) {
    const ColumnMap& cm = col_map_[c];
    if (cm.sign > 0.0) {
      sol.values[cm.model_var] += cm.offset + internal[c];
    } else {
      // Either ub-shifted single column (offset=ub) or negative split half.
      sol.values[cm.model_var] += cm.offset - internal[c];
    }
  }
  sol.objective = model_.evaluate(model_.objective(), sol.values);
  return sol;
}

LpSolution SimplexSolver::run() {
  std::size_t iterations = 0;

  // Phase 1 (only when artificials exist and can be nonzero).
  bool need_phase1 = false;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (basis_[r] >= first_artificial_ && xb_[r] > opt_.feasibility_tol) {
      need_phase1 = true;
      break;
    }
  }
  if (first_artificial_ < total_cols_ && need_phase1) {
    active_cost_ = &phase1_cost_;
    const SolveStatus p1 = iterate(rows_, /*phase_one=*/true, iterations);
    if (p1 == SolveStatus::kIterationLimit) {
      return extract_solution(SolveStatus::kIterationLimit, iterations);
    }
    if (current_internal_objective() > opt_.feasibility_tol * 10.0) {
      return extract_solution(SolveStatus::kInfeasible, iterations);
    }
  }
  if (first_artificial_ < total_cols_) {
    if (!drive_out_artificials()) {
      return extract_solution(SolveStatus::kInfeasible, iterations);
    }
  }

  active_cost_ = &cost_;
  const SolveStatus p2 = iterate(rows_, /*phase_one=*/false, iterations);
  return extract_solution(p2, iterations);
}

}  // namespace

LpSolution solve_lp(const Model& model, const SimplexOptions& options) {
  namespace telemetry = support::telemetry;
  const telemetry::ScopedTimer timer("lp.solve_lp");
  SimplexSolver solver(model, options);
  LpSolution sol = solver.run();
  if (telemetry::enabled()) {
    telemetry::count("lp.solves");
    telemetry::count("lp.simplex_iterations", sol.iterations);
    if (sol.status == SolveStatus::kIterationLimit) {
      telemetry::count("lp.iteration_limit_hits");
    }
  }
  return sol;
}

}  // namespace mcs::lp
